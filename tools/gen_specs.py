"""Regenerate the shipped scenario suites under ``specs/``.

The spec files are the single declarative source the figure/table
harnesses execute (``repro.experiments.*`` loads them via
``repro.scenario.load_suite``). This script is the authoritative
builder: it re-derives every suite from the paper's §VII parameter
tables and re-pins ``specs/HASHES.json``. Run it after deliberately
changing an experiment's parameters::

    PYTHONPATH=src python tools/gen_specs.py

CI's ``scenario-validate`` step fails if a shipped file no longer
matches its pinned hash, so accidental edits cannot slip through.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.scenario import (  # noqa: E402
    JobParams,
    ScenarioMatrix,
    ScenarioSpec,
    SpecSuite,
    suite_hash,
    validate_spec,
)

REPO = Path(__file__).resolve().parents[1]
SPECS = REPO / "specs"


# --------------------------------------------------------------- fig 1-2
def fig1() -> list[ScenarioSpec]:
    """The opening power trace: static baseline, traces on (~10 syncs)."""
    return [
        ScenarioSpec(
            name="fig1/baseline-trace",
            approach="static",
            job=JobParams(
                analyses=("full_msd",),
                dim=16,
                n_nodes=128,
                n_verlet_steps=40,
                seed=5,
                collect_traces=True,
            ),
        )
    ]


def fig2() -> list[ScenarioSpec]:
    """The worked 210 W example — analytic, parameters ride in extras."""
    return [
        ScenarioSpec(
            name="fig2/worked-example",
            approach="seesaw",
            extras={
                "t_sim_s": 100.0,
                "p_sim_w": 90.0,
                "t_ana_s": 60.0,
                "p_ana_w": 120.0,
                "budget_w": 210.0,
            },
        )
    ]


# --------------------------------------------------------------- fig 3
def fig3a() -> list[ScenarioSpec]:
    from repro.experiments.fig3 import FIG3A_CASES, case_specs

    return case_specs("fig3a", FIG3A_CASES)


def fig3b() -> list[ScenarioSpec]:
    from repro.experiments.fig3 import FIG3B_CASES, case_specs

    return case_specs("fig3b", FIG3B_CASES)


# --------------------------------------------------------------- fig 4-5
def fig4() -> list[ScenarioSpec]:
    job = JobParams(
        analyses=("full_msd",), dim=16, n_nodes=128, n_verlet_steps=400,
        seed=42,
    )
    return [
        ScenarioSpec(name=f"fig4/{approach}", approach=approach, job=job)
        for approach in ("seesaw", "time-aware", "power-aware", "static")
    ]


def fig5() -> list[ScenarioSpec]:
    def job(nodes: int) -> JobParams:
        return JobParams(
            analyses=("all",), dim=36, n_nodes=nodes, n_verlet_steps=400,
            seed=17,
        )

    return [
        ScenarioSpec(name="fig5/static-n1024", approach="static", job=job(1024)),
        ScenarioSpec(name="fig5/seesaw-n1024", approach="seesaw", job=job(1024)),
        ScenarioSpec(
            name="fig5/time-aware-n1024", approach="time-aware", job=job(1024)
        ),
        ScenarioSpec(name="fig5/seesaw-n128", approach="seesaw", job=job(128)),
    ]


# --------------------------------------------------------------- fig 6-8
def fig6() -> ScenarioMatrix:
    base = ScenarioSpec(
        name="fig6",
        approach="seesaw",
        baseline_sim_share=0.5,
        repeats=3,
        job=JobParams(
            analyses=("all",), dim=48, n_nodes=1024, n_verlet_steps=400,
            seed=60,
        ),
    )
    return ScenarioMatrix(
        base=base,
        axes={"job.j": [1, 10, 40], "controller.window": [1, 2, 5, 10, 20]},
    )


def fig7() -> list[ScenarioSpec]:
    starts = (
        ("sim-heavy", "sim-heavy (S 120 / A 100)", 120.0, 100.0),
        ("ana-heavy", "ana-heavy (S 100 / A 120)", 100.0, 120.0),
        ("equal", "equal (S 110 / A 110)", 110.0, 110.0),
    )
    out = []
    for slug, label, sim_w, ana_w in starts:
        share = sim_w / (sim_w + ana_w)
        out.append(
            ScenarioSpec(
                name=f"fig7/{slug}",
                approach="seesaw",
                controller={"window": 2, "sim_share": share},
                baseline_sim_share=share,
                repeats=3,
                job=JobParams(
                    analyses=("all",), dim=36, n_nodes=128,
                    n_verlet_steps=400, seed=7,
                ),
                extras={"label": label, "sim_w": sim_w, "ana_w": ana_w},
            )
        )
    return out


def fig8() -> ScenarioMatrix:
    base = ScenarioSpec(
        name="fig8",
        approach="seesaw",
        baseline_sim_share=0.5,
        repeats=3,
        job=JobParams(
            analyses=("all_msd",), dim=16, n_nodes=128, n_verlet_steps=400,
            seed=88,
        ),
    )
    return ScenarioMatrix(
        base=base,
        axes={
            "job.budget_per_node_w": [
                98.0, 105.0, 110.0, 115.0, 120.0, 130.0, 140.0, 160.0,
                180.0, 215.0,
            ]
        },
    )


# --------------------------------------------------------------- fig 9
def fig9() -> list[ScenarioSpec]:
    out = [
        ScenarioSpec(
            name=f"fig9/relative-n{nodes}",
            approach="seesaw",
            job=JobParams(
                analyses=("all",), dim=48, n_nodes=nodes,
                n_verlet_steps=100, seed=99,
            ),
            extras={"panel": "9a"},
        )
        for nodes in (128, 1024)
    ]
    # 9b is analytic (no cells run): the spec's job parameterizes the
    # overhead model at each cap
    out += [
        ScenarioSpec(
            name=f"fig9/absolute-cap{cap:.0f}",
            approach="seesaw",
            job=JobParams(
                analyses=("all",), dim=48, n_nodes=128,
                budget_per_node_w=cap, seed=99,
            ),
            extras={"panel": "9b"},
        )
        for cap in (98.0, 110.0, 130.0, 160.0, 215.0)
    ]
    return out


# --------------------------------------------------------------- tables
def table1() -> list[ScenarioSpec]:
    out = []
    for mode in ("none", "long", "long_short"):
        for dim in (36, 48):
            job = JobParams(
                analyses=("all",), dim=dim, n_nodes=128, n_verlet_steps=400,
                cap_mode=mode, seed=100,
            )
            out.append(
                ScenarioSpec(
                    name=f"table1/cap-{mode}/dim{dim}/run-to-run",
                    approach="static",
                    repeats=7,
                    job=job,
                    extras={"kind": "run-to-run"},
                )
            )
            out += [
                ScenarioSpec(
                    name=f"table1/cap-{mode}/dim{dim}/job-to-job/seed{101 + i}",
                    approach="static",
                    job=JobParams(
                        analyses=("all",), dim=dim, n_nodes=128,
                        n_verlet_steps=400, cap_mode=mode, seed=101 + i,
                    ),
                    extras={"kind": "job-to-job"},
                )
                for i in range(7)
            ]
    return out


def table2() -> list[ScenarioSpec]:
    cases = (
        ("msd-w1", "full_msd", 1),
        ("msd-w2", "full_msd", 2),
        ("vacf-w1", "vacf", 1),
    )
    out = []
    for slug, varied, window in cases:
        for j in (4, 20, 100):
            out.append(
                ScenarioSpec(
                    name=f"table2/{slug}/j{j}",
                    approach="seesaw",
                    controller={"window": window},
                    baseline_sim_share=0.5,
                    repeats=3,
                    job=JobParams(
                        analyses=("rdf", "full_msd", "vacf"), dim=16,
                        n_nodes=128, n_verlet_steps=400, seed=77,
                        analysis_intervals={varied: j},
                    ),
                    extras={"varied": varied},
                )
            )
    return out


SUITES = {
    "fig1": fig1,
    "fig2": fig2,
    "fig3a": fig3a,
    "fig3b": fig3b,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "table1": table1,
    "table2": table2,
}


def main() -> int:
    SPECS.mkdir(exist_ok=True)
    hashes: dict[str, str] = {}
    for name, build in SUITES.items():
        built = build()
        if isinstance(built, ScenarioMatrix):
            doc = {"suite": name, "matrix": built.to_json()}
            specs = tuple(built.expand())
            matrix = built
        else:
            doc = {"suite": name, "scenarios": [s.to_json() for s in built]}
            specs = tuple(built)
            matrix = None
        problems = [
            p for s in specs for p in validate_spec(s)
        ]
        if problems:
            for p in problems:
                print(f"INVALID: {p}", file=sys.stderr)
            return 1
        path = SPECS / f"{name}.json"
        path.write_text(json.dumps(doc, indent=2) + "\n")
        suite = SpecSuite(name=name, path=path, specs=specs, matrix=matrix)
        hashes[name] = suite_hash(suite)
        print(f"wrote {path.relative_to(REPO)}: {len(specs)} scenario(s)")
    hash_path = SPECS / "HASHES.json"
    hash_path.write_text(json.dumps(hashes, indent=2, sort_keys=True) + "\n")
    print(f"wrote {hash_path.relative_to(REPO)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
