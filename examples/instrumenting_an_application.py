#!/usr/bin/env python
"""How to instrument *your own* coupled application with PoLiMER.

The paper's pitch (§IV-B, §VI-C) is that enabling SeeSAw takes two
pieces of developer knowledge and two lines of code:

1. identify each process as simulation (master=0) or analysis
   (master=1) when creating the power manager;
2. call ``poli_power_alloc()`` immediately before each
   simulation-analysis synchronization.

This example builds a toy producer/consumer workflow — NOT the bundled
LAMMPS coupler — on the simulated MPI runtime and instruments it the
same way, showing the API generalizes beyond molecular dynamics.

Run:  python examples/instrumenting_an_application.py
"""

from repro.cluster.machine import theta
from repro.cluster.node import THETA_NODE
from repro.core import SeeSAwController
from repro.des import Engine
from repro.mpi import MpiWorld
from repro.polimer import poli_init_power_manager, poli_power_alloc
from repro.workloads.profiles import PHASES

N_PRODUCERS = 2  # "simulation": generate batches (compute-heavy)
N_CONSUMERS = 2  # "analysis": digest batches (lighter)
N_BATCHES = 25


def main() -> None:
    machine = theta()
    engine = Engine()
    world = MpiWorld(engine, N_PRODUCERS + N_CONSUMERS, cost=machine.interconnect())
    budget = 110.0 * world.size
    controller = SeeSAwController(
        budget, N_PRODUCERS, N_CONSUMERS, THETA_NODE, window=1
    )
    managers = {}

    def rank_main(rank, comm):
        master = 0 if rank < N_PRODUCERS else 1
        # --- instrumentation line 1: declare who you are -------------
        pm = poli_init_power_manager(
            engine, comm, rank, master, 110.0, THETA_NODE,
            controller=controller if rank == 0 else None,
        )
        managers[rank] = pm
        yield from pm.initialize()
        node = pm.node

        # Space-shared pipelining, like Verlet-Splitanalysis: at each
        # synchronization the producer ships the batch it just finished
        # and immediately starts the next one, while the consumer
        # digests the shipped batch. Both sides call poli_power_alloc
        # right before the exchange, so the measured work time is the
        # genuine pre-synchronization compute time.
        for batch in range(N_BATCHES):
            # --- instrumentation line 2: allocate before the sync ----
            yield from poli_power_alloc(pm)
            if master == 0:
                yield comm.send(
                    rank, dest=N_PRODUCERS + rank, payload=batch, tag=batch
                )
                # produce the next batch: compute-bound work
                yield node.compute(PHASES["force"], 2.0)
            else:
                got = yield comm.recv(rank, source=rank - N_PRODUCERS, tag=batch)
                assert got == batch
                # consume: lighter, memory-bound work
                yield node.compute(PHASES["ana_mem"], 0.7)
        return node.current_cap_w

    caps = world.run(rank_main)
    print(f"workflow finished at t = {engine.now:.1f} s (virtual)")
    print(f"producer caps: {[f'{c:.1f}' for c in caps[:N_PRODUCERS]]} W")
    print(f"consumer caps: {[f'{c:.1f}' for c in caps[N_PRODUCERS:]]} W")
    print(
        "SeeSAw moved power toward the compute-heavy producers, exactly "
        "as it moves power between LAMMPS and its analyses."
    )


if __name__ == "__main__":
    main()
