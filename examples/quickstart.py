#!/usr/bin/env python
"""Quickstart: power-manage an in-situ job with SeeSAw in ~30 lines.

Runs the paper's flagship configuration — LAMMPS with the full MSD
analysis on 128 nodes under a 110 W/node budget — once with the static
baseline and once with SeeSAw, then prints the improvement and the
settled power split.

Run:  python examples/quickstart.py
"""

from repro.cluster.node import THETA_NODE
from repro.core import SeeSAwController, StaticController
from repro.workloads import JobConfig, run_job


def main() -> None:
    cfg = JobConfig(
        analyses=("full_msd",),  # the paper's high-demand analysis
        dim=16,  # 1568 * 16^3 ~ 6.4M atoms
        n_nodes=128,  # 64 simulation + 64 analysis nodes
        budget_per_node_w=110.0,  # the paper's power budget
        n_verlet_steps=400,
        seed=2020,
    )

    baseline = run_job(
        cfg, StaticController(cfg.budget_w, cfg.n_sim, cfg.n_ana, THETA_NODE)
    )
    seesaw = run_job(
        cfg,
        SeeSAwController(
            cfg.budget_w, cfg.n_sim, cfg.n_ana, THETA_NODE, window=1
        ),
    )

    gain = 100.0 * (baseline.total_time_s - seesaw.total_time_s) / baseline.total_time_s
    last = seesaw.records[-1]
    print(f"static baseline : {baseline.total_time_s:9.1f} s")
    print(f"SeeSAw          : {seesaw.total_time_s:9.1f} s  ({gain:+.2f} %)")
    print(
        f"settled split   : simulation {last.sim_cap_mean_w:.1f} W/node, "
        f"analysis {last.ana_cap_mean_w:.1f} W/node"
    )
    print(f"mean slack      : {seesaw.mean_slack * 100:.2f} % of each interval")


if __name__ == "__main__":
    main()
