#!/usr/bin/env python
"""System-wide power management across concurrent in-situ jobs.

Implements the paper's §VIII integration point: a machine-level budget
shared by several jobs (each internally SeeSAw-managed), retargeted at
epochs by a utilization-tracking cluster power manager. A low-demand
job that saturates below its budget cedes watts to a compute-hungry
neighbour.

Run:  python examples/cluster_scheduler.py
"""

from repro.cluster.node import THETA_NODE
from repro.core import SeeSAwController
from repro.sched import ClusterPowerManager
from repro.workloads import JobConfig, ProxyJobSession


def make_jobs():
    def session(analyses, dim, seed):
        cfg = JobConfig(
            analyses=analyses,
            dim=dim,
            n_nodes=16,
            n_verlet_steps=100,
            seed=seed,
        )
        ctl = SeeSAwController(cfg.budget_w, cfg.n_sim, cfg.n_ana, THETA_NODE)
        return ProxyJobSession(cfg, ctl)

    return {
        "md-heavy": session(("full_msd",), 16, 5),  # power-hungry
        "md-light": session(("vacf",), 8, 6),  # saturates early
    }


def main() -> None:
    machine_budget = 140.0 * 32  # 32 nodes at a generous 140 W each
    print(f"machine budget: {machine_budget:.0f} W across two 16-node jobs\n")
    for policy in ("static", "utilization"):
        mgr = ClusterPowerManager(
            make_jobs(),
            machine_budget_w=machine_budget,
            epoch_s=120.0,
            policy=policy,
        )
        res = mgr.run()
        print(f"--- policy: {policy} ---")
        for name, telem in res.jobs.items():
            final_budget = telem.budget_history[-1][1] if telem.budget_history else 0
            print(
                f"{name:9s} finished {telem.finish_time_s:8.1f} s  "
                f"mean draw {telem.mean_power_w:6.1f} W/node  "
                f"final budget {final_budget / 16:6.1f} W/node"
            )
        print(f"makespan: {res.makespan_s:.1f} s\n")


if __name__ == "__main__":
    main()
