#!/usr/bin/env python
"""Sweep the per-node power budget and chart SeeSAw's headroom curve.

Reproduces Figure 8 interactively (with an ASCII bar chart): SeeSAw's
gain over the static baseline peaks around 110-120 W per node and
vanishes once LAMMPS can no longer use the extra power (~140 W).

Run:  python examples/power_cap_sweep.py
"""

from repro.cluster.node import THETA_NODE
from repro.core import SeeSAwController, StaticController
from repro.workloads import JobConfig, run_job

CAPS = [98, 105, 110, 115, 120, 130, 140, 160, 180, 215]


def improvement_at(cap: float) -> float:
    cfg = JobConfig(
        analyses=("all_msd",),
        dim=16,
        n_nodes=128,
        budget_per_node_w=cap,
        n_verlet_steps=300,
        seed=8,
    )
    base = run_job(
        cfg, StaticController(cfg.budget_w, cfg.n_sim, cfg.n_ana, THETA_NODE)
    ).total_time_s
    managed = run_job(
        cfg, SeeSAwController(cfg.budget_w, cfg.n_sim, cfg.n_ana, THETA_NODE)
    ).total_time_s
    return 100.0 * (base - managed) / base


def main() -> None:
    print("SeeSAw improvement over static vs per-node cap")
    print("(all analyses + full MSD, dim=16, 128 nodes)\n")
    results = [(cap, improvement_at(cap)) for cap in CAPS]
    peak = max(imp for _, imp in results)
    for cap, imp in results:
        bar = "#" * max(0, int(round(imp / max(peak, 1e-9) * 40)))
        print(f"{cap:4d} W  {imp:+6.2f} %  {bar}")
    best = max(results, key=lambda r: r[1])[0]
    print(
        f"\nbest cap: {best} W  "
        "(paper: highest improvements in the 110-120 W range; "
        "diminishing returns beyond ~140 W)"
    )


if __name__ == "__main__":
    main()
