#!/usr/bin/env python
"""Full-stack in-situ run: real MD + real analyses + PoLiMER + SeeSAw.

Unlike the proxy-based experiments, this drives the *actual* miniature
molecular-dynamics engine (velocity-Verlet over the paper's 1568-atom
water/ion cell) through the Verlet-Splitanalysis workflow on the
simulated MPI runtime: four simulation ranks ship their domain slices
to four paired analysis ranks each step; RDF, VACF and MSD run on the
reassembled frames; SeeSAw reallocates power before every
synchronization through the two-call PoLiMER API.

Run:  python examples/insitu_lammps.py
"""

import numpy as np

from repro.cluster.node import THETA_NODE
from repro.core import SeeSAwController
from repro.insitu import InsituConfig, run_insitu


def main() -> None:
    cfg = InsituConfig(
        n_sim_ranks=4,
        n_ana_ranks=4,
        dim=1,  # 1568 atoms: the paper's base cell
        n_verlet_steps=12,
        analyses=("rdf", "vacf", "msd"),
        power_cap_w=110.0,
        seed=2020,
    )
    controller = SeeSAwController(
        cfg.world_size * cfg.power_cap_w,
        cfg.n_sim_ranks,
        cfg.n_ana_ranks,
        THETA_NODE,
    )
    res = run_insitu(cfg, controller)

    print(f"virtual job time : {res.virtual_time_s:.2f} s")
    print(f"synchronizations : {len(res.observation_log)}")
    print(f"count checks     : {res.verification_failures} failures")
    print()
    print("thermo output (LAMMPS-style):")
    print(res.thermo.render())
    print()

    r, g = res.analysis_results["rdf"]
    peak = r[np.argmax(g)]
    print(f"RDF  : first solvation peak at r = {peak:.2f} (g = {g.max():.2f})")
    times, c = res.analysis_results["vacf"]
    print(f"VACF : C(0) = {c[0]:.3f}, C(t_end) = {c[-1]:.3f}")
    t_msd, msd = res.analysis_results["msd"]
    print(f"MSD  : {msd[0]:.4f} -> {msd[-1]:.4f} over {t_msd[-1]:.4f} time units")
    print()

    if res.allocation_log:
        _, alloc = res.allocation_log[-1]
        print(
            "final SeeSAw allocation: "
            f"sim {alloc.sim_caps_w.mean():.1f} W/node, "
            f"ana {alloc.ana_caps_w.mean():.1f} W/node"
        )


if __name__ == "__main__":
    main()
