#!/usr/bin/env python
"""Compare all four power-management strategies across workloads.

Reproduces the spirit of the paper's Figure 3 interactively: for each
workload, run the static baseline and the three managed approaches on
the same job (identical seeds — the paper's pairing), and print the
improvement plus where each controller settled.

Run:  python examples/controller_comparison.py
"""

from repro.cluster.node import THETA_NODE
from repro.core import (
    PowerAwareController,
    SeeSAwController,
    StaticController,
    TimeAwareController,
)
from repro.workloads import JobConfig, run_job

WORKLOADS = [
    ("full MSD, dim 16", ("full_msd",), 16, 128),
    ("VACF, dim 36", ("vacf",), 36, 128),
    ("all analyses, dim 36", ("all",), 36, 128),
    ("all analyses, dim 48, 1024 nodes", ("all",), 48, 1024),
]

CONTROLLERS = {
    "static": StaticController,
    "power-aware": PowerAwareController,
    "time-aware": TimeAwareController,
    "SeeSAw": SeeSAwController,
}


def main() -> None:
    for label, analyses, dim, nodes in WORKLOADS:
        cfg = JobConfig(
            analyses=analyses,
            dim=dim,
            n_nodes=nodes,
            n_verlet_steps=400,
            seed=11,
        )
        print(f"\n=== {label} ({nodes} nodes, 110 W/node budget) ===")
        base_time = None
        for name, cls in CONTROLLERS.items():
            ctl = cls(cfg.budget_w, cfg.n_sim, cfg.n_ana, THETA_NODE)
            res = run_job(cfg, ctl)
            last = res.records[-1]
            if name == "static":
                base_time = res.total_time_s
                print(
                    f"{name:12s} {res.total_time_s:9.1f} s   (baseline)"
                    f"   caps {last.sim_cap_mean_w:.0f}/{last.ana_cap_mean_w:.0f} W"
                )
            else:
                gain = 100.0 * (base_time - res.total_time_s) / base_time
                print(
                    f"{name:12s} {res.total_time_s:9.1f} s   {gain:+6.2f} %"
                    f"   caps {last.sim_cap_mean_w:.0f}/{last.ana_cap_mean_w:.0f} W"
                    f"   slack {res.mean_slack * 100:5.1f} %"
                )


if __name__ == "__main__":
    main()
