"""Telemetry-shipping overhead gate.

ISSUE acceptance: with worker telemetry shipping enabled (the
default), the median wall time of a pooled campaign batch regresses by
less than 3 % against the same batch with ``SEESAW_OBS_SHIP=0``. The
comparison is timed by hand (interleaved median-of-N against two warm
pools) so the assertion also runs in CI's ``--benchmark-disable``
bench-smoke job, where pytest-benchmark's own timer is a no-op.

Cell cost is simulated with ``time.sleep`` (the same trick as the
scale-out benchmark) so the measured gap is pure shipping machinery —
worker-side emit into the bounded :class:`~repro.obs.ship.ShippingSink`,
the batch riding the result frame, and the parent's
:class:`~repro.obs.merge.TelemetryMux` re-stamp — not proxy compute
noise. Density is pinned at 128 records per 80 ms cell, well above
what per-sync-interval instrumentation emits per wall-second on a
real in-situ run.
"""

import time

from repro.campaign import CampaignEngine, CellSpec
from repro.obs.ship import SHIP_ENV
from repro.telemetry import get_tracer
from repro.workloads import JobConfig

#: interleaved repetitions per variant; medians shrug off one-off
#: scheduler noise that a single pair of timings would inherit
ROUNDS = 7

#: ISSUE acceptance threshold plus measurement slop: the gate allows
#: the regression budget on top of the observed ship-off spread
BUDGET = 0.03

N_WORKERS = 2
CELL_S = 0.08
RECORDS_PER_CELL = 128


def instrumented_run(spec):
    """A fixed-cost cell that emits a dense, realistic span stream.

    Under a pool worker with shipping on, ``get_tracer()`` is the
    worker's shipping tracer; with shipping off it is the NullTracer,
    so the emission loop is the exact code path whose cost the gate
    bounds.
    """
    tracer = get_tracer()
    for i in range(RECORDS_PER_CELL):
        tracer.complete(
            "phase.md", i * 1e-4, 1e-4, tid=1, args={"energy_j": 1.0}
        )
    time.sleep(CELL_S)
    return spec.cfg.seed


def _specs():
    return [
        CellSpec(
            "seesaw",
            JobConfig(
                analyses=("vacf",), n_nodes=8, seed=seed, n_verlet_steps=10
            ),
        )
        for seed in range(1, 9)
    ]


def _median(xs):
    xs = sorted(xs)
    return xs[len(xs) // 2]


def _warm_engine(monkeypatch, ship: bool) -> CampaignEngine:
    """A pooled engine whose workers were spawned with shipping set."""
    monkeypatch.setenv(SHIP_ENV, "1" if ship else "0")
    engine = CampaignEngine(jobs=N_WORKERS, run_fn=instrumented_run)
    engine.run_cells(_specs())  # spawn + warm the pool before timing
    return engine


def _batch_wall_s(engine: CampaignEngine) -> float:
    t0 = time.perf_counter()
    engine.run_cells(_specs())
    return time.perf_counter() - t0


def test_shipping_overhead_under_3_percent(benchmark, monkeypatch):
    off = _warm_engine(monkeypatch, ship=False)
    on = _warm_engine(monkeypatch, ship=True)
    try:
        base, shipped = [], []
        for _ in range(ROUNDS):  # interleaved: drift hits both variants
            base.append(_batch_wall_s(off))
            shipped.append(_batch_wall_s(on))

        # the timed path really shipped: batches arrived and merged on
        # the ship-on engine only
        assert on.obs.absorbed > 0
        assert off.obs.absorbed == 0

        med_base = _median(base)
        med_ship = _median(shipped)
        spread = (max(base) - min(base)) / med_base
        overhead = med_ship / med_base - 1.0
        print(
            f"\nshipping overhead: {overhead * 100:+.2f}% "
            f"(off {med_base * 1e3:.1f} ms, on {med_ship * 1e3:.1f} ms, "
            f"ship-off spread {spread * 100:.1f}%, "
            f"{on.obs.absorbed} records merged)"
        )
        assert overhead < BUDGET + spread

        # report one ship-on batch through pytest-benchmark when enabled
        benchmark.pedantic(
            lambda: _batch_wall_s(on), iterations=1, rounds=1, warmup_rounds=0
        )
    finally:
        on.close()
        off.close()
