"""Table II bench: analyses at mixed invocation intervals.

Robust claims asserted (see EXPERIMENTS.md for the calibration-
dependent caveat about which j the w=1 reactivity penalty lands on):

* varying the low-demand VACF barely matters — improvements stable and
  positive across j (paper: ~15-17 % throughout);
* varying the high-demand full MSD makes w=1 SeeSAw sensitive — the
  spread across j is much larger than the VACF row's;
* the paper's recommended fix, w >= 2, removes the sudden power swings:
  the worst MSD-varied cell improves.
"""

from repro.experiments import run_table2


def test_table2_mixed_intervals(bench):
    res = bench(run_table2, j_values=(4, 20, 100), n_runs=3, n_verlet_steps=400)
    vacf = [res.vacf_rows[j] for j in (4, 20, 100)]
    assert min(vacf) > 4.0
    assert max(vacf) - min(vacf) < 4.0
    # the high-demand analysis at mixed intervals destabilizes SeeSAw,
    # the low-demand one does not: the MSD row swings far more with j
    # than the VACF row (paper: 5.03->0.90 vs 16.76->16.24)
    assert res.spread(res.msd_rows) > 2.0 * res.spread(res.vacf_rows)
    # the VACF-varied workload always improves; the worst MSD-varied
    # cell is markedly below every VACF-varied cell
    worst_msd = min(res.msd_rows.values())
    assert worst_msd < min(vacf) - 4.0
    # the w=2 row exists for all j (EXPERIMENTS.md discusses why the
    # paper's "w>=2 fixes it" advice does not reproduce one-for-one)
    assert set(res.msd_rows_w2) == {4, 20, 100}
