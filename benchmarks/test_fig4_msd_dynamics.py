"""Figure 4 bench: per-step allocation dynamics on LAMMPS+MSD."""

import numpy as np

from repro.experiments import run_fig4


def test_fig4_msd_dynamics(bench):
    res = bench(run_fig4, n_verlet_steps=400)

    # 4a: SeeSAw settles within the first ~20 steps, assigns the
    # analysis more power, and holds a small slack afterwards.
    sim_cap, ana_cap = res.seesaw.settled_caps()
    assert ana_cap > sim_cap
    assert res.seesaw.mean_slack_from(20) < 0.06
    early = res.seesaw.slack_norm[:3].mean()
    late = res.seesaw.slack_norm[-50:].mean()
    assert late < early

    # 4b: the time-aware balancer moves power the wrong way during the
    # setup transient and flattens near sim~120 / ana~δ_min with a
    # persistent slack (paper: 12 %).
    sim_t, ana_t = res.time_aware.settled_caps()
    assert sim_t > 115.0
    assert ana_t < 103.0
    assert res.time_aware.mean_slack_from(20) > 0.08

    # 4c: the power-aware approach fluctuates.
    assert res.power_aware.slack_norm.max() > 0.1

    # 4d/4e: baseline — the setup transient on steps 1-2, then MSD and
    # the simulation nearly identical (~4 s) at ~110 W draw.
    base = res.baseline
    assert base.sim_work_s[0] > 1.3 * base.sim_work_s[5]
    steady_sim = float(np.mean(base.sim_work_s[3:10]))
    steady_ana = float(np.mean(base.ana_work_s[3:10]))
    assert 3.0 < steady_sim < 5.0
    assert 1.0 < steady_ana / steady_sim < 1.3
    assert 100.0 < float(np.mean(base.sim_power_w[3:10])) < 112.0
