"""Figure 8 bench: diminishing returns with more power headroom."""

from repro.experiments import run_fig8


def test_fig8_cap_sweep(bench):
    res = bench(run_fig8, n_runs=3, n_verlet_steps=300)
    imps = res.improvements
    # Highest improvements in the 110-120 W band (paper §VII-D).
    assert 105.0 <= res.best_cap <= 125.0
    # No headroom to shift at the 98 W hardware floor.
    assert abs(imps[98.0]) < 1.0
    # Diminishing returns beyond ~140 W: LAMMPS cannot use the power.
    assert imps[110.0] > imps[140.0]
    for cap in (160.0, 180.0, 215.0):
        assert abs(imps[cap]) < 2.0, cap
