"""Figure 3 bench: the headline comparison across analyses and scales.

Shape targets (paper abstract + §VII-B): power-aware negative in all
cases; time-aware positive on low-demand analyses at 128 nodes but
negative on full MSD and at 1024 nodes; SeeSAw positive everywhere.
"""

from repro.experiments import run_fig3a, run_fig3b


def test_fig3a_different_analyses(bench):
    res = bench(run_fig3a, n_runs=3, n_verlet_steps=200)
    for label, nodes, imps in res.rows:
        # SeeSAw never loses to the baseline (abstract: +4..30 %)
        assert imps["seesaw"] > -1.0, (label, imps)
        # the strictly power-aware approach always loses (up to ~-25 %)
        assert imps["power-aware"] < 0.0, (label, imps)
    # time-aware is competitive on the low-demand analyses...
    for label in ("RDF (dim 36)", "VACF (dim 36)"):
        assert res.improvement(label, 128, "time-aware") > 5.0, label
    for label in ("MSD1D (dim 16)", "MSD2D (dim 16)"):
        assert res.improvement(label, 128, "time-aware") > 0.0, label
    # ...but loses on the high-demand full MSD (Fig. 4b's lock-in)
    assert res.improvement("full MSD (dim 16)", 128, "time-aware") < -3.0


def test_fig3b_scales(bench):
    res = bench(run_fig3b, n_runs=3, n_verlet_steps=200)
    for label, nodes, imps in res.rows:
        assert imps["seesaw"] > -1.0, (label, nodes)
        assert imps["power-aware"] < 0.0, (label, nodes)
    # at 1024 nodes the time-aware approach degrades severely on the
    # mixed/high-demand workloads (§VII-B3)
    assert res.improvement("all (dim 48)", 1024, "time-aware") < -5.0
    assert res.improvement("full MSD (dim 16)", 1024, "time-aware") < -5.0
