"""Figure 9 bench: overhead of the SeeSAw allocation.

We reproduce: overhead negligible relative to the interval at both
scales, absolute overhead higher at 1024 nodes (communication costs
dominate), and the stand-alone invocation pinned by RAPL's ~10 ms
reaction independent of the cap. (The paper additionally reports a
*smaller relative* overhead at 1024 nodes; under strong scaling of a
fixed problem our intervals shrink faster than the collectives grow, so
that particular ordering does not emerge — see EXPERIMENTS.md.)
"""

from repro.experiments import run_fig9


def test_fig9_overhead(bench):
    res = bench(run_fig9, n_verlet_steps=100)
    pct128, ovh128, int128 = res.relative[128]
    pct1024, ovh1024, int1024 = res.relative[1024]
    # Absolute overhead grows with node count...
    assert ovh1024 > ovh128
    # ...and stays far below 0.5 % of any interval — "light-weight
    # calculations incur negligible overhead".
    assert pct128 < 0.005
    assert pct1024 < 0.005
    # 9b: the stand-alone invocation is dominated by RAPL's ~10 ms
    # reaction and is essentially cap-independent.
    durations = list(res.absolute.values())
    assert all(0.010 <= d < 0.050 for d in durations)
    assert max(durations) - min(durations) < 0.005
