"""Fault-injector overhead gate.

ISSUE acceptance: with faults disabled the injector adds <3 % to a
DES-backed run. Two null paths are gated: no injector at all (the
default ambient), and an installed injector with an *empty* plan —
``enabled`` but not ``active``, so the engine calls ``on_advance`` on
every clock advance and the RAPL layer consults ``actuation`` on every
request, both of which must stay near-free. Timed by hand (interleaved
median-of-N) so the assertion also runs under ``--benchmark-disable``.
"""

import time

from repro.cluster.node import THETA_NODE
from repro.core import SeeSAwController
from repro.faults import FaultInjector, FaultPlan, use_faults
from repro.insitu import InsituConfig, run_insitu

ROUNDS = 7

#: ISSUE acceptance threshold plus measurement slop (see the telemetry
#: overhead gate for the rationale: short runs inherit timer jitter)
BUDGET = 0.03

RANKS = 2
CFG = InsituConfig(n_sim_ranks=RANKS, n_ana_ranks=RANKS, n_verlet_steps=10)


def _job():
    controller = SeeSAwController(2 * RANKS * 110.0, RANKS, RANKS, THETA_NODE)
    return run_insitu(CFG, controller)


def _median(xs):
    xs = sorted(xs)
    return xs[len(xs) // 2]


def _time(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def test_empty_plan_injector_overhead_under_3_percent(benchmark):
    def uninjected():
        return _time(_job)

    def injected():
        with use_faults(FaultInjector(FaultPlan())):
            return _time(_job)

    # warm both paths (imports, caches) before measuring
    uninjected()
    injected()

    base, null = [], []
    for _ in range(ROUNDS):  # interleaved: drift hits both variants
        base.append(uninjected())
        null.append(injected())

    med_base = _median(base)
    med_null = _median(null)
    spread = (max(base) - min(base)) / med_base
    overhead = med_null / med_base - 1.0
    print(
        f"\nempty-plan injector overhead: {overhead * 100:+.2f}% "
        f"(base {med_base * 1e3:.1f} ms, injected {med_null * 1e3:.1f} ms, "
        f"uninjected spread {spread * 100:.1f}%)"
    )
    assert overhead < BUDGET + spread

    benchmark.pedantic(injected, iterations=1, rounds=1, warmup_rounds=0)


def test_active_plan_stays_bounded(benchmark):
    """Sanity bound: a firing fault plan stays within 2x the baseline."""
    plan = FaultPlan.sample(5, CFG.world_size, horizon_s=4.0)

    def faulted():
        with use_faults(FaultInjector(plan)):
            return _time(_job)

    _job()  # warm
    faulted()
    base = _median([_time(_job) for _ in range(3)])
    med = _median([faulted() for _ in range(3)])
    print(
        f"\nactive-plan overhead: {med / base - 1.0:+.1%} "
        f"(base {base * 1e3:.1f} ms, faulted {med * 1e3:.1f} ms)"
    )
    # faulted runs do more virtual work (slowdowns, stalls, delays);
    # the bound only guards against pathological per-event scanning
    assert med < 2.0 * base
    benchmark.pedantic(faulted, iterations=1, rounds=1, warmup_rounds=0)
