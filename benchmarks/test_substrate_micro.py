"""Microbenchmarks of the simulation substrate itself.

Unlike the figure benches (one-shot experiment regenerations), these
time the hot paths with pytest-benchmark's normal repeated sampling, so
substrate performance regressions show up as timing changes:

* discrete-event engine throughput,
* vectorized phase execution across a 512-node partition,
* a full 128-node proxy job,
* one Verlet step of the real MD engine,
* a simulated-MPI allreduce round.
"""

import numpy as np

from repro.cluster.node import THETA_NODE
from repro.core import StaticController
from repro.des import Delay, Engine, Process
from repro.md import VelocityVerlet, water_ion_box
from repro.mpi import MpiWorld
from repro.power.execution import execute_phase
from repro.power.rapl import RaplDomainArray
from repro.workloads import JobConfig, run_job
from repro.workloads.profiles import PHASES


def test_engine_event_throughput(benchmark):
    def run():
        eng = Engine()
        for i in range(10_000):
            eng.schedule(float(i), lambda: None)
        eng.run()
        return eng.events_executed

    assert benchmark(run) == 10_000


def test_engine_cancellation_churn(benchmark):
    """Cap-change-storm shape: schedule a wave, cancel almost all of
    it, reschedule. Without compaction the heap grows with every wave
    and dead entries dominate pops; with it the run stays flat."""

    def run():
        eng = Engine()
        state = {"wave": 0}

        def storm():
            state["wave"] += 1
            handles = [
                eng.schedule(1.0 + i * 1e-6, lambda: None) for i in range(256)
            ]
            for h in handles[:-1]:
                eng.cancel(h)
            if state["wave"] < 50:
                eng.schedule(1e-3, storm)

        eng.schedule(0.0, storm)
        eng.run()
        return eng.compactions

    assert benchmark(run) > 0


def test_process_switch_throughput(benchmark):
    def run():
        eng = Engine()

        def body():
            for _ in range(2_000):
                yield Delay(0.001)

        Process(eng, body())
        eng.run()
        return eng.now

    assert benchmark(run) > 0


def test_vectorized_phase_execution_512_nodes(benchmark):
    dom = RaplDomainArray(THETA_NODE, 512, 110.0, actuation_delay_s=0.0)
    noise = np.random.default_rng(0).lognormal(0.0, 0.01, 512)

    def run():
        out = execute_phase(
            PHASES["force"], THETA_NODE, 2.0, dom, 0.0, noise_factors=noise
        )
        return out.slowest

    assert benchmark(run) > 0


def test_proxy_job_128_nodes(benchmark):
    def run():
        cfg = JobConfig(
            analyses=("full_msd",),
            dim=16,
            n_nodes=128,
            n_verlet_steps=100,
            seed=1,
        )
        ctl = StaticController(cfg.budget_w, cfg.n_sim, cfg.n_ana, THETA_NODE)
        return run_job(cfg, ctl).total_time_s

    assert benchmark(run) > 0


def test_md_verlet_step(benchmark):
    system = water_ion_box(dim=1, seed=1)
    integrator = VelocityVerlet(system, dt=0.0005, thermostat_t=1.0)
    integrator.run(5)  # settle neighbor list churn

    def run():
        return integrator.step().pair_count

    assert benchmark(run) > 0


def _force_loop_shaped_inputs(seed=7):
    """Pair indices/forces shaped like the miniature MD force loop: a
    settled water_ion_box neighbor interaction list."""
    system = water_ion_box(dim=1, seed=seed)
    integrator = VelocityVerlet(system, dt=0.0005, thermostat_t=1.0)
    integrator.run(5)
    rng = np.random.default_rng(seed)
    n_pairs = 4 * system.n_atoms  # typical pairs-per-atom of the box
    i = rng.integers(0, system.n_atoms, size=n_pairs)
    j = rng.integers(0, system.n_atoms, size=n_pairs)
    fvec = rng.normal(size=(n_pairs, 3))
    return system.n_atoms, i, j, fvec


def _add_at_reference(n, i, j, fvec):
    """The pre-optimization kernel: two np.add.at scatter passes."""
    forces = np.zeros((n, 3))
    np.add.at(forces, i, fvec)
    np.add.at(forces, j, -fvec)
    return forces


def test_scatter_add_at_reference(benchmark):
    n, i, j, fvec = _force_loop_shaped_inputs()
    forces = benchmark(_add_at_reference, n, i, j, fvec)
    assert forces.shape == (n, 3)


def test_scatter_bincount_kernel(benchmark):
    from repro.util import scatter_add_pairs

    n, i, j, fvec = _force_loop_shaped_inputs()
    forces = benchmark(scatter_add_pairs, n, i, j, fvec)
    # the bincount kernel must reproduce the add.at chain bit-for-bit
    # on the force-loop shape (both accumulate per slot in encounter
    # order); 1e-12 is the pinned ceiling, equality is the observed fact
    reference = _add_at_reference(n, i, j, fvec)
    np.testing.assert_allclose(forces, reference, rtol=0.0, atol=1e-12)
    assert np.array_equal(forces, reference)


def test_mpi_allreduce_round(benchmark):
    def run():
        eng = Engine()
        world = MpiWorld(eng, 32)

        def main(rank, comm):
            total = 0
            for _ in range(20):
                total = yield comm.allreduce(rank, rank)
            return total

        results = world.run(main)
        return results[0]

    assert benchmark(run) == sum(range(32))
