"""Telemetry overhead gate.

ISSUE acceptance: with the null sink installed, the median runtime of
a small proxy run regresses by less than 3 % against the untraced
baseline. The comparison is timed by hand (interleaved median-of-N
with ``time.perf_counter``) so the assertion also runs in CI's
``--benchmark-disable`` bench-smoke job, where pytest-benchmark's own
timer is a no-op.
"""

import time

from repro.experiments.runner import build_controller
from repro.telemetry import MemorySink, NullSink, Tracer, use_tracer
from repro.workloads import JobConfig, run_job

#: interleaved repetitions per variant; medians shrug off one-off
#: scheduler noise that a single pair of timings would inherit
ROUNDS = 7

#: ISSUE acceptance threshold plus measurement slop: the run is short
#: enough that timer jitter alone can exceed 3 %, so the gate allows
#: the regression budget on top of the observed untraced spread
BUDGET = 0.03


def _job():
    cfg = JobConfig(dim=4, n_nodes=8, n_verlet_steps=40, seed=5)
    return run_job(cfg, build_controller("seesaw", cfg))


def _median(xs):
    xs = sorted(xs)
    return xs[len(xs) // 2]


def _time(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def test_null_sink_overhead_under_3_percent(benchmark):
    def untraced():
        return _time(_job)

    def traced():
        with use_tracer(Tracer(NullSink())):
            return _time(_job)

    # warm both paths (imports, caches) before measuring
    untraced()
    traced()

    base, null = [], []
    for _ in range(ROUNDS):  # interleaved: drift hits both variants
        base.append(untraced())
        null.append(traced())

    med_base = _median(base)
    med_null = _median(null)
    spread = (max(base) - min(base)) / med_base
    overhead = med_null / med_base - 1.0
    print(
        f"\nnull-sink overhead: {overhead * 100:+.2f}% "
        f"(base {med_base * 1e3:.1f} ms, null {med_null * 1e3:.1f} ms, "
        f"untraced spread {spread * 100:.1f}%)"
    )
    assert overhead < BUDGET + spread

    # report one traced run through pytest-benchmark when enabled
    benchmark.pedantic(traced, iterations=1, rounds=1, warmup_rounds=0)


def test_memory_sink_records_without_blowup(benchmark):
    """Sanity bound: a *recording* tracer stays within 2x untraced."""
    warm = _time(_job)

    def traced():
        sink = MemorySink()
        with use_tracer(Tracer(sink)):
            dt = _time(_job)
        return dt, len(sink.records)

    traced()  # warm
    base = _median([_time(_job) for _ in range(3)])
    samples = [traced() for _ in range(3)]
    med = _median([dt for dt, _ in samples])
    n_records = samples[0][1]
    assert n_records > 0
    assert med < 2.0 * max(base, warm)
    benchmark.pedantic(
        lambda: traced()[1], iterations=1, rounds=1, warmup_rounds=0
    )
