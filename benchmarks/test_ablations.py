"""Ablation benches for the design choices DESIGN.md calls out.

Not paper figures — these probe *why* SeeSAw is built the way it is:

* **energy vs time-only feedback** (Eq. 1): the paper argues energy is
  the right metric; the ablation runs SeeSAw with ``alpha = 1/T``.
* **EWMA damping** (Eqs. 3-4): guard against noise/anomalies; the
  ablation jumps straight to each round's optimum.
* **measurement quality for the time-aware balancer**: the paper's
  central thesis is that *developer knowledge* (instrumented pre-sync
  times) beats system-level inference. Giving the GEOPM-style balancer
  a perfect, instrumented signal (no wait-attribution leak) largely
  repairs its wrong-direction failure on full MSD — evidence the
  failure is the measurement, not only the metric.
"""

import numpy as np

from repro.cluster.node import THETA_NODE
from repro.core import SeeSAwController, StaticController, TimeAwareController
from repro.power.rapl import CapMode
from repro.workloads import JobConfig, run_job
from repro.workloads import lammps_proxy


def improvement(cfg, controller):
    base = run_job(
        cfg, StaticController(cfg.budget_w, cfg.n_sim, cfg.n_ana, THETA_NODE)
    ).total_time_s
    managed = run_job(cfg, controller).total_time_s
    return 100.0 * (base - managed) / base


def seesaw(cfg, **kw):
    return SeeSAwController(cfg.budget_w, cfg.n_sim, cfg.n_ana, THETA_NODE, **kw)


def test_ablation_energy_vs_time_feedback(benchmark):
    """Energy feedback is at least as good as time-only on every
    workload, and the two *differ* where power utilization differs."""

    def run():
        out = {}
        for label, analyses, dim in (
            ("msd", ("full_msd",), 16),
            ("vacf", ("vacf",), 36),
            ("all", ("all",), 36),
        ):
            cfg = JobConfig(
                analyses=analyses,
                dim=dim,
                n_nodes=128,
                n_verlet_steps=300,
                seed=21,
            )
            out[label] = (
                improvement(cfg, seesaw(cfg)),
                improvement(cfg, seesaw(cfg, feedback="time")),
            )
        return out

    out = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    for label, (energy, time_only) in out.items():
        print(f"{label:6s} energy {energy:+6.2f}%   time-only {time_only:+6.2f}%")
        assert energy >= time_only - 1.0, label
    # on at least one workload the metrics lead to different outcomes
    assert any(abs(e - t) > 0.3 for e, t in out.values())


def test_ablation_ewma_damping_under_noise(benchmark):
    """Without the EWMA, SeeSAw chases every noisy window under the
    noisy LONG_SHORT enforcement; with it, allocations are steadier."""

    def run():
        cfg = JobConfig(
            analyses=("full_msd",),
            dim=16,
            n_nodes=128,
            n_verlet_steps=300,
            cap_mode=CapMode.LONG_SHORT,
            seed=33,
        )
        res_damped = run_job(cfg, seesaw(cfg))
        res_raw = run_job(cfg, seesaw(cfg, damping="none"))

        def churn(res):
            caps = np.array([r.sim_cap_mean_w for r in res.records[10:]])
            return float(np.abs(np.diff(caps)).mean())

        return churn(res_damped), churn(res_raw)

    churn_damped, churn_raw = benchmark.pedantic(
        run, iterations=1, rounds=1
    )
    print(f"\nallocation churn: damped {churn_damped:.3f} W/step, "
          f"raw {churn_raw:.3f} W/step")
    assert churn_damped < churn_raw


def test_ablation_time_aware_with_instrumented_signal(benchmark, monkeypatch):
    """The GEOPM-style balancer fed *instrumented* (leak-free) times
    avoids the Fig. 4b wrong-direction lock on full MSD — supporting
    the paper's developer-knowledge thesis."""

    def run():
        cfg = JobConfig(
            analyses=("full_msd",),
            dim=16,
            n_nodes=128,
            n_verlet_steps=300,
            seed=42,
        )
        ta = TimeAwareController(cfg.budget_w, cfg.n_sim, cfg.n_ana, THETA_NODE)
        imp_system = improvement(cfg, ta)

        monkeypatch.setattr(
            lammps_proxy, "attribution_leak", lambda n: (0.0, 0.0)
        )
        ta2 = TimeAwareController(cfg.budget_w, cfg.n_sim, cfg.n_ana, THETA_NODE)
        imp_instrumented = improvement(cfg, ta2)
        return imp_system, imp_instrumented

    imp_system, imp_instrumented = benchmark.pedantic(
        run, iterations=1, rounds=1
    )
    print(f"\ntime-aware on MSD: system signal {imp_system:+.2f}%, "
          f"instrumented signal {imp_instrumented:+.2f}%")
    assert imp_system < -3.0  # the paper's failure mode
    assert imp_instrumented > imp_system + 3.0  # measurement repairs it
