"""Figure 1 bench: the 200 ms power trace with the analysis idle
plateau near ~105 W."""

from repro.experiments import run_fig1


def test_fig1_power_trace(bench):
    res = bench(
        run_fig1, analyses=("vacf",), dim=16, n_nodes=128, n_verlet_steps=40
    )
    # The low-demand analysis idles at the spin-wait level between
    # synchronizations (paper: ~105 W plateaus).
    assert 95.0 < res.ana_idle_watts < 110.0
    # ...and its active level is clearly above the idle plateau.
    assert res.ana_active_watts > res.ana_idle_watts + 2.0
    # the simulation runs hot throughout
    assert res.sim_watts.mean() > res.ana_watts.mean()
