"""Figure 6 bench: SeeSAw window w x LAMMPS sync rate j at 1024 nodes.

Paper shapes (§VII-C1): allocating power frequently is favorable over
infrequent re-allocations; with rare synchronizations (large j) SeeSAw
has few chances to fix inefficient distributions, so w=1 is best
there; at j=1 a small window is fine (and guards anomalies) while a
huge window forfeits most opportunities.
"""

from repro.experiments import run_fig6


def test_fig6_sensitivity(bench):
    res = bench(
        run_fig6,
        j_values=(1, 10, 40),
        w_values=(1, 2, 5, 10, 20),
        n_runs=3,
        n_verlet_steps=400,
    )
    # Rare synchronizations: allocate at every opportunity — the
    # penalty for waiting w windows is strong and monotone.
    assert res.improvement(40, 1) > res.improvement(40, 5) + 1.0
    assert res.improvement(10, 1) > res.improvement(10, 5)
    # At j=1 a small window (w in 1..5) performs comparably...
    small = [res.improvement(1, w) for w in (1, 2, 5)]
    assert max(small) - min(small) < 1.5
    # ...while a very large window forfeits opportunities relative to
    # the best small-window setting.
    assert res.improvement(1, 20) <= max(small) + 0.3
    # SeeSAw never loses to static anywhere on the grid.
    assert all(v > -1.0 for v in res.grid.values())
