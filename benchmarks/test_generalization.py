"""Generalization bench: the paper's story on a non-Theta machine.

The controllers and workload layer consume only a machine envelope
(node power curves, interconnect, RAPL behaviour). Re-running the
core comparisons on a generic Xeon cluster — different clocks, floors,
TDP, fabric and actuation latency — checks the conclusions are not
artifacts of Theta's numbers.
"""

from repro.cluster import xeon_cluster
from repro.core import (
    PowerAwareController,
    SeeSAwController,
    StaticController,
    TimeAwareController,
)
from repro.workloads import JobConfig, run_job


def improvement(cfg, cls, **kw):
    node = cfg.machine.node
    base = run_job(
        cfg, StaticController(cfg.budget_w, cfg.n_sim, cfg.n_ana, node)
    ).total_time_s
    managed = run_job(
        cfg, cls(cfg.budget_w, cfg.n_sim, cfg.n_ana, node, **kw)
    ).total_time_s
    return 100.0 * (base - managed) / base


def test_story_holds_on_xeon_cluster(benchmark):
    def run():
        machine = xeon_cluster()
        out = {}
        for label, analyses, dim in (
            ("msd", ("full_msd",), 16),
            ("vacf", ("vacf",), 36),
        ):
            # a comparably tight budget for this envelope: ~mid-way
            # between the machine's floor (70 W) and saturation
            cfg = JobConfig(
                analyses=analyses,
                dim=dim,
                n_nodes=128,
                n_verlet_steps=300,
                seed=9,
                machine=machine,
                budget_per_node_w=80.0,
            )
            out[label] = {
                "seesaw": improvement(cfg, SeeSAwController),
                "time-aware": improvement(cfg, TimeAwareController),
                "power-aware": improvement(cfg, PowerAwareController),
            }
        return out

    out = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    for label, imps in out.items():
        print(
            f"{label:5s} "
            + "  ".join(f"{k} {v:+6.2f}%" for k, v in imps.items())
        )
    # SeeSAw positive on both workloads
    assert out["msd"]["seesaw"] > 1.0
    assert out["vacf"]["seesaw"] > 5.0
    # power-aware negative on both — the misread-waits mechanism is
    # machine-independent
    assert out["msd"]["power-aware"] < 0.0
    assert out["vacf"]["power-aware"] < 0.0
    # time-aware's wrong-direction failure on the high-demand analysis
    assert out["msd"]["time-aware"] < out["msd"]["seesaw"] - 2.0
