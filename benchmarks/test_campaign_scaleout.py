"""Campaign scale-out: work stealing must beat the FIFO/static split.

A skewed 32-cell sweep (24 light cells, 8 heavy ones submitted last —
the shape a real parameter sweep has when the big Table 1 cells come
after the smoke points) on 4 workers. The one-shot FIFO/static
baseline parks every heavy cell on the same worker's contiguous block;
the cost-model-informed work-stealing scheduler spreads them
longest-first and steals the stragglers. The ISSUE pins the advantage
at >= 1.3x; the same sweep is captured as an informational metric by
``repro.metrics.bench`` so the regression tracker graphs it over time.

Cell cost is simulated with ``time.sleep`` proportional to the spec's
Verlet steps, so the a-priori cost model ranks cells exactly as they
behave and the measured gap is pure scheduling, not compute noise.
"""

import time

from repro.campaign import CampaignEngine, CellSpec
from repro.workloads import JobConfig

N_WORKERS = 4
LIGHT_S = 0.01
HEAVY_S = 0.2
#: sleep per Verlet step; cell_units scales linearly in steps, so the
#: scheduler's cost estimates rank these cells perfectly
SLEEP_PER_STEP_S = 1e-3


def sleeping_run(spec):
    time.sleep(spec.cfg.n_verlet_steps * SLEEP_PER_STEP_S)
    return spec.cfg.seed


def skewed_specs():
    """24 light + 8 heavy cells, heavies last in submission order."""
    light = [
        CellSpec(
            "seesaw",
            JobConfig(
                analyses=("vacf",),
                n_nodes=8,
                seed=seed,
                n_verlet_steps=int(LIGHT_S / SLEEP_PER_STEP_S),
            ),
        )
        for seed in range(1, 25)
    ]
    heavy = [
        CellSpec(
            "seesaw",
            JobConfig(
                analyses=("vacf",),
                n_nodes=8,
                seed=seed,
                n_verlet_steps=int(HEAVY_S / SLEEP_PER_STEP_S),
            ),
        )
        for seed in range(25, 33)
    ]
    return light + heavy


def _sweep_wall_s(**policy) -> float:
    engine = CampaignEngine(jobs=N_WORKERS, run_fn=sleeping_run, **policy)
    try:
        engine.run_cells(skewed_specs()[:N_WORKERS])  # warm the pool
        t0 = time.perf_counter()
        results = engine.run_cells(skewed_specs())
        wall = time.perf_counter() - t0
    finally:
        engine.close()
    assert results == [s.cfg.seed for s in skewed_specs()]
    return wall


def test_work_stealing_beats_fifo_by_1_3x(benchmark):
    fifo_wall = _sweep_wall_s(
        longest_first=False, steal=False, static_chunks=True
    )
    ws_wall = [0.0]

    def ws_sweep():
        ws_wall[0] = _sweep_wall_s()

    benchmark.pedantic(ws_sweep, iterations=1, rounds=1, warmup_rounds=0)
    speedup = fifo_wall / max(ws_wall[0], 1e-9)
    print(
        f"\n[scale-out: fifo {fifo_wall:.2f}s, "
        f"work-stealing {ws_wall[0]:.2f}s, speedup {speedup:.2f}x]"
    )
    # lower bound: ideal is ~3x on this shape; 1.3x leaves headroom for
    # slow CI machines while still catching a scheduler regression
    assert speedup >= 1.3


def deceptive_run(spec):
    """Every 8th cell is 50x slower than the cost model believes."""
    time.sleep(0.25 if spec.cfg.seed % 8 == 0 else 0.005)
    return spec.cfg.seed


def test_mispredicted_costs_trigger_steals():
    """When the a-priori estimates are wrong (identical estimates,
    wildly different actual cost), idle workers must steal the stuck
    worker's queue instead of waiting it out."""
    specs = [
        CellSpec(
            "seesaw",
            JobConfig(
                analyses=("vacf",), n_nodes=8, seed=seed, n_verlet_steps=10
            ),
        )
        for seed in range(1, 33)
    ]
    engine = CampaignEngine(jobs=N_WORKERS, run_fn=deceptive_run)
    try:
        results = engine.run_cells(specs)
        stats = engine.scheduler_stats
    finally:
        engine.close()
    assert results == [s.cfg.seed for s in specs]
    assert stats is not None and stats.n_workers == N_WORKERS
    assert sum(w.cells for w in stats.workers) == 32
    assert stats.steals >= 1
    assert stats.stolen_cells >= 1
    assert stats.utilization() > 0.3
