"""The whole paper in one table: every headline claim, checked."""

from repro.experiments import run_summary


def test_reproduction_summary(bench):
    res = bench(run_summary, n_runs=3, n_verlet_steps=200)
    failures = [c.claim for c in res.claims if not c.ok]
    assert res.all_pass, f"claims missed: {failures}"
