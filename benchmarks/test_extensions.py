"""Benches for the paper's §VIII future-work features, as implemented
by this reproduction:

* hierarchical per-node allocation on heterogeneous hardware;
* cluster-level power management across concurrent jobs.

(The exploration probe's local-optimum escape is covered in
`test_ablations.py` territory: our flat SeeSAw does not exhibit the
paper's low-demand local optimum — see EXPERIMENTS.md — so here we
verify the probe machinery is at worst neutral on a standard workload.)
"""


from repro.cluster.node import THETA_NODE
from repro.cluster.noise import NoiseConfig
from repro.core import (
    ExploringSeeSAwController,
    HierarchicalSeeSAwController,
    SeeSAwController,
    StaticController,
)
from repro.sched import ClusterPowerManager
from repro.workloads import JobConfig, ProxyJobSession, run_job


def improvement(cfg, controller):
    base = run_job(
        cfg, StaticController(cfg.budget_w, cfg.n_sim, cfg.n_ana, THETA_NODE)
    ).total_time_s
    managed = run_job(cfg, controller).total_time_s
    return 100.0 * (base - managed) / base


def test_hierarchical_on_heterogeneous_nodes(benchmark):
    """With strongly heterogeneous nodes inside each partition, the
    two-level split beats the flat per-partition split; on homogeneous
    hardware the two are equivalent."""

    def run():
        hetero = NoiseConfig(node_sigma=0.12)  # ±25-30 % node speeds
        cfg_het = JobConfig(
            analyses=("full_msd",),
            dim=16,
            n_nodes=128,
            n_verlet_steps=300,
            seed=13,
            noise_config=hetero,
        )
        cfg_hom = JobConfig(
            analyses=("full_msd",),
            dim=16,
            n_nodes=128,
            n_verlet_steps=300,
            seed=13,
        )
        out = {}
        for label, cfg in (("hetero", cfg_het), ("homog", cfg_hom)):
            flat = SeeSAwController(cfg.budget_w, cfg.n_sim, cfg.n_ana, THETA_NODE)
            hier = HierarchicalSeeSAwController(
                cfg.budget_w, cfg.n_sim, cfg.n_ana, THETA_NODE
            )
            out[label] = (improvement(cfg, flat), improvement(cfg, hier))
        return out

    out = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    for label, (flat, hier) in out.items():
        print(f"{label:7s} flat {flat:+6.2f}%   hierarchical {hier:+6.2f}%")
    flat_het, hier_het = out["hetero"]
    assert hier_het > flat_het + 1.0  # slow nodes get the power they need
    flat_hom, hier_hom = out["homog"]
    assert abs(hier_hom - flat_hom) < 1.5  # reduces to flat when equal


def test_exploring_probe_is_safe(benchmark):
    """The local-optima probe must not cost performance when there is
    no local optimum to escape."""

    def run():
        cfg = JobConfig(
            analyses=("full_msd",),
            dim=16,
            n_nodes=128,
            n_verlet_steps=300,
            seed=19,
        )
        flat = improvement(
            cfg,
            SeeSAwController(cfg.budget_w, cfg.n_sim, cfg.n_ana, THETA_NODE),
        )
        probing = improvement(
            cfg,
            ExploringSeeSAwController(
                cfg.budget_w, cfg.n_sim, cfg.n_ana, THETA_NODE
            ),
        )
        return flat, probing

    flat, probing = benchmark.pedantic(run, iterations=1, rounds=1)
    print(f"\nflat {flat:+.2f}%   exploring {probing:+.2f}%")
    assert probing > flat - 1.5


def test_cluster_manager_utilization_policy(benchmark):
    """System-wide integration (§VIII): the utilization policy moves
    watts from a saturated low-demand job to a power-hungry one and
    shortens the hungry job without sinking the donor."""

    def make_jobs():
        def session(analyses, dim, seed):
            cfg = JobConfig(
                analyses=analyses,
                dim=dim,
                n_nodes=8,
                n_verlet_steps=60,
                seed=seed,
            )
            return ProxyJobSession(
                cfg,
                SeeSAwController(cfg.budget_w, cfg.n_sim, cfg.n_ana, THETA_NODE),
            )

        return {
            "compute": session(("full_msd",), 16, 5),
            "light": session(("vacf",), 8, 6),
        }

    def run():
        static = ClusterPowerManager(
            make_jobs(), machine_budget_w=140.0 * 16, policy="static"
        ).run()
        managed = ClusterPowerManager(
            make_jobs(), machine_budget_w=140.0 * 16, policy="utilization"
        ).run()
        return static, managed

    static, managed = benchmark.pedantic(run, iterations=1, rounds=1)
    gain = static.finish_time("compute") - managed.finish_time("compute")
    loss = managed.finish_time("light") - static.finish_time("light")
    print(
        f"\ncompute job: {static.finish_time('compute'):.0f}s -> "
        f"{managed.finish_time('compute'):.0f}s   "
        f"light job: {static.finish_time('light'):.0f}s -> "
        f"{managed.finish_time('light'):.0f}s"
    )
    assert gain > 0
    assert loss < gain
