"""Figure 2 bench: the worked allocation example (210 W, ~77 s)."""

import pytest

from repro.experiments import run_fig2


def test_fig2_worked_example(bench):
    res = bench(run_fig2)
    assert res.finish_time_s == pytest.approx(77.1, abs=0.2)
    assert res.blue_power_w > 90.0  # the starved task gains power
    assert res.red_power_w < 120.0
