"""Table I bench: run-to-run / job-to-job variability under cap modes."""

from repro.experiments import run_table1
from repro.power.rapl import CapMode


def test_table1_variability(bench):
    res = bench(run_table1, n_runs=7, dims=(36, 48), n_verlet_steps=200)
    for dim in (36, 48):
        run_none = res.variability(CapMode.NONE, dim, "run-to-run")
        run_long = res.variability(CapMode.LONG, dim, "run-to-run")
        run_ls = res.variability(CapMode.LONG_SHORT, dim, "run-to-run")
        # capping both windows is by far the noisiest (paper: 2.1-5.5 %
        # vs sub-1 % otherwise)
        assert run_ls > 2.0 * max(run_none, run_long)
        assert run_none < 1.5
        # job-to-job exceeds run-to-run under the paper's default cap
        job_long = res.variability(CapMode.LONG, dim, "job-to-job")
        assert job_long > run_long
