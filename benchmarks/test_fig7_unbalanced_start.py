"""Figure 7 bench: SeeSAw from unbalanced initial power splits."""

from repro.experiments import run_fig7


def test_fig7_unbalanced_start(bench):
    res = bench(run_fig7, n_runs=3, n_verlet_steps=400)
    sim_heavy = res.improvements["sim-heavy (S 120 / A 100)"]
    ana_heavy = res.improvements["ana-heavy (S 100 / A 120)"]
    equal = res.improvements["equal (S 110 / A 110)"]
    # SeeSAw recovers from either unbalanced start (paper: 28.3 % and
    # 19.2 %), with clearly larger gains than from the equal start
    # (paper: 8.9 %).
    assert sim_heavy > 4.0
    assert ana_heavy > 4.0
    assert sim_heavy > equal
    assert ana_heavy > equal
    assert equal > -1.0
