"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables/figures via the
harnesses in :mod:`repro.experiments`, asserts the paper's qualitative
shape, prints the rendered table (run with ``-s`` to see them) and
reports the regeneration time through pytest-benchmark.

Benchmarks run each harness exactly once (``pedantic`` with one round):
the harnesses are full experiments — medians of repeated simulated
jobs — not microkernels to be re-sampled.
"""

from __future__ import annotations

import pytest


def regenerate(benchmark, fn, **kwargs):
    """Run ``fn(**kwargs)`` once under the benchmark timer and return
    its result."""
    result = benchmark.pedantic(
        lambda: fn(**kwargs), iterations=1, rounds=1, warmup_rounds=0
    )
    print()
    print(result.render())
    return result


@pytest.fixture
def bench(benchmark):
    def _run(fn, **kwargs):
        return regenerate(benchmark, fn, **kwargs)

    return _run
