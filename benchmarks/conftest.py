"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables/figures via the
harnesses in :mod:`repro.experiments`, asserts the paper's qualitative
shape, prints the rendered table (run with ``-s`` to see them) and
reports the regeneration time through pytest-benchmark.

Benchmarks run each harness exactly once (``pedantic`` with one round):
the harnesses are full experiments — medians of repeated simulated
jobs — not microkernels to be re-sampled.

The harnesses submit their runs through the campaign layer
(:mod:`repro.campaign`), so the suite can optionally fan out and cache
without touching any benchmark:

* ``SEESAW_BENCH_JOBS=N``  — run each harness's cells on N workers;
* ``SEESAW_BENCH_CACHE=DIR`` — reuse cell results across invocations
  (content-addressed; a code edit invalidates the cache);
* ``SEESAW_BENCH_METRICS=PATH`` — additionally collect streaming
  metrics (see :mod:`repro.metrics`) over the in-process harness runs
  and write one merged report to PATH at session end (``.json`` →
  JSON, otherwise Prometheus text).

All unset (the default, and what CI uses) keeps the historical
serial in-process behaviour — and identical numbers either way, since
cells are deterministic and the metrics layer never perturbs a run.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.campaign import CampaignEngine, CellStore, use_engine
from repro.metrics import MetricRegistry, use_metrics


def _engine_from_env() -> CampaignEngine | None:
    jobs = int(os.environ.get("SEESAW_BENCH_JOBS", "1"))
    cache = os.environ.get("SEESAW_BENCH_CACHE")
    if jobs <= 1 and not cache:
        return None
    store = CellStore(Path(cache)) if cache else None
    return CampaignEngine(jobs=max(jobs, 1), store=store)


#: session-wide registry when SEESAW_BENCH_METRICS is set (one report
#: aggregated across every benchmark in the session)
_METRICS_REGISTRY: MetricRegistry | None = (
    MetricRegistry() if os.environ.get("SEESAW_BENCH_METRICS") else None
)


@pytest.fixture(scope="session", autouse=True)
def _write_metrics_report():
    yield
    if _METRICS_REGISTRY is not None:
        path = Path(os.environ["SEESAW_BENCH_METRICS"])
        _METRICS_REGISTRY.report().write(path)
        print(f"\n[benchmark metrics report -> {path}]")


def regenerate(benchmark, fn, **kwargs):
    """Run ``fn(**kwargs)`` once under the benchmark timer and return
    its result."""
    engine = _engine_from_env()

    def _call():
        import contextlib

        scope = (
            use_metrics(_METRICS_REGISTRY)
            if _METRICS_REGISTRY is not None
            else contextlib.nullcontext()
        )
        with scope:
            if engine is None:
                return fn(**kwargs)
            with use_engine(engine):
                return fn(**kwargs)

    try:
        result = benchmark.pedantic(
            _call, iterations=1, rounds=1, warmup_rounds=0
        )
    finally:
        if engine is not None:
            engine.close()  # tear down the warm worker pool
    print()
    print(result.render())
    return result


@pytest.fixture
def bench(benchmark):
    def _run(fn, **kwargs):
        return regenerate(benchmark, fn, **kwargs)

    return _run
