"""Figure 5 bench: allocated vs measured power at 1024 nodes."""

from repro.experiments import run_fig5


def test_fig5_scale_dynamics(bench):
    res = bench(run_fig5, n_verlet_steps=300)

    # 5a: SeeSAw allocates more power to the analysis at 1024 nodes...
    sim_cap, ana_cap = res.seesaw.settled_caps()
    assert ana_cap > sim_cap
    # ...while on 128 nodes the same workload keeps the simulation near
    # the even split (paper: 109-115 W/node).
    sim128, _ = res.seesaw_at_128.settled_caps()
    assert 100.0 < sim128 < 118.0

    # 5b: the time-aware approach locks the wrong direction (analysis
    # at δ_min), measured power sits below the allocated caps, and
    # performance degrades severely while SeeSAw improves.
    sim_t, ana_t = res.time_aware.settled_caps()
    assert ana_t < 102.0
    meas_sim = float(res.time_aware.sim_power_w[-50:].mean())
    assert meas_sim < sim_t - 5.0  # allocated power goes unused
    assert res.time_aware_time_s > res.baseline_time_s  # slowdown
    assert res.seesaw_time_s < res.baseline_time_s  # SeeSAw gains
