"""Legacy installer shim for environments without PEP 660 tooling.

``pip install -e .`` is the normal path; offline environments without
the ``wheel`` package can use ``python setup.py develop``. The console
script is declared here as well because legacy ``develop`` predates the
``[project.scripts]`` table.
"""

from setuptools import setup

setup(
    entry_points={
        "console_scripts": [
            "seesaw-experiments = repro.experiments.cli:main",
        ]
    }
)
