#!/usr/bin/env python
"""Kill-and-resume soak: repeatedly SIGKILL a journaled campaign
mid-sweep and prove ``campaign resume`` heals it.

Each iteration runs a fresh journaled campaign of the target
experiment, SIGKILLs the process as soon as the journal shows a
completed cell, resumes the journal, and asserts

* the resumed run exits 0 and the ledger reaches ``finished``;
* no previously-completed cell was recomputed (every one is served
  as a cache ``hit`` after the ``resume`` record);
* the merged experiment artifact is byte-identical to an
  uninterrupted reference run.

A campaign that wins the race and finishes before the kill lands is
counted as ``too-fast`` and does not consume an iteration's worth of
assertions; the soak fails if every iteration was too fast, since then
nothing was actually exercised.

Exits non-zero on the first violated assertion. Journals are left in
the work directory for upload as CI artifacts.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

CLI = [sys.executable, "-m", "repro.experiments.cli"]


def run_cli(*args: str, timeout: float = 600.0) -> subprocess.CompletedProcess:
    return subprocess.run(
        [*CLI, *args], capture_output=True, text=True, timeout=timeout
    )


def journal_records(path: Path) -> list[dict]:
    if not path.exists():
        return []
    records = []
    for line in path.read_text().splitlines():
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            continue  # torn tail from the kill — expected
    return records


def wait_for_done_cell(
    journal: Path, proc: subprocess.Popen, deadline_s: float
) -> bool:
    """True once a cell completed; False if the campaign finished first."""
    t0 = time.monotonic()
    while time.monotonic() - t0 < deadline_s:
        if any(
            r.get("event") == "cell" and r.get("status") == "done"
            for r in journal_records(journal)
        ):
            return proc.poll() is None
        if proc.poll() is not None:
            return False
        time.sleep(0.005)
    raise SystemExit(f"soak: no cell completed within {deadline_s:.0f}s")


def soak_once(
    it: int, experiment: str, workdir: Path, ref_bytes: bytes, jobs: int
) -> bool:
    """One kill/resume cycle; True if the kill landed mid-campaign."""
    journal = workdir / f"soak-{it}.jsonl"
    out_dir = workdir / f"soak-{it}-out"
    proc = subprocess.Popen(
        [
            *CLI,
            "run",
            experiment,
            "--quick",
            "--jobs",
            str(jobs),
            "--cache",
            str(workdir / f"soak-{it}-cache"),
            "--journal",
            str(journal),
            "--output",
            str(out_dir),
        ],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        killed = wait_for_done_cell(journal, proc, deadline_s=120.0)
    finally:
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=60)
    if not killed:
        print(f"[soak {it}] campaign finished before the kill (too fast)")
        return False

    completed_before = {
        r["key"]
        for r in journal_records(journal)
        if r.get("event") == "cell"
        and r.get("status") in ("done", "retried", "hit", "dup")
    }
    print(f"[soak {it}] killed with {len(completed_before)} cells complete")

    resumed = run_cli("campaign", "resume", str(journal), "--jobs", str(jobs))
    if resumed.returncode != 0:
        raise SystemExit(
            f"soak: resume failed (exit {resumed.returncode}):\n{resumed.stderr}"
        )

    records = journal_records(journal)
    resume_at = max(
        i for i, r in enumerate(records) if r.get("event") == "resume"
    )
    after = [r for r in records[resume_at:] if r.get("event") == "cell"]
    recomputed = [
        r["key"]
        for r in after
        if r["key"] in completed_before and r["status"] in ("done", "retried")
    ]
    if recomputed:
        raise SystemExit(f"soak: resume recomputed finished cells {recomputed}")

    artifact = out_dir / f"{experiment}.json"
    if not artifact.exists():
        raise SystemExit(f"soak: resumed campaign wrote no artifact {artifact}")
    if artifact.read_bytes() != ref_bytes:
        raise SystemExit("soak: resumed artifact differs from reference run")

    status = run_cli("campaign", "status", str(journal))
    if "finished" not in status.stdout:
        raise SystemExit(f"soak: ledger not finished after resume:\n{status.stdout}")
    print(f"[soak {it}] resume OK: zero recompute, bit-identical artifact")
    return True


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--experiment", default="table2")
    ap.add_argument("--iterations", type=int, default=5)
    ap.add_argument("--jobs", type=int, default=2)
    ap.add_argument("--workdir", type=Path, default=Path("artifacts/soak"))
    args = ap.parse_args()

    args.workdir.mkdir(parents=True, exist_ok=True)
    os.environ.setdefault("PYTHONPATH", "src")

    ref_out = args.workdir / "ref-out"
    ref = run_cli(
        "run",
        args.experiment,
        "--quick",
        "--cache",
        str(args.workdir / "ref-cache"),
        "--output",
        str(ref_out),
    )
    if ref.returncode != 0:
        raise SystemExit(f"soak: reference run failed:\n{ref.stderr}")
    ref_bytes = (ref_out / f"{args.experiment}.json").read_bytes()

    exercised = sum(
        soak_once(it, args.experiment, args.workdir, ref_bytes, args.jobs)
        for it in range(args.iterations)
    )
    if exercised == 0:
        raise SystemExit("soak: every campaign finished before the kill")
    print(f"[soak] {exercised}/{args.iterations} kill/resume cycles verified")
    return 0


if __name__ == "__main__":
    sys.exit(main())
