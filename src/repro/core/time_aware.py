"""Strictly time-aware comparator (GEOPM power-balancer style).

Paper §II: "Given a power budget and an application loop, this approach
slows down nodes which arrived at the end of the iteration first, and
speeds up the slower nodes by shifting a specific amount of power. The
rate of change in power decreases over time until a user-configured
minimum. Each node finds the median runtime of its respective ranks. A
target runtime is designated corresponding to some percentage below the
maximum median runtime of all nodes. The higher the percentage, the
more reactive the algorithm is. If there is slack power, it is
redistributed to all nodes equally."

Implementation notes:

* Invoked at **every** synchronization regardless of ``w`` (§VI-B:
  "Changing w does not have an effect, to mimic the original intended
  behavior").
* The per-node signal is the node's **epoch time** as a system-level
  tool observes it (``node_epoch_times_s`` in the measurement). Unlike
  SeeSAw's instrumented pre-synchronization times, this signal cannot
  cleanly separate application work from time spent inside MPI — the
  paper's central argument for developer knowledge (§I, §IV). The
  workload layer models that as attribution jitter on top of the work
  time.
* Nodes faster than ``(1 - reactivity) * max_median`` give up the
  current power step; the collected pool is divided among the slower
  nodes; slack (budget minus installed caps) is spread over all nodes.
* The step decays geometrically to a floor — after the decay the
  balancer cannot undo an early wrong-direction move quickly, which is
  the failure mode of Fig. 4b and Fig. 5b.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.node import NodeSpec
from repro.core.controller import PowerController
from repro.core.types import Allocation, Observation
from repro.metrics.audit import get_audit
from repro.telemetry import get_tracer
from repro.scenario.registry import register_controller

__all__ = ["TimeAwareController", "balance_caps"]


def balance_caps(
    caps: np.ndarray,
    times: np.ndarray,
    eta: float,
    reactivity: float,
    budget_w: float,
    lo: float,
    hi: float,
) -> tuple[np.ndarray, float]:
    """One time-aware balancing step as a pure function of its inputs.

    The unit the audit journal records and replays: ``eta`` is the
    (already decayed-from) power step for this invocation. Returns
    ``(new_caps, slack_w)``; ``caps`` is not mutated.
    """
    caps = caps.copy()
    target = (1.0 - reactivity) * float(times.max())
    fast = times < target
    slow = ~fast

    if np.any(fast) and np.any(slow):
        # Fast nodes give up eta (not below δ_min).
        new_fast = np.maximum(caps[fast] - eta, lo)
        pool = float(np.sum(caps[fast] - new_fast))
        caps[fast] = new_fast
        # Pool divided among the slower nodes, clamped at δ_max.
        receivers = np.where(slow)[0]
        share = pool / len(receivers)
        gained = np.minimum(caps[receivers] + share, hi) - caps[receivers]
        caps[receivers] += gained

    # Slack power: budget not currently installed is spread evenly.
    slack = budget_w - float(caps.sum())
    if slack > 1e-9:
        caps = np.minimum(caps + slack / len(caps), hi)
    return caps, slack


@register_controller("time-aware", paper=3)
class TimeAwareController(PowerController):
    """GEOPM-power-balancer-like: equalize per-node iteration times."""

    name = "time-aware"

    def __init__(
        self,
        budget_w: float,
        n_sim: int,
        n_ana: int,
        node: NodeSpec,
        step_w: float = 8.0,
        step_decay: float = 0.75,
        step_min_w: float = 0.2,
        reactivity: float = 0.15,
    ) -> None:
        """``step_w``: initial per-adjustment power shift per node.
        ``step_decay``: geometric decay per invocation. ``step_min_w``:
        the user-configured minimum rate of change. ``reactivity``: the
        percentage below the max median runtime that defines the target
        (higher = more reactive)."""
        super().__init__(budget_w, n_sim, n_ana, node)
        if step_w <= 0 or step_min_w <= 0 or not 0 < step_decay <= 1:
            raise ValueError("invalid step parameters")
        if not 0 < reactivity < 1:
            raise ValueError("reactivity must be in (0, 1)")
        self.step_w = step_w
        self.step_decay = step_decay
        self.step_min_w = step_min_w
        self.reactivity = reactivity
        self._current_step = step_w
        self._caps: np.ndarray | None = None

    # ------------------------------------------------------------------
    def initial_allocation(self) -> Allocation:
        alloc = self.even_split()
        self._caps = np.concatenate([alloc.sim_caps_w, alloc.ana_caps_w])
        self._audit_init(alloc)
        return alloc

    def observe(self, obs: Observation) -> Allocation | None:
        self._audit_observe(obs)
        # per-node arithmetic needs one entry per node: hold on
        # partial/empty measurements rather than mis-shape the caps
        if not self.guard_observation(obs, require_full_nodes=True):
            return None
        times = np.concatenate(
            [obs.sim.node_epoch_times_s, obs.ana.node_epoch_times_s]
        )
        assert self._caps is not None
        lo, hi = self.node.rapl_min_watts, self.node.tdp_watts

        eta = self._current_step
        self._current_step = max(
            self.step_min_w, self._current_step * self.step_decay
        )
        caps, slack = balance_caps(
            self._caps, times, eta, self.reactivity, self.budget_w, lo, hi
        )

        audit = get_audit()
        if audit.enabled:
            before = self._caps
            audit.record_decision(
                self.name,
                obs.step,
                before=(
                    float(before[: self.n_sim].sum()),
                    float(before[self.n_sim :].sum()),
                ),
                after=(
                    float(caps[: self.n_sim].sum()),
                    float(caps[self.n_sim :].sum()),
                ),
                inputs={
                    "caps_w": before.tolist(),
                    "times_s": times.tolist(),
                    "eta_w": eta,
                    "reactivity": self.reactivity,
                    "budget_w": self.budget_w,
                    "lo_w": lo,
                    "hi_w": hi,
                    "n_sim": self.n_sim,
                },
                after_caps={
                    "sim": caps[: self.n_sim].tolist(),
                    "ana": caps[self.n_sim :].tolist(),
                },
            )
        tracer = get_tracer()
        if tracer.enabled:
            before = self._caps
            tracer.instant(
                "core.time-aware.decision",
                cat="core",
                step=obs.step,
                before_sim_w=float(before[: self.n_sim].sum()),
                before_ana_w=float(before[self.n_sim :].sum()),
                after_sim_w=float(caps[: self.n_sim].sum()),
                after_ana_w=float(caps[self.n_sim :].sum()),
                step_w=eta,
                slack_w=max(slack, 0.0),
            )
            tracer.counter("core.reallocations", cat="core").inc()
        self._caps = caps
        return Allocation(
            sim_caps_w=caps[: self.n_sim].copy(),
            ana_caps_w=caps[self.n_sim :].copy(),
        )
