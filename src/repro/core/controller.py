"""Controller base class and the shared δ-clamping rule.

All four strategies (static, power-aware, time-aware, SeeSAw) share:

* a global power budget ``C`` for the whole job;
* partition sizes and the node hardware envelope;
* the paper's clamping rule (§IV-A, last paragraph): per-node caps are
  confined to [δ_min, δ_max]; if one partition's nodes fall below δ_min
  (or above δ_max) they are pinned there and the *other* partition
  receives the remaining power; when both bounds are violated at once,
  handling δ_max takes priority.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.cluster.node import NodeSpec
from repro.core.types import Allocation, Observation
from repro.metrics.audit import get_audit
from repro.metrics.registry import get_metrics

__all__ = ["PowerController", "clamp_partition_totals", "clamp_totals"]


def clamp_totals(
    total_sim_w: float,
    total_ana_w: float,
    n_sim: int,
    n_ana: int,
    lo: float,
    hi: float,
) -> tuple[float, float]:
    """Apply the paper's δ_min/δ_max rule to partition power totals.

    Pure primitive over explicit per-node bounds ``[lo, hi]`` — this is
    what the audit replayer re-executes. Returns adjusted
    ``(total_sim, total_ana)`` such that per-node caps lie in
    ``[lo, hi]`` wherever the budget permits. The budget
    ``total_sim + total_ana`` is preserved exactly when feasible; when
    the budget itself is outside the machine's feasible envelope the
    nearest feasible allocation is returned.
    """
    if n_sim <= 0 or n_ana <= 0:
        raise ValueError("both partitions need nodes")
    budget = total_sim_w + total_ana_w

    feasible_lo = (n_sim + n_ana) * lo
    feasible_hi = (n_sim + n_ana) * hi
    budget = min(max(budget, feasible_lo), feasible_hi)

    def clamped(total_s: float) -> tuple[float, float]:
        return total_s, budget - total_s

    total_s = total_sim_w * budget / (total_sim_w + total_ana_w)

    # δ_max first (tie priority), each side, then δ_min.
    if total_s / n_sim > hi:
        total_s = hi * n_sim
    elif (budget - total_s) / n_ana > hi:
        total_s = budget - hi * n_ana
    if total_s / n_sim < lo:
        total_s = lo * n_sim
    elif (budget - total_s) / n_ana < lo:
        total_s = budget - lo * n_ana

    # A second δ_max pass: fixing a δ_min violation can push the other
    # side above δ_max when the budget is generous.
    if total_s / n_sim > hi:
        total_s = hi * n_sim
    elif (budget - total_s) / n_ana > hi:
        total_s = budget - hi * n_ana

    return clamped(total_s)


def clamp_partition_totals(
    total_sim_w: float,
    total_ana_w: float,
    n_sim: int,
    n_ana: int,
    node: NodeSpec,
) -> tuple[float, float]:
    """δ-clamping against a node's hardware envelope (see
    :func:`clamp_totals`)."""
    return clamp_totals(
        total_sim_w,
        total_ana_w,
        n_sim,
        n_ana,
        node.rapl_min_watts,
        node.tdp_watts,
    )


class PowerController(abc.ABC):
    """Base class: owns the budget, partition shapes and clamping.

    Subclasses implement :meth:`initial_allocation` and
    :meth:`observe`. ``observe`` may return ``None`` to signal "keep
    the current caps" — the runner then skips the RAPL request (but
    still pays the controller's communication overhead, as in the
    paper's overhead accounting).
    """

    #: human-readable strategy name used in reports
    name: str = "base"

    def __init__(
        self,
        budget_w: float,
        n_sim: int,
        n_ana: int,
        node: NodeSpec,
    ) -> None:
        if budget_w <= 0:
            raise ValueError("budget must be positive")
        if n_sim <= 0 or n_ana <= 0:
            raise ValueError("both partitions need nodes")
        min_needed = (n_sim + n_ana) * node.rapl_min_watts
        if budget_w < min_needed:
            raise ValueError(
                f"budget {budget_w} W below machine minimum {min_needed} W"
            )
        self.budget_w = budget_w
        self.n_sim = n_sim
        self.n_ana = n_ana
        self.node = node

    # ------------------------------------------------------------------
    def even_split(self) -> Allocation:
        """The static baseline's allocation: budget divided equally
        across *all* nodes (each node gets the same cap)."""
        per_node = self.budget_w / (self.n_sim + self.n_ana)
        total_s, total_a = clamp_partition_totals(
            per_node * self.n_sim, per_node * self.n_ana,
            self.n_sim, self.n_ana, self.node,
        )
        return self._even_allocation(total_s, total_a)

    def _even_allocation(self, total_sim_w: float, total_ana_w: float) -> Allocation:
        """Build an Allocation with evenly divided, clamped totals."""
        total_s, total_a = clamp_partition_totals(
            total_sim_w, total_ana_w, self.n_sim, self.n_ana, self.node
        )
        return Allocation(
            sim_caps_w=np.full(self.n_sim, total_s / self.n_sim),
            ana_caps_w=np.full(self.n_ana, total_a / self.n_ana),
        )

    # ------------------------------------------------------------------
    # audit / metrics hooks (no-ops unless a journal/registry is
    # installed via use_audit()/use_metrics())

    def _audit_init(self, alloc: Allocation) -> None:
        """Record the initial allocation in the ambient audit journal."""
        audit = get_audit()
        if audit.enabled:
            audit.record_init(
                self.name,
                float(alloc.sim_caps_w.sum()),
                float(alloc.ana_caps_w.sum()),
            )

    def _audit_observe(self, obs: Observation) -> None:
        """Record one synchronization's measurement as the controller
        saw it, and feed the slack histogram."""
        audit = get_audit()
        if audit.enabled:
            audit.record_observation(self.name, obs)
        metrics = get_metrics()
        if metrics.enabled:
            metrics.histogram("core.sync.slack_s").observe(
                abs(obs.sim.work_time_s - obs.ana.work_time_s)
            )

    def guard_observation(
        self, obs: Observation, require_full_nodes: bool = False
    ) -> bool:
        """Is ``obs`` sound enough to act on? False means **hold**.

        Under fault injection an observation may arrive with zero
        measured ranks in a partition (every report dropped or aged
        out) or with partial per-node arrays. Acting on such data would
        divide by zero or mis-shape the cap vectors, so the controller
        holds instead: the caller returns ``None``, current caps stay
        installed, and — since those caps were δ-clamped when decided —
        the budget and clamping invariants keep holding for free.

        ``require_full_nodes`` is for per-node strategies (power-aware,
        time-aware, hierarchical) whose arithmetic needs one entry per
        node; partition-total strategies tolerate surviving-rank
        aggregates. A hold lands in the audit journal (kind ``hold``)
        and on the ``core.degraded_holds`` counter so resilience is
        visible in ``audit replay``; stale-but-usable observations are
        counted on ``core.stale_observations`` without holding.
        """
        reason: str | None = None
        if obs.sim.n_nodes == 0 or obs.ana.n_nodes == 0:
            reason = "empty_partition"
        elif require_full_nodes and (
            obs.sim.n_nodes != self.n_sim or obs.ana.n_nodes != self.n_ana
        ):
            reason = "partial_nodes"
        metrics = get_metrics()
        if metrics.enabled and (obs.sim_stale or obs.ana_stale):
            metrics.counter("core.stale_observations").inc()
        if reason is None:
            return True
        audit = get_audit()
        if audit.enabled:
            audit.record_hold(
                self.name,
                obs.step,
                reason,
                {
                    "sim_nodes": obs.sim.n_nodes,
                    "ana_nodes": obs.ana.n_nodes,
                    "sim_missing": obs.sim_missing,
                    "ana_missing": obs.ana_missing,
                    "sim_stale": obs.sim_stale,
                    "ana_stale": obs.ana_stale,
                },
            )
        if metrics.enabled:
            metrics.counter("core.degraded_holds").inc()
        return False

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def initial_allocation(self) -> Allocation:
        """Caps installed before the first synchronization."""

    @abc.abstractmethod
    def observe(self, obs: Observation) -> Allocation | None:
        """Digest one synchronization's measurements.

        Returns the new allocation, or ``None`` to keep current caps.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{type(self).__name__} budget={self.budget_w:.0f}W "
            f"sim={self.n_sim} ana={self.n_ana}>"
        )
