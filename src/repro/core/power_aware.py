"""Strictly power-aware comparator (SLURM-style).

Paper §II: "This approach aims to address power imbalances between
nodes by shifting excess power from nodes that are not at the power cap
to nodes that are at the power cap. The excess power is divided evenly
among nodes that require more power."

Implementation notes matching §VI-B:

* SLURM redistributes on a fixed wall-clock interval; to give the
  approach its best shot with a non-uniform workload the paper invokes
  it at synchronization points instead — so do we (the runner calls
  ``observe`` each sync).
* The paper's window ``w`` applies.
* The approach "takes action only if nodes are at the power cap,
  otherwise it assumes the application has available power" (§VII-A);
  with no node at its cap, nothing happens.

The decision inputs are *measured node powers*, which carry sensor
noise; combined with the spin-wait draw being counted into the average,
this is the mechanism behind the paper's observation that the
power-aware scheme "simply responds to potentially noisy differences in
measured power" and fluctuates (Fig. 4c).
"""

from __future__ import annotations

import numpy as np

from repro.cluster.node import NodeSpec
from repro.core.controller import PowerController
from repro.core.types import Allocation, Observation
from repro.metrics.audit import get_audit
from repro.telemetry import get_tracer
from repro.scenario.registry import register_controller

__all__ = ["PowerAwareController", "redistribute_caps"]


def redistribute_caps(
    caps: np.ndarray,
    mean_power: np.ndarray,
    lo: float,
    hi: float,
    at_cap_margin_w: float,
    reclaim_margin_w: float,
) -> tuple[np.ndarray, float, int] | None:
    """One power-aware redistribution as a pure function of its inputs.

    The unit the audit journal records and replays. Returns
    ``(new_caps, pool_w, n_receivers)`` or ``None`` when the scheme
    holds (no node at its cap, or nothing to reclaim). ``caps`` is not
    mutated.
    """
    caps = caps.copy()
    at_cap = mean_power >= caps - at_cap_margin_w
    below = ~at_cap
    if not np.any(at_cap):
        return None  # "only takes action if nodes are at the cap"
    if not np.any(below):
        return None  # nothing to reclaim

    # Reclaim headroom from under-consuming nodes (not below δ_min).
    donor_new = np.maximum(mean_power + reclaim_margin_w, lo)
    donor_new = np.minimum(donor_new, caps)  # donors never gain here
    pool = float(np.sum((caps - donor_new)[below]))
    caps[below] = donor_new[below]

    # Divide the pool evenly among nodes that require more power,
    # clamping at δ_max; whatever cannot be placed is returned
    # evenly to every node (budget conservation).
    receivers = np.where(at_cap)[0]
    share = pool / len(receivers)
    gained = np.minimum(caps[receivers] + share, hi) - caps[receivers]
    caps[receivers] += gained
    leftover = pool - float(gained.sum())
    if leftover > 1e-9:
        caps = np.minimum(caps + leftover / len(caps), hi)
    return caps, pool, int(len(receivers))


@register_controller("power-aware", paper=2)
class PowerAwareController(PowerController):
    """SLURM-like: move unused headroom to capped nodes."""

    name = "power-aware"

    def __init__(
        self,
        budget_w: float,
        n_sim: int,
        n_ana: int,
        node: NodeSpec,
        window: int = 1,
        at_cap_margin_w: float = 1.0,
        reclaim_margin_w: float = 0.0,
    ) -> None:
        """``at_cap_margin_w``: a node whose measured power is within
        this margin of its cap counts as *at the cap* (needs power).
        ``reclaim_margin_w``: headroom left on a donor node above its
        measured draw so it is not starved outright."""
        super().__init__(budget_w, n_sim, n_ana, node)
        if window < 1:
            raise ValueError("window must be >= 1")
        if at_cap_margin_w < 0 or reclaim_margin_w < 0:
            raise ValueError("margins must be non-negative")
        self.window = window
        self.at_cap_margin_w = at_cap_margin_w
        self.reclaim_margin_w = reclaim_margin_w
        self._caps: np.ndarray | None = None  # concatenated [sim, ana]
        self._power_acc: list[np.ndarray] = []

    # ------------------------------------------------------------------
    def initial_allocation(self) -> Allocation:
        alloc = self.even_split()
        self._caps = np.concatenate([alloc.sim_caps_w, alloc.ana_caps_w])
        self._audit_init(alloc)
        return alloc

    def observe(self, obs: Observation) -> Allocation | None:
        self._audit_observe(obs)
        # per-node arithmetic needs one entry per node: hold on
        # partial/empty measurements rather than mis-shape the caps
        if not self.guard_observation(obs, require_full_nodes=True):
            return None
        measured = np.concatenate([obs.sim.node_power_w, obs.ana.node_power_w])
        self._power_acc.append(measured)
        if len(self._power_acc) < self.window:
            return None
        mean_power = np.mean(self._power_acc, axis=0)
        self._power_acc.clear()

        assert self._caps is not None
        lo, hi = self.node.rapl_min_watts, self.node.tdp_watts
        decided = redistribute_caps(
            self._caps,
            mean_power,
            lo,
            hi,
            self.at_cap_margin_w,
            self.reclaim_margin_w,
        )
        if decided is None:
            return None
        caps, pool, n_receivers = decided

        audit = get_audit()
        if audit.enabled:
            before = self._caps
            audit.record_decision(
                self.name,
                obs.step,
                before=(
                    float(before[: self.n_sim].sum()),
                    float(before[self.n_sim :].sum()),
                ),
                after=(
                    float(caps[: self.n_sim].sum()),
                    float(caps[self.n_sim :].sum()),
                ),
                inputs={
                    "caps_w": before.tolist(),
                    "mean_power_w": mean_power.tolist(),
                    "lo_w": lo,
                    "hi_w": hi,
                    "at_cap_margin_w": self.at_cap_margin_w,
                    "reclaim_margin_w": self.reclaim_margin_w,
                    "n_sim": self.n_sim,
                },
                after_caps={
                    "sim": caps[: self.n_sim].tolist(),
                    "ana": caps[self.n_sim :].tolist(),
                },
            )
        tracer = get_tracer()
        if tracer.enabled:
            before = self._caps
            tracer.instant(
                "core.power-aware.decision",
                cat="core",
                step=obs.step,
                before_sim_w=float(before[: self.n_sim].sum()),
                before_ana_w=float(before[self.n_sim :].sum()),
                after_sim_w=float(caps[: self.n_sim].sum()),
                after_ana_w=float(caps[self.n_sim :].sum()),
                pool_w=pool,
                receivers=n_receivers,
            )
            tracer.counter("core.reallocations", cat="core").inc()
        self._caps = caps
        return Allocation(
            sim_caps_w=caps[: self.n_sim].copy(),
            ana_caps_w=caps[self.n_sim :].copy(),
        )
