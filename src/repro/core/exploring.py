"""Exploring SeeSAw: probe steps to escape local optima.

The paper observes (§VII-B2) that SeeSAw "may be susceptible to local
optima" — on low-demand analyses it settled at 115–117 W per simulation
node where the time-aware comparator's 120–121 W performed better — and
lists "methods to overcome local optima" as future work (§VIII).

This controller adds a simple, safe hill-climbing probe on top of the
standard SeeSAw loop:

* every ``explore_every`` allocation rounds, it perturbs the settled
  split by ``probe_w`` watts per node (alternating direction);
* it then compares the objective — the slower partition's work time,
  ``max(T_S, T_A)``, exactly the paper's ``min max`` objective — before
  and after the probe over ``probe_rounds`` synchronizations;
* an improving probe is kept (and becomes the new EWMA reference, so
  subsequent SeeSAw updates continue from there); a worsening probe is
  reverted.

Probes are bounded by the δ envelope and the budget, so the scheme
never violates the power constraint — it only trades a few
synchronizations of possibly-suboptimal allocation for the chance to
escape a plateau where the energy linearization is locally
self-consistent but globally suboptimal.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.node import NodeSpec
from repro.core.controller import clamp_partition_totals
from repro.core.seesaw import SeeSAwController
from repro.core.types import Allocation, Observation
from repro.scenario.registry import register_controller

__all__ = ["ExploringSeeSAwController"]


@register_controller("seesaw-exploring")
class ExploringSeeSAwController(SeeSAwController):
    """SeeSAw + periodic hill-climbing probes on max(T_S, T_A)."""

    name = "seesaw-exploring"

    def __init__(
        self,
        budget_w: float,
        n_sim: int,
        n_ana: int,
        node: NodeSpec,
        window: int = 1,
        sim_share: float = 0.5,
        probe_w: float = 3.0,
        explore_every: int = 12,
        probe_rounds: int = 2,
    ) -> None:
        """``probe_w``: per-node watts moved during a probe.
        ``explore_every``: allocation rounds between probes.
        ``probe_rounds``: synchronizations the probe is held and
        averaged over before judging it."""
        super().__init__(
            budget_w, n_sim, n_ana, node, window=window, sim_share=sim_share
        )
        if probe_w <= 0 or explore_every < 2 or probe_rounds < 1:
            raise ValueError("invalid exploration parameters")
        self.probe_w = probe_w
        self.explore_every = explore_every
        self.probe_rounds = probe_rounds
        self._rounds_since_probe = 0
        self._probe_direction = +1  # +1: toward simulation
        self._probe_state: dict | None = None
        #: (step, kept) log of probe outcomes for diagnostics
        self.probe_log: list[tuple[int, bool]] = []

    # ------------------------------------------------------------------
    def _objective(self, obs: Observation) -> float:
        return max(obs.sim.work_time_s, obs.ana.work_time_s)

    def _probe_allocation(self) -> tuple[float, float]:
        delta = self._probe_direction * self.probe_w
        total_s = self._prev_total_sim + delta * self.n_sim
        total_a = self._prev_total_ana - delta * self.n_sim
        return clamp_partition_totals(
            total_s, total_a, self.n_sim, self.n_ana, self.node
        )

    def observe(self, obs: Observation) -> Allocation | None:
        # a degraded observation would corrupt the probe objective
        # (work times of surviving ranks only): hold, don't sample
        if not self.guard_observation(obs):
            return None
        if self._probe_state is not None:
            state = self._probe_state
            state["samples"].append(self._objective(obs))
            if len(state["samples"]) < self.probe_rounds:
                return None  # hold the probe
            probed = float(np.mean(state["samples"]))
            keep = probed < state["baseline"]
            self.probe_log.append((obs.step, keep))
            self._probe_state = None
            self._rounds_since_probe = 0
            if keep:
                # the probe becomes the new EWMA reference; SeeSAw
                # resumes from the improved point
                self._prev_total_sim = state["totals"][0]
                self._prev_total_ana = state["totals"][1]
                return None  # caps already installed by the probe
            # revert and alternate the next probe's direction
            self._probe_direction *= -1
            total_s, total_a = state["reverted"]
            return Allocation(
                sim_caps_w=np.full(self.n_sim, total_s / self.n_sim),
                ana_caps_w=np.full(self.n_ana, total_a / self.n_ana),
            )

        baseline = self._objective(obs)
        decision = super().observe(obs)
        self._rounds_since_probe += 1
        if (
            decision is not None
            and self._rounds_since_probe >= self.explore_every
        ):
            reverted = (self._prev_total_sim, self._prev_total_ana)
            total_s, total_a = self._probe_allocation()
            if abs(total_s - reverted[0]) < 1e-9:
                # envelope already binding in this direction; flip
                self._probe_direction *= -1
                return decision
            self._probe_state = {
                "baseline": baseline,
                "totals": (total_s, total_a),
                "reverted": reverted,
                "samples": [],
            }
            return Allocation(
                sim_caps_w=np.full(self.n_sim, total_s / self.n_sim),
                ana_caps_w=np.full(self.n_ana, total_a / self.n_ana),
            )
        return decision
