"""Hierarchical SeeSAw: per-node allocation within each partition.

The paper's future-work section (§VIII) proposes: "To add support for
heterogeneous hardware within the simulation (analysis) partition,
power should be allocated through a hierarchical decision-making
process that breaks down SeeSAw's power allocation to the individual
compute units."

This controller implements that two-level scheme:

* **level 1** — the paper's partition split (Eqs. 1–4, inherited
  unchanged from :class:`SeeSAwController` semantics): how much of the
  budget each partition receives;
* **level 2** — within each partition, the total is divided across
  nodes in proportion to each node's *energy share* (per-node time ×
  per-node power), the same linearization applied one level down, with
  EWMA damping against the previous per-node split and water-filling
  against the [δ_min, δ_max] envelope.

On homogeneous hardware every node's share converges to 1/n and the
controller reduces to flat SeeSAw; with heterogeneous nodes (slow SKU,
degraded parts, bad thermal seats) the slow nodes receive more power,
lifting the partition's *slowest-rank* time that actually gates the
job. The ``hierarchical`` benchmark demonstrates the gain.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.node import NodeSpec
from repro.core.seesaw import SeeSAwController
from repro.core.types import Allocation, Observation
from repro.scenario.registry import register_controller

__all__ = ["HierarchicalSeeSAwController", "waterfill"]


def waterfill(
    targets: np.ndarray, total: float, lo: float, hi: float
) -> np.ndarray:
    """Scale ``targets`` onto ``total`` subject to per-element bounds.

    Elements are first scaled proportionally, then clamped into
    ``[lo, hi]``; the surplus/deficit is redistributed iteratively over
    the unclamped elements. If the bounds make the total infeasible,
    the nearest feasible vector is returned.
    """
    n = len(targets)
    if n == 0:
        raise ValueError("empty allocation")
    total = min(max(total, n * lo), n * hi)
    targets = np.maximum(np.asarray(targets, dtype=float), 1e-12)
    out = targets * (total / targets.sum())
    for _ in range(n):
        clipped = np.clip(out, lo, hi)
        residual = total - clipped.sum()
        if abs(residual) < 1e-9:
            return clipped
        free = (clipped > lo + 1e-12) & (clipped < hi - 1e-12)
        if residual > 0:
            free = clipped < hi - 1e-12
        else:
            free = clipped > lo + 1e-12
        if not np.any(free):
            return clipped
        out = clipped
        out[free] += residual / free.sum()
    return np.clip(out, lo, hi)


@register_controller("seesaw-hierarchical")
class HierarchicalSeeSAwController(SeeSAwController):
    """Two-level SeeSAw (partition split, then per-node split)."""

    name = "seesaw-hierarchical"

    def __init__(
        self,
        budget_w: float,
        n_sim: int,
        n_ana: int,
        node: NodeSpec,
        window: int = 1,
        sim_share: float = 0.5,
        node_ewma: float = 0.4,
        deadband: float = 0.05,
    ) -> None:
        """``node_ewma`` is the weight on the newest per-node energy
        shares (level 2 uses a fixed damping weight — the level-1
        r = P_OPT/C trick has no per-node analogue).

        ``deadband`` is the relative deviation from a perfectly even
        split below which the level-2 shares snap back to uniform:
        per-node measurement noise (~3 % epoch jitter) must not be
        chased on homogeneous hardware, where any cap spread only
        manufactures stragglers. Genuine heterogeneity (many-% node
        speed differences) clears the band immediately.
        """
        super().__init__(
            budget_w, n_sim, n_ana, node, window=window, sim_share=sim_share
        )
        if not 0.0 < node_ewma <= 1.0:
            raise ValueError("node_ewma must be in (0, 1]")
        if deadband < 0:
            raise ValueError("deadband must be non-negative")
        self.node_ewma = node_ewma
        self.deadband = deadband
        self._node_shares_sim: np.ndarray | None = None
        self._node_shares_ana: np.ndarray | None = None
        # per-node measurement accumulators over the window
        self._acc: dict[str, list[np.ndarray]] = {"sim": [], "ana": []}

    # ------------------------------------------------------------------
    def initial_allocation(self) -> Allocation:
        alloc = super().initial_allocation()
        self._node_shares_sim = np.full(self.n_sim, 1.0 / self.n_sim)
        self._node_shares_ana = np.full(self.n_ana, 1.0 / self.n_ana)
        return alloc

    def observe(self, obs: Observation) -> Allocation | None:
        # the level-2 split needs one energy sample per node: hold on
        # partial/empty measurements before touching the accumulators
        if not self.guard_observation(obs, require_full_nodes=True):
            return None
        # accumulate per-node energies for the level-2 split
        self._acc["sim"].append(
            obs.sim.node_epoch_times_s * obs.sim.node_power_w
        )
        self._acc["ana"].append(
            obs.ana.node_epoch_times_s * obs.ana.node_power_w
        )
        flat = super().observe(obs)
        if flat is None:
            return None

        sim_energy = np.mean(self._acc["sim"], axis=0)
        ana_energy = np.mean(self._acc["ana"], axis=0)
        self._acc = {"sim": [], "ana": []}

        total_sim = float(flat.sim_caps_w.sum())
        total_ana = float(flat.ana_caps_w.sum())
        self._node_shares_sim = self._update_shares(
            self._node_shares_sim, sim_energy
        )
        self._node_shares_ana = self._update_shares(
            self._node_shares_ana, ana_energy
        )
        lo, hi = self.node.rapl_min_watts, self.node.tdp_watts
        return Allocation(
            sim_caps_w=waterfill(
                self._node_shares_sim * total_sim, total_sim, lo, hi
            ),
            ana_caps_w=waterfill(
                self._node_shares_ana * total_ana, total_ana, lo, hi
            ),
        )

    def _update_shares(
        self, prev: np.ndarray, energies: np.ndarray
    ) -> np.ndarray:
        energies = np.maximum(energies, 1e-12)
        new = energies / energies.sum()
        blended = self.node_ewma * new + (1.0 - self.node_ewma) * prev
        blended = blended / blended.sum()
        n = len(blended)
        if float(np.abs(blended * n - 1.0).max()) < self.deadband:
            return np.full(n, 1.0 / n)
        return blended
