"""Static baseline: equal per-node split, never changed.

This is the paper's baseline (§VII): "The baseline equally divides the
global power budget between simulation and analysis nodes. The power
cap per node remains fixed (static) and is maintained by RAPL."

A variant with an *unbalanced* initial split supports the Figure 7
experiment (different initial power distributions).
"""

from __future__ import annotations

from repro.cluster.node import NodeSpec
from repro.core.controller import PowerController
from repro.core.types import Allocation, Observation
from repro.scenario.registry import register_controller

__all__ = ["StaticController"]


@register_controller("static", paper=1)
class StaticController(PowerController):
    """Fixed allocation for the lifetime of the job."""

    name = "static"

    def __init__(
        self,
        budget_w: float,
        n_sim: int,
        n_ana: int,
        node: NodeSpec,
        sim_share: float = 0.5,
    ) -> None:
        """``sim_share`` is the fraction of the budget given to the
        simulation partition *as a whole* when the two partitions are
        equally sized; more precisely the per-node sim:ana cap ratio is
        ``sim_share : (1 - sim_share)``. The default reproduces the
        equal split."""
        super().__init__(budget_w, n_sim, n_ana, node)
        if not 0.0 < sim_share < 1.0:
            raise ValueError("sim_share must be in (0, 1)")
        self.sim_share = sim_share

    def initial_allocation(self) -> Allocation:
        if self.sim_share == 0.5:
            alloc = self.even_split()
        else:
            # Unbalanced start (Fig. 7): per-node caps in the requested
            # ratio, scaled to exhaust the budget.
            per_sim = 2.0 * self.sim_share
            per_ana = 2.0 * (1.0 - self.sim_share)
            unit = self.budget_w / (
                per_sim * self.n_sim + per_ana * self.n_ana
            )
            alloc = self._even_allocation(
                per_sim * unit * self.n_sim, per_ana * unit * self.n_ana
            )
        self._audit_init(alloc)
        return alloc

    def observe(self, obs: Observation) -> Allocation | None:
        self._audit_observe(obs)
        # static never reallocates, but still flags degraded input so
        # holds are visible in the audit journal under faults
        self.guard_observation(obs)
        return None
