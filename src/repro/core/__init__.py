"""The paper's contribution and its comparators.

Four power-allocation strategies over a (simulation, analysis) pair:

* :class:`StaticController` — the paper's baseline (fixed equal split);
* :class:`PowerAwareController` — SLURM-style, power feedback only;
* :class:`TimeAwareController` — GEOPM-power-balancer-style, time
  feedback only;
* :class:`SeeSAwController` — the paper's contribution: energy
  (time × power) feedback with windowed averaging and EWMA damping.
"""

from repro.core.controller import PowerController, clamp_partition_totals
from repro.core.exploring import ExploringSeeSAwController
from repro.core.hierarchical import HierarchicalSeeSAwController
from repro.core.power_aware import PowerAwareController
from repro.core.seesaw import SeeSAwController, optimal_split
from repro.core.static import StaticController
from repro.core.time_aware import TimeAwareController
from repro.core.types import Allocation, Observation, PartitionMeasurement

__all__ = [
    "Allocation",
    "ExploringSeeSAwController",
    "HierarchicalSeeSAwController",
    "Observation",
    "PartitionMeasurement",
    "PowerAwareController",
    "PowerController",
    "SeeSAwController",
    "StaticController",
    "TimeAwareController",
    "clamp_partition_totals",
    "optimal_split",
]

#: Back-compat view over :mod:`repro.scenario.registry` (the classes
#: above self-register via ``@register_controller`` at definition
#: site). The non-paper entries are this reproduction's
#: implementations of the paper's §VIII future work (hierarchical
#: per-node allocation; local-optima probing).
from repro.scenario.registry import list_controllers as _list_controllers

CONTROLLERS = {
    name: info.cls for name, info in _list_controllers().items()
}
