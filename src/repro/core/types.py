"""Shared datatypes of the power-controller interface.

A controller sees one :class:`Observation` per synchronization and
returns (possibly) a new :class:`Allocation`. The measurement content
follows paper §VI-B: per-partition time is the slowest rank's time to
reach the synchronization (including the cost of the allocation
itself), power is summed over the partition's nodes; per-node arrays
are additionally provided because the power-aware (SLURM) and
time-aware (GEOPM) comparators act on individual nodes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Allocation", "Observation", "PartitionMeasurement"]


@dataclass(frozen=True)
class PartitionMeasurement:
    """What PoLiMER measured for one partition over one sync interval."""

    #: time of the slowest rank to reach the synchronization (seconds);
    #: excludes the wait for the other partition — this is the
    #: application-knowledge signal SeeSAw is built on
    work_time_s: float
    #: total energy of the partition's nodes over the interval (J),
    #: including synchronization waiting
    energy_j: float
    #: full interval duration (release to release, seconds)
    interval_s: float
    #: per-node iteration times as a system-level tool would see them
    #: (sync-inclusive epoch time with measurement/attribution jitter)
    node_epoch_times_s: np.ndarray
    #: per-node mean power over the interval (W), sensor noise included
    node_power_w: np.ndarray

    def __post_init__(self) -> None:
        if self.work_time_s < 0 or self.interval_s <= 0:
            raise ValueError("invalid measurement times")
        if len(self.node_epoch_times_s) != len(self.node_power_w):
            raise ValueError("per-node arrays must align")

    @property
    def n_nodes(self) -> int:
        return len(self.node_power_w)

    @property
    def mean_power_w(self) -> float:
        """Partition mean power over the interval (sum/nodes)."""
        return float(np.mean(self.node_power_w))

    @property
    def total_power_w(self) -> float:
        """Summed node power — the paper's partition power metric."""
        return float(np.sum(self.node_power_w))


@dataclass(frozen=True)
class Observation:
    """One synchronization's worth of feedback.

    The quality fields describe how much of the measurement actually
    arrived: under fault injection, ranks may fail to report
    (``*_missing`` — dropped or discarded as older than the manager's
    max age) or re-send an old report (``*_stale`` — aggregated, but
    flagged). A healthy run has all four at zero; controllers consult
    them via :meth:`PowerController.guard_observation`.
    """

    #: synchronization index (0-based; step 0 is outside the main loop
    #: and ignored by the runner, matching §VII-B1)
    step: int
    sim: PartitionMeasurement
    ana: PartitionMeasurement
    #: ranks whose report never made it into this observation
    sim_missing: int = 0
    ana_missing: int = 0
    #: ranks whose report was aggregated but carried an old sequence
    sim_stale: int = 0
    ana_stale: int = 0

    @property
    def degraded(self) -> bool:
        """True when any rank's measurement is missing or stale."""
        return bool(
            self.sim_missing or self.ana_missing
            or self.sim_stale or self.ana_stale
        )


@dataclass(frozen=True)
class Allocation:
    """Per-node power caps for both partitions (watts)."""

    sim_caps_w: np.ndarray
    ana_caps_w: np.ndarray

    def __post_init__(self) -> None:
        if np.any(self.sim_caps_w <= 0) or np.any(self.ana_caps_w <= 0):
            raise ValueError("caps must be positive")

    @property
    def total_w(self) -> float:
        return float(self.sim_caps_w.sum() + self.ana_caps_w.sum())

    def with_sim_total(self, total_sim_w: float, total_ana_w: float) -> "Allocation":
        """Evenly divided allocation with the given partition totals."""
        n_s, n_a = len(self.sim_caps_w), len(self.ana_caps_w)
        return Allocation(
            sim_caps_w=np.full(n_s, total_sim_w / n_s),
            ana_caps_w=np.full(n_a, total_ana_w / n_a),
        )
