"""SeeSAw: energy-feedback power allocation (paper §IV).

The algorithm, per synchronization ``i`` and allocation round ``j``
(one round per ``w`` synchronizations):

1. average the last ``w`` intervals' time and power per partition
   (window averaging — noise guard #1)::

       P_j^S = mean(p_i^S),   T_j^S = mean(t_i^S)          (paper, §IV-A)

2. approximate the time↔power relationship as linear via

       α_j^S = 1 / (T_j^S · P_j^S)                          (Eq. 1)

3. solve for the optimal split under budget ``C`` with the time-equality
   optimality condition ``T^S = T^A``::

       P_{j+1}^{OPT_S} = C · α_j^A / (α_j^S + α_j^A)        (Eq. 2)

4. damp the step with an EWMA whose weight is the optimal share::

       r_{j+1}^S = P_{j+1}^{OPT_S} / C                      (Eq. 3)
       P_{j+1}^{new_S} = r·P^{OPT_S} + (1−r)·P_prev^S       (Eq. 4)

   **Erratum note** — Eq. 4 as printed in the paper multiplies
   ``P^{OPT}`` by both ``r`` and ``(1-r)``, which degenerates to
   ``P^{OPT}`` itself. The surrounding text ("past information is
   consolidated with the present using an exponentially weighted moving
   average", "reduce the rate at which we change power") requires the
   ``(1−r)`` term to weight the *previous* allocation, which is what we
   implement. The printed form is the fixed point of ours (when
   ``P_prev == P^{OPT}`` they coincide) — ``tests/core/test_seesaw_math``
   checks both properties.

5. clamp per the δ rule and divide evenly per node (power is controlled
   per voltage plane — per node on Theta).

Derivation check for Eq. 2: the linear model says time scales as
``T' = 1/(α·P')``; imposing ``T'^S = T'^A`` with ``P'^S + P'^A = C``
gives ``α^S·P'^S = α^A·P'^A`` and hence Eq. 2. The worked example of
Figure 2 (90 W/100 s vs 120 W/60 s under 210 W → both finish at ~77 s
after moving ~3 W) falls out of these equations and is pinned by a unit
test.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.node import NodeSpec
from repro.core.controller import PowerController, clamp_totals
from repro.core.types import Allocation, Observation
from repro.metrics.audit import get_audit
from repro.telemetry import get_tracer
from repro.util.stats import RunningMean
from repro.scenario.registry import register_controller

__all__ = ["SeeSAwController", "decide_totals", "optimal_split"]


def optimal_split(
    t_sim: float, p_sim: float, t_ana: float, p_ana: float, budget_w: float
) -> tuple[float, float]:
    """Eqs. 1–2: the optimal partition power totals for the next round.

    All arguments are partition-level (total watts, slowest-rank
    seconds). Returns ``(P_opt_sim, P_opt_ana)`` with
    ``P_opt_sim + P_opt_ana == budget_w``.
    """
    if min(t_sim, p_sim, t_ana, p_ana) <= 0:
        raise ValueError("times and powers must be positive")
    alpha_s = 1.0 / (t_sim * p_sim)
    alpha_a = 1.0 / (t_ana * p_ana)
    p_opt_s = budget_w * alpha_a / (alpha_s + alpha_a)
    return p_opt_s, budget_w - p_opt_s


def decide_totals(
    t_sim_s: float,
    p_sim_w: float,
    t_ana_s: float,
    p_ana_w: float,
    budget_w: float,
    prev_sim_w: float,
    prev_ana_w: float,
    feedback: str,
    damping: str,
    n_sim: int,
    n_ana: int,
    lo_w: float,
    hi_w: float,
) -> tuple[float, float, float]:
    """One complete SeeSAw decision (Eqs. 1–4 plus the δ clamp) as a
    pure function of its inputs.

    This is the unit the audit journal records and replays: given the
    windowed measurements and the previous allocation it returns
    ``(P_opt_sim, total_sim, total_ana)`` deterministically.
    :meth:`SeeSAwController.observe` delegates here, so a recorded
    decision and its replay run the identical arithmetic.
    """
    # Eqs. 1–2 (the "time" ablation drops power from Eq. 1).
    if feedback == "energy":
        p_opt_s, p_opt_a = optimal_split(
            t_sim_s, p_sim_w, t_ana_s, p_ana_w, budget_w
        )
    else:
        p_opt_s, p_opt_a = optimal_split(t_sim_s, 1.0, t_ana_s, 1.0, budget_w)

    if damping == "ewma":
        # Eqs. 3–4 (EWMA against the previous *allocation*).
        r_s = p_opt_s / budget_w
        r_a = p_opt_a / budget_w
        new_s = r_s * p_opt_s + (1.0 - r_s) * prev_sim_w
        new_a = r_a * p_opt_a + (1.0 - r_a) * prev_ana_w
        # Budget conservation: the two EWMA steps are independent,
        # so renormalize onto the budget before clamping.
        scale = budget_w / (new_s + new_a)
        new_s *= scale
        new_a *= scale
    else:
        new_s, new_a = p_opt_s, p_opt_a

    total_s, total_a = clamp_totals(new_s, new_a, n_sim, n_ana, lo_w, hi_w)
    return p_opt_s, total_s, total_a


@register_controller("seesaw", paper=4)
class SeeSAwController(PowerController):
    """The paper's contribution: time+power (energy) feedback."""

    name = "seesaw"

    def __init__(
        self,
        budget_w: float,
        n_sim: int,
        n_ana: int,
        node: NodeSpec,
        window: int = 1,
        sim_share: float = 0.5,
        feedback: str = "energy",
        damping: str = "ewma",
    ) -> None:
        """``window`` is the paper's ``w``: reallocate every ``w``
        synchronizations, averaging measurements over the window.
        ``sim_share`` sets the initial split (0.5 = even; Fig. 7 uses
        unbalanced starts).

        ``feedback`` and ``damping`` exist for ablation studies:

        * ``feedback="time"`` replaces Eq. 1's energy linearization
          with a time-only one (``alpha = 1/T``), isolating the paper's
          claim that *energy* is the right metric;
        * ``damping="none"`` jumps straight to Eq. 2's optimum without
          the Eq. 3-4 EWMA, isolating the noise-guarding role of the
          damping.
        """
        super().__init__(budget_w, n_sim, n_ana, node)
        if window < 1:
            raise ValueError("window must be >= 1")
        if feedback not in ("energy", "time"):
            raise ValueError("feedback must be 'energy' or 'time'")
        if damping not in ("ewma", "none"):
            raise ValueError("damping must be 'ewma' or 'none'")
        self.window = window
        self.sim_share = sim_share
        self.feedback = feedback
        self.damping = damping
        self._t_sim = RunningMean()
        self._p_sim = RunningMean()
        self._t_ana = RunningMean()
        self._p_ana = RunningMean()
        self._prev_total_sim: float | None = None
        self._prev_total_ana: float | None = None
        #: history of (step, P_opt_sim, P_new_sim) for diagnostics
        self.decision_log: list[tuple[int, float, float]] = []

    # ------------------------------------------------------------------
    def initial_allocation(self) -> Allocation:
        if self.sim_share == 0.5:
            alloc = self.even_split()
        else:
            per_sim = 2.0 * self.sim_share
            per_ana = 2.0 * (1.0 - self.sim_share)
            unit = self.budget_w / (
                per_sim * self.n_sim + per_ana * self.n_ana
            )
            alloc = self._even_allocation(
                per_sim * unit * self.n_sim, per_ana * unit * self.n_ana
            )
        self._prev_total_sim = float(alloc.sim_caps_w.sum())
        self._prev_total_ana = float(alloc.ana_caps_w.sum())
        self._audit_init(alloc)
        return alloc

    def observe(self, obs: Observation) -> Allocation | None:
        self._audit_observe(obs)
        if not self.guard_observation(obs):
            return None  # degraded measurement: hold current caps
        # Accumulate this synchronization into the window.
        self._t_sim.add(obs.sim.work_time_s)
        self._p_sim.add(obs.sim.total_power_w)
        self._t_ana.add(obs.ana.work_time_s)
        self._p_ana.add(obs.ana.total_power_w)
        if self._t_sim.count < self.window:
            return None

        t_s, p_s = self._t_sim.mean, self._p_sim.mean
        t_a, p_a = self._t_ana.mean, self._p_ana.mean
        for m in (self._t_sim, self._p_sim, self._t_ana, self._p_ana):
            m.reset()

        if min(t_s, p_s, t_a, p_a) <= 0:
            return None  # degenerate measurement; hold

        assert self._prev_total_sim is not None
        assert self._prev_total_ana is not None
        lo, hi = self.node.rapl_min_watts, self.node.tdp_watts
        p_opt_s, total_s, total_a = decide_totals(
            t_s,
            p_s,
            t_a,
            p_a,
            self.budget_w,
            self._prev_total_sim,
            self._prev_total_ana,
            self.feedback,
            self.damping,
            self.n_sim,
            self.n_ana,
            lo,
            hi,
        )
        audit = get_audit()
        if audit.enabled:
            # Predicted post-decision slack from the linear model
            # T' = 1/(α·P'): each partition's predicted time under its
            # new total, using this round's α estimates (the "time"
            # ablation's α drops the measured power, exactly as Eq. 1).
            w_s = p_s if self.feedback == "energy" else 1.0
            w_a = p_a if self.feedback == "energy" else 1.0
            pred_t_s = t_s * w_s / total_s
            pred_t_a = t_a * w_a / total_a
            audit.record_decision(
                self.name,
                obs.step,
                before=(self._prev_total_sim, self._prev_total_ana),
                after=(total_s, total_a),
                inputs={
                    "t_sim_s": t_s,
                    "p_sim_w": p_s,
                    "t_ana_s": t_a,
                    "p_ana_w": p_a,
                    "budget_w": self.budget_w,
                    "prev_sim_w": self._prev_total_sim,
                    "prev_ana_w": self._prev_total_ana,
                    "feedback": self.feedback,
                    "damping": self.damping,
                    "n_sim": self.n_sim,
                    "n_ana": self.n_ana,
                    "lo_w": lo,
                    "hi_w": hi,
                },
                predicted_slack_s=abs(pred_t_s - pred_t_a),
            )
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(
                "core.seesaw.decision",
                cat="core",
                step=obs.step,
                before_sim_w=self._prev_total_sim,
                before_ana_w=self._prev_total_ana,
                opt_sim_w=p_opt_s,
                after_sim_w=total_s,
                after_ana_w=total_a,
            )
            tracer.counter("core.reallocations", cat="core").inc()
        self._prev_total_sim = total_s
        self._prev_total_ana = total_a
        self.decision_log.append((obs.step, p_opt_s, total_s))
        return Allocation(
            sim_caps_w=np.full(self.n_sim, total_s / self.n_sim),
            ana_caps_w=np.full(self.n_ana, total_a / self.n_ana),
        )
