"""C-flavoured convenience API mirroring the paper's instrumentation.

The paper shows LAMMPS instrumented with exactly two calls (§VI-C)::

    poli_init_power_manager(universe->uworld, universe->me,
                            master, power_cap);
    ...
    poli_power_alloc();
    // synchronization

This module provides the same two-call surface for simulated ranks. A
rank generator writes::

    pm = poli_init_power_manager(engine, world, rank, master, cap, node,
                                 controller=ctl_if_rank0)
    yield from pm.initialize()
    ...
    yield from poli_power_alloc(pm)
    # synchronization

which is deliberately the same two-line burden the paper claims.
"""

from __future__ import annotations

from repro.cluster.node import NodeSpec
from repro.core.controller import PowerController
from repro.des.engine import Engine
from repro.mpi.comm import Communicator
from repro.polimer.manager import PowerManager
from repro.polimer.noderuntime import NodeRuntime
from repro.power.rapl import CapMode

__all__ = ["poli_init_power_manager", "poli_power_alloc"]


def poli_init_power_manager(
    engine: Engine,
    world: Communicator,
    rank: int,
    master: int,
    power_cap_w: float,
    node: NodeSpec,
    controller: PowerController | None = None,
    cap_mode: CapMode = CapMode.LONG,
    **manager_kwargs,
) -> PowerManager:
    """Create the rank's power manager (call ``initialize`` next).

    Argument order mirrors the paper's C signature: communicator, rank,
    master flag (0 = simulation, 1 = analysis), initial per-node cap.
    """
    if master not in (0, 1):
        raise ValueError("master must be 0 (simulation) or 1 (analysis)")
    runtime = NodeRuntime(engine, node, power_cap_w, cap_mode=cap_mode)
    return PowerManager(
        engine,
        world,
        rank,
        master,
        runtime,
        controller=controller,
        **manager_kwargs,
    )


def poli_power_alloc(manager: PowerManager):
    """The pre-synchronization allocation call (a generator to yield
    from)."""
    return manager.power_alloc()
