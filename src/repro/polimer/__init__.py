"""PoLiMER: application-level power monitoring and capping (ref [41]).

The layer between the controllers (:mod:`repro.core`) and the machine
(:mod:`repro.power`, :mod:`repro.mpi`): per-node runtimes, the
distributed measure→decide→actuate collective, and the two-call
instrumentation API of the paper.
"""

from repro.polimer.api import poli_init_power_manager, poli_power_alloc
from repro.polimer.manager import PowerManager
from repro.polimer.noderuntime import NodeRuntime

__all__ = [
    "NodeRuntime",
    "PowerManager",
    "poli_init_power_manager",
    "poli_power_alloc",
]
