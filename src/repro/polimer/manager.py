"""PoLiMER power manager: the distributed measurement/actuation loop.

PoLiMER (paper ref [41], extended in §VI-B) monitors power and time for
a distributed MPI application and applies caps via RAPL. Its in-situ
extension needs exactly two pieces of developer knowledge (§IV-B):

1. process identity — simulation or analysis (``master`` flag, exactly
   as in the paper's ``poli_init_power_manager`` snippet);
2. a call *before* each synchronization (``poli_power_alloc``).

One :class:`PowerManager` lives on every rank. ``initialize`` splits
the world communicator into partition sub-communicators (the paper's
in-situ frameworks already organize processes this way) and installs
the controller's initial allocation. ``power_alloc`` is the
measurement + decision + actuation collective:

* each rank reports (partition, work time since last release, energy
  counter, epoch time) — work time is measured at *arrival*, i.e.
  before any waiting, which is the instrumentation advantage SeeSAw
  exploits;
* world rank 0 runs the controller and broadcasts the allocation;
* every rank requests its own node's new cap (10 ms actuation applies).

The allgather/bcast pair is also what the paper's overhead figure
(Fig. 9) measures — its cost comes from the communicator's cost model
and is therefore part of every interval, exactly as in the paper
("overhead of allocating power itself is incorporated in the time and
power measurements").
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.controller import PowerController
from repro.core.types import Allocation, Observation, PartitionMeasurement
from repro.des.engine import Engine
from repro.faults.injector import get_faults
from repro.metrics.registry import get_metrics
from repro.mpi.comm import Communicator
from repro.polimer.noderuntime import NodeRuntime
from repro.telemetry import get_tracer
from repro.util.rng import RngStream

__all__ = ["PowerManager"]

#: fractional sigma of the epoch-time attribution jitter a system-level
#: (uninstrumented) observer suffers; see DESIGN.md §5 and the
#: time-aware controller's docstring
EPOCH_JITTER_SIGMA = 0.03


@dataclass
class _RankReport:
    master: int
    part_rank: int
    work_time_s: float
    epoch_time_s: float
    energy_j: float
    power_w: float
    #: sender's sync counter when the report was *measured*; rank 0
    #: compares it to the current sync index to detect stale re-sends
    seq: int = 0
    #: False when the report was lost in transit (measurement dropout)
    valid: bool = True


class PowerManager:
    """Per-rank handle to the distributed power-management protocol."""

    def __init__(
        self,
        engine: Engine,
        world: Communicator,
        rank: int,
        master: int,
        node_runtime: NodeRuntime,
        controller: PowerController | None = None,
        sensor_sigma_w: float = 1.5,
        epoch_jitter_sigma: float = EPOCH_JITTER_SIGMA,
        rng: RngStream | None = None,
        stale_max_age: int = 2,
    ) -> None:
        """``controller`` must be provided on world rank 0 and only
        there (it is the decision-maker; everyone else follows the
        broadcast)."""
        if (controller is not None) != (rank == 0):
            raise ValueError("exactly world rank 0 carries the controller")
        self.engine = engine
        self.world = world
        self.rank = rank
        self.master = master
        self.node = node_runtime
        self.controller = controller
        self.part_comm: Communicator | None = None
        self.part_rank: int | None = None
        self._rng = (rng if rng is not None else RngStream(1234 + rank)).child(
            f"polimer{rank}"
        )
        self._sensor_sigma_w = sensor_sigma_w
        self._epoch_jitter_sigma = epoch_jitter_sigma
        #: reports older than this many syncs are discarded as missing
        self.stale_max_age = stale_max_age
        #: last report this rank put on the wire (re-sent under a
        #: stale-measurement fault: a stuck monitor daemon)
        self._prev_report: _RankReport | None = None
        self._last_release = engine.now
        self._last_entry_t = engine.now
        self._last_entry_e = node_runtime.energy_counter_j()
        self._sync_index = 0
        # one trace lane per rank; lane 0 belongs to the engine
        self._trace_tid = rank + 1
        self._syncs_seen = 0  # per-rank (rank 0's _sync_index is global)
        node_runtime.trace_tid = self._trace_tid
        node_runtime.fault_rank = rank
        faults = get_faults()
        self._faults = faults if faults.enabled and faults.active else None
        tracer = get_tracer()
        self._tracer = tracer if tracer.enabled else None
        metrics = get_metrics()
        self._metrics = metrics if metrics.enabled else None
        if self._tracer is not None:
            part = "sim" if master == 0 else "ana"
            self._tracer.name_thread(self._trace_tid, f"{part} rank {rank}")
        #: allocation history (world rank 0 only): (step, Allocation)
        self.allocation_log: list[tuple[int, Allocation]] = []
        #: per-sync observations (world rank 0 only)
        self.observation_log: list[Observation] = []

    # ------------------------------------------------------------------
    def initialize(self):
        """Collective: split partition communicators, install initial caps.

        Mirrors ``poli_init_power_manager(comm, rank, master, cap)``.
        """
        self.part_comm = yield self.world.split(
            self.rank, color=self.master, key=self.rank
        )
        self.part_rank = self.part_comm.translate_world_rank(self.rank)
        if self.rank == 0:
            alloc = self.controller.initial_allocation()
            payload = (alloc.sim_caps_w, alloc.ana_caps_w)
        else:
            payload = None
        sim_caps, ana_caps = yield self.world.bcast(self.rank, payload, root=0)
        self.node.request_cap(self._my_cap(sim_caps, ana_caps))
        self._reset_interval()

    def _my_cap(self, sim_caps: np.ndarray, ana_caps: np.ndarray) -> float:
        caps = sim_caps if self.master == 0 else ana_caps
        return float(caps[self.part_rank])

    def _reset_interval(self) -> None:
        self._last_release = self.engine.now
        self._last_entry_t = self.engine.now
        self._last_entry_e = self.node.energy_counter_j()

    # ------------------------------------------------------------------
    def power_alloc(self):
        """Collective: measure, decide, actuate (``poli_power_alloc``).

        Call exactly once per synchronization, immediately *before* the
        simulation↔analysis exchange.
        """
        now = self.engine.now
        work_time = now - self._last_release
        epoch_time = now - self._last_entry_t
        # the span opens at *arrival* and closes at the bcast release:
        # exactly the sync-point wait SeeSAw's instrumentation excludes
        # from its work-time signal
        self._syncs_seen += 1
        span = (
            self._tracer.begin(
                "insitu.sync_wait",
                cat="insitu",
                tid=self._trace_tid,
                sync=self._syncs_seen,
                work_time_s=work_time,
            )
            if self._tracer is not None
            else None
        )
        energy = self.node.energy_counter_j()
        interval = max(now - self._last_entry_t, 1e-12)
        power = (energy - self._last_entry_e) / interval
        power += float(self._rng.normal(0.0, self._sensor_sigma_w))
        epoch_observed = epoch_time * float(
            self._rng.lognormal(0.0, self._epoch_jitter_sigma)
        )
        report = _RankReport(
            master=self.master,
            part_rank=self.part_rank,
            work_time_s=work_time,
            epoch_time_s=epoch_observed,
            energy_j=energy - self._last_entry_e,
            power_w=max(power, 1.0),
            seq=self._syncs_seen,
        )
        if self._faults is not None:
            meas_fault = self._faults.measurement(now, self.rank)
            if meas_fault is not None:
                fault_kind, magnitude = meas_fault
                if fault_kind == "meas_drop":
                    # lost in transit: the local measurement is fine,
                    # so future stale re-sends start from it
                    self._prev_report = report
                    report = replace(report, valid=False)
                elif fault_kind == "meas_stale":
                    # stuck monitor daemon: re-send the previous wire
                    # report; its seq keeps aging until discarded
                    if self._prev_report is not None:
                        report = self._prev_report
                elif fault_kind == "meas_garble":
                    report = replace(
                        report, power_w=max(report.power_w * magnitude, 1.0)
                    )
        if report.valid:
            self._prev_report = report
        reports = yield self.world.allgather(self.rank, report)

        payload = None
        if self.rank == 0:
            self._sync_index += 1
            obs = self._build_observation(reports)
            self.observation_log.append(obs)
            alloc = self.controller.observe(obs)
            if alloc is not None:
                self.allocation_log.append((self._sync_index, alloc))
                payload = (alloc.sim_caps_w, alloc.ana_caps_w)
        result = yield self.world.bcast(self.rank, payload, root=0)
        if result is not None:
            sim_caps, ana_caps = result
            self.node.request_cap(self._my_cap(sim_caps, ana_caps))
        if span is not None:
            span.end(wait_s=self.engine.now - now)
            self._tracer.counter("insitu.sync_waits", cat="insitu").inc()
        if self._metrics is not None:
            self._metrics.counter("insitu.sync_waits").inc()
            self._metrics.histogram("insitu.sync_wait_s").observe(
                max(self.engine.now - now, 0.0)
            )
            part = "sim" if self.master == 0 else "ana"
            self._metrics.histogram(f"insitu.{part}.work_s").observe(work_time)
        # measurement interval restarts at the release of the bcast
        self._last_release = self.engine.now
        self._last_entry_t = self.engine.now
        self._last_entry_e = self.node.energy_counter_j()

    # ------------------------------------------------------------------
    def _build_observation(self, reports: list[_RankReport]) -> Observation:
        """Aggregate per-rank reports into one :class:`Observation`.

        Under fault injection some reports may be invalid (dropped) or
        carry an old sequence number. Aggregation runs over the
        *surviving* reports — valid and no older than
        :attr:`stale_max_age` syncs — and the observation carries
        missing/stale counts so the controller can decide whether the
        remainder is sound enough to act on.
        """

        def build(master: int) -> tuple[PartitionMeasurement, int, int]:
            rs = sorted(
                (r for r in reports if r.master == master),
                key=lambda r: r.part_rank,
            )
            live = [
                r
                for r in rs
                if r.valid and (self._sync_index - r.seq) <= self.stale_max_age
            ]
            missing = len(rs) - len(live)
            stale = sum(1 for r in live if r.seq < self._sync_index)
            if not live:
                # every rank of the partition went dark this sync: a
                # degenerate, explicitly-empty measurement (controllers
                # hold on it rather than divide by zero)
                return (
                    PartitionMeasurement(
                        work_time_s=0.0,
                        energy_j=0.0,
                        interval_s=1e-9,
                        node_epoch_times_s=np.zeros(0),
                        node_power_w=np.zeros(0),
                    ),
                    missing,
                    stale,
                )
            work = max(r.work_time_s for r in live)
            interval = max(max(r.epoch_time_s for r in live), 1e-12)
            return (
                PartitionMeasurement(
                    work_time_s=work,
                    energy_j=sum(r.energy_j for r in live),
                    interval_s=interval,
                    node_epoch_times_s=np.array(
                        [r.epoch_time_s for r in live]
                    ),
                    node_power_w=np.array([r.power_w for r in live]),
                ),
                missing,
                stale,
            )

        sim, sim_missing, sim_stale = build(0)
        ana, ana_missing, ana_stale = build(1)
        return Observation(
            step=self._sync_index,
            sim=sim,
            ana=ana,
            sim_missing=sim_missing,
            ana_missing=ana_missing,
            sim_stale=sim_stale,
            ana_stale=ana_stale,
        )
