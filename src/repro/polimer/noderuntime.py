"""Per-rank node runtime: compute execution and energy accounting.

Binds one simulated MPI rank to one node's power domain (the paper's
deployment: power is controlled per node, one PoLiMER monitor rank per
node). Provides:

* :meth:`NodeRuntime.compute` — an awaitable that advances virtual time
  by the duration of ``work`` seconds-at-base-frequency of a given
  phase kind under the node's current RAPL cap;
* a RAPL-style monotone **energy counter**: compute energy is
  integrated exactly by the phase executor; the gaps between compute
  phases (MPI waits, synchronization) are charged at the spin-wait
  draw, clipped by the cap, when the counter is read.
"""

from __future__ import annotations

from repro.cluster.node import NodeSpec
from repro.des.engine import Engine
from repro.faults.injector import get_faults
from repro.metrics.registry import get_metrics
from repro.power.execution import execute_phase
from repro.power.model import PhaseKind
from repro.power.rapl import CapMode, RaplDomainArray
from repro.telemetry import get_tracer

__all__ = ["NodeRuntime"]


class _ComputeAwaitable:
    """Awaitable executing one compute phase on a node runtime.

    Module-level (instead of a per-call class definition) because
    ``compute`` sits on the per-step hot path of every rank.
    """

    __slots__ = ("runtime", "kind", "work_s", "noise")

    def __init__(self, runtime: "NodeRuntime", kind, work_s: float, noise):
        self.runtime = runtime
        self.kind = kind
        self.work_s = work_s
        self.noise = noise

    def __sim_await__(self, process):
        runtime = self.runtime
        kind = self.kind
        now = runtime.engine.now
        noise = self.noise
        stall = 0.0
        faults = runtime._faults
        if faults is not None:
            # straggler: multiplies effective work like OS noise does;
            # outage: the phase cannot start until the node respawns —
            # the stall gap is charged at the wait draw by the energy
            # counter, like any other idle gap
            noise = noise * faults.slowdown_factor(now, runtime.fault_rank)
            stall = faults.outage_extra(now, runtime.fault_rank)
        outcome = execute_phase(
            kind,
            runtime.node,
            self.work_s,
            runtime.domain,
            t_start=now + stall,
            noise_factors=noise,
        )
        duration = outcome.slowest
        energy_j = float(outcome.energy_joules[0])
        runtime._compute_energy_j += energy_j
        runtime._busy_s += duration
        runtime._counter_cache = None  # energy advanced: invalidate
        tracer = runtime._tracer
        if tracer is not None:
            cap_w = runtime.current_cap_w
            limited = cap_w < float(
                kind.demand(runtime.node, runtime.node.f_turbo)
            )
            tracer.complete(
                f"phase.{kind.name}",
                duration,
                cat="power",
                tid=runtime.trace_tid,
                ts=now + stall,
                energy_j=energy_j,
                cap_w=cap_w,
                limited=limited,
            )
            if limited:
                tracer.counter("power.limited_phases", cat="power").inc()
        metrics = runtime._metrics
        if metrics is not None:
            metrics.histogram(f"phase.{kind.name}.s").observe(duration)
            metrics.histogram(f"phase.{kind.name}.energy_j").observe(energy_j)
        runtime.engine.schedule(
            stall + duration, lambda: process._advance(stall + duration)
        )


class NodeRuntime:
    """One node's execution/power state in the per-rank DES world."""

    def __init__(
        self,
        engine: Engine,
        node: NodeSpec,
        initial_cap_w: float,
        cap_mode: CapMode = CapMode.LONG,
        actuation_delay_s: float = 0.010,
    ) -> None:
        self.engine = engine
        self.node = node
        self.domain = RaplDomainArray(
            node,
            1,
            initial_cap_w,
            mode=cap_mode,
            actuation_delay_s=actuation_delay_s,
        )
        self._compute_energy_j = 0.0
        self._busy_s = 0.0
        self._created_at = engine.now
        #: memoized (now, cap_w, value) of the last energy_counter_j()
        #: read — the polimer manager reads the counter several times
        #: per synchronization at the same instant. Invalidated on
        #: clock advance, cap change (both via the key) and on every
        #: compute-energy update (explicitly, since those can land
        #: without the clock moving).
        self._counter_cache: tuple[float, float, float] | None = None
        #: trace lane for this node's phase spans (rank + 1; 0 = engine)
        self.trace_tid = 0
        #: world rank this node hosts, for rank-targeted fault windows;
        #: set by the PowerManager (None = matches all-rank faults only)
        self.fault_rank: int | None = None
        tracer = get_tracer()
        self._tracer = tracer if tracer.enabled else None
        metrics = get_metrics()
        self._metrics = metrics if metrics.enabled else None
        faults = get_faults()
        self._faults = faults if faults.enabled and faults.active else None

    # ------------------------------------------------------------------
    def compute(self, kind: PhaseKind, work_s: float, noise: float = 1.0):
        """Awaitable executing ``work_s`` of ``kind`` on this node.

        Usage inside a rank generator::

            yield node.compute(FORCE, 0.8)
        """
        return _ComputeAwaitable(self, kind, work_s, noise)

    # ------------------------------------------------------------------
    @property
    def current_cap_w(self) -> float:
        caps, _ = self.domain.segment_at(self.engine.now)
        return float(caps[0])

    def request_cap(self, cap_w: float) -> None:
        """Request a new cap, effective after the actuation delay."""
        self.domain.request_caps(
            cap_w, now=self.engine.now, fault_rank=self.fault_rank
        )

    def energy_counter_j(self) -> float:
        """Monotone cumulative energy, RAPL-counter style.

        Idle/wait gaps up to "now" are charged at ``min(p_wait, cap)``.
        Reads at an unchanged (clock, cap) point are served from the
        memoized last value; compute completions invalidate it.
        """
        now = self.engine.now
        cap = self.current_cap_w
        cached = self._counter_cache
        if cached is not None and cached[0] == now and cached[1] == cap:
            return cached[2]
        gap = (now - self._created_at) - self._busy_s
        gap = max(gap, 0.0)
        wait_draw = min(self.node.p_wait_watts, cap)
        value = self._compute_energy_j + gap * wait_draw
        self._counter_cache = (now, cap, value)
        return value

    def mean_power_w(self, t0: float, e0_j: float) -> float:
        """Average power since a previous counter reading at ``t0``."""
        now = self.engine.now
        if now <= t0:
            return min(self.node.p_wait_watts, self.current_cap_w)
        return (self.energy_counter_j() - e0_j) / (now - t0)
