"""Self-contained HTML rendering for ``campaign report --format html``.

One static page, zero external assets (no scripts, no CSS/font CDNs,
no image files): styles are inlined and every figure is an inline SVG
built from the :class:`~repro.obs.report.AttributionReport`, so the
file can be archived next to the campaign journal, attached to CI as
an artifact, or opened from a USB stick on an air-gapped cluster and
render identically.

Figures: per-category energy/wall summary table, horizontal energy
bars by phase, and one timeline SVG per simulated run — a row per
rank, phase spans colored by attribution category, controller decision
instants as vertical rules — the visual form of the paper's
per-decision-interval accounting. Runs with more spans than
:data:`RASTERIZE_ABOVE` are rasterized into pixel-column runs, which
bounds the page by the pixel area of its timelines rather than by
campaign length (the per-run caption notes the switch).
"""

from __future__ import annotations

import html as _html

from repro.obs.report import AttributionReport, category_of

__all__ = ["render_html"]

#: attribution category -> fill color (colorblind-safe-ish palette)
CATEGORY_COLORS = {
    "md": "#4477aa",
    "analysis": "#ee6677",
    "sync_wait": "#ccbb44",
    "cap_actuation": "#aa3377",
}
_FALLBACK_COLOR = "#8899aa"

#: spans per run above which timeline lanes are rasterized into
#: pixel-column runs (dominant category per column) instead of one
#: rect per span — a long campaign would otherwise emit hundreds of
#: megabytes of SVG; the rendered pixels are nearly identical either
#: way, and the page notes the switch so the cap is never silent
RASTERIZE_ABOVE = 2000

#: rasterized column width in px: wider columns merge the rapid
#: md/sync alternation that would otherwise defeat run-merging and
#: keep one rect per visible block rather than per pixel
RASTER_COL_PX = 4

_STYLE = """
body { font-family: system-ui, sans-serif; margin: 2rem auto;
       max-width: 70rem; color: #222; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; }
th, td { padding: 0.3rem 0.8rem; border-bottom: 1px solid #ddd;
         text-align: right; }
th:first-child, td:first-child { text-align: left; }
.legend span { display: inline-block; margin-right: 1.2rem; }
.swatch { display: inline-block; width: 0.8em; height: 0.8em;
          margin-right: 0.3em; vertical-align: baseline; }
svg { background: #fafafa; border: 1px solid #ddd; margin: 0.4rem 0; }
.meta { color: #666; font-size: 0.9rem; }
"""


def _esc(text) -> str:
    return _html.escape(str(text), quote=True)


def _color(cat: str) -> str:
    return CATEGORY_COLORS.get(cat, _FALLBACK_COLOR)


def _category_table(report: AttributionReport) -> str:
    total_j = report.total_energy_j or 1.0
    rows = []
    for cat, bucket in sorted(report.by_category.items()):
        rows.append(
            "<tr><td><span class='swatch' style='background:"
            f"{_color(cat)}'></span>{_esc(cat)}</td>"
            f"<td>{bucket['energy_j']:.3f}</td>"
            f"<td>{bucket['energy_j'] / total_j * 100:.1f}%</td>"
            f"<td>{bucket['wall_s']:.3f}</td>"
            f"<td>{bucket['count']}</td></tr>"
        )
    return (
        "<table><tr><th>category</th><th>energy (J)</th><th>share</th>"
        "<th>wall (s)</th><th>records</th></tr>"
        + "".join(rows)
        + "</table>"
    )


def _phase_bars(report: AttributionReport, width: int = 640) -> str:
    """Horizontal energy-by-phase bars as one inline SVG."""
    phases = sorted(
        report.by_phase.items(), key=lambda kv: -kv[1]["energy_j"]
    )
    if not phases:
        return "<p class='meta'>no phase records</p>"
    peak = max(b["energy_j"] for _, b in phases) or 1.0
    row_h, label_w = 22, 170
    height = row_h * len(phases) + 10
    parts = [
        f"<svg viewBox='0 0 {width} {height}' width='{width}'"
        f" height='{height}' role='img'>"
    ]
    for i, (name, bucket) in enumerate(phases):
        y = 5 + i * row_h
        bar_w = (bucket["energy_j"] / peak) * (width - label_w - 90)
        fill = _color(category_of(name) or "")
        parts.append(
            f"<text x='{label_w - 6}' y='{y + 14}' text-anchor='end'"
            f" font-size='12'>{_esc(name)}</text>"
            f"<rect x='{label_w}' y='{y + 3}' width='{max(bar_w, 1):.1f}'"
            f" height='{row_h - 8}' fill='{fill}'/>"
            f"<text x='{label_w + max(bar_w, 1) + 6:.1f}' y='{y + 14}'"
            f" font-size='11' fill='#555'>{bucket['energy_j']:.3f} J</text>"
        )
    parts.append("</svg>")
    return "".join(parts)


def _raster_lane(
    lane_events: list[dict], t0: float, span: float, ncols: int
) -> list[list]:
    """Merge one rank lane into ``[col0, col1, category]`` pixel runs.

    Each span votes its duration into the pixel columns it overlaps;
    a column shows its duration-dominant category, and consecutive
    same-category columns collapse into one rect.
    """
    weight: list[dict[str, float]] = [{} for _ in range(ncols)]
    for ev in lane_events:
        c0 = int((ev["ts"] - t0) / span * ncols)
        c1 = int((ev["ts"] + ev["dur"] - t0) / span * ncols)
        lo, hi = max(c0, 0), min(c1, ncols - 1)
        if hi < lo:
            continue
        vote = ev["dur"] / (hi - lo + 1)
        for col in range(lo, hi + 1):
            weight[col][ev["cat"]] = weight[col].get(ev["cat"], 0.0) + vote
    runs: list[list] = []
    for col, votes in enumerate(weight):
        if not votes:
            continue
        cat = max(votes, key=lambda c: votes[c])
        if runs and runs[-1][1] == col - 1 and runs[-1][2] == cat:
            runs[-1][1] = col
        else:
            runs.append([col, col, cat])
    return runs


def _run_timeline(run: dict, events: list[dict], cuts: list[float], width: int = 900) -> str:
    """One run's timeline: a row per rank, spans colored by category."""
    t0, t1 = run["t0"], max(run["t1"], run["t0"] + 1e-9)
    span = t1 - t0
    ranks = sorted({ev["rank"] for ev in events if ev["rank"] is not None})
    lanes = {rank: i for i, rank in enumerate(ranks)}
    row_h, label_w, pad = 18, 60, 4
    height = row_h * max(len(ranks), 1) + 2 * pad + 14
    plot_w = width - label_w - 10

    def x(t: float) -> float:
        return label_w + (t - t0) / span * plot_w
    parts = [
        f"<svg viewBox='0 0 {width} {height}' width='{width}'"
        f" height='{height}' role='img'>"
    ]
    for rank in ranks:
        y = pad + lanes[rank] * row_h
        parts.append(
            f"<text x='{label_w - 6}' y='{y + 13}' text-anchor='end'"
            f" font-size='11'>r{rank}</text>"
        )
    if len(events) > RASTERIZE_ABOVE:
        by_rank: dict[int, list[dict]] = {}
        for ev in events:
            if ev["rank"] is not None:
                by_rank.setdefault(ev["rank"], []).append(ev)
        ncols = int(plot_w) // RASTER_COL_PX
        for rank, lane_events in sorted(by_rank.items()):
            y = pad + lanes[rank] * row_h
            for c0, c1, cat in _raster_lane(lane_events, t0, span, ncols):
                parts.append(
                    f"<rect x='{label_w + c0 * RASTER_COL_PX}' y='{y + 2}'"
                    f" width='{(c1 - c0 + 1) * RASTER_COL_PX}'"
                    f" height='{row_h - 4}' fill='{_color(cat)}'>"
                    f"<title>mostly {_esc(cat)}</title></rect>"
                )
    else:
        for ev in events:
            if ev["rank"] is None:
                continue
            y = pad + lanes[ev["rank"]] * row_h
            w = max((ev["dur"] / span) * plot_w, 0.5)
            parts.append(
                f"<rect x='{x(ev['ts']):.2f}' y='{y + 2}' width='{w:.2f}'"
                f" height='{row_h - 4}' fill='{_color(ev['cat'])}'>"
                f"<title>{_esc(ev['name'])} · {ev['dur']:.4f} s ·"
                f" {ev['energy_j']:.4f} J</title></rect>"
            )
    for cut in cuts:
        parts.append(
            f"<line x1='{x(cut):.2f}' y1='0' x2='{x(cut):.2f}'"
            f" y2='{height - 14}' stroke='#333' stroke-dasharray='3,2'/>"
        )
    parts.append(
        f"<text x='{label_w}' y='{height - 2}' font-size='10'"
        f" fill='#666'>{t0:.2f} s</text>"
        f"<text x='{width - 10}' y='{height - 2}' text-anchor='end'"
        f" font-size='10' fill='#666'>{t1:.2f} s</text>"
    )
    parts.append("</svg>")
    return "".join(parts)


def render_html(
    report: AttributionReport,
    events_by_pid: dict[int, list[dict]] | None = None,
    cuts_by_pid: dict[int, list[float]] | None = None,
) -> str:
    """The complete self-contained report page.

    ``events_by_pid``/``cuts_by_pid`` default to the event stream the
    report itself retained (``report.events_by_pid``/``cuts_by_pid``).
    """
    if events_by_pid is None:
        events_by_pid = report.events_by_pid
    if cuts_by_pid is None:
        cuts_by_pid = report.cuts_by_pid
    meta = report.campaign or {}
    title = f"campaign report · {meta.get('id', 'unidentified')}"
    legend = "".join(
        f"<span><span class='swatch' style='background:{color}'></span>"
        f"{_esc(cat)}</span>"
        for cat, color in CATEGORY_COLORS.items()
    )
    parts = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        f"<title>{_esc(title)}</title>",
        f"<style>{_STYLE}</style></head><body>",
        f"<h1>{_esc(title)}</h1>",
        "<p class='meta'>",
        f"experiments: {_esc(','.join(meta.get('experiments', [])) or '?')}"
        f" · {report.records} telemetry records"
        f" · {report.decisions} decisions"
        f" · {report.actuations} cap actuations<br>"
        f"total {report.total_energy_j:.3f} J over"
        f" {report.total_wall_s:.3f} simulated seconds</p>",
        f"<p class='legend'>{legend}</p>",
        "<h2>Energy by category</h2>",
        _category_table(report),
        "<h2>Energy by phase</h2>",
        _phase_bars(report),
    ]
    if events_by_pid:
        parts.append("<h2>Run timelines</h2>")
        for pid in sorted(events_by_pid):
            run = report.runs.get(pid)
            if run is None:
                continue
            label = run["label"] or f"run {pid}"
            worker = run["worker"]
            who = "serial" if worker < 0 else f"worker {worker}"
            n_spans = len(events_by_pid[pid])
            note = (
                f" · rasterized ({n_spans} spans)"
                if n_spans > RASTERIZE_ABOVE
                else ""
            )
            parts.append(
                f"<p class='meta'>{_esc(label)} · {who}"
                f" · trace pid {pid}{note}</p>"
            )
            parts.append(
                _run_timeline(
                    run,
                    events_by_pid[pid],
                    (cuts_by_pid or {}).get(pid, []),
                )
            )
    if report.intervals:
        parts.append("<h2>Decision intervals</h2>")
        rows = "".join(
            f"<tr><td>{b['pid']}</td><td>{_esc(b['label'])}</td>"
            f"<td>{b['interval']}</td><td>{b['t0']:.3f}</td>"
            f"<td>{b['t1']:.3f}</td><td>{b['energy_j']:.3f}</td>"
            f"<td>{b['wall_s']:.3f}</td></tr>"
            for b in report.intervals
        )
        parts.append(
            "<table><tr><th>run</th><th>cell</th><th>interval</th>"
            "<th>t0 (s)</th><th>t1 (s)</th><th>energy (J)</th>"
            "<th>wall (s)</th></tr>" + rows + "</table>"
        )
    parts.append("</body></html>")
    return "".join(parts)
