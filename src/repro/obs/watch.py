"""``campaign watch``: a live, in-terminal campaign dashboard.

The watch is a pure journal tail: it polls the campaign journal with
:func:`repro.campaign.journal.tail_records` (locked, torn-tail-safe,
incremental) and folds every record into a :class:`WatchState` — no
side channel, no IPC with the running campaign, so it works from a
second terminal, over NFS, or against a dead campaign's journal
equally well. What it shows:

* cells completed / scheduled, cache hit rate, errors and retries;
* per-worker utilization, executed cells, steals and respawns plus
  queue depth and cost-model ETA (from the engine's ``sched`` rows);
* a rolling power sparkline and energy total per controller approach
  (from shipped ``phase.*`` telemetry rows), and controller decision /
  cap-actuation counts;
* shipping health: records merged, records dropped to backpressure.

On a TTY the frame redraws in place (ANSI clear) every ``interval``
seconds; when stdout is not a TTY it degrades to sequentially numbered
plain-text snapshots whose content depends only on the journal — the
CI-safe mode. The loop ends when the journal's ``summary`` row lands
(campaign finished), after ``--iterations``, or immediately with
``--once``.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

from repro.campaign.journal import tail_records
from repro.util.term import sparkline

__all__ = ["WatchModel", "WatchState", "render_state", "watch_journal"]

#: rolling samples kept per controller power series
POWER_WINDOW = 180


@dataclass
class WatchState:
    """Everything the dashboard knows, folded from journal records."""

    campaign: dict | None = None
    legs: int = 1
    scheduled: int = 0
    counts: dict = field(
        default_factory=lambda: {
            "cells": 0,
            "hits": 0,
            "misses": 0,
            "dups": 0,
            "errors": 0,
            "timeouts": 0,
            "retries": 0,
            "failed": 0,
        }
    )
    #: most recent ``sched`` row (queue depth, eta, per-worker stats)
    sched: dict | None = None
    #: approach -> rolling deque of mean phase power samples (W)
    power: dict = field(default_factory=dict)
    #: approach -> total shipped energy (J)
    energy_j: dict = field(default_factory=dict)
    decisions: int = 0
    actuations: int = 0
    telemetry_rows: int = 0
    finished: bool = False

    @property
    def hit_rate(self) -> float:
        done = self.counts["cells"]
        return self.counts["hits"] / done if done else 0.0


def _approach(label: str) -> str:
    """Controller approach from a cell label (``seesaw/rdf/...``)."""
    return label.split("/", 1)[0] if label else "?"


def fold(state: WatchState, record: dict) -> None:
    """Fold one journal record into the watch state."""
    event = record.get("event")
    if event == "campaign":
        state.campaign = record
    elif event == "resume":
        state.legs += 1
    elif event == "scheduled":
        state.scheduled += len(record.get("keys", ()))
    elif event == "summary":
        state.finished = True
    elif event == "sched":
        state.sched = record
    elif event == "cell":
        status = record.get("status")
        counts = state.counts
        if status in ("hit", "dup", "done", "retried"):
            counts["cells"] += 1
        if status == "hit":
            counts["hits"] += 1
        elif status == "dup":
            counts["dups"] += 1
        elif status == "done":
            counts["misses"] += 1
        elif status == "retried":
            counts["misses"] += 1
            counts["retries"] += 1
        elif status in ("error", "timeout", "failed"):
            counts[status + ("s" if status != "failed" else "")] += 1
    elif event == "telemetry":
        state.telemetry_rows += 1
        ph = record.get("ph")
        name = record.get("name", "")
        if ph == "X" and name.startswith("phase."):
            args = record.get("args") or {}
            dur = float(record.get("dur", 0.0) or 0.0)
            energy = float(args.get("energy_j", 0.0) or 0.0)
            approach = _approach(_label_from(record))
            state.energy_j[approach] = (
                state.energy_j.get(approach, 0.0) + energy
            )
            if dur > 0.0:
                series = state.power.get(approach)
                if series is None:
                    series = state.power[approach] = deque(
                        maxlen=POWER_WINDOW
                    )
                series.append(energy / dur)
        elif ph == "i":
            if name.endswith(".decision"):
                state.decisions += 1
            elif name == "power.rapl.apply":
                state.actuations += 1


def _label_from(record: dict) -> str:
    """Cell label stamped by the mux (top level), best effort."""
    label = record.get("label")
    if isinstance(label, str):
        return label
    cell = record.get("cell")
    return str(cell)[:8] if cell else ""


# ---------------------------------------------------------------------
# rendering


def render_state(state: WatchState, width: int = 72) -> str:
    """One dashboard frame; pure function of the folded state."""
    lines: list[str] = []
    meta = state.campaign or {}
    cid = meta.get("id", "?")
    experiments = ",".join(meta.get("experiments", [])) or "?"
    lines.append(f"== campaign watch · {cid} · {experiments} ==")
    c = state.counts
    total = max(state.scheduled, c["cells"]) or c["cells"]
    done = c["cells"]
    bar_w = 32
    filled = int(round(bar_w * (done / total))) if total else 0
    bar = "#" * filled + "." * (bar_w - filled)
    lines.append(
        f"cells   [{bar}] {done}/{total or '?'}"
        f" · leg {state.legs}"
        + (" · FINISHED" if state.finished else "")
    )
    lines.append(
        f"cache   {c['hits']} hits · {c['dups']} dups · {c['misses']} run"
        f" · hit rate {state.hit_rate * 100:.0f}%"
    )
    if c["errors"] or c["timeouts"] or c["retries"] or c["failed"]:
        lines.append(
            f"faults  {c['errors']} errors · {c['timeouts']} timeouts"
            f" · {c['retries']} retries · {c['failed']} failed"
        )
    sched = state.sched
    if sched is not None:
        eta = sched.get("eta_s")
        eta_txt = f"{eta:.0f}s" if isinstance(eta, (int, float)) else "?"
        lines.append(
            f"sched   queue {sched.get('queue_depth', 0)}"
            f" · steals {sched.get('steals', 0)}"
            f" ({sched.get('stolen_cells', 0)} cells)"
            f" · dispatches {sched.get('dispatches', 0)}"
            f" · eta {eta_txt}"
        )
        workers = sched.get("workers") or []
        if workers:
            lines.append("")
            lines.append(
                f"  {'worker':>6} {'cells':>6} {'stolen':>7}"
                f" {'respawn':>8} {'util':>6}"
            )
            for w in workers:
                util = float(w.get("utilization", 0.0))
                ubar = "#" * int(round(util * 10))
                lines.append(
                    f"  {w.get('wid', '?'):>6} {w.get('cells', 0):>6}"
                    f" {w.get('stolen_cells', 0):>7}"
                    f" {w.get('respawns', 0):>8}"
                    f" {util * 100:>5.0f}% {ubar}"
                )
        dropped = sched.get("ship_dropped", 0)
        shipped = sched.get("ship_records", 0)
        if shipped or dropped:
            lines.append(
                f"ship    {shipped} records merged · {dropped} dropped"
            )
    if state.power:
        lines.append("")
        lines.append("power (rolling mean W per phase, by controller):")
        for approach in sorted(state.power):
            series = state.power[approach]
            if len(series) >= 2:
                lines.append(
                    "  "
                    + sparkline(
                        list(series), width=width - 24, label=f"{approach:<10}"
                    )
                )
            else:
                lines.append(f"  {approach:<10} (warming up)")
        energy = " · ".join(
            f"{a} {j:.1f} J" for a, j in sorted(state.energy_j.items())
        )
        lines.append(f"energy  {energy}")
    if state.decisions or state.actuations:
        lines.append(
            f"control {state.decisions} decisions"
            f" · {state.actuations} cap actuations"
        )
    return "\n".join(lines)


class WatchModel:
    """Incremental journal tail + fold; one instance per watch session."""

    def __init__(self, path: Path | str) -> None:
        self.path = Path(path)
        self.offset = 0
        self.state = WatchState()

    def refresh(self) -> int:
        """Fold newly appended records; returns how many arrived."""
        records, self.offset = tail_records(self.path, self.offset)
        for record in records:
            fold(self.state, record)
        return len(records)

    def render(self, width: int = 72) -> str:
        return render_state(self.state, width=width)


def watch_journal(
    path: Path | str,
    interval: float = 1.0,
    iterations: int | None = None,
    once: bool = False,
    stream=None,
    tty: bool | None = None,
) -> int:
    """The ``campaign watch`` loop; returns a process exit code.

    TTY: clear-and-redraw every ``interval`` seconds. Non-TTY:
    deterministic numbered snapshots (frame content depends only on
    the journal). Ends when the campaign's ``summary`` row is seen,
    after ``iterations`` frames, or after one frame with ``once``.
    A journal that does not exist yet is watched patiently — start
    the watch first, the sweep second, and the first frame appears
    when the journal does.
    """
    import sys

    stream = sys.stdout if stream is None else stream
    is_tty = bool(stream.isatty()) if tty is None else tty
    model = WatchModel(path)
    frame_no = 0
    while True:
        model.refresh()
        frame = model.render()
        if is_tty:
            stream.write("\x1b[2J\x1b[H" + frame + "\n")
        else:
            stream.write(f"--- watch frame {frame_no} ---\n{frame}\n")
        stream.flush()
        frame_no += 1
        if once or model.state.finished:
            break
        if iterations is not None and frame_no >= iterations:
            break
        time.sleep(interval)
    return 0
