"""``campaign report``: SeeSAw-style energy attribution from a journal.

The paper's central accounting question — *where do the joules and the
wall time go under a power cap?* — is answered here from the campaign
journal alone. Shipped ``telemetry`` rows carry every phase the
simulated ranks executed (``phase.force``, ``phase.ana_cpu``, …, each
an ``X`` record with ``energy_j`` in args), the controller's decision
instants (``core.<approach>.decision``), the RAPL actuations
(``power.rapl.apply``) and the in-situ synchronization spans
(``insitu.sync`` ``B``/``E`` pairs). :func:`build_report` folds them
into an :class:`AttributionReport`:

* totals by **category** — MD (force/integrate/neighbor/comm) vs
  analysis (``ana_*``/``rdf_*``) vs sync-wait vs cap-actuation;
* totals by **phase**, by **rank** and by **worker**;
* per-run **decision intervals**: the controller's decision instants
  slice each run's virtual timeline, and every phase record is
  attributed to the interval it started in — the per-decision-interval
  joule ledger the SeeSAw evaluation plots.

Rendering: ``--format text`` (bar charts via :mod:`repro.util.term`),
``--format json`` (the report dict, machine-readable), ``--format
html`` (self-contained page with inline SVG timelines, see
:mod:`repro.obs.html`). Phase joule totals are, by construction, the
exact float sums a :class:`~repro.metrics.registry.MetricsSink` would
fold into ``span.<phase>.energy_j`` — the reconciliation test pins
this, so the report can never drift from the metrics registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.campaign.journal import read_records
from repro.util.term import bar_chart

__all__ = [
    "AttributionReport",
    "build_report",
    "load_report_records",
    "render_text",
]

#: phase kinds accounted to molecular dynamics proper — the per-rank
#: DES runtime's decomposed kinds plus the proxy workload's aggregate
MD_PHASES = frozenset({"force", "integrate", "neighbor", "comm", "md"})

#: span names accounted to in-situ synchronization waits
SYNC_SPANS = frozenset({"insitu.sync", "insitu.exchange"})


def category_of(name: str) -> str | None:
    """Attribution category for a telemetry record name (or None)."""
    if name.startswith("phase."):
        kind = name[len("phase."):]
        return "md" if kind in MD_PHASES else "analysis"
    if name in SYNC_SPANS:
        return "sync_wait"
    if name == "power.rapl.apply":
        return "cap_actuation"
    return None


def _zero() -> dict:
    return {"energy_j": 0.0, "wall_s": 0.0, "count": 0}


def _add(bucket: dict, energy_j: float, wall_s: float) -> None:
    bucket["energy_j"] += energy_j
    bucket["wall_s"] += wall_s
    bucket["count"] += 1


@dataclass
class AttributionReport:
    """Aggregated energy/time attribution for one campaign journal."""

    campaign: dict | None = None
    #: md / analysis / sync_wait / cap_actuation -> {energy_j, wall_s, count}
    by_category: dict = field(default_factory=dict)
    #: full record name (``phase.force``, ``insitu.sync``) -> bucket
    by_phase: dict = field(default_factory=dict)
    #: simulated rank -> bucket (tid - 1; engine lane excluded)
    by_rank: dict = field(default_factory=dict)
    #: pool worker id (-1 = in-process/serial) -> bucket
    by_worker: dict = field(default_factory=dict)
    #: one entry per (run, decision interval): the SeeSAw ledger rows
    intervals: list = field(default_factory=list)
    #: per-run lanes for the HTML timelines: pid -> run descriptor
    runs: dict = field(default_factory=dict)
    #: pid -> attributed event stream / decision instants (feeds the
    #: HTML timelines; deliberately absent from :meth:`to_json`)
    events_by_pid: dict = field(default_factory=dict, repr=False)
    cuts_by_pid: dict = field(default_factory=dict, repr=False)
    decisions: int = 0
    actuations: int = 0
    records: int = 0

    @property
    def total_energy_j(self) -> float:
        return sum(b["energy_j"] for b in self.by_phase.values())

    @property
    def total_wall_s(self) -> float:
        return sum(b["wall_s"] for b in self.by_phase.values())

    def to_json(self) -> dict:
        """The machine-readable report (``--format json``)."""
        return {
            "campaign": self.campaign,
            "total_energy_j": self.total_energy_j,
            "total_wall_s": self.total_wall_s,
            "records": self.records,
            "decisions": self.decisions,
            "actuations": self.actuations,
            "by_category": self.by_category,
            "by_phase": self.by_phase,
            "by_rank": {str(k): v for k, v in sorted(self.by_rank.items())},
            "by_worker": {
                str(k): v for k, v in sorted(self.by_worker.items())
            },
            "intervals": self.intervals,
        }


def load_report_records(path: Path | str) -> tuple[dict | None, list[dict]]:
    """The campaign header and telemetry rows of the journal at ``path``."""
    campaign = None
    telemetry: list[dict] = []
    for record in read_records(path):
        event = record.get("event")
        if event == "campaign":
            campaign = record
        elif event == "telemetry":
            telemetry.append(record)
    return campaign, telemetry


def build_report(
    records: list[dict], campaign: dict | None = None
) -> AttributionReport:
    """Fold telemetry records into an :class:`AttributionReport`.

    Works on journal ``telemetry`` rows and on raw in-process tracer
    records alike (the ``event`` key is ignored), so single-process
    ``run --trace`` output and shipped multi-worker campaigns report
    through the same path.
    """
    report = AttributionReport(campaign=campaign)
    decisions_by_pid: dict[int, list[dict]] = {}
    events_by_pid = report.events_by_pid
    open_spans: dict[tuple[int, int, str], dict] = {}

    def account(rec: dict, name: str, energy_j: float, wall_s: float) -> None:
        cat = category_of(name)
        if cat is None:
            return
        _add(report.by_phase.setdefault(name, _zero()), energy_j, wall_s)
        _add(report.by_category.setdefault(cat, _zero()), energy_j, wall_s)
        tid = int(rec.get("tid", 0) or 0)
        if tid > 0:
            _add(
                report.by_rank.setdefault(tid - 1, _zero()),
                energy_j,
                wall_s,
            )
        wid = int(rec.get("worker", -1))
        _add(report.by_worker.setdefault(wid, _zero()), energy_j, wall_s)
        pid = int(rec.get("pid", 0) or 0)
        run = report.runs.setdefault(
            pid,
            {
                "pid": pid,
                "label": rec.get("label", ""),
                "worker": wid,
                "t0": float(rec.get("ts", 0.0) or 0.0),
                "t1": float(rec.get("ts", 0.0) or 0.0),
            },
        )
        ts = float(rec.get("ts", 0.0) or 0.0)
        run["t0"] = min(run["t0"], ts)
        run["t1"] = max(run["t1"], ts + wall_s)
        if not run["label"] and rec.get("label"):
            run["label"] = rec["label"]
        events_by_pid.setdefault(pid, []).append(
            {
                "ts": ts,
                "dur": wall_s,
                "name": name,
                "cat": cat,
                "energy_j": energy_j,
                "rank": tid - 1 if tid > 0 else None,
            }
        )

    for rec in records:
        report.records += 1
        ph = rec.get("ph")
        name = rec.get("name", "")
        args = rec.get("args") or {}
        pid = int(rec.get("pid", 0) or 0)
        if ph == "X":
            account(
                rec,
                name,
                float(args.get("energy_j", 0.0) or 0.0),
                float(rec.get("dur", 0.0) or 0.0),
            )
        elif ph == "B" and name in SYNC_SPANS:
            open_spans[(pid, int(rec.get("tid", 0) or 0), name)] = rec
        elif ph == "E" and name in SYNC_SPANS:
            begin = open_spans.pop(
                (pid, int(rec.get("tid", 0) or 0), name), None
            )
            if begin is not None:
                wall = float(rec.get("ts", 0.0) or 0.0) - float(
                    begin.get("ts", 0.0) or 0.0
                )
                account(begin, name, 0.0, max(wall, 0.0))
        elif ph == "i":
            if name.startswith("core.") and name.endswith(".decision"):
                report.decisions += 1
                decisions_by_pid.setdefault(pid, []).append(
                    {
                        "ts": float(rec.get("ts", 0.0) or 0.0),
                        "args": args,
                    }
                )
            elif name == "power.rapl.apply":
                report.actuations += 1
                account(rec, name, 0.0, 0.0)

    report.cuts_by_pid = {
        pid: sorted(d["ts"] for d in ds)
        for pid, ds in decisions_by_pid.items()
    }
    _slice_intervals(report, events_by_pid, decisions_by_pid)
    return report


def _slice_intervals(
    report: AttributionReport,
    events_by_pid: dict[int, list[dict]],
    decisions_by_pid: dict[int, list[dict]],
) -> None:
    """Attribute each run's events to its controller decision intervals.

    Interval ``i`` spans from decision instant ``i`` to instant
    ``i + 1`` (the last one runs to the end of the run); everything
    before the first decision is interval 0 as well — the controller's
    first decision typically fires at t=0. A run with no decisions is
    one interval covering the whole run.
    """
    for pid, events in sorted(events_by_pid.items()):
        run = report.runs[pid]
        cuts = sorted(d["ts"] for d in decisions_by_pid.get(pid, []))
        # boundaries: [t0, cut1, cut2, ..., t1] with cuts <= t0 dropped
        bounds = [run["t0"]]
        for cut in cuts:
            if cut > bounds[-1]:
                bounds.append(cut)
        bounds.append(max(run["t1"], bounds[-1]))
        buckets = [
            {
                "pid": pid,
                "label": run["label"],
                "worker": run["worker"],
                "interval": i,
                "t0": bounds[i],
                "t1": bounds[i + 1],
                "energy_j": 0.0,
                "wall_s": 0.0,
                "by_category": {},
            }
            for i in range(len(bounds) - 1)
        ]
        for ev in events:
            # rightmost interval whose start is <= event start
            idx = 0
            for i in range(len(buckets)):
                if ev["ts"] >= buckets[i]["t0"]:
                    idx = i
            b = buckets[idx]
            b["energy_j"] += ev["energy_j"]
            b["wall_s"] += ev["dur"]
            _add(
                b["by_category"].setdefault(ev["cat"], _zero()),
                ev["energy_j"],
                ev["dur"],
            )
        report.intervals.extend(buckets)


# ---------------------------------------------------------------------
# text rendering


def render_text(report: AttributionReport, width: int = 40) -> str:
    """The ``--format text`` report."""
    lines: list[str] = []
    meta = report.campaign or {}
    lines.append("== campaign energy attribution ==")
    if meta:
        lines.append(
            f"campaign {meta.get('id', '?')}"
            f" · {','.join(meta.get('experiments', []))}"
        )
    lines.append(
        f"{report.records} telemetry records"
        f" · {report.decisions} controller decisions"
        f" · {report.actuations} cap actuations"
    )
    lines.append(
        f"total    {report.total_energy_j:.3f} J"
        f" over {report.total_wall_s:.3f} s (simulated)"
    )
    if report.by_category:
        lines.append("")
        lines.append("energy by category (J):")
        lines.append(
            bar_chart(
                [
                    (cat, bucket["energy_j"])
                    for cat, bucket in sorted(report.by_category.items())
                ],
                width=width,
                fmt="{:10.3f}",
            )
        )
        lines.append("")
        lines.append("wall time by category (s):")
        lines.append(
            bar_chart(
                [
                    (cat, bucket["wall_s"])
                    for cat, bucket in sorted(report.by_category.items())
                ],
                width=width,
                fmt="{:10.3f}",
            )
        )
    if report.by_phase:
        lines.append("")
        lines.append("energy by phase (J):")
        lines.append(
            bar_chart(
                [
                    (name, bucket["energy_j"])
                    for name, bucket in sorted(
                        report.by_phase.items(),
                        key=lambda kv: -kv[1]["energy_j"],
                    )
                ],
                width=width,
                fmt="{:10.3f}",
            )
        )
    if report.by_rank:
        lines.append("")
        lines.append("energy by rank (J):")
        lines.append(
            bar_chart(
                [
                    (f"rank {rank}", bucket["energy_j"])
                    for rank, bucket in sorted(report.by_rank.items())
                ],
                width=width,
                fmt="{:10.3f}",
            )
        )
    if len(report.by_worker) > 1 or (
        report.by_worker and -1 not in report.by_worker
    ):
        lines.append("")
        lines.append("energy by pool worker (J):")
        lines.append(
            bar_chart(
                [
                    ("serial" if wid < 0 else f"w{wid}", bucket["energy_j"])
                    for wid, bucket in sorted(report.by_worker.items())
                ],
                width=width,
                fmt="{:10.3f}",
            )
        )
    if report.intervals:
        lines.append("")
        lines.append(
            "decision intervals"
            f" ({len(report.intervals)} across {len(report.runs)} runs):"
        )
        lines.append(
            f"  {'run':>5} {'ivl':>4} {'t0':>9} {'t1':>9}"
            f" {'energy J':>10} {'wall s':>9}"
        )
        for b in report.intervals:
            lines.append(
                f"  {b['pid']:>5} {b['interval']:>4}"
                f" {b['t0']:>9.3f} {b['t1']:>9.3f}"
                f" {b['energy_j']:>10.3f} {b['wall_s']:>9.3f}"
                f"  {b['label']}"
            )
    return "\n".join(lines)
