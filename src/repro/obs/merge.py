"""Parent-side telemetry merging: one coherent stream per campaign.

Shipped batches arrive with the timestamps and ``pid``/``tid`` lanes
the *worker's* tracer assigned: every worker numbers its runs 1, 2, …
independently, so records from two workers would collide on the same
trace lane and read as interleaved garbage (overlapping spans, time
running backwards). The :class:`TelemetryMux` re-stamps each record
onto a collision-free lane derived from the worker id and tags it with
the campaign-level identity the worker could not know:

* ``pid`` → ``(wid + 1) * 1000 + worker-local pid`` — every worker
  gets its own block of trace processes, one per cell run, labelled
  ``w<wid> <cell-label>``;
* ``worker`` / ``cell`` / ``label`` / ``campaign`` keys — which worker
  executed the record's cell, the cell's content hash and label, and
  the campaign id (what ``campaign report`` attributes energy by).

Re-stamped records flow to two places: the parent's ambient tracer
sink (so ``run --trace --jobs N`` exports one merged Chrome trace with
worker telemetry inlined, and ``--metrics`` folds worker phases into
the registry via :class:`~repro.metrics.registry.MetricsSink`), and
the campaign journal as ``telemetry`` rows (what ``campaign watch``
and ``campaign report`` tail).

The mux also widens the campaign's own trace lane: the engine stamps
per-cell ``campaign.cell`` spans onto ``tid = wid + 1`` of trace
process 0, so the campaign process shows one row per worker with each
worker's cells laid end to end — steals and respawns visible as cells
jumping lanes.
"""

from __future__ import annotations

from repro.metrics import get_metrics
from repro.telemetry import get_tracer

__all__ = ["TelemetryMux"]

#: trace-pid block size per worker: worker w's runs live on pids
#: (w+1)*PID_STRIDE + 1 .. (w+1)*PID_STRIDE + PID_STRIDE - 1
PID_STRIDE = 1000


class TelemetryMux:
    """Re-stamps shipped worker records and fans them out.

    One mux per :class:`~repro.campaign.executor.CampaignEngine`; the
    engine calls :meth:`absorb` for every task outcome that carried a
    telemetry batch. ``journal`` is the engine's run journal (rows are
    only written when it is file-backed); ``campaign_id`` is stamped
    onto every record once the CLI assigns it.
    """

    def __init__(self, journal=None, campaign_id: str | None = None) -> None:
        self.journal = journal
        self.campaign_id = campaign_id
        #: records merged / records dropped worker-side (buffer overflow)
        self.absorbed = 0
        self.dropped = 0
        #: (wid, worker-local pid) -> merged pid
        self._lane_pids: dict[tuple[int, int], int] = {}
        self._named_workers: set[int] = set()

    # ------------------------------------------------------------ lanes
    def _merged_pid(self, wid: int, local_pid: int) -> int:
        # local pids are small sequential run numbers; clamp into the
        # stride so a pathological worker can never collide with the
        # next worker's block
        return (wid + 1) * PID_STRIDE + (local_pid % PID_STRIDE)

    def _emit(self, record: dict) -> None:
        tracer = get_tracer()
        if tracer.enabled:
            tracer.sink.emit(record)
        journal = self.journal
        if journal is not None and journal.path is not None:
            journal.telemetry(record)

    def ensure_worker_lane(self, wid: int) -> int:
        """Name the campaign process's per-worker row once; return tid.

        The engine stamps pool-executed ``campaign.cell`` spans onto
        this lane (``tid = wid + 1`` of trace process 0), giving the
        campaign process one row per worker.
        """
        tid = wid + 1
        if wid not in self._named_workers:
            self._named_workers.add(wid)
            self._emit(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "cat": "",
                    "ts": 0.0,
                    "pid": 0,
                    "tid": tid,
                    "args": {"name": f"worker {wid}"},
                }
            )
        return tid

    # ----------------------------------------------------------- absorb
    def absorb(
        self,
        batch: dict,
        cell_label: str = "",
        cell_key: str = "",
    ) -> int:
        """Merge one shipped batch; returns the number of records kept."""
        wid = int(batch.get("wid", -1))
        records = batch.get("records") or ()
        dropped = int(batch.get("dropped", 0))
        metrics = get_metrics()
        if dropped:
            self.dropped += dropped
            metrics.counter("obs.ship.dropped").inc(dropped)
        if not records:
            return 0
        metrics.counter("obs.ship.records").inc(len(records))
        self.ensure_worker_lane(wid)
        campaign = self.campaign_id
        for rec in records:
            lane = (wid, rec.get("pid", 0))
            pid = self._lane_pids.get(lane)
            if pid is None:
                pid = self._lane_pids[lane] = self._merged_pid(*lane)
            out = dict(rec)
            out["pid"] = pid
            out["worker"] = wid
            if cell_key:
                out["cell"] = cell_key
            if cell_label:
                out["label"] = cell_label
            if campaign is not None:
                out["campaign"] = campaign
            if out.get("ph") == "M" and out.get("name") == "process_name":
                # prefix the run's own label so the merged trace reads
                # "w2 seesaw/rdf/d16/..." rather than N identical names
                args = dict(out.get("args") or {})
                args["name"] = f"w{wid} {cell_label or args.get('name', '')}".strip()
                out["args"] = args
            self.absorbed += 1
            self._emit(out)
        return len(records)
