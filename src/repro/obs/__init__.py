"""Campaign observability plane: shipping, live watch, attribution.

SeeSAw's whole argument is visibility into *where* time and joules go
under a power cap — yet campaign workers execute cells in subprocesses
whose tracer spans and metrics die with the worker. This package is
the observability plane that carries those signals across the worker
boundary and puts them in front of a human mid-run (DESIGN.md §14):

* :mod:`repro.obs.ship` — the worker side: a bounded, drop-counting
  :class:`ShippingSink` that buffers tracer records inside a pool
  worker and hands them back as one batch piggybacked on the result
  frame, so shipping never adds messages or stalls scheduling;
* :mod:`repro.obs.merge` — the parent side: a :class:`TelemetryMux`
  that re-stamps shipped records with ``worker``/``cell``/``campaign``
  identity onto collision-free trace lanes and merges them into the
  parent's ambient tracer sink and the campaign journal, so ``trace``
  export yields one coherent Chrome trace for the whole campaign;
* :mod:`repro.obs.watch` — ``seesaw-experiments campaign watch``: an
  in-terminal, refresh-in-place dashboard (worker utilization, queue
  depth, steals, ETA, cache hit rate, rolling power sparkline per
  controller) driven purely by tailing the journal; degrades to
  deterministic plain-text snapshots when stdout is not a TTY;
* :mod:`repro.obs.report` / :mod:`repro.obs.html` — ``campaign
  report``: the SeeSAw-style energy attribution table (joules and
  wall time by rank × phase × controller decision interval, MD vs
  analysis vs sync-wait vs cap actuation) rendered as text, JSON, or
  a self-contained static HTML report with inline SVG timelines.

Shipping is on by default and controlled by ``SEESAW_OBS_SHIP``
(``0`` disables it, leaving campaign artifacts bit-identical to an
unshipped run).
"""

from repro.obs.merge import TelemetryMux
from repro.obs.report import AttributionReport, build_report, load_report_records
from repro.obs.ship import SHIP_ENV, ShippingSink, shipping_enabled
from repro.obs.watch import WatchModel, watch_journal

__all__ = [
    "AttributionReport",
    "SHIP_ENV",
    "ShippingSink",
    "TelemetryMux",
    "WatchModel",
    "build_report",
    "load_report_records",
    "shipping_enabled",
    "watch_journal",
]
