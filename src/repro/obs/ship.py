"""Worker-side telemetry shipping: the bounded buffer behind the pipe.

A pool worker executes cells with a :class:`ShippingSink`-backed tracer
installed, so every span/counter/instant the cell's DES run emits lands
in an in-memory buffer instead of dying with the process. When the cell
finishes, the worker drains the buffer and attaches the batch to the
result frame it was going to send anyway — shipping adds **zero extra
pipe messages** and can never stall scheduling, because the only send
is the one the scheduler is already waiting on.

Backpressure is an all-or-nothing drop: the buffer is bounded, and a
cell chatty enough to overflow it ships *no* records, only the drop
count. Partial shipment is worse than none — dropping an arbitrary
suffix leaves unbalanced ``B``/``E`` spans that would poison the merged
trace's :func:`~repro.telemetry.summary.validate_spans` pass, whereas
an empty batch with a drop counter keeps the merged stream structurally
valid and makes the loss visible (``obs.ship.dropped``).

``SEESAW_OBS_SHIP=0`` disables shipping entirely; the worker then runs
with the null tracer exactly as before this layer existed, and the
campaign's artifacts are bit-identical to an unshipped run.
"""

from __future__ import annotations

import os

from repro.telemetry.sinks import Sink

__all__ = ["SHIP_ENV", "ShippingSink", "shipping_enabled"]

#: environment switch: anything but "0" (default unset = on) ships
SHIP_ENV = "SEESAW_OBS_SHIP"

#: default per-cell record budget (~10 MB of small dicts at the limit)
DEFAULT_CAPACITY = 50_000


def shipping_enabled() -> bool:
    """True unless ``SEESAW_OBS_SHIP=0`` turns shipping off."""
    return os.environ.get(SHIP_ENV, "1") != "0"


class ShippingSink(Sink):
    """Bounded in-memory sink drained once per executed cell.

    ``emit`` appends until ``capacity`` is reached, then counts drops;
    :meth:`drain` returns the batch dict the worker piggybacks on its
    result frame and resets the buffer for the next cell.
    """

    def __init__(self, wid: int = -1, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.wid = wid
        self.capacity = capacity
        self.records: list[dict] = []
        self.dropped = 0

    def emit(self, record: dict) -> None:
        if len(self.records) < self.capacity:
            self.records.append(record)
        else:
            self.dropped += 1

    def drain(self) -> dict | None:
        """The shipped batch for the cell just executed (None if silent).

        An overflowed cell ships an empty record list — never a
        truncated one — plus the total number of records it produced,
        so the parent can account the loss without risking an
        unbalanced span stream.
        """
        records, self.records = self.records, []
        dropped, self.dropped = self.dropped, 0
        if not records and not dropped:
            return None
        if dropped:
            dropped += len(records)
            records = []
        return {"wid": self.wid, "records": records, "dropped": dropped}
