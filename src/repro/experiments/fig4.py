"""Figure 4: per-synchronization power allocation and slack for LAMMPS
with full MSD on 128 nodes (dim 16, j=1).

Five panels in the paper:

* 4a — SeeSAw's per-node allocation per step + normalized slack: it
  settles within the first ~20 steps, assigns the analysis more power,
  and brings mean slack (from the 10th step) to ~0.8 %;
* 4b — the time-aware approach moves power the wrong way during the
  simulation's setup transient and cannot return (flattens near
  sim≈120 / ana≈δ_min, slack ~12 %);
* 4c — the power-aware approach fluctuates (slack 0.2–40 %);
* 4d/4e — baseline time and power between the first 10
  synchronizations (~4 s intervals, MSD ≈ simulation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.report import format_table, heading
from repro.experiments.runner import run_scenario
from repro.scenario import load_suite
from repro.workloads import JobResult

__all__ = ["Fig4Result", "run_fig4"]


@dataclass
class StepSeries:
    """Per-step allocation/slack series for one approach."""

    approach: str
    steps: np.ndarray
    sim_cap_w: np.ndarray
    ana_cap_w: np.ndarray
    slack_norm: np.ndarray
    sim_work_s: np.ndarray
    ana_work_s: np.ndarray
    sim_power_w: np.ndarray
    ana_power_w: np.ndarray

    @classmethod
    def from_result(cls, res: JobResult) -> "StepSeries":
        r = res.records
        return cls(
            approach=res.controller_name,
            steps=np.array([x.step for x in r]),
            sim_cap_w=np.array([x.sim_cap_mean_w for x in r]),
            ana_cap_w=np.array([x.ana_cap_mean_w for x in r]),
            slack_norm=np.array([x.slack_norm for x in r]),
            sim_work_s=np.array([x.sim_work_s for x in r]),
            ana_work_s=np.array([x.ana_work_s for x in r]),
            sim_power_w=np.array([x.sim_power_mean_w for x in r]),
            ana_power_w=np.array([x.ana_power_mean_w for x in r]),
        )

    def mean_slack_from(self, step: int = 10) -> float:
        mask = self.steps >= step
        return float(self.slack_norm[mask].mean())

    def settled_caps(self, tail: int = 50) -> tuple[float, float]:
        return (
            float(self.sim_cap_w[-tail:].mean()),
            float(self.ana_cap_w[-tail:].mean()),
        )


@dataclass
class Fig4Result:
    seesaw: StepSeries
    time_aware: StepSeries
    power_aware: StepSeries
    baseline: StepSeries

    def render(self) -> str:
        rows = []
        for s in (self.seesaw, self.time_aware, self.power_aware):
            sim_cap, ana_cap = s.settled_caps()
            rows.append(
                (
                    s.approach,
                    sim_cap,
                    ana_cap,
                    100.0 * s.mean_slack_from(10),
                    100.0 * float(s.slack_norm.max()),
                )
            )
        base_rows = [
            (
                int(st),
                float(self.baseline.sim_work_s[i]),
                float(self.baseline.ana_work_s[i]),
                float(self.baseline.sim_power_w[i]),
                float(self.baseline.ana_power_w[i]),
            )
            for i, st in enumerate(self.baseline.steps[:10])
        ]
        return "\n".join(
            [
                heading(
                    "Figure 4: power allocation dynamics, LAMMPS+MSD, "
                    "128 nodes, dim=16, j=1"
                ),
                format_table(
                    [
                        "approach",
                        "settled sim W/node",
                        "settled ana W/node",
                        "mean slack % (>=10)",
                        "max slack %",
                    ],
                    rows,
                ),
                "",
                "Baseline (4d/4e): first 10 synchronizations",
                format_table(
                    ["step", "sim time s", "ana time s", "sim W", "ana W"],
                    base_rows,
                ),
            ]
        )


def run_fig4(
    n_verlet_steps: int = 400, seed: int = 42
) -> Fig4Result:
    """Regenerate all Figure 4 panels' data (specs/fig4.json)."""
    suite = load_suite("fig4")

    def series(name: str) -> StepSeries:
        spec = suite.get(name).with_job(
            n_verlet_steps=n_verlet_steps, seed=seed
        )
        return StepSeries.from_result(run_scenario(spec)[0])

    return Fig4Result(
        seesaw=series("seesaw"),
        time_aware=series("time-aware"),
        power_aware=series("power-aware"),
        baseline=series("static"),
    )
