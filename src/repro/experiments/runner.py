"""Shared experiment machinery: controller factories, paired runs,
medians.

The paper's measurement protocol (§VII-A): each data point is the
median of 3 runs, and every managed run is paired with a static
baseline inside the same job — identical rank placement — so that
job-to-job allocation variability cancels. We reproduce that pairing by
seeding the managed run and its baseline with the same job seed.

Every run is submitted as a *cell* through the ambient campaign engine
(:mod:`repro.campaign`): by default that is an in-process serial
engine with behaviour identical to calling :func:`repro.workloads
.run_job` directly, but under ``use_engine`` (what the CLI's
``--jobs/--cache/--journal`` flags install) the same cells fan out
across worker processes and hit the content-addressed result cache.
"""

from __future__ import annotations

from repro.campaign import CellSpec, get_engine
from repro.cluster.node import THETA_NODE, NodeSpec
from repro.core import PowerController
from repro.scenario.registry import get_controller, paper_approaches
from repro.util.stats import median, percent_improvement
from repro.workloads import JobConfig, JobResult

__all__ = [
    "APPROACHES",
    "build_controller",
    "median_improvement",
    "paired_improvement",
    "run_managed",
    "run_scenario",
    "scenario_improvement",
]

#: the paper's three managed approaches plus the baseline — a view
#: over :func:`repro.scenario.registry.paper_approaches`; extensions
#: (``seesaw-exploring``, ``seesaw-hierarchical``) are registered but
#: deliberately not part of the paper's four-way comparison
APPROACHES = paper_approaches()


def build_controller(
    name: str,
    cfg: JobConfig,
    node: NodeSpec = THETA_NODE,
    window: int = 1,
    sim_share: float = 0.5,
    **kwargs,
) -> PowerController:
    """Construct a registered controller sized for ``cfg``.

    ``name`` is looked up in :mod:`repro.scenario.registry`, so every
    registered approach — including the extensions — is constructible
    here. ``window`` and ``sim_share`` are *soft* defaults: they are
    forwarded only to controllers whose constructors take them (the
    time-aware balancer ignores ``window`` by design, §VI-B, and the
    static baseline has no feedback at all). Unknown approaches and
    rejected options raise with the valid choices spelled out.
    """
    info = get_controller(name)
    soft = {"window": window, "sim_share": sim_share}
    merged = {
        k: v for k, v in soft.items() if k in info.options
    }
    merged.update(kwargs)
    info.check_kwargs(merged)
    return info.cls(cfg.budget_w, cfg.n_sim, cfg.n_ana, node, **merged)


def run_managed(
    name: str,
    cfg: JobConfig,
    run_index: int = 0,
    **controller_kwargs,
) -> JobResult:
    """One managed run of ``cfg`` under approach ``name``.

    Submitted through the ambient campaign engine, so it parallelizes
    and caches when one is installed via ``use_engine``.
    """
    cell = CellSpec(name, cfg, run_index, dict(controller_kwargs))
    return get_engine().run_cells([cell])[0]


def _paired_cells(
    name: str,
    cfg: JobConfig,
    run_index: int,
    baseline_sim_share: float,
    controller_kwargs: dict,
) -> tuple[CellSpec, CellSpec]:
    """(managed, baseline) cells for one paired run."""
    return (
        CellSpec(name, cfg, run_index, dict(controller_kwargs)),
        CellSpec(
            "static", cfg, run_index, {"sim_share": baseline_sim_share}
        ),
    )


def paired_improvement(
    name: str,
    cfg: JobConfig,
    run_index: int = 0,
    baseline_sim_share: float = 0.5,
    **controller_kwargs,
) -> float:
    """% runtime improvement of one managed run over its paired static
    baseline (same job seed and run index → same allocation and noise,
    the paper's §VII-A pairing)."""
    managed, baseline = get_engine().run_cells(
        _paired_cells(
            name, cfg, run_index, baseline_sim_share, controller_kwargs
        )
    )
    return percent_improvement(managed.total_time_s, baseline.total_time_s)


def median_improvement(
    name: str,
    cfg: JobConfig,
    n_runs: int = 3,
    baseline_sim_share: float = 0.5,
    **controller_kwargs,
) -> float:
    """Median-of-``n_runs`` improvement (the paper's data points).

    All ``2 * n_runs`` cells of the data point are submitted as one
    batch, so they fan out together under a parallel engine.
    """
    cells: list[CellSpec] = []
    for i in range(n_runs):
        cells.extend(
            _paired_cells(
                name, cfg, i, baseline_sim_share, controller_kwargs
            )
        )
    results = get_engine().run_cells(cells)
    return median(
        percent_improvement(
            results[2 * i].total_time_s, results[2 * i + 1].total_time_s
        )
        for i in range(n_runs)
    )


def run_scenario(spec) -> list[JobResult]:
    """Execute a plain (unpaired) :class:`~repro.scenario.ScenarioSpec`.

    Returns one :class:`JobResult` per repeat, submitted as one batch
    through the ambient engine — cell hashes are identical to the
    equivalent :func:`run_managed` calls, so caches are shared.
    """
    if spec.baseline_sim_share is not None:
        raise ValueError(
            f"scenario {spec.name!r} is paired (baseline_sim_share="
            f"{spec.baseline_sim_share}); use scenario_improvement()"
        )
    return get_engine().run_cells(spec.to_cells())


def scenario_improvement(spec) -> float:
    """Median improvement of a paired scenario (the paper's metric).

    Equivalent to :func:`median_improvement` with the spec's approach,
    job, repeats and baseline share — same cells, same cache keys.
    """
    if spec.baseline_sim_share is None:
        raise ValueError(
            f"scenario {spec.name!r} is not paired; set "
            "baseline_sim_share to measure improvement"
        )
    results = get_engine().run_cells(spec.to_cells())
    return median(
        percent_improvement(
            results[2 * i].total_time_s, results[2 * i + 1].total_time_s
        )
        for i in range(spec.repeats)
    )
