"""Shared experiment machinery: controller factories, paired runs,
medians.

The paper's measurement protocol (§VII-A): each data point is the
median of 3 runs, and every managed run is paired with a static
baseline inside the same job — identical rank placement — so that
job-to-job allocation variability cancels. We reproduce that pairing by
seeding the managed run and its baseline with the same job seed.

Every run is submitted as a *cell* through the ambient campaign engine
(:mod:`repro.campaign`): by default that is an in-process serial
engine with behaviour identical to calling :func:`repro.workloads
.run_job` directly, but under ``use_engine`` (what the CLI's
``--jobs/--cache/--journal`` flags install) the same cells fan out
across worker processes and hit the content-addressed result cache.
"""

from __future__ import annotations

from repro.campaign import CellSpec, get_engine
from repro.cluster.node import THETA_NODE, NodeSpec
from repro.core import (
    PowerAwareController,
    PowerController,
    SeeSAwController,
    StaticController,
    TimeAwareController,
)
from repro.util.stats import median, percent_improvement
from repro.workloads import JobConfig, JobResult

__all__ = [
    "APPROACHES",
    "build_controller",
    "median_improvement",
    "paired_improvement",
    "run_managed",
]

#: the paper's three managed approaches plus the baseline
APPROACHES = ("static", "power-aware", "time-aware", "seesaw")


def build_controller(
    name: str,
    cfg: JobConfig,
    node: NodeSpec = THETA_NODE,
    window: int = 1,
    sim_share: float = 0.5,
    **kwargs,
) -> PowerController:
    """Construct a controller sized for ``cfg``.

    ``window`` is honoured by SeeSAw and the power-aware scheme; the
    time-aware balancer ignores it by design (§VI-B) and the static
    baseline has no feedback at all.
    """
    args = (cfg.budget_w, cfg.n_sim, cfg.n_ana, node)
    if name == "static":
        return StaticController(*args, sim_share=sim_share, **kwargs)
    if name == "seesaw":
        return SeeSAwController(
            *args, window=window, sim_share=sim_share, **kwargs
        )
    if name == "power-aware":
        return PowerAwareController(*args, window=window, **kwargs)
    if name == "time-aware":
        return TimeAwareController(*args, **kwargs)
    raise ValueError(f"unknown approach {name!r}; choose from {APPROACHES}")


def run_managed(
    name: str,
    cfg: JobConfig,
    run_index: int = 0,
    **controller_kwargs,
) -> JobResult:
    """One managed run of ``cfg`` under approach ``name``.

    Submitted through the ambient campaign engine, so it parallelizes
    and caches when one is installed via ``use_engine``.
    """
    cell = CellSpec(name, cfg, run_index, dict(controller_kwargs))
    return get_engine().run_cells([cell])[0]


def _paired_cells(
    name: str,
    cfg: JobConfig,
    run_index: int,
    baseline_sim_share: float,
    controller_kwargs: dict,
) -> tuple[CellSpec, CellSpec]:
    """(managed, baseline) cells for one paired run."""
    return (
        CellSpec(name, cfg, run_index, dict(controller_kwargs)),
        CellSpec(
            "static", cfg, run_index, {"sim_share": baseline_sim_share}
        ),
    )


def paired_improvement(
    name: str,
    cfg: JobConfig,
    run_index: int = 0,
    baseline_sim_share: float = 0.5,
    **controller_kwargs,
) -> float:
    """% runtime improvement of one managed run over its paired static
    baseline (same job seed and run index → same allocation and noise,
    the paper's §VII-A pairing)."""
    managed, baseline = get_engine().run_cells(
        _paired_cells(
            name, cfg, run_index, baseline_sim_share, controller_kwargs
        )
    )
    return percent_improvement(managed.total_time_s, baseline.total_time_s)


def median_improvement(
    name: str,
    cfg: JobConfig,
    n_runs: int = 3,
    baseline_sim_share: float = 0.5,
    **controller_kwargs,
) -> float:
    """Median-of-``n_runs`` improvement (the paper's data points).

    All ``2 * n_runs`` cells of the data point are submitted as one
    batch, so they fan out together under a parallel engine.
    """
    cells: list[CellSpec] = []
    for i in range(n_runs):
        cells.extend(
            _paired_cells(
                name, cfg, i, baseline_sim_share, controller_kwargs
            )
        )
    results = get_engine().run_cells(cells)
    return median(
        percent_improvement(
            results[2 * i].total_time_s, results[2 * i + 1].total_time_s
        )
        for i in range(n_runs)
    )
