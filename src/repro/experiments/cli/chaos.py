"""The ``chaos`` subcommand: the controllers × fault-kinds sweep.

The sweep itself is declared as a scenario matrix
(:func:`repro.faults.chaos.chaos_matrix_spec`); ``--matrix-out`` dumps
that declaration as a suite file the ``scenario`` subcommand can
expand and validate.
"""

from __future__ import annotations

import json
import sys

__all__ = ["_cmd_chaos"]


def _cmd_chaos(args) -> int:
    """Sweep the controllers × fault-kinds resilience matrix."""
    from repro.faults.chaos import (
        DEFAULT_CONTROLLERS,
        chaos_matrix_spec,
        run_chaos_matrix,
    )
    from repro.faults.plan import FaultKind

    controllers = (
        tuple(c.strip() for c in args.controllers.split(",") if c.strip())
        if args.controllers
        else DEFAULT_CONTROLLERS
    )
    kinds = None
    if args.kinds:
        try:
            kinds = tuple(
                FaultKind(k.strip())
                for k in args.kinds.split(",")
                if k.strip()
            )
        except ValueError as exc:
            print(
                f"{exc}; choose from "
                f"{', '.join(k.value for k in FaultKind)}",
                file=sys.stderr,
            )
            return 2
    if args.matrix_out is not None:
        matrix = chaos_matrix_spec(
            controllers=controllers,
            kinds=kinds,
            seed=args.seed,
            steps=args.steps,
            ranks=args.ranks,
            budget_w=args.budget,
        )
        doc = {"suite": "chaos", "matrix": matrix.to_json()}
        args.matrix_out.parent.mkdir(parents=True, exist_ok=True)
        args.matrix_out.write_text(json.dumps(doc, indent=2) + "\n")
        print(f"[chaos sweep matrix -> {args.matrix_out}]")
    result = run_chaos_matrix(
        controllers=controllers,
        kinds=kinds,
        seed=args.seed,
        steps=args.steps,
        ranks=args.ranks,
        budget_w=args.budget,
        events_path=args.events,
    )
    print(result.render())
    if args.events is not None:
        print(f"[fault events -> {args.events}]")
    problems = result.failures(args.fail_threshold)
    if problems:
        for p in problems:
            print(f"resilience gate: {p}", file=sys.stderr)
        return 1
    print("\nall cells within the resilience gate")
    return 0
