"""The full ``seesaw-experiments`` argparse tree, in one place.

Every subcommand module consumes the namespace this parser produces;
keeping the flag definitions together makes "no flag changes" reviews
a single-file diff.
"""

from __future__ import annotations

import argparse
from pathlib import Path

__all__ = ["build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="seesaw-experiments",
        description="Regenerate the SeeSAw paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    _add_run(sub)
    _add_trace(sub)
    _add_audit(sub)
    _add_chaos(sub)
    _add_campaign(sub)
    _add_bench(sub)
    _add_scenario(sub)
    return parser


def _add_run(sub) -> None:
    run_p = sub.add_parser("run", help="run one experiment (or 'all')")
    run_p.add_argument(
        "experiment",
        nargs="?",
        default=None,
        help="experiment id or 'all' (omit when using --spec)",
    )
    run_p.add_argument(
        "--spec",
        type=Path,
        default=None,
        metavar="FILE",
        help="run the scenarios declared in a spec file (single "
        "scenario, suite, or sweep JSON; see the 'scenario' "
        "subcommand) instead of a named experiment",
    )
    run_p.add_argument(
        "--quick",
        action="store_true",
        help="fewer steps / single run for a fast smoke pass",
    )
    run_p.add_argument(
        "--runs",
        type=int,
        default=None,
        metavar="N",
        help="repeated runs per data point (overrides --quick's 1)",
    )
    run_p.add_argument(
        "--output",
        type=Path,
        default=None,
        help="directory to write <name>.txt and <name>.json artifacts",
    )
    run_p.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for cell fan-out (default: 1, serial)",
    )
    run_p.add_argument(
        "--cache",
        type=Path,
        default=None,
        metavar="DIR",
        help="cell result cache directory "
        "(default: $SEESAW_CACHE_DIR or ~/.cache/seesaw-repro/cells)",
    )
    run_p.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the cell result cache",
    )
    run_p.add_argument(
        "--journal",
        type=Path,
        default=None,
        metavar="PATH",
        help="append a JSONL journal line per cell (plus a summary)",
    )
    run_p.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="PATH",
        help="write a Chrome trace_event JSON of the in-process runs "
        "(open in chrome://tracing or Perfetto)",
    )
    run_p.add_argument(
        "--metrics",
        type=Path,
        default=None,
        metavar="PATH",
        help="collect streaming metrics over the in-process runs and "
        "write a report (.json -> JSON, otherwise Prometheus text)",
    )
    run_p.add_argument(
        "--audit",
        type=Path,
        default=None,
        metavar="PATH",
        help="journal every controller decision to a JSONL audit file "
        "(replay/diff/timeline via the 'audit' subcommand)",
    )
    run_p.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help="inject faults into the DES-backed in-process runs "
        "(analytic experiments are unaffected): a fault-plan JSON "
        "path or the DSL 'kind@START+DUR[xMAG][:rankN];...' "
        "(kinds: slowdown crash cap_drop cap_lag cap_skew meas_drop "
        "meas_stale meas_garble mpi_delay)",
    )
    run_p.add_argument(
        "--chaos-seed",
        type=int,
        default=None,
        metavar="N",
        help="sample a seed-replayable fault plan instead of --faults "
        "(same seed => byte-identical fault schedule)",
    )
    run_p.add_argument(
        "--chaos-horizon",
        type=float,
        default=20.0,
        metavar="S",
        help="virtual-time horizon the sampled plan covers "
        "(default: 20 s; only with --chaos-seed)",
    )
    run_p.add_argument(
        "--profile",
        type=Path,
        default=None,
        metavar="PATH",
        help="profile the in-process run with cProfile and dump pstats "
        "data to PATH (top hotspots go to stderr; pool workers under "
        "--jobs N are not captured)",
    )
    run_p.add_argument(
        "--no-shared-replica",
        action="store_true",
        help="disable the shared-replica fast path: every in-situ rank "
        "computes its own MD/analysis replica (bit-identical results, "
        "slower; exported to pool workers via SEESAW_SHARED_REPLICA)",
    )


def _add_trace(sub) -> None:
    trace_p = sub.add_parser(
        "trace",
        help="run a small traced in-situ job and write a Chrome trace",
        description="Run one fully-instrumented in-situ job (real MD + "
        "analyses on simulated MPI) and export spans from the DES, "
        "controller, power, and in-situ layers as Chrome trace_event "
        "JSON, plus a per-phase time/power summary.",
    )
    trace_p.add_argument(
        "--out",
        type=Path,
        default=Path("trace.json"),
        metavar="PATH",
        help="output trace path (default: trace.json)",
    )
    trace_p.add_argument(
        "--approach",
        default="seesaw",
        help="controller to trace — any registered approach, including "
        "the experimental seesaw-exploring / seesaw-hierarchical "
        "(default: seesaw)",
    )
    trace_p.add_argument(
        "--steps",
        type=int,
        default=6,
        metavar="N",
        help="Verlet steps (default: 6)",
    )
    trace_p.add_argument(
        "--ranks",
        type=int,
        default=2,
        metavar="N",
        help="ranks per partition (default: 2)",
    )
    trace_p.add_argument(
        "--budget",
        type=float,
        default=110.0,
        metavar="W",
        help="per-node power budget in watts (default: 110)",
    )
    trace_p.add_argument(
        "--seed", type=int, default=2020, help="job seed (default: 2020)"
    )
    trace_p.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help="inject faults into the traced job (plan JSON path or DSL)",
    )
    trace_p.add_argument(
        "--chaos-seed",
        type=int,
        default=None,
        metavar="N",
        help="sample a fault plan for the traced job instead of --faults",
    )
    trace_p.add_argument(
        "--audit",
        type=Path,
        default=None,
        metavar="PATH",
        help="journal the traced job's decisions (and fault windows / "
        "degraded-observation holds) to a JSONL audit file",
    )


def _add_audit(sub) -> None:
    audit_p = sub.add_parser(
        "audit",
        help="replay, diff, or render recorded controller journals",
        description="Work with JSONL audit journals recorded by "
        "'run --audit PATH': re-execute every decision from its "
        "recorded inputs (replay), compare two runs decision by "
        "decision (diff), or render the power-split timeline.",
    )
    audit_sub = audit_p.add_subparsers(dest="audit_cmd", required=True)
    replay_p = audit_sub.add_parser(
        "replay", help="recompute every decision; exit 1 on any mismatch"
    )
    replay_p.add_argument("journal", type=Path, help="audit JSONL path")
    diff_p = audit_sub.add_parser(
        "diff", help="compare two journals; exit 1 iff decisions diverge"
    )
    diff_p.add_argument("a", type=Path)
    diff_p.add_argument("b", type=Path)
    timeline_p = audit_sub.add_parser(
        "timeline", help="terminal power-split timeline of one journal"
    )
    timeline_p.add_argument("journal", type=Path, help="audit JSONL path")


def _add_chaos(sub) -> None:
    chaos_p = sub.add_parser(
        "chaos",
        help="sweep controllers x fault kinds; report resilience per cell",
        description="Chaos-test the controllers: for every controller "
        "run a clean baseline, then one faulted run per fault kind "
        "under a seeded fault plan, and report completion, slowdown, "
        "allocation stability, and budget compliance per cell. The "
        "sweep itself is a declarative scenario matrix (dump it with "
        "--matrix-out). Exits 1 when any cell crashes, breaches the "
        "budget, or (for non-timing faults) regresses past "
        "--fail-threshold.",
    )
    chaos_p.add_argument(
        "--seed", type=int, default=0, help="fault-plan seed (default: 0)"
    )
    chaos_p.add_argument(
        "--controllers",
        default=None,
        metavar="A,B,...",
        help="comma-separated approaches (default: all four)",
    )
    chaos_p.add_argument(
        "--kinds",
        default=None,
        metavar="K,L,...",
        help="comma-separated fault kinds (default: the full taxonomy)",
    )
    chaos_p.add_argument(
        "--steps",
        type=int,
        default=8,
        metavar="N",
        help="Verlet steps per run (default: 8)",
    )
    chaos_p.add_argument(
        "--ranks",
        type=int,
        default=2,
        metavar="N",
        help="ranks per partition (default: 2)",
    )
    chaos_p.add_argument(
        "--budget",
        type=float,
        default=110.0,
        metavar="W",
        help="per-node power budget in watts (default: 110)",
    )
    chaos_p.add_argument(
        "--events",
        type=Path,
        default=None,
        metavar="PATH",
        help="write every fired fault-marker row (tagged with its "
        "cell) as JSONL",
    )
    chaos_p.add_argument(
        "--matrix-out",
        type=Path,
        default=None,
        metavar="PATH",
        help="also write the sweep's declarative scenario-matrix suite "
        "JSON (inspect with 'scenario expand PATH')",
    )
    chaos_p.add_argument(
        "--fail-threshold",
        type=float,
        default=0.25,
        metavar="F",
        help="max tolerated fractional slowdown for non-timing fault "
        "kinds (default: 0.25)",
    )


def _add_campaign(sub) -> None:
    campaign_p = sub.add_parser(
        "campaign",
        help="inspect, watch, report on, or resume a campaign journal",
        description="Work with campaign journals written by "
        "'run --journal PATH': 'status' prints the replayable ledger "
        "(completed / in-flight cells, resumability); 'watch' tails "
        "the journal as a live in-terminal dashboard (worker "
        "utilization, steals, ETA, cache hit rate, power sparklines); "
        "'report' renders the SeeSAw-style energy attribution (joules "
        "and wall time by rank x phase x controller decision interval) "
        "as text, JSON, or self-contained HTML; 'resume' "
        "re-enters a killed campaign — completed cells are served from "
        "the recorded cell cache (never recomputed), in-flight and "
        "pending cells execute normally, and the merged results are "
        "bit-identical to an uninterrupted run.",
    )
    campaign_sub = campaign_p.add_subparsers(dest="campaign_cmd", required=True)
    status_p = campaign_sub.add_parser(
        "status", help="print the campaign ledger of one journal"
    )
    status_p.add_argument("journal", type=Path, help="campaign journal path")
    watch_p = campaign_sub.add_parser(
        "watch",
        help="live dashboard: tail a (possibly still-running) campaign",
    )
    watch_p.add_argument("journal", type=Path, help="campaign journal path")
    watch_p.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="S",
        help="refresh period in seconds (default: 1.0)",
    )
    watch_p.add_argument(
        "--iterations",
        type=int,
        default=None,
        metavar="N",
        help="stop after N frames (default: run until the summary row)",
    )
    watch_p.add_argument(
        "--once",
        action="store_true",
        help="render a single snapshot and exit",
    )
    report_p = campaign_sub.add_parser(
        "report",
        help="energy attribution report from the journal's telemetry",
    )
    report_p.add_argument("journal", type=Path, help="campaign journal path")
    report_p.add_argument(
        "--format",
        choices=("text", "json", "html"),
        default="text",
        help="output format (default: text)",
    )
    report_p.add_argument(
        "--out",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the report to PATH instead of stdout",
    )
    resume_p = campaign_sub.add_parser(
        "resume",
        help="resume a killed campaign; completed cells are never recomputed",
    )
    resume_p.add_argument("journal", type=Path, help="campaign journal path")
    resume_p.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="override the recorded worker count for the resumed leg",
    )


def _add_bench(sub) -> None:
    bench_p = sub.add_parser(
        "bench",
        help="capture or check benchmark-regression baselines",
        description="Benchmark regression tracking: 'capture' writes a "
        "BENCH_<date>.json baseline; 'check' re-runs the collectors "
        "and compares against the latest baseline (exit 1 on a gated "
        "regression, 2 when no baseline exists).",
    )
    bench_sub = bench_p.add_subparsers(dest="bench_cmd", required=True)
    capture_p = bench_sub.add_parser(
        "capture", help="run the collectors and write a baseline"
    )
    capture_p.add_argument(
        "--out",
        type=Path,
        default=Path("benchmarks/baselines"),
        metavar="DIR",
        help="baseline directory (default: benchmarks/baselines)",
    )
    capture_p.add_argument(
        "--date",
        default=None,
        help="override the baseline date stamp (default: today)",
    )
    check_p = bench_sub.add_parser(
        "check", help="compare a fresh capture against the latest baseline"
    )
    check_p.add_argument(
        "--baselines",
        type=Path,
        default=Path("benchmarks/baselines"),
        metavar="DIR",
        help="baseline directory (default: benchmarks/baselines)",
    )
    check_p.add_argument(
        "--out",
        type=Path,
        default=None,
        metavar="DIR",
        help="also save the fresh capture into DIR (CI artifact)",
    )
    check_p.add_argument(
        "--summary",
        type=Path,
        default=None,
        metavar="PATH",
        help="append a markdown delta table (e.g. $GITHUB_STEP_SUMMARY)",
    )


def _add_scenario(sub) -> None:
    scenario_p = sub.add_parser(
        "scenario",
        help="list, validate, expand, or hash scenario spec files",
        description="Work with the declarative scenario layer (see "
        "repro.scenario): 'list' shows the shipped suites under "
        "specs/ (or one suite's scenarios); 'validate' checks spec "
        "files against the registries and controller options and "
        "exits 1 with actionable messages on any problem; 'expand' "
        "prints a file's concrete scenarios with sweeps "
        "(matrix axes) expanded; 'hash' prints content hashes and "
        "with --check verifies every shipped suite against "
        "specs/HASHES.json (the CI drift gate).",
    )
    scen_sub = scenario_p.add_subparsers(dest="scenario_cmd", required=True)
    list_p = scen_sub.add_parser(
        "list", help="list shipped suites (or one suite's scenarios)"
    )
    list_p.add_argument(
        "suite",
        nargs="?",
        default=None,
        help="suite name to list the scenarios of (default: all suites)",
    )
    val_p = scen_sub.add_parser(
        "validate", help="validate spec file(s); exit 1 on any problem"
    )
    val_p.add_argument(
        "files",
        nargs="*",
        type=Path,
        default=[],
        help="spec files to validate (default: every shipped specs/*.json)",
    )
    exp_p = scen_sub.add_parser(
        "expand", help="print a file's concrete scenarios (sweeps expanded)"
    )
    exp_p.add_argument(
        "file", help="spec file path, or the name of a shipped suite"
    )
    exp_p.add_argument(
        "--json",
        action="store_true",
        help="print the expanded scenarios as JSON instead of names",
    )
    hash_p = scen_sub.add_parser(
        "hash",
        help="print suite content hashes; --check gates against "
        "specs/HASHES.json",
    )
    hash_p.add_argument(
        "files",
        nargs="*",
        default=[],
        help="spec file paths or shipped suite names "
        "(default with --check: every pinned suite)",
    )
    hash_p.add_argument(
        "--check",
        action="store_true",
        help="verify hashes against specs/HASHES.json; exit 1 on drift",
    )
