"""The ``trace`` subcommand: one small fully-instrumented in-situ job."""

from __future__ import annotations

import contextlib
import sys
from types import SimpleNamespace

from repro.telemetry import ChromeTraceSink, Tracer, summarize, use_tracer, validate_spans

__all__ = ["_cmd_trace"]


def _cmd_trace(args) -> int:
    """Run one small fully-instrumented in-situ job; write its trace."""
    from repro.experiments.runner import build_controller
    from repro.insitu import InsituConfig, run_insitu
    from repro.scenario.registry import RegistryError, get_controller

    try:
        # any registered controller traces, including the experimental
        # seesaw-exploring / seesaw-hierarchical variants
        get_controller(args.approach)
    except RegistryError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    cfg = InsituConfig(
        n_sim_ranks=args.ranks,
        n_ana_ranks=args.ranks,
        n_verlet_steps=args.steps,
        power_cap_w=args.budget,
        seed=args.seed,
    )
    # build_controller only reads the budget/shape triple off the config
    shape = SimpleNamespace(
        budget_w=cfg.world_size * cfg.power_cap_w,
        n_sim=cfg.n_sim_ranks,
        n_ana=cfg.n_ana_ranks,
    )
    controller = build_controller(args.approach, shape)
    sink = ChromeTraceSink()
    audit_journal = None
    scopes = contextlib.ExitStack()
    scopes.enter_context(use_tracer(Tracer(sink)))
    if args.audit is not None:
        from repro.metrics import AuditJournal, use_audit

        audit_journal = AuditJournal(args.audit)
        scopes.enter_context(use_audit(audit_journal))
    if args.faults is not None and args.chaos_seed is not None:
        print("--faults and --chaos-seed are mutually exclusive", file=sys.stderr)
        return 2
    if args.faults is not None or args.chaos_seed is not None:
        # after the tracer/audit scopes: the injector caches ambients
        from repro.faults import FaultInjector, FaultPlan, use_faults

        plan = (
            FaultPlan.from_spec(args.faults)
            if args.faults is not None
            else FaultPlan.sample(args.chaos_seed, cfg.world_size)
        )
        scopes.enter_context(use_faults(FaultInjector(plan)))
    try:
        with scopes:
            result = run_insitu(cfg, controller)
    finally:
        if audit_journal is not None:
            audit_journal.close()
    if result.fault_events:
        print(f"[{len(result.fault_events)} fault marker(s) fired]")
    if audit_journal is not None:
        print(f"[audit journal -> {args.audit}]")
    problems = validate_spans(sink.records)
    if problems:
        for p in problems:
            print(f"malformed trace: {p}", file=sys.stderr)
        return 1
    path = sink.write(args.out)
    print(summarize(sink.records).render())
    print()
    print(
        f"[{args.approach}: {cfg.n_verlet_steps} steps on "
        f"2x{args.ranks} ranks, virtual time {result.virtual_time_s:.3f} s "
        f"-> {len(sink.records)} records in {path}]"
    )
    print("open in https://ui.perfetto.dev or chrome://tracing")
    return 0
