"""Command-line entry point: regenerate any paper table/figure.

Usage::

    seesaw-experiments list
    seesaw-experiments run fig4
    seesaw-experiments run all --jobs 8
    seesaw-experiments run fig3a --quick --cache /tmp/cells
    seesaw-experiments run all --output artifacts/ --journal run.jsonl
    seesaw-experiments run fig8 --trace fig8-trace.json
    seesaw-experiments run --spec specs/fig4.json
    seesaw-experiments scenario list
    seesaw-experiments scenario validate my-sweep.json
    seesaw-experiments scenario expand specs/fig8.json
    seesaw-experiments scenario hash --check
    seesaw-experiments trace --out trace.json --approach seesaw
    seesaw-experiments run fig4 --metrics metrics.json --audit audit.jsonl
    seesaw-experiments audit replay audit.jsonl
    seesaw-experiments audit diff a.jsonl b.jsonl
    seesaw-experiments audit timeline audit.jsonl
    seesaw-experiments bench capture --out benchmarks/baselines
    seesaw-experiments bench check --baselines benchmarks/baselines
    seesaw-experiments run fig2 --chaos-seed 7
    seesaw-experiments run fig2 --faults "slowdown@1.0+2.5x1.8:rank3"
    seesaw-experiments chaos --seed 7 --events chaos-events.jsonl
    seesaw-experiments campaign status run.jsonl
    seesaw-experiments campaign resume run.jsonl

``--quick`` trades statistical fidelity for speed (fewer Verlet steps,
single run instead of median-of-3) — useful for smoke-testing.
``--runs N`` overrides the number of repeated runs per data point.
``--output DIR`` additionally writes each experiment's rendered table
(``<name>.txt``) and a JSON dump of its raw result (``<name>.json``)
into ``DIR``.

Scenario specs (see :mod:`repro.scenario`): every figure and table
declares its runs as typed scenario specs shipped under ``specs/``;
``run --spec FILE`` executes any such file — shipped or hand-written —
through the same campaign engine, so its cells hit the same
content-addressed cache as the named harnesses. The ``scenario``
subcommand lists the shipped suites, validates spec files with
actionable messages (unknown approaches, rejected controller options),
expands sweep matrices into their concrete scenarios, and checks
content hashes against the ``specs/HASHES.json`` pins.

Campaign flags (see :mod:`repro.campaign`): ``--jobs N`` fans the
underlying cells out across N worker processes; results are cached
content-addressed under ``--cache DIR`` (default
``~/.cache/seesaw-repro/cells``; disable with ``--no-cache``) so
re-running an experiment whose inputs and code are unchanged is
near-instant; ``--journal PATH`` appends a JSONL record per cell plus
a final summary. With ``--jobs > 1`` the cells are scheduled
longest-first over a warm work-stealing worker pool (see
:mod:`repro.campaign.scheduler`).

Resume (see :mod:`repro.campaign.resume`): a journal written by
``run --journal`` is a replayable ledger. If the campaign is killed —
even with SIGKILL — ``campaign resume <journal>`` re-enters it:
completed cells are served from the recorded cache (never recomputed),
in-flight and pending cells execute normally, and the merged results
are bit-identical to an uninterrupted run. ``campaign status`` prints
the ledger without running anything.

Tracing (see :mod:`repro.telemetry`): ``run ... --trace PATH`` records
spans/counters from every layer of the in-process runs into a Chrome
``trace_event`` JSON that opens in ``chrome://tracing`` / Perfetto;
``trace`` runs a purpose-built small in-situ job under any registered
approach — including the experimental ``seesaw-exploring`` and
``seesaw-hierarchical`` — and writes its trace plus a per-phase
time/power summary.

Observability (see :mod:`repro.metrics`): ``run ... --metrics PATH``
collects streaming histograms/counters/gauges over the in-process runs
and writes a report (JSON for ``.json`` paths, Prometheus text
otherwise); ``run ... --audit PATH`` journals every controller decision
to JSONL. ``audit replay`` re-executes a journal's decisions from their
recorded inputs and verifies the cap schedule (exit 1 on mismatch);

Fault injection (see :mod:`repro.faults`): ``run ... --faults SPEC``
installs a declarative fault plan (JSON path or the compact
``kind@START+DUR[xMAG][:rankN]`` DSL) over the in-process runs;
``run ... --chaos-seed N`` samples a seed-replayable plan instead.
Faulted runs bypass the cell cache so poisoned results never persist.
``trace`` accepts the same two flags plus ``--audit PATH``, giving a
DES-backed faulted job whose holds show up in ``audit replay``.
The ``chaos`` subcommand sweeps a controllers × fault-kinds matrix —
declared as a scenario matrix, dump it with ``--matrix-out`` — and
reports completion/slowdown/allocation-stability per cell (exit 1 when
a cell crashes, breaches the budget, or regresses past the threshold);
``audit diff`` compares two journals decision-by-decision (exit 1 iff
they diverge); ``audit timeline`` renders the Fig. 1/2-style power
split in the terminal. ``bench capture``/``bench check`` maintain the
benchmark-regression baselines (see :mod:`repro.metrics.bench`).
"""

from __future__ import annotations

from repro.experiments.cli.app import main
from repro.experiments.cli.common import (
    QUICK_OVERRIDES,
    _build_engine,
    _first_doc_line,
    _harness_kwargs,
    _jsonable,
    _run_one,
)

__all__ = ["main"]
