"""The ``scenario`` subcommand: list / validate / expand / hash specs.

These verbs operate on the declarative scenario layer
(:mod:`repro.scenario`): the shipped suite files under ``specs/``, or
any user spec file. ``hash --check`` is the CI drift gate — it fails
when a shipped suite's content hash no longer matches the pin in
``specs/HASHES.json`` (regenerate both with ``tools/gen_specs.py``).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

__all__ = ["_cmd_scenario"]


def _shipped_suite_paths() -> list[Path]:
    from repro.scenario import specs_dir

    root = specs_dir()
    if not root.is_dir():
        return []
    return sorted(
        p for p in root.glob("*.json") if p.name != "HASHES.json"
    )


def _resolve(token: str):
    """A CLI operand is either a spec-file path or a shipped suite name."""
    from repro.scenario import load_spec_file, spec_path

    path = Path(token)
    if not path.is_file() and "/" not in token and not token.endswith(".json"):
        path = spec_path(token)
    return load_spec_file(path)


def _cmd_scenario(args) -> int:
    from repro.scenario import SpecError

    try:
        if args.scenario_cmd == "list":
            return _scenario_list(args)
        if args.scenario_cmd == "validate":
            return _scenario_validate(args)
        if args.scenario_cmd == "expand":
            return _scenario_expand(args)
        return _scenario_hash(args)
    except SpecError as exc:
        print(str(exc), file=sys.stderr)
        return 2


def _scenario_list(args) -> int:
    from repro.scenario import load_spec_file

    if args.suite is not None:
        suite = _resolve(args.suite)
        for spec in suite:
            print(spec.name)
        return 0
    paths = _shipped_suite_paths()
    if not paths:
        print("no shipped spec files found (see SEESAW_SPECS_DIR)", file=sys.stderr)
        return 2
    width = max(len(p.stem) for p in paths)
    for path in paths:
        suite = load_spec_file(path)
        shape = "sweep" if suite.matrix is not None else "suite"
        print(
            f"{suite.name:<{width}}  {len(suite):>3} scenario(s)  "
            f"[{shape}]  {path}"
        )
    return 0


def _scenario_validate(args) -> int:
    from repro.scenario import load_spec_file, validate_spec

    # HASHES.json is the pin file, not a spec — a `specs/*.json` glob
    # from CI sweeps it in, so skip it rather than choke on it
    paths = [
        p
        for p in (list(args.files) or _shipped_suite_paths())
        if Path(p).name != "HASHES.json"
    ]
    if not paths:
        print("nothing to validate: no spec files given or shipped", file=sys.stderr)
        return 2
    failed = False
    for path in paths:
        from repro.scenario import SpecError

        try:
            suite = load_spec_file(path)
        except SpecError as exc:
            print(str(exc), file=sys.stderr)
            failed = True
            continue
        problems = [p for s in suite for p in validate_spec(s)]
        if problems:
            failed = True
            for p in problems:
                print(f"{path}: {p}", file=sys.stderr)
        else:
            print(f"{path}: {len(suite)} scenario(s) OK")
    if failed:
        return 1
    return 0


def _scenario_expand(args) -> int:
    suite = _resolve(args.file)
    if args.json:
        print(json.dumps([s.to_json() for s in suite], indent=2))
    else:
        for spec in suite:
            print(spec.name)
    return 0


def _scenario_hash(args) -> int:
    from repro.scenario import specs_dir, suite_hash

    if args.check:
        pins_path = specs_dir() / "HASHES.json"
        if not pins_path.is_file():
            print(f"no hash pins at {pins_path}", file=sys.stderr)
            return 2
        pins = json.loads(pins_path.read_text())
        names = sorted(args.files) if args.files else sorted(pins)
        drift = False
        for name in names:
            if name not in pins:
                print(f"{name}: not pinned in {pins_path}", file=sys.stderr)
                drift = True
                continue
            try:
                actual = suite_hash(_resolve(name))
            except Exception as exc:
                print(f"{name}: cannot hash ({exc})", file=sys.stderr)
                drift = True
                continue
            if actual != pins[name]:
                print(
                    f"{name}: DRIFT — {actual[:16]}… != pinned "
                    f"{pins[name][:16]}… (re-pin with tools/gen_specs.py)",
                    file=sys.stderr,
                )
                drift = True
            else:
                print(f"{name}: ok")
        unpinned = sorted(
            p.stem for p in _shipped_suite_paths() if p.stem not in pins
        )
        if not args.files and unpinned:
            for name in unpinned:
                print(f"{name}: shipped but not pinned", file=sys.stderr)
            drift = True
        return 1 if drift else 0

    tokens = args.files or [p.stem for p in _shipped_suite_paths()]
    if not tokens:
        print("nothing to hash: no spec files given or shipped", file=sys.stderr)
        return 2
    for token in tokens:
        suite = _resolve(token)
        print(f"{suite_hash(suite)}  {suite.name}")
    return 0
