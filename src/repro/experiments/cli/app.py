"""Entry point and dispatch for ``seesaw-experiments``."""

from __future__ import annotations

import os
import sys

from repro.experiments.cli.parser import build_parser

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    try:
        return _main(argv)
    except BrokenPipeError:
        # The reader side of stdout went away (`... | head`, a closed
        # pager). Point stdout at devnull so interpreter shutdown does
        # not warn about the unflushable buffer, and exit with the
        # conventional 128+SIGPIPE code instead of a traceback.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141


def _main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        from repro.experiments.cli.run import _cmd_list

        return _cmd_list()

    if args.command == "trace":
        if args.steps < 1 or args.ranks < 1:
            parser.error("--steps and --ranks must be >= 1")
        from repro.experiments.cli.trace import _cmd_trace

        return _cmd_trace(args)

    if args.command == "audit":
        from repro.experiments.cli.audit import _cmd_audit

        return _cmd_audit(args)

    if args.command == "chaos":
        if args.steps < 1 or args.ranks < 1:
            parser.error("--steps and --ranks must be >= 1")
        from repro.experiments.cli.chaos import _cmd_chaos

        return _cmd_chaos(args)

    if args.command == "bench":
        from repro.experiments.cli.bench import _cmd_bench

        return _cmd_bench(args)

    if args.command == "scenario":
        from repro.experiments.cli.scenario import _cmd_scenario

        return _cmd_scenario(args)

    if args.command == "campaign":
        if args.campaign_cmd == "resume" and args.jobs is not None and args.jobs < 1:
            parser.error("--jobs must be >= 1")
        if args.campaign_cmd == "watch":
            if args.interval <= 0:
                parser.error("--interval must be > 0")
            if args.iterations is not None and args.iterations < 1:
                parser.error("--iterations must be >= 1")
        from repro.experiments.cli.campaign import _cmd_campaign

        return _cmd_campaign(args)

    from repro.experiments.cli.run import _cmd_run

    return _cmd_run(parser, args)
