"""``python -m repro.experiments.cli`` support."""

import sys

from repro.experiments.cli import main

if __name__ == "__main__":
    sys.exit(main())
