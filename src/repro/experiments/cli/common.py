"""Shared helpers for the CLI subcommand modules."""

from __future__ import annotations

import dataclasses
import enum
import inspect
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.campaign import (
    CampaignEngine,
    CellStore,
    RunJournal,
    default_cache_dir,
)
from repro.experiments import EXPERIMENTS

__all__ = [
    "QUICK_OVERRIDES",
    "_build_engine",
    "_first_doc_line",
    "_harness_kwargs",
    "_jsonable",
    "_run_one",
]

#: parameter overrides applied by --quick where the harness accepts them
QUICK_OVERRIDES = {"n_runs": 1, "n_verlet_steps": 100}


def _jsonable(obj):
    """Best-effort conversion of a result object to JSON-safe data."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: _jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, enum.Enum):
        return _jsonable(obj.value)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.integer, np.floating)):
        return obj.item()
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (set, frozenset)):
        return sorted((_jsonable(v) for v in obj), key=repr)
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, Path):
        return str(obj)
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return repr(obj)


def _harness_kwargs(fn, overrides: dict) -> dict:
    """The subset of ``overrides`` the harness signature accepts."""
    params = inspect.signature(fn).parameters
    return {k: v for k, v in overrides.items() if k in params}


def _run_one(name: str, overrides: dict, output: Path | None) -> str:
    fn = EXPERIMENTS[name]
    kwargs = _harness_kwargs(fn, overrides)
    t0 = time.perf_counter()
    result = fn(**kwargs)
    elapsed = time.perf_counter() - t0
    rendered = result.render()
    if output is not None:
        output.mkdir(parents=True, exist_ok=True)
        (output / f"{name}.txt").write_text(rendered + "\n")
        (output / f"{name}.json").write_text(
            json.dumps(_jsonable(result), indent=2) + "\n"
        )
    return f"{rendered}\n\n[{name} regenerated in {elapsed:.1f} s]"


def _first_doc_line(fn) -> str:
    doc = inspect.getdoc(fn) or ""
    for line in doc.splitlines():
        if line.strip():
            return line.strip()
    return ""


def _build_engine(args) -> tuple[CampaignEngine, RunJournal]:
    """Campaign engine from the CLI flags (cache failures degrade)."""
    store = None
    if not args.no_cache:
        cache_dir = args.cache if args.cache is not None else default_cache_dir()
        try:
            store = CellStore(cache_dir)
        except OSError as exc:
            print(
                f"warning: cell cache disabled ({cache_dir}: {exc})",
                file=sys.stderr,
            )
    journal = RunJournal(args.journal)
    engine = CampaignEngine(
        jobs=args.jobs,
        store=store,
        journal=journal,
        progress=sys.stderr.isatty(),
    )
    return engine, journal
