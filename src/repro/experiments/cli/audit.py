"""The ``audit`` subcommand: replay / diff / timeline of journals."""

from __future__ import annotations

__all__ = ["_cmd_audit"]


def _cmd_audit(args) -> int:
    """Replay / diff / timeline over recorded controller journals."""
    from repro.metrics.audit import (
        diff_decisions,
        load_journal,
        render_timeline,
        replay,
    )

    if args.audit_cmd == "replay":
        result = replay(load_journal(args.journal))
        print(result.render())
        return 0 if result.clean else 1
    if args.audit_cmd == "diff":
        divergences = diff_decisions(
            load_journal(args.a), load_journal(args.b)
        )
        if not divergences:
            print("journals agree on every decision")
            return 0
        for d in divergences:
            print(d)
        print(f"\n{len(divergences)} divergence(s)")
        return 1
    # timeline
    print(render_timeline(load_journal(args.journal)))
    return 0
