"""The ``campaign`` subcommand: status / watch / report / resume."""

from __future__ import annotations

import contextlib
import json
import sys
from pathlib import Path

from repro.campaign import (
    CampaignEngine,
    CellStore,
    RunJournal,
    load_ledger,
    use_engine,
)
from repro.experiments import EXPERIMENTS
from repro.experiments.cli.common import _run_one

__all__ = ["_cmd_campaign"]


def _cmd_campaign(args) -> int:
    """Inspect, watch, report on, or re-enter a campaign journal."""
    if args.campaign_cmd == "watch":
        # a not-yet-created journal is watched patiently (start the
        # watch first, the sweep second), so no existence check here
        from repro.obs.watch import watch_journal

        return watch_journal(
            args.journal,
            interval=args.interval,
            iterations=args.iterations,
            once=args.once,
        )
    if not args.journal.exists():
        print(f"no journal at {args.journal}", file=sys.stderr)
        return 2
    if args.campaign_cmd == "report":
        return _cmd_campaign_report(args)
    ledger = load_ledger(args.journal)
    if args.campaign_cmd == "status":
        print(ledger.describe())
        return 0

    # resume
    meta = ledger.campaign
    if meta is None:
        print(
            "journal has no campaign header; only journals written by "
            "'run --journal PATH' are resumable",
            file=sys.stderr,
        )
        return 2
    if meta.get("faulted"):
        print(
            "campaign ran with fault injection (cache bypassed); "
            "faulted campaigns are not resumable",
            file=sys.stderr,
        )
        return 2
    cache = meta.get("cache")
    if not cache:
        print(
            "campaign ran with --no-cache, so completed cells left no "
            "reusable results; re-run it from scratch instead",
            file=sys.stderr,
        )
        return 2
    names = [n for n in meta.get("experiments", [])]
    unknown = [n for n in names if n not in EXPERIMENTS]
    if not names or unknown:
        print(
            f"journal names unknown experiment(s): {', '.join(unknown) or '(none)'}",
            file=sys.stderr,
        )
        return 2
    overrides = dict(meta.get("overrides", {}))
    jobs = args.jobs if args.jobs is not None else int(meta.get("jobs", 1))
    previously = len(ledger.completed)
    in_flight = len(ledger.in_flight)
    cid = meta.get("id", "?")
    print(
        f"[resuming campaign {cid}: {previously} cells complete, "
        f"{in_flight} were in flight]",
        file=sys.stderr,
    )

    journal = RunJournal(args.journal)
    journal.resume(cid, previously_completed=previously, in_flight=in_flight)
    engine = CampaignEngine(
        jobs=jobs,
        store=CellStore(Path(cache)),
        journal=journal,
        progress=sys.stderr.isatty(),
    )
    engine.obs.campaign_id = cid
    scopes = contextlib.ExitStack()
    if meta.get("no_shared_replica"):
        from repro.insitu import use_shared_replica

        scopes.enter_context(use_shared_replica(False))
    output = Path(meta["output"]) if meta.get("output") else None
    try:
        with scopes, use_engine(engine):
            for name in names:
                print(_run_one(name, overrides, output))
                print()
        journal.summary(jobs=jobs, experiments=names, resumed=True)
    finally:
        engine.close()
        journal.close()
    c = engine.journal.counts
    print(
        f"[campaign {cid} resumed: {c['hits']} cells served from the "
        f"cache, {c['misses']} executed this leg]"
    )
    return 0


def _cmd_campaign_report(args) -> int:
    """``campaign report``: energy attribution from journal telemetry."""
    from repro.obs.report import build_report, load_report_records, render_text

    campaign, telemetry = load_report_records(args.journal)
    report = build_report(telemetry, campaign=campaign)
    if not telemetry:
        print(
            "journal has no telemetry rows (campaign ran with "
            f"SEESAW_OBS_SHIP=0, --jobs 1 without --trace, or predates "
            f"shipping); report will be empty",
            file=sys.stderr,
        )
    if args.format == "json":
        text = json.dumps(report.to_json(), indent=2, sort_keys=True) + "\n"
    elif args.format == "html":
        from repro.obs.html import render_html

        text = render_html(report)
    else:
        text = render_text(report) + "\n"
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(text)
        print(f"[campaign report ({args.format}) -> {args.out}]")
    else:
        sys.stdout.write(text)
    return 0
