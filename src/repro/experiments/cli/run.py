"""The ``run`` and ``list`` subcommands.

``run`` executes either a named experiment harness (``run fig4``) or a
declarative spec file (``run --spec specs/fig4.json``); both paths go
through the same campaign engine, ambient-scope plumbing, and artifact
writing, so every flag (``--jobs``, ``--cache``, ``--trace``, ...)
behaves identically.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.campaign import campaign_id, campaign_meta, use_engine
from repro.experiments import EXPERIMENTS
from repro.experiments.cli.common import (
    QUICK_OVERRIDES,
    _build_engine,
    _first_doc_line,
    _jsonable,
    _run_one,
)
from repro.telemetry import ChromeTraceSink, Tracer, use_tracer

__all__ = ["_cmd_list", "_cmd_run"]


def _cmd_list() -> int:
    """``list``: every experiment, its one-line doc, and its spec file."""
    from repro.scenario import spec_path

    width = max(len(n) for n in EXPERIMENTS)
    for name in sorted(EXPERIMENTS):
        line = f"{name:<{width}}  {_first_doc_line(EXPERIMENTS[name])}"
        if spec_path(name).is_file():
            line += f"  [specs/{name}.json]"
        print(line)
    return 0


def _load_run_suite(path: Path):
    """Load + validate a ``run --spec`` file; (suite, None) or (None, rc)."""
    from repro.scenario import SpecError, load_spec_file, validate_spec

    try:
        suite = load_spec_file(path)
    except SpecError as exc:
        print(str(exc), file=sys.stderr)
        return None, 2
    problems = [p for s in suite for p in validate_spec(s)]
    if problems:
        for p in problems:
            print(f"invalid spec: {p}", file=sys.stderr)
        return None, 2
    return suite, None


def _run_spec_suite(suite, overrides: dict, output: Path | None) -> str:
    """Execute every scenario of a loaded suite through the engine.

    Paired scenarios (``baseline_sim_share`` set) report the median
    improvement over their static baseline; plain scenarios report the
    median total runtime. ``--quick``/``--runs`` map onto ``repeats``
    and ``n_verlet_steps`` just as they do for the named harnesses.
    """
    from repro.experiments.runner import run_scenario, scenario_improvement

    t0 = time.perf_counter()
    rows: list[tuple[str, str]] = []
    payload: list[dict] = []
    for spec in suite:
        if "n_runs" in overrides:
            spec = dataclasses.replace(spec, repeats=overrides["n_runs"])
        if "n_verlet_steps" in overrides:
            spec = spec.with_job(n_verlet_steps=overrides["n_verlet_steps"])
        if spec.baseline_sim_share is not None:
            imp = scenario_improvement(spec)
            rows.append(
                (
                    spec.name,
                    f"{imp:+.2f} % vs static (median of {spec.repeats})",
                )
            )
            payload.append(
                {
                    "name": spec.name,
                    "mode": "paired",
                    "repeats": spec.repeats,
                    "improvement_pct": imp,
                }
            )
        else:
            times = [r.total_time_s for r in run_scenario(spec)]
            label = f"{float(np.median(times)):.3f} s"
            if len(times) > 1:
                label += f" (median of {len(times)})"
            rows.append((spec.name, label))
            payload.append(
                {
                    "name": spec.name,
                    "mode": "plain",
                    "total_time_s": times,
                }
            )
    elapsed = time.perf_counter() - t0
    width = max(len(n) for n, _ in rows)
    rendered = "\n".join(
        [
            f"suite {suite.name}: {len(suite)} scenario(s)",
            *[f"{n:<{width}}  {v}" for n, v in rows],
        ]
    )
    if output is not None:
        output.mkdir(parents=True, exist_ok=True)
        (output / f"{suite.name}.txt").write_text(rendered + "\n")
        (output / f"{suite.name}.json").write_text(
            json.dumps(
                _jsonable({"suite": suite.name, "scenarios": payload}),
                indent=2,
            )
            + "\n"
        )
    return f"{rendered}\n\n[{suite.name} ran in {elapsed:.1f} s]"


def _cmd_run(parser, args) -> int:
    if args.runs is not None and args.runs < 1:
        parser.error("--runs must be >= 1")
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.faults is not None and args.chaos_seed is not None:
        parser.error("--faults and --chaos-seed are mutually exclusive")
    if args.spec is not None and args.experiment is not None:
        parser.error("give an experiment id or --spec FILE, not both")
    if args.spec is None and args.experiment is None:
        parser.error("an experiment id (or --spec FILE) is required")

    suite = None
    if args.spec is not None:
        suite, rc = _load_run_suite(args.spec)
        if suite is None:
            return rc
        names = [f"spec:{suite.name}"]
    else:
        names = (
            sorted(EXPERIMENTS)
            if args.experiment == "all"
            else [args.experiment]
        )
        unknown = [n for n in names if n not in EXPERIMENTS]
        if unknown:
            print(
                f"unknown experiment(s): {', '.join(unknown)}",
                file=sys.stderr,
            )
            print(
                f"available: {', '.join(sorted(EXPERIMENTS))}",
                file=sys.stderr,
            )
            return 2

    overrides = dict(QUICK_OVERRIDES) if args.quick else {}
    if args.runs is not None:
        overrides["n_runs"] = args.runs

    if args.jobs > 1 and (
        args.trace is not None
        or args.metrics is not None
        or args.audit is not None
    ):
        from repro.obs import shipping_enabled

        if not shipping_enabled():
            print(
                "warning: SEESAW_OBS_SHIP=0 disables worker telemetry "
                "shipping; --trace/--metrics will record in-process "
                "work only (--audit always does)",
                file=sys.stderr,
            )
        elif args.audit is not None:
            print(
                "warning: --audit records in-process decisions only; "
                "pool workers ship trace/metrics but not audit rows",
                file=sys.stderr,
            )

    # One tracer can feed both the metrics registry and the Chrome
    # trace: the MetricsSink folds records and forwards to the file
    # sink, so --metrics and --trace compose.
    trace_sink = None
    registry = None
    audit_journal = None
    scopes = contextlib.ExitStack()
    if args.no_shared_replica:
        from repro.insitu import use_shared_replica

        scopes.enter_context(use_shared_replica(False))
    if args.trace is not None:
        trace_sink = ChromeTraceSink()
    if args.metrics is not None:
        from repro.metrics import MetricRegistry, MetricsSink, use_metrics

        registry = MetricRegistry()
        scopes.enter_context(use_metrics(registry))
        scopes.enter_context(
            use_tracer(Tracer(MetricsSink(registry, forward=trace_sink)))
        )
    elif trace_sink is not None:
        scopes.enter_context(use_tracer(Tracer(trace_sink)))
    if args.audit is not None:
        from repro.metrics import AuditJournal, use_audit

        audit_journal = AuditJournal(args.audit)
        scopes.enter_context(use_audit(audit_journal))
    if args.faults is not None or args.chaos_seed is not None:
        # constructed after the tracer/metrics/audit scopes: the
        # injector caches those ambients at build time
        from repro.faults import FaultInjector, FaultPlan, use_faults

        if args.faults is not None:
            try:
                plan = FaultPlan.from_spec(args.faults)
            except ValueError as exc:
                parser.error(str(exc))
        else:
            # 16 ranks covers the paper jobs' world sizes; per-rank
            # faults drawn beyond a smaller world simply never match
            plan = FaultPlan.sample(
                args.chaos_seed, n_ranks=16, horizon_s=args.chaos_horizon
            )
        scopes.enter_context(use_faults(FaultInjector(plan)))
        print(
            f"[faults: {len(plan)} event(s), kinds "
            f"{', '.join(plan.kinds) or 'none'}; cell cache bypassed]",
            file=sys.stderr,
        )

    engine, journal = _build_engine(args)
    if args.journal is not None:
        # the campaign header makes the journal a resumable ledger
        meta = campaign_meta(
            experiments=names,
            overrides=overrides,
            jobs=args.jobs,
            cache=str(engine.store.root) if engine.store is not None else None,
            output=str(args.output) if args.output is not None else None,
            no_shared_replica=args.no_shared_replica,
            faulted=args.faults is not None or args.chaos_seed is not None,
        )
        cid = campaign_id(meta)
        journal.campaign(cid, **meta)
        # shipped worker telemetry carries the campaign identity
        engine.obs.campaign_id = cid
    profiler = None
    if args.profile is not None:
        import cProfile

        profiler = cProfile.Profile()
    try:
        with scopes:
            with use_engine(engine):
                if profiler is not None:
                    profiler.enable()
                try:
                    if suite is not None:
                        print(
                            _run_spec_suite(suite, overrides, args.output)
                        )
                        print()
                    else:
                        for name in names:
                            print(_run_one(name, overrides, args.output))
                            print()
                finally:
                    if profiler is not None:
                        profiler.disable()
        journal.summary(jobs=args.jobs, experiments=names)
    finally:
        if audit_journal is not None:
            audit_journal.close()
        engine.close()
        journal.close()
    if profiler is not None:
        import io
        import pstats

        profiler.dump_stats(args.profile)
        buf = io.StringIO()
        pstats.Stats(profiler, stream=buf).sort_stats(
            "cumulative"
        ).print_stats(12)
        print(buf.getvalue(), file=sys.stderr)
        print(f"[profile -> {args.profile}]")
    if trace_sink is not None:
        path = trace_sink.write(args.trace)
        print(f"[trace: {len(trace_sink.records)} records -> {path}]")
    if registry is not None:
        registry.report().write(args.metrics)
        print(f"[metrics report -> {args.metrics}]")
    if audit_journal is not None:
        n_dec = sum(1 for r in audit_journal.records if r.kind == "decision")
        print(f"[audit: {n_dec} decisions -> {args.audit}]")
    return 0
