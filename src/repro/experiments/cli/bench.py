"""The ``bench`` subcommand: benchmark-regression baselines."""

from __future__ import annotations

import sys
from pathlib import Path

__all__ = ["_cmd_bench"]


def _cmd_bench(args) -> int:
    """Capture a benchmark baseline or check against the latest one."""
    from repro.metrics import bench

    if args.bench_cmd == "capture":
        result = bench.capture(date=args.date)
        path = bench.save(result, args.out)
        print(f"[captured {len(result.metrics)} metrics -> {path}]")
        return 0
    # check
    baseline_path = bench.latest_baseline(args.baselines)
    if baseline_path is None:
        print(f"no BENCH_*.json baseline under {args.baselines}", file=sys.stderr)
        return 2
    baseline = bench.load(baseline_path)
    current = bench.capture()
    deltas = bench.compare(baseline, current)
    print(f"baseline: {baseline_path}")
    print(bench.render_text(deltas))
    if args.out is not None:
        bench.save(current, args.out)
    if args.summary is not None:
        summary = Path(args.summary)
        summary.parent.mkdir(parents=True, exist_ok=True)
        with summary.open("a") as fh:
            fh.write(bench.render_markdown(deltas))
    regressed = [d for d in deltas if d.regressed]
    if regressed:
        print(f"\n{len(regressed)} gated metric(s) regressed", file=sys.stderr)
        return 1
    print("\nno gated regressions")
    return 0
