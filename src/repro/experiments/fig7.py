"""Figure 7: SeeSAw from unbalanced initial power distributions.

Paper setup (§VII-C3): 128 nodes, all analyses, dim=36, w=2, j=1; three
jobs whose *static baseline* keeps the initial split for the whole run:
simulation-heavy (120/100 W), analysis-heavy (100/120 W) and equal
(110/110 W). The paper's medians of 3: 28.26 %, 19.21 % and 8.94 %
improvement — SeeSAw recovers from any starting distribution, and the
analysis-heavy baseline wastes the analysis's extra power because it
waits on the throttled simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.experiments.report import format_table, heading
from repro.experiments.runner import scenario_improvement
from repro.scenario import load_suite

__all__ = ["Fig7Result", "run_fig7"]

#: (label, sim watts, ana watts) out of the 220 W per node pair
STARTS = (
    ("sim-heavy (S 120 / A 100)", 120.0, 100.0),
    ("ana-heavy (S 100 / A 120)", 100.0, 120.0),
    ("equal (S 110 / A 110)", 110.0, 110.0),
)


@dataclass
class Fig7Result:
    #: {label: median % improvement over the matching static split}
    improvements: dict = field(default_factory=dict)

    def render(self) -> str:
        rows = [(label, imp) for label, imp in self.improvements.items()]
        return "\n".join(
            [
                heading(
                    "Figure 7: unbalanced initial power, 128 nodes, all "
                    "analyses, dim=36, w=2, j=1 (median of 3)"
                ),
                format_table(
                    ["initial distribution", "SeeSAw improvement %"],
                    rows,
                    float_fmt="{:+.2f}",
                ),
            ]
        )


def run_fig7(
    n_runs: int = 3,
    n_verlet_steps: int = 400,
    window: int = 2,
    seed: int = 7,
) -> Fig7Result:
    """Regenerate Figure 7's improvement numbers (specs/fig7.json).

    The unbalanced starting shares (and the matching static baseline
    shares) are declared in the shipped scenarios.
    """
    result = Fig7Result()
    for spec in load_suite("fig7"):
        spec = (
            replace(spec, repeats=n_runs)
            .with_job(n_verlet_steps=n_verlet_steps, seed=seed)
            .with_controller(window=window)
        )
        result.improvements[spec.extras["label"]] = scenario_improvement(
            spec
        )
    return result
