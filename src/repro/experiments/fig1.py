"""Figure 1: power trace exposing periodic simulation↔analysis
synchronization.

The paper's opening figure samples per-node power every 200 ms for a
LAMMPS run with in-situ analysis on separate nodes and shows the
analysis idling near ~105 W between its activity spikes — the unused
power SeeSAw harvests. We run the static baseline with trace collection
on and sample both partitions' mean-node traces at the same period.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.report import heading
from repro.experiments.runner import build_controller
from repro.scenario import get_workload, load_suite
from repro.util.term import sparkline

__all__ = ["Fig1Result", "run_fig1"]


@dataclass
class Fig1Result:
    times_s: np.ndarray
    sim_watts: np.ndarray
    ana_watts: np.ndarray
    sample_period_s: float

    @property
    def ana_idle_watts(self) -> float:
        """Power level of the analysis idle plateau (low quartile)."""
        return float(np.percentile(self.ana_watts, 20))

    @property
    def ana_active_watts(self) -> float:
        return float(np.percentile(self.ana_watts, 90))

    def render(self) -> str:
        lines = [
            heading("Figure 1: partial power trace (static baseline)"),
            f"samples: {len(self.times_s)} at {self.sample_period_s*1e3:.0f} ms",
            f"analysis idle plateau : {self.ana_idle_watts:6.1f} W"
            "   (paper: ~105 W)",
            f"analysis active level : {self.ana_active_watts:6.1f} W",
            f"simulation mean       : {float(self.sim_watts.mean()):6.1f} W",
            "",
            sparkline(self.ana_watts, label="analysis W"),
            sparkline(self.sim_watts, label="simulation W"),
        ]
        return "\n".join(lines)


def run_fig1(
    analyses: tuple[str, ...] = ("full_msd",),
    dim: int = 16,
    n_nodes: int = 128,
    n_verlet_steps: int = 40,
    seed: int = 5,
) -> Fig1Result:
    """Regenerate the Figure 1 trace (first ~10 synchronizations)."""
    spec = load_suite("fig1").specs[0].with_job(
        analyses=tuple(analyses),
        dim=dim,
        n_nodes=n_nodes,
        n_verlet_steps=n_verlet_steps,
        seed=seed,
    )
    cfg = spec.job.to_job_config()
    controller = build_controller(spec.approach, cfg)
    res = get_workload(spec.workload).fn(cfg, controller)
    period = cfg.machine.sensor_period_s
    from repro.power.trace import sample_trace

    t_sim, w_sim = sample_trace(res.sim_trace, period)
    t_ana, w_ana = sample_trace(res.ana_trace, period)
    n = min(len(t_sim), len(t_ana))
    return Fig1Result(
        times_s=t_sim[:n],
        sim_watts=w_sim[:n],
        ana_watts=w_ana[:n],
        sample_period_s=period,
    )
