"""Plain-text rendering of experiment results.

Every experiment harness returns a dataclass with a ``render()`` that
produces an aligned ASCII table; this module holds the shared helpers
so all tables look alike in the terminal and in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "heading"]


def heading(title: str) -> str:
    bar = "=" * len(title)
    return f"{title}\n{bar}"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_fmt: str = "{:.2f}",
) -> str:
    """Render an aligned table; floats go through ``float_fmt``."""
    str_rows: list[list[str]] = []
    for row in rows:
        str_rows.append(
            [
                float_fmt.format(cell) if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    lines = [fmt_row(list(headers)), fmt_row(["-" * w for w in widths])]
    lines.extend(fmt_row(r) for r in str_rows)
    return "\n".join(lines)
