"""Figure 5: allocated vs measured power at 1024 nodes (all analyses).

Paper observations (§VII-B3):

* 5a — SeeSAw allocates more power to the analysis partition; the
  simulation side stays well below what it received on 128 nodes for
  the same workload (lower utilization at scale);
* 5b — the time-aware approach drives the allocation to δ_min in the
  wrong direction; measured power sits far below the allocated caps and
  the normalized slack is "incidentally low" while performance is
  severely degraded.

We report, per approach, the settled allocated caps, the measured
power, the gap between them, and the mean slack.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.experiments.fig4 import StepSeries
from repro.experiments.report import format_table, heading
from repro.experiments.runner import run_scenario
from repro.scenario import load_suite

__all__ = ["Fig5Result", "run_fig5"]


@dataclass
class Fig5Result:
    seesaw: StepSeries
    time_aware: StepSeries
    seesaw_at_128: StepSeries
    baseline_time_s: float
    seesaw_time_s: float
    time_aware_time_s: float

    def render(self) -> str:
        def row(s: StepSeries, total: float):
            sim_cap, ana_cap = s.settled_caps()
            return (
                s.approach,
                sim_cap,
                ana_cap,
                float(s.sim_power_w[-50:].mean()),
                float(s.ana_power_w[-50:].mean()),
                100.0 * s.mean_slack_from(10),
                100.0 * (self.baseline_time_s - total) / self.baseline_time_s,
            )

        sim128, _ = self.seesaw_at_128.settled_caps()
        return "\n".join(
            [
                heading(
                    "Figure 5: allocated vs measured power, 1024 nodes, "
                    "all analyses"
                ),
                format_table(
                    [
                        "approach",
                        "alloc sim W",
                        "alloc ana W",
                        "meas sim W",
                        "meas ana W",
                        "slack %",
                        "improvement %",
                    ],
                    [
                        row(self.seesaw, self.seesaw_time_s),
                        row(self.time_aware, self.time_aware_time_s),
                    ],
                ),
                "",
                f"SeeSAw sim allocation on 128 nodes, same workload: "
                f"{sim128:.1f} W/node (paper: fluctuates 109-115 W)",
            ]
        )


def run_fig5(
    dim: int = 36,
    n_verlet_steps: int = 400,
    seed: int = 17,
) -> Fig5Result:
    """Regenerate Figure 5's comparison (specs/fig5.json)."""
    suite = load_suite("fig5")

    def result(name: str):
        spec = suite.get(name).with_job(
            dim=dim, n_verlet_steps=n_verlet_steps, seed=seed
        )
        return run_scenario(spec)[0]

    baseline = result("static-n1024")
    seesaw = result("seesaw-n1024")
    time_aware = result("time-aware-n1024")
    seesaw128 = result("seesaw-n128")
    return Fig5Result(
        seesaw=StepSeries.from_result(seesaw),
        time_aware=StepSeries.from_result(time_aware),
        seesaw_at_128=StepSeries.from_result(seesaw128),
        baseline_time_s=baseline.total_time_s,
        seesaw_time_s=seesaw.total_time_s,
        time_aware_time_s=time_aware.total_time_s,
    )
