"""Figure 9: overhead of SeeSAw's power allocation.

Two panels (§VII-E):

* 9a — relative overhead: the allocation's cost (measurement exchange
  + decision + broadcast) as a percentage of each synchronization
  interval, at 128 and 1024 nodes (dim=48, all analyses, w=1, j=1).
  Communication costs grow with node count, but the larger job's longer
  intervals make the *relative* overhead smaller — the paper's stated
  result.
* 9b — absolute duration of a stand-alone SeeSAw invocation across
  power caps; dominated by the measurement collectives plus RAPL's
  ~10 ms actuation, and essentially cap-independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.report import format_table, heading
from repro.experiments.runner import run_scenario
from repro.scenario import load_suite
from repro.workloads.lammps_proxy import _overhead_s

__all__ = ["Fig9Result", "run_fig9"]


@dataclass
class Fig9Result:
    #: {nodes: (mean overhead %, mean overhead s, mean interval s)}
    relative: dict = field(default_factory=dict)
    #: {cap watts: stand-alone invocation seconds (incl. actuation)}
    absolute: dict = field(default_factory=dict)

    def render(self) -> str:
        rel_rows = [
            (nodes, 100.0 * pct, ovh * 1e3, interval)
            for nodes, (pct, ovh, interval) in self.relative.items()
        ]
        abs_rows = [
            (f"{cap:.0f} W", dur * 1e3) for cap, dur in self.absolute.items()
        ]
        return "\n".join(
            [
                heading("Figure 9a: allocation overhead per synchronization"),
                format_table(
                    ["nodes", "overhead %", "overhead ms", "interval s"],
                    rel_rows,
                    float_fmt="{:.3f}",
                ),
                "",
                heading("Figure 9b: stand-alone SeeSAw invocation duration"),
                format_table(
                    ["power cap", "duration ms"], abs_rows, float_fmt="{:.2f}"
                ),
            ]
        )


def run_fig9(
    node_counts: tuple[int, ...] = (128, 1024),
    caps: tuple[float, ...] = (98.0, 110.0, 130.0, 160.0, 215.0),
    n_verlet_steps: int = 100,
    seed: int = 99,
) -> Fig9Result:
    """Regenerate both overhead panels (specs/fig9.json).

    The shipped suite carries the 9a runs (``extras.panel == "9a"``)
    and the 9b model points (``"9b"``, analytic — nothing executed).
    """
    suite = load_suite("fig9")
    by_panel = {"9a": [], "9b": []}
    for spec in suite:
        by_panel[spec.extras["panel"]].append(spec)
    result = Fig9Result()
    for nodes in node_counts:
        spec = by_panel["9a"][0].with_job(
            n_nodes=nodes, n_verlet_steps=n_verlet_steps, seed=seed
        )
        res = run_scenario(spec)[0]
        overheads = np.array([r.overhead_s for r in res.records])
        intervals = np.array([r.interval_s for r in res.records])
        result.relative[nodes] = (
            float((overheads / intervals).mean()),
            float(overheads.mean()),
            float(intervals.mean()),
        )
    # 9b: stand-alone loop — the collective exchange + decision cost
    # plus the RAPL actuation latency, across caps (the arithmetic is
    # cap-independent; RAPL's reaction dominates, as on Theta).
    for cap in caps:
        cfg = (
            by_panel["9b"][0]
            .with_job(budget_per_node_w=cap, seed=seed)
            .job.to_job_config()
        )
        result.absolute[cap] = (
            _overhead_s(cfg) + cfg.machine.rapl_actuation_s
        )
    return result
