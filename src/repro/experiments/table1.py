"""Table I: run-to-run and job-to-job variability of LAMMPS runs.

Paper setup: 7 LAMMPS runs on 128 nodes, problem sizes dim ∈ {36, 48},
under three cap regimes — no cap, long-term 110 W, long+short 110 W —
reporting the spread of total runtimes. The paper's reading:
variability is exacerbated by power caps, and capping both RAPL windows
(which under-enforces the requested power) is the noisiest.

Run-to-run repeats the same job (same allocation: same job-wide and
per-node speed factors) with fresh transient noise; job-to-job redraws
everything.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.experiments.report import format_table, heading
from repro.experiments.runner import run_scenario
from repro.power.rapl import CapMode
from repro.scenario import load_suite
from repro.util.stats import variability_pct

__all__ = ["Table1Result", "run_table1"]

CAP_LABEL = {
    CapMode.NONE: "None",
    CapMode.LONG: "Long (110 W)",
    CapMode.LONG_SHORT: "Long and Short (110 W each)",
}


@dataclass
class Table1Result:
    #: rows of (cap label, dim, variability type, variability %)
    rows: list = field(default_factory=list)

    def variability(self, cap: CapMode, dim: int, kind: str) -> float:
        for cap_label, d, k, v in self.rows:
            if cap_label == CAP_LABEL[cap] and d == dim and k == kind:
                return v
        raise KeyError((cap, dim, kind))

    def render(self) -> str:
        return "\n".join(
            [
                heading(
                    "Table I: variability across 7 runs, LAMMPS on 128 nodes"
                ),
                format_table(
                    ["Power Cap", "dim", "Variability Type", "Variability %"],
                    self.rows,
                ),
            ]
        )


def run_table1(
    n_runs: int = 7,
    dims: tuple[int, ...] = (36, 48),
    n_verlet_steps: int = 400,
    base_seed: int = 100,
) -> Table1Result:
    """Regenerate Table I (specs/table1.json).

    The shipped suite declares one run-to-run scenario per cap/dim
    cell (``repeats=7`` → run indices 0..6 of one seed) and seven
    job-to-job scenarios (fresh seeds). Non-default arguments derive
    the same shapes from the suite's first scenario as a template.
    """
    template = load_suite("table1").specs[0]
    result = Table1Result()
    for mode in (CapMode.NONE, CapMode.LONG, CapMode.LONG_SHORT):
        for dim in dims:
            run_to_run_spec = replace(
                template.with_job(
                    dim=dim,
                    cap_mode=mode.value,
                    n_verlet_steps=n_verlet_steps,
                    seed=base_seed,
                ),
                repeats=n_runs,
            )
            run_to_run = [
                r.total_time_s for r in run_scenario(run_to_run_spec)
            ]
            job_to_job = [
                run_scenario(
                    replace(
                        template.with_job(
                            dim=dim,
                            cap_mode=mode.value,
                            n_verlet_steps=n_verlet_steps,
                            seed=base_seed + 1 + i,
                        ),
                        repeats=1,
                    )
                )[0].total_time_s
                for i in range(n_runs)
            ]
            result.rows.append(
                (
                    CAP_LABEL[mode],
                    dim,
                    "run-to-run",
                    variability_pct(run_to_run),
                )
            )
            result.rows.append(
                (
                    CAP_LABEL[mode],
                    dim,
                    "job-to-job",
                    variability_pct(job_to_job),
                )
            )
    return result
