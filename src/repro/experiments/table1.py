"""Table I: run-to-run and job-to-job variability of LAMMPS runs.

Paper setup: 7 LAMMPS runs on 128 nodes, problem sizes dim ∈ {36, 48},
under three cap regimes — no cap, long-term 110 W, long+short 110 W —
reporting the spread of total runtimes. The paper's reading:
variability is exacerbated by power caps, and capping both RAPL windows
(which under-enforces the requested power) is the noisiest.

Run-to-run repeats the same job (same allocation: same job-wide and
per-node speed factors) with fresh transient noise; job-to-job redraws
everything.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import StaticController
from repro.cluster.node import THETA_NODE
from repro.experiments.report import format_table, heading
from repro.power.rapl import CapMode
from repro.util.stats import variability_pct
from repro.workloads import JobConfig, run_job

__all__ = ["Table1Result", "run_table1"]

CAP_LABEL = {
    CapMode.NONE: "None",
    CapMode.LONG: "Long (110 W)",
    CapMode.LONG_SHORT: "Long and Short (110 W each)",
}


@dataclass
class Table1Result:
    #: rows of (cap label, dim, variability type, variability %)
    rows: list = field(default_factory=list)

    def variability(self, cap: CapMode, dim: int, kind: str) -> float:
        for cap_label, d, k, v in self.rows:
            if cap_label == CAP_LABEL[cap] and d == dim and k == kind:
                return v
        raise KeyError((cap, dim, kind))

    def render(self) -> str:
        return "\n".join(
            [
                heading(
                    "Table I: variability across 7 runs, LAMMPS on 128 nodes"
                ),
                format_table(
                    ["Power Cap", "dim", "Variability Type", "Variability %"],
                    self.rows,
                ),
            ]
        )


def _runtime(cfg: JobConfig, run_index: int) -> float:
    controller = StaticController(
        cfg.budget_w, cfg.n_sim, cfg.n_ana, THETA_NODE
    )
    return run_job(cfg, controller, run_index=run_index).total_time_s


def run_table1(
    n_runs: int = 7,
    dims: tuple[int, ...] = (36, 48),
    n_verlet_steps: int = 400,
    base_seed: int = 100,
) -> Table1Result:
    """Regenerate Table I."""
    result = Table1Result()
    for mode in (CapMode.NONE, CapMode.LONG, CapMode.LONG_SHORT):
        for dim in dims:
            def cfg_for(seed: int) -> JobConfig:
                return JobConfig(
                    analyses=("all",),
                    dim=dim,
                    n_nodes=128,
                    seed=seed,
                    cap_mode=mode,
                    n_verlet_steps=n_verlet_steps,
                )

            run_to_run = [
                _runtime(cfg_for(base_seed), run_index=i)
                for i in range(n_runs)
            ]
            job_to_job = [
                _runtime(cfg_for(base_seed + 1 + i), run_index=0)
                for i in range(n_runs)
            ]
            result.rows.append(
                (
                    CAP_LABEL[mode],
                    dim,
                    "run-to-run",
                    variability_pct(run_to_run),
                )
            )
            result.rows.append(
                (
                    CAP_LABEL[mode],
                    dim,
                    "job-to-job",
                    variability_pct(job_to_job),
                )
            )
    return result
