"""Figure 2: the SeeSAw allocation idea on the paper's worked example.

A 210 W budget over two tasks: blue needs 90 W and 100 s to reach the
synchronization, red needs 120 W and 60 s — so 120 W sits unused for
40 s. SeeSAw's equations move the split so both finish together at
~77 s. (The prose says "~3 W" moves; the equations and the figure's
77 s answer agree with each other, so we report what Eq. 2 yields.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.seesaw import optimal_split
from repro.experiments.report import format_table, heading
from repro.scenario import load_suite

__all__ = ["Fig2Result", "run_fig2"]


@dataclass
class Fig2Result:
    blue_power_w: float
    red_power_w: float
    finish_time_s: float

    def render(self) -> str:
        rows = [
            ("blue (was 90 W / 100 s)", self.blue_power_w, self.finish_time_s),
            ("red (was 120 W / 60 s)", self.red_power_w, self.finish_time_s),
        ]
        return "\n".join(
            [
                heading("Figure 2: worked example, 210 W budget"),
                format_table(
                    ["task", "new power W", "new finish s"], rows
                ),
                "",
                "paper: both tasks finish at ~77 s",
            ]
        )


def run_fig2() -> Fig2Result:
    """Regenerate Figure 2's illustrative 210 W optimal-split example.

    The worked example's numbers ride in the shipped spec's ``extras``
    (the scenario layer carries them verbatim; nothing is executed).
    """
    ex = load_suite("fig2").specs[0].extras
    blue, red = optimal_split(
        t_sim=ex["t_sim_s"],
        p_sim=ex["p_sim_w"],
        t_ana=ex["t_ana_s"],
        p_ana=ex["p_ana_w"],
        budget_w=ex["budget_w"],
    )
    # linear model: T' = T * P / P'
    finish = ex["t_sim_s"] * ex["p_sim_w"] / blue
    return Fig2Result(
        blue_power_w=blue, red_power_w=red, finish_time_s=finish
    )
