"""Figure 2: the SeeSAw allocation idea on the paper's worked example.

A 210 W budget over two tasks: blue needs 90 W and 100 s to reach the
synchronization, red needs 120 W and 60 s — so 120 W sits unused for
40 s. SeeSAw's equations move the split so both finish together at
~77 s. (The prose says "~3 W" moves; the equations and the figure's
77 s answer agree with each other, so we report what Eq. 2 yields.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.seesaw import optimal_split
from repro.experiments.report import format_table, heading

__all__ = ["Fig2Result", "run_fig2"]


@dataclass
class Fig2Result:
    blue_power_w: float
    red_power_w: float
    finish_time_s: float

    def render(self) -> str:
        rows = [
            ("blue (was 90 W / 100 s)", self.blue_power_w, self.finish_time_s),
            ("red (was 120 W / 60 s)", self.red_power_w, self.finish_time_s),
        ]
        return "\n".join(
            [
                heading("Figure 2: worked example, 210 W budget"),
                format_table(
                    ["task", "new power W", "new finish s"], rows
                ),
                "",
                "paper: both tasks finish at ~77 s",
            ]
        )


def run_fig2() -> Fig2Result:
    """Regenerate Figure 2's illustrative 210 W optimal-split example."""
    blue, red = optimal_split(
        t_sim=100.0, p_sim=90.0, t_ana=60.0, p_ana=120.0, budget_w=210.0
    )
    finish = 100.0 * 90.0 / blue  # linear model: T' = T * P / P'
    return Fig2Result(
        blue_power_w=blue, red_power_w=red, finish_time_s=finish
    )
