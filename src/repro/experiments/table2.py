"""Table II: SeeSAw with analyses running at mixed intervals.

Paper setup (§VII-C2): LAMMPS with RDF, full MSD and VACF on 128 nodes
(dim=16, w=1); one experiment varies full MSD's invocation interval
j ∈ {4, 20, 100} while RDF and VACF run every step, the other varies
VACF's interval while full MSD and RDF run every step. Power is
allocated at every synchronization.

Expected shape: varying the high-demand full MSD makes w=1 SeeSAw too
reactive to the now-anomalous MSD steps — improvement collapses as the
interval grows (5.03 → 0.94 → 0.90 % in the paper); varying the
low-demand VACF barely matters (16.76 / 15.09 / 16.24 %).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.experiments.report import format_table, heading
from repro.experiments.runner import scenario_improvement
from repro.scenario import load_suite

__all__ = ["Table2Result", "run_table2"]

WORKLOAD = ("rdf", "full_msd", "vacf")


@dataclass
class Table2Result:
    j_values: tuple
    msd_rows: dict = field(default_factory=dict)  # {j: improvement %}
    vacf_rows: dict = field(default_factory=dict)
    #: MSD-varied with the paper's recommended fix (w >= 2)
    msd_rows_w2: dict = field(default_factory=dict)

    def spread(self, rows: dict) -> float:
        vals = list(rows.values())
        return max(vals) - min(vals)

    def render(self) -> str:
        rows = [
            ["MSD varied, w=1"] + [self.msd_rows[j] for j in self.j_values],
            ["MSD varied, w=2"]
            + [self.msd_rows_w2[j] for j in self.j_values],
            ["VACF varied, w=1"]
            + [self.vacf_rows[j] for j in self.j_values],
        ]
        return "\n".join(
            [
                heading(
                    "Table II: SeeSAw % improvement with mixed analysis "
                    "intervals, 128 nodes, dim=16 (median of 3)"
                ),
                format_table(
                    ["varied analysis", *[f"j={j}" for j in self.j_values]],
                    rows,
                    float_fmt="{:+.2f}",
                ),
            ]
        )


def run_table2(
    j_values: tuple[int, ...] = (4, 20, 100),
    n_runs: int = 3,
    n_verlet_steps: int = 400,
    seed: int = 77,
) -> Table2Result:
    """Regenerate Table II (specs/table2.json), plus the paper's
    recommended w=2 fix for the high-demand infrequent case (§VII-C2's
    closing sentence)."""
    template = load_suite("table2").specs[0]
    result = Table2Result(j_values=j_values)
    cases = (
        ("full_msd", 1, result.msd_rows),
        ("full_msd", 2, result.msd_rows_w2),
        ("vacf", 1, result.vacf_rows),
    )
    for varied, window, rows in cases:
        for j in j_values:
            spec = replace(
                template.with_job(
                    n_verlet_steps=n_verlet_steps,
                    seed=seed,
                    analysis_intervals={varied: j},
                ),
                repeats=n_runs,
                controller={"window": window},
                extras={"varied": varied},
            )
            rows[j] = scenario_improvement(spec)
    return result
