"""Figure 3: performance of SeeSAw / time-aware / power-aware vs the
static baseline across analyses (3a) and scales (3b).

Paper setup (§VII-B): w=1, j=1; each bar is the median of 3 runs of the
percentage runtime difference against the paired baseline. Figure 3a
runs each analysis on 128 nodes (full MSD and its subcomponents at the
memory-bound dim=16; RDF/VACF/all at larger problem sizes); Figure 3b
scales full MSD, the *all* mix and VACF to 256–1024 nodes.

Headline shapes to reproduce: power-aware negative everywhere (down to
~-25 %); time-aware positive on low-demand analyses at 128 nodes (up to
~+13 %) but negative on full MSD and at scale (down to ~-60 %); SeeSAw
positive everywhere (~+4-30 %).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field, replace

from repro.experiments.report import format_table, heading
from repro.experiments.runner import scenario_improvement
from repro.scenario import JobParams, ScenarioSpec, load_suite

__all__ = [
    "Fig3Result",
    "FIG3A_CASES",
    "FIG3B_CASES",
    "case_specs",
    "run_fig3a",
    "run_fig3b",
]

#: (label, analyses, dim) on 128 nodes — Figure 3a
FIG3A_CASES = (
    ("full MSD (dim 16)", ("full_msd",), 16),
    ("MSD1D (dim 16)", ("msd1d",), 16),
    ("MSD2D (dim 16)", ("msd2d",), 16),
    ("RDF (dim 36)", ("rdf",), 36),
    ("VACF (dim 36)", ("vacf",), 36),
    ("all (dim 36)", ("all",), 36),
    ("all (dim 48)", ("all",), 48),
)

#: (label, analyses, dim, nodes) — Figure 3b
FIG3B_CASES = (
    ("full MSD (dim 16)", ("full_msd",), 16, 256),
    ("full MSD (dim 16)", ("full_msd",), 16, 512),
    ("full MSD (dim 16)", ("full_msd",), 16, 1024),
    ("all (dim 48)", ("all",), 48, 256),
    ("all (dim 48)", ("all",), 48, 512),
    ("all (dim 48)", ("all",), 48, 1024),
    ("VACF (dim 48)", ("vacf",), 48, 256),
    ("VACF (dim 48)", ("vacf",), 48, 512),
    ("VACF (dim 48)", ("vacf",), 48, 1024),
)

MANAGED = ("seesaw", "time-aware", "power-aware")


@dataclass
class Fig3Result:
    title: str
    #: rows of (label, nodes, {approach: improvement %})
    rows: list = field(default_factory=list)

    def improvement(self, label: str, nodes: int, approach: str) -> float:
        for row_label, row_nodes, imps in self.rows:
            if row_label == label and row_nodes == nodes:
                return imps[approach]
        raise KeyError((label, nodes, approach))

    def render(self) -> str:
        table_rows = [
            (label, nodes, imps["seesaw"], imps["time-aware"], imps["power-aware"])
            for label, nodes, imps in self.rows
        ]
        return "\n".join(
            [
                heading(self.title),
                format_table(
                    [
                        "workload",
                        "nodes",
                        "SeeSAw %",
                        "time-aware %",
                        "power-aware %",
                    ],
                    table_rows,
                    float_fmt="{:+.2f}",
                ),
            ]
        )


def case_specs(suite: str, cases) -> list[ScenarioSpec]:
    """The paired scenarios a case table expands to (one per managed
    approach, in :data:`MANAGED` order) — what ``specs/fig3*.json``
    ships and what :func:`_run_cases` executes."""
    out = []
    for case in cases:
        if len(case) == 3:
            label, analyses, dim = case
            nodes = 128
        else:
            label, analyses, dim, nodes = case
        # stable per-case seed (Python's str hash is salted per process)
        offset = zlib.crc32(f"{label}/{nodes}".encode()) % 1000
        slug = f"{analyses[0]}-dim{dim}-n{nodes}"
        for approach in MANAGED:
            out.append(
                ScenarioSpec(
                    name=f"{suite}/{slug}/{approach}",
                    approach=approach,
                    baseline_sim_share=0.5,
                    repeats=3,
                    job=JobParams(
                        analyses=tuple(analyses),
                        dim=dim,
                        n_nodes=nodes,
                        n_verlet_steps=400,
                        seed=300 + offset,
                    ),
                    extras={"label": label, "seed_offset": offset},
                )
            )
    return out


def _spec_improvement(
    spec: ScenarioSpec, n_runs: int, n_verlet_steps: int, base_seed: int
) -> float:
    spec = replace(spec, repeats=n_runs).with_job(
        n_verlet_steps=n_verlet_steps,
        seed=base_seed + spec.extras["seed_offset"],
    )
    return scenario_improvement(spec)


def _collect(
    specs, title: str, n_runs: int, n_verlet_steps: int, base_seed: int
) -> Fig3Result:
    result = Fig3Result(title=title)
    for i in range(0, len(specs), len(MANAGED)):
        group = specs[i : i + len(MANAGED)]
        imps = {
            s.approach: _spec_improvement(
                s, n_runs, n_verlet_steps, base_seed
            )
            for s in group
        }
        result.rows.append(
            (group[0].extras["label"], group[0].job.n_nodes, imps)
        )
    return result


def _run_cases(
    cases, title: str, n_runs: int, n_verlet_steps: int, base_seed: int
) -> Fig3Result:
    return _collect(
        case_specs("fig3", cases), title, n_runs, n_verlet_steps, base_seed
    )


def run_fig3a(
    n_runs: int = 3, n_verlet_steps: int = 400, base_seed: int = 300
) -> Fig3Result:
    """Figure 3a: different analyses on 128 nodes (specs/fig3a.json)."""
    return _collect(
        load_suite("fig3a").specs,
        "Figure 3a: % improvement over static baseline, 128 nodes (w=1, j=1)",
        n_runs,
        n_verlet_steps,
        base_seed,
    )


def run_fig3b(
    n_runs: int = 3, n_verlet_steps: int = 400, base_seed: int = 300
) -> Fig3Result:
    """Figure 3b: workloads at 256-1024 nodes (specs/fig3b.json)."""
    return _collect(
        load_suite("fig3b").specs,
        "Figure 3b: % improvement over static baseline at scale (w=1, j=1)",
        n_runs,
        n_verlet_steps,
        base_seed,
    )
