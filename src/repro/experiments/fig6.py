"""Figure 6: sensitivity to SeeSAw's window w and LAMMPS' sync rate j.

Paper setup: 1024 nodes, dim=48, mix of analyses, 400 Verlet steps.
Expected shape (§VII-C1): allocating power frequently beats infrequent
reallocation (large w misses slack-optimization opportunities); at
j=1 a small window 1 < w < 10 mitigates over-reaction to anomalies;
when synchronizations are rare (large j) allocating at every
opportunity (w=1) is best.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.experiments.report import format_table, heading
from repro.experiments.runner import scenario_improvement
from repro.scenario import ScenarioMatrix, load_suite

__all__ = ["Fig6Result", "run_fig6"]


@dataclass
class Fig6Result:
    #: {(j, w): median % improvement over static}
    grid: dict = field(default_factory=dict)
    j_values: tuple = ()
    w_values: tuple = ()

    def improvement(self, j: int, w: int) -> float:
        return self.grid[(j, w)]

    def render(self) -> str:
        rows = []
        for j in self.j_values:
            row = [f"j={j}"]
            for w in self.w_values:
                row.append(self.grid.get((j, w), "-"))
            rows.append(row)
        return "\n".join(
            [
                heading(
                    "Figure 6: SeeSAw w x LAMMPS sync rate j, 1024 nodes, "
                    "dim=48, mix of analyses (% improvement over static)"
                ),
                format_table(
                    ["", *[f"w={w}" for w in self.w_values]],
                    rows,
                    float_fmt="{:+.2f}",
                ),
            ]
        )


def run_fig6(
    j_values: tuple[int, ...] = (1, 10, 40),
    w_values: tuple[int, ...] = (1, 2, 5, 10, 20),
    n_runs: int = 3,
    n_verlet_steps: int = 400,
    seed: int = 60,
) -> Fig6Result:
    """Regenerate the w x j sensitivity grid (specs/fig6.json).

    The shipped file declares the sweep as a :class:`ScenarioMatrix`;
    non-default arguments rebuild the matrix from its base spec.
    """
    base = replace(
        load_suite("fig6").matrix.base, repeats=n_runs
    ).with_job(n_verlet_steps=n_verlet_steps, seed=seed)
    matrix = ScenarioMatrix(
        base=base,
        axes={
            "job.j": list(j_values),
            "controller.window": list(w_values),
        },
    )
    result = Fig6Result(grid={}, j_values=j_values, w_values=w_values)
    for spec in matrix.expand():
        j, w = spec.job.j, spec.controller["window"]
        n_syncs = n_verlet_steps // j
        if w > max(n_syncs // 2, 1):
            continue  # window longer than the run: no allocations
        result.grid[(j, w)] = scenario_improvement(spec)
    return result
