"""Experiment harnesses: one module per paper table/figure.

Each ``run_*`` regenerates the corresponding result and returns a
dataclass with a ``render()`` producing the terminal table. The CLI
(``seesaw-experiments``) dispatches to these; the benchmark suite under
``benchmarks/`` wraps them for pytest-benchmark.
"""

from repro.experiments.fig1 import Fig1Result, run_fig1
from repro.experiments.fig2 import Fig2Result, run_fig2
from repro.experiments.fig3 import Fig3Result, run_fig3a, run_fig3b
from repro.experiments.fig4 import Fig4Result, run_fig4
from repro.experiments.fig5 import Fig5Result, run_fig5
from repro.experiments.fig6 import Fig6Result, run_fig6
from repro.experiments.fig7 import Fig7Result, run_fig7
from repro.experiments.fig8 import Fig8Result, run_fig8
from repro.experiments.fig9 import Fig9Result, run_fig9
from repro.experiments.runner import (
    APPROACHES,
    build_controller,
    median_improvement,
    paired_improvement,
    run_managed,
)
from repro.experiments.summary import SummaryResult, run_summary
from repro.experiments.table1 import Table1Result, run_table1
from repro.experiments.table2 import Table2Result, run_table2

__all__ = [
    "APPROACHES",
    "Fig1Result",
    "Fig2Result",
    "Fig3Result",
    "Fig4Result",
    "Fig5Result",
    "Fig6Result",
    "Fig7Result",
    "Fig8Result",
    "Fig9Result",
    "SummaryResult",
    "Table1Result",
    "Table2Result",
    "build_controller",
    "median_improvement",
    "paired_improvement",
    "run_fig1",
    "run_fig2",
    "run_fig3a",
    "run_fig3b",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_managed",
    "run_summary",
    "run_table1",
    "run_table2",
]

#: experiment registry for the CLI
EXPERIMENTS = {
    "fig1": run_fig1,
    "fig2": run_fig2,
    "fig3a": run_fig3a,
    "fig3b": run_fig3b,
    "fig4": run_fig4,
    "fig5": run_fig5,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "summary": run_summary,
    "table1": run_table1,
    "table2": run_table2,
}
