"""Command-line entry point: regenerate any paper table/figure.

Usage::

    seesaw-experiments list
    seesaw-experiments run fig4
    seesaw-experiments run all --jobs 8
    seesaw-experiments run fig3a --quick --cache /tmp/cells
    seesaw-experiments run all --output artifacts/ --journal run.jsonl
    seesaw-experiments run fig8 --trace fig8-trace.json
    seesaw-experiments trace --out trace.json --approach seesaw
    seesaw-experiments run fig4 --metrics metrics.json --audit audit.jsonl
    seesaw-experiments audit replay audit.jsonl
    seesaw-experiments audit diff a.jsonl b.jsonl
    seesaw-experiments audit timeline audit.jsonl
    seesaw-experiments bench capture --out benchmarks/baselines
    seesaw-experiments bench check --baselines benchmarks/baselines
    seesaw-experiments run fig2 --chaos-seed 7
    seesaw-experiments run fig2 --faults "slowdown@1.0+2.5x1.8:rank3"
    seesaw-experiments chaos --seed 7 --events chaos-events.jsonl
    seesaw-experiments campaign status run.jsonl
    seesaw-experiments campaign resume run.jsonl

``--quick`` trades statistical fidelity for speed (fewer Verlet steps,
single run instead of median-of-3) — useful for smoke-testing.
``--runs N`` overrides the number of repeated runs per data point.
``--output DIR`` additionally writes each experiment's rendered table
(``<name>.txt``) and a JSON dump of its raw result (``<name>.json``)
into ``DIR``.

Campaign flags (see :mod:`repro.campaign`): ``--jobs N`` fans the
underlying cells out across N worker processes; results are cached
content-addressed under ``--cache DIR`` (default
``~/.cache/seesaw-repro/cells``; disable with ``--no-cache``) so
re-running an experiment whose inputs and code are unchanged is
near-instant; ``--journal PATH`` appends a JSONL record per cell plus
a final summary. With ``--jobs > 1`` the cells are scheduled
longest-first over a warm work-stealing worker pool (see
:mod:`repro.campaign.scheduler`).

Resume (see :mod:`repro.campaign.resume`): a journal written by
``run --journal`` is a replayable ledger. If the campaign is killed —
even with SIGKILL — ``campaign resume <journal>`` re-enters it:
completed cells are served from the recorded cache (never recomputed),
in-flight and pending cells execute normally, and the merged results
are bit-identical to an uninterrupted run. ``campaign status`` prints
the ledger without running anything.

Tracing (see :mod:`repro.telemetry`): ``run ... --trace PATH`` records
spans/counters from every layer of the in-process runs into a Chrome
``trace_event`` JSON that opens in ``chrome://tracing`` / Perfetto;
``trace`` runs a purpose-built small in-situ job under any approach
and writes its trace plus a per-phase time/power summary.

Observability (see :mod:`repro.metrics`): ``run ... --metrics PATH``
collects streaming histograms/counters/gauges over the in-process runs
and writes a report (JSON for ``.json`` paths, Prometheus text
otherwise); ``run ... --audit PATH`` journals every controller decision
to JSONL. ``audit replay`` re-executes a journal's decisions from their
recorded inputs and verifies the cap schedule (exit 1 on mismatch);

Fault injection (see :mod:`repro.faults`): ``run ... --faults SPEC``
installs a declarative fault plan (JSON path or the compact
``kind@START+DUR[xMAG][:rankN]`` DSL) over the in-process runs;
``run ... --chaos-seed N`` samples a seed-replayable plan instead.
Faulted runs bypass the cell cache so poisoned results never persist.
``trace`` accepts the same two flags plus ``--audit PATH``, giving a
DES-backed faulted job whose holds show up in ``audit replay``.
The ``chaos`` subcommand sweeps a controllers × fault-kinds matrix and
reports completion/slowdown/allocation-stability per cell (exit 1 when
a cell crashes, breaches the budget, or regresses past the threshold);
``audit diff`` compares two journals decision-by-decision (exit 1 iff
they diverge); ``audit timeline`` renders the Fig. 1/2-style power
split in the terminal. ``bench capture``/``bench check`` maintain the
benchmark-regression baselines (see :mod:`repro.metrics.bench`).
"""

from __future__ import annotations

import argparse
import contextlib
import dataclasses
import enum
import inspect
import json
import os
import sys
import time
from pathlib import Path
from types import SimpleNamespace

import numpy as np

from repro.campaign import (
    CampaignEngine,
    CellStore,
    RunJournal,
    campaign_id,
    campaign_meta,
    default_cache_dir,
    load_ledger,
    use_engine,
)
from repro.experiments import EXPERIMENTS
from repro.telemetry import (
    ChromeTraceSink,
    Tracer,
    summarize,
    use_tracer,
    validate_spans,
)

__all__ = ["main"]

#: parameter overrides applied by --quick where the harness accepts them
QUICK_OVERRIDES = {"n_runs": 1, "n_verlet_steps": 100}


def _jsonable(obj):
    """Best-effort conversion of a result object to JSON-safe data."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: _jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, enum.Enum):
        return _jsonable(obj.value)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.integer, np.floating)):
        return obj.item()
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (set, frozenset)):
        return sorted((_jsonable(v) for v in obj), key=repr)
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, Path):
        return str(obj)
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return repr(obj)


def _harness_kwargs(fn, overrides: dict) -> dict:
    """The subset of ``overrides`` the harness signature accepts."""
    params = inspect.signature(fn).parameters
    return {k: v for k, v in overrides.items() if k in params}


def _run_one(name: str, overrides: dict, output: Path | None) -> str:
    fn = EXPERIMENTS[name]
    kwargs = _harness_kwargs(fn, overrides)
    t0 = time.perf_counter()
    result = fn(**kwargs)
    elapsed = time.perf_counter() - t0
    rendered = result.render()
    if output is not None:
        output.mkdir(parents=True, exist_ok=True)
        (output / f"{name}.txt").write_text(rendered + "\n")
        (output / f"{name}.json").write_text(
            json.dumps(_jsonable(result), indent=2) + "\n"
        )
    return f"{rendered}\n\n[{name} regenerated in {elapsed:.1f} s]"


def _first_doc_line(fn) -> str:
    doc = inspect.getdoc(fn) or ""
    for line in doc.splitlines():
        if line.strip():
            return line.strip()
    return ""


def _build_engine(args) -> tuple[CampaignEngine, RunJournal]:
    """Campaign engine from the CLI flags (cache failures degrade)."""
    store = None
    if not args.no_cache:
        cache_dir = args.cache if args.cache is not None else default_cache_dir()
        try:
            store = CellStore(cache_dir)
        except OSError as exc:
            print(
                f"warning: cell cache disabled ({cache_dir}: {exc})",
                file=sys.stderr,
            )
    journal = RunJournal(args.journal)
    engine = CampaignEngine(
        jobs=args.jobs,
        store=store,
        journal=journal,
        progress=sys.stderr.isatty(),
    )
    return engine, journal


def _cmd_campaign(args) -> int:
    """Inspect, watch, report on, or re-enter a campaign journal."""
    if args.campaign_cmd == "watch":
        # a not-yet-created journal is watched patiently (start the
        # watch first, the sweep second), so no existence check here
        from repro.obs.watch import watch_journal

        return watch_journal(
            args.journal,
            interval=args.interval,
            iterations=args.iterations,
            once=args.once,
        )
    if not args.journal.exists():
        print(f"no journal at {args.journal}", file=sys.stderr)
        return 2
    if args.campaign_cmd == "report":
        return _cmd_campaign_report(args)
    ledger = load_ledger(args.journal)
    if args.campaign_cmd == "status":
        print(ledger.describe())
        return 0

    # resume
    meta = ledger.campaign
    if meta is None:
        print(
            "journal has no campaign header; only journals written by "
            "'run --journal PATH' are resumable",
            file=sys.stderr,
        )
        return 2
    if meta.get("faulted"):
        print(
            "campaign ran with fault injection (cache bypassed); "
            "faulted campaigns are not resumable",
            file=sys.stderr,
        )
        return 2
    cache = meta.get("cache")
    if not cache:
        print(
            "campaign ran with --no-cache, so completed cells left no "
            "reusable results; re-run it from scratch instead",
            file=sys.stderr,
        )
        return 2
    names = [n for n in meta.get("experiments", [])]
    unknown = [n for n in names if n not in EXPERIMENTS]
    if not names or unknown:
        print(
            f"journal names unknown experiment(s): {', '.join(unknown) or '(none)'}",
            file=sys.stderr,
        )
        return 2
    overrides = dict(meta.get("overrides", {}))
    jobs = args.jobs if args.jobs is not None else int(meta.get("jobs", 1))
    previously = len(ledger.completed)
    in_flight = len(ledger.in_flight)
    cid = meta.get("id", "?")
    print(
        f"[resuming campaign {cid}: {previously} cells complete, "
        f"{in_flight} were in flight]",
        file=sys.stderr,
    )

    journal = RunJournal(args.journal)
    journal.resume(cid, previously_completed=previously, in_flight=in_flight)
    engine = CampaignEngine(
        jobs=jobs,
        store=CellStore(Path(cache)),
        journal=journal,
        progress=sys.stderr.isatty(),
    )
    engine.obs.campaign_id = cid
    scopes = contextlib.ExitStack()
    if meta.get("no_shared_replica"):
        from repro.insitu import use_shared_replica

        scopes.enter_context(use_shared_replica(False))
    output = Path(meta["output"]) if meta.get("output") else None
    try:
        with scopes, use_engine(engine):
            for name in names:
                print(_run_one(name, overrides, output))
                print()
        journal.summary(jobs=jobs, experiments=names, resumed=True)
    finally:
        engine.close()
        journal.close()
    c = engine.journal.counts
    print(
        f"[campaign {cid} resumed: {c['hits']} cells served from the "
        f"cache, {c['misses']} executed this leg]"
    )
    return 0


def _cmd_campaign_report(args) -> int:
    """``campaign report``: energy attribution from journal telemetry."""
    from repro.obs.report import build_report, load_report_records, render_text

    campaign, telemetry = load_report_records(args.journal)
    report = build_report(telemetry, campaign=campaign)
    if not telemetry:
        print(
            "journal has no telemetry rows (campaign ran with "
            f"SEESAW_OBS_SHIP=0, --jobs 1 without --trace, or predates "
            f"shipping); report will be empty",
            file=sys.stderr,
        )
    if args.format == "json":
        text = json.dumps(report.to_json(), indent=2, sort_keys=True) + "\n"
    elif args.format == "html":
        from repro.obs.html import render_html

        text = render_html(report)
    else:
        text = render_text(report) + "\n"
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(text)
        print(f"[campaign report ({args.format}) -> {args.out}]")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_trace(args) -> int:
    """Run one small fully-instrumented in-situ job; write its trace."""
    from repro.experiments.runner import APPROACHES, build_controller
    from repro.insitu import InsituConfig, run_insitu

    if args.approach not in APPROACHES:
        print(
            f"unknown approach {args.approach!r}; "
            f"choose from {', '.join(APPROACHES)}",
            file=sys.stderr,
        )
        return 2
    cfg = InsituConfig(
        n_sim_ranks=args.ranks,
        n_ana_ranks=args.ranks,
        n_verlet_steps=args.steps,
        power_cap_w=args.budget,
        seed=args.seed,
    )
    # build_controller only reads the budget/shape triple off the config
    shape = SimpleNamespace(
        budget_w=cfg.world_size * cfg.power_cap_w,
        n_sim=cfg.n_sim_ranks,
        n_ana=cfg.n_ana_ranks,
    )
    controller = build_controller(args.approach, shape)
    sink = ChromeTraceSink()
    audit_journal = None
    scopes = contextlib.ExitStack()
    scopes.enter_context(use_tracer(Tracer(sink)))
    if args.audit is not None:
        from repro.metrics import AuditJournal, use_audit

        audit_journal = AuditJournal(args.audit)
        scopes.enter_context(use_audit(audit_journal))
    if args.faults is not None and args.chaos_seed is not None:
        print("--faults and --chaos-seed are mutually exclusive", file=sys.stderr)
        return 2
    if args.faults is not None or args.chaos_seed is not None:
        # after the tracer/audit scopes: the injector caches ambients
        from repro.faults import FaultInjector, FaultPlan, use_faults

        plan = (
            FaultPlan.from_spec(args.faults)
            if args.faults is not None
            else FaultPlan.sample(args.chaos_seed, cfg.world_size)
        )
        scopes.enter_context(use_faults(FaultInjector(plan)))
    try:
        with scopes:
            result = run_insitu(cfg, controller)
    finally:
        if audit_journal is not None:
            audit_journal.close()
    if result.fault_events:
        print(f"[{len(result.fault_events)} fault marker(s) fired]")
    if audit_journal is not None:
        print(f"[audit journal -> {args.audit}]")
    problems = validate_spans(sink.records)
    if problems:
        for p in problems:
            print(f"malformed trace: {p}", file=sys.stderr)
        return 1
    path = sink.write(args.out)
    print(summarize(sink.records).render())
    print()
    print(
        f"[{args.approach}: {cfg.n_verlet_steps} steps on "
        f"2x{args.ranks} ranks, virtual time {result.virtual_time_s:.3f} s "
        f"-> {len(sink.records)} records in {path}]"
    )
    print("open in https://ui.perfetto.dev or chrome://tracing")
    return 0


def _cmd_audit(args) -> int:
    """Replay / diff / timeline over recorded controller journals."""
    from repro.metrics.audit import (
        diff_decisions,
        load_journal,
        render_timeline,
        replay,
    )

    if args.audit_cmd == "replay":
        result = replay(load_journal(args.journal))
        print(result.render())
        return 0 if result.clean else 1
    if args.audit_cmd == "diff":
        divergences = diff_decisions(
            load_journal(args.a), load_journal(args.b)
        )
        if not divergences:
            print("journals agree on every decision")
            return 0
        for d in divergences:
            print(d)
        print(f"\n{len(divergences)} divergence(s)")
        return 1
    # timeline
    print(render_timeline(load_journal(args.journal)))
    return 0


def _cmd_chaos(args) -> int:
    """Sweep the controllers × fault-kinds resilience matrix."""
    from repro.faults.chaos import DEFAULT_CONTROLLERS, run_chaos_matrix
    from repro.faults.plan import FaultKind

    controllers = (
        tuple(c.strip() for c in args.controllers.split(",") if c.strip())
        if args.controllers
        else DEFAULT_CONTROLLERS
    )
    kinds = None
    if args.kinds:
        try:
            kinds = tuple(
                FaultKind(k.strip())
                for k in args.kinds.split(",")
                if k.strip()
            )
        except ValueError as exc:
            print(
                f"{exc}; choose from "
                f"{', '.join(k.value for k in FaultKind)}",
                file=sys.stderr,
            )
            return 2
    result = run_chaos_matrix(
        controllers=controllers,
        kinds=kinds,
        seed=args.seed,
        steps=args.steps,
        ranks=args.ranks,
        budget_w=args.budget,
        events_path=args.events,
    )
    print(result.render())
    if args.events is not None:
        print(f"[fault events -> {args.events}]")
    problems = result.failures(args.fail_threshold)
    if problems:
        for p in problems:
            print(f"resilience gate: {p}", file=sys.stderr)
        return 1
    print("\nall cells within the resilience gate")
    return 0


def _cmd_bench(args) -> int:
    """Capture a benchmark baseline or check against the latest one."""
    from repro.metrics import bench

    if args.bench_cmd == "capture":
        result = bench.capture(date=args.date)
        path = bench.save(result, args.out)
        print(f"[captured {len(result.metrics)} metrics -> {path}]")
        return 0
    # check
    baseline_path = bench.latest_baseline(args.baselines)
    if baseline_path is None:
        print(f"no BENCH_*.json baseline under {args.baselines}", file=sys.stderr)
        return 2
    baseline = bench.load(baseline_path)
    current = bench.capture()
    deltas = bench.compare(baseline, current)
    print(f"baseline: {baseline_path}")
    print(bench.render_text(deltas))
    if args.out is not None:
        bench.save(current, args.out)
    if args.summary is not None:
        summary = Path(args.summary)
        summary.parent.mkdir(parents=True, exist_ok=True)
        with summary.open("a") as fh:
            fh.write(bench.render_markdown(deltas))
    regressed = [d for d in deltas if d.regressed]
    if regressed:
        print(f"\n{len(regressed)} gated metric(s) regressed", file=sys.stderr)
        return 1
    print("\nno gated regressions")
    return 0


def main(argv: list[str] | None = None) -> int:
    try:
        return _main(argv)
    except BrokenPipeError:
        # The reader side of stdout went away (`... | head`, a closed
        # pager). Point stdout at devnull so interpreter shutdown does
        # not warn about the unflushable buffer, and exit with the
        # conventional 128+SIGPIPE code instead of a traceback.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141


def _main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="seesaw-experiments",
        description="Regenerate the SeeSAw paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run_p = sub.add_parser("run", help="run one experiment (or 'all')")
    run_p.add_argument("experiment", help="experiment id or 'all'")
    run_p.add_argument(
        "--quick",
        action="store_true",
        help="fewer steps / single run for a fast smoke pass",
    )
    run_p.add_argument(
        "--runs",
        type=int,
        default=None,
        metavar="N",
        help="repeated runs per data point (overrides --quick's 1)",
    )
    run_p.add_argument(
        "--output",
        type=Path,
        default=None,
        help="directory to write <name>.txt and <name>.json artifacts",
    )
    run_p.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for cell fan-out (default: 1, serial)",
    )
    run_p.add_argument(
        "--cache",
        type=Path,
        default=None,
        metavar="DIR",
        help="cell result cache directory "
        "(default: $SEESAW_CACHE_DIR or ~/.cache/seesaw-repro/cells)",
    )
    run_p.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the cell result cache",
    )
    run_p.add_argument(
        "--journal",
        type=Path,
        default=None,
        metavar="PATH",
        help="append a JSONL journal line per cell (plus a summary)",
    )
    run_p.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="PATH",
        help="write a Chrome trace_event JSON of the in-process runs "
        "(open in chrome://tracing or Perfetto)",
    )
    run_p.add_argument(
        "--metrics",
        type=Path,
        default=None,
        metavar="PATH",
        help="collect streaming metrics over the in-process runs and "
        "write a report (.json -> JSON, otherwise Prometheus text)",
    )
    run_p.add_argument(
        "--audit",
        type=Path,
        default=None,
        metavar="PATH",
        help="journal every controller decision to a JSONL audit file "
        "(replay/diff/timeline via the 'audit' subcommand)",
    )
    run_p.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help="inject faults into the DES-backed in-process runs "
        "(analytic experiments are unaffected): a fault-plan JSON "
        "path or the DSL 'kind@START+DUR[xMAG][:rankN];...' "
        "(kinds: slowdown crash cap_drop cap_lag cap_skew meas_drop "
        "meas_stale meas_garble mpi_delay)",
    )
    run_p.add_argument(
        "--chaos-seed",
        type=int,
        default=None,
        metavar="N",
        help="sample a seed-replayable fault plan instead of --faults "
        "(same seed => byte-identical fault schedule)",
    )
    run_p.add_argument(
        "--chaos-horizon",
        type=float,
        default=20.0,
        metavar="S",
        help="virtual-time horizon the sampled plan covers "
        "(default: 20 s; only with --chaos-seed)",
    )
    run_p.add_argument(
        "--profile",
        type=Path,
        default=None,
        metavar="PATH",
        help="profile the in-process run with cProfile and dump pstats "
        "data to PATH (top hotspots go to stderr; pool workers under "
        "--jobs N are not captured)",
    )
    run_p.add_argument(
        "--no-shared-replica",
        action="store_true",
        help="disable the shared-replica fast path: every in-situ rank "
        "computes its own MD/analysis replica (bit-identical results, "
        "slower; exported to pool workers via SEESAW_SHARED_REPLICA)",
    )
    trace_p = sub.add_parser(
        "trace",
        help="run a small traced in-situ job and write a Chrome trace",
        description="Run one fully-instrumented in-situ job (real MD + "
        "analyses on simulated MPI) and export spans from the DES, "
        "controller, power, and in-situ layers as Chrome trace_event "
        "JSON, plus a per-phase time/power summary.",
    )
    trace_p.add_argument(
        "--out",
        type=Path,
        default=Path("trace.json"),
        metavar="PATH",
        help="output trace path (default: trace.json)",
    )
    trace_p.add_argument(
        "--approach",
        default="seesaw",
        help="controller to trace (default: seesaw)",
    )
    trace_p.add_argument(
        "--steps",
        type=int,
        default=6,
        metavar="N",
        help="Verlet steps (default: 6)",
    )
    trace_p.add_argument(
        "--ranks",
        type=int,
        default=2,
        metavar="N",
        help="ranks per partition (default: 2)",
    )
    trace_p.add_argument(
        "--budget",
        type=float,
        default=110.0,
        metavar="W",
        help="per-node power budget in watts (default: 110)",
    )
    trace_p.add_argument(
        "--seed", type=int, default=2020, help="job seed (default: 2020)"
    )
    trace_p.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help="inject faults into the traced job (plan JSON path or DSL)",
    )
    trace_p.add_argument(
        "--chaos-seed",
        type=int,
        default=None,
        metavar="N",
        help="sample a fault plan for the traced job instead of --faults",
    )
    trace_p.add_argument(
        "--audit",
        type=Path,
        default=None,
        metavar="PATH",
        help="journal the traced job's decisions (and fault windows / "
        "degraded-observation holds) to a JSONL audit file",
    )

    audit_p = sub.add_parser(
        "audit",
        help="replay, diff, or render recorded controller journals",
        description="Work with JSONL audit journals recorded by "
        "'run --audit PATH': re-execute every decision from its "
        "recorded inputs (replay), compare two runs decision by "
        "decision (diff), or render the power-split timeline.",
    )
    audit_sub = audit_p.add_subparsers(dest="audit_cmd", required=True)
    replay_p = audit_sub.add_parser(
        "replay", help="recompute every decision; exit 1 on any mismatch"
    )
    replay_p.add_argument("journal", type=Path, help="audit JSONL path")
    diff_p = audit_sub.add_parser(
        "diff", help="compare two journals; exit 1 iff decisions diverge"
    )
    diff_p.add_argument("a", type=Path)
    diff_p.add_argument("b", type=Path)
    timeline_p = audit_sub.add_parser(
        "timeline", help="terminal power-split timeline of one journal"
    )
    timeline_p.add_argument("journal", type=Path, help="audit JSONL path")

    chaos_p = sub.add_parser(
        "chaos",
        help="sweep controllers x fault kinds; report resilience per cell",
        description="Chaos-test the controllers: for every controller "
        "run a clean baseline, then one faulted run per fault kind "
        "under a seeded fault plan, and report completion, slowdown, "
        "allocation stability, and budget compliance per cell. Exits 1 "
        "when any cell crashes, breaches the budget, or (for "
        "non-timing faults) regresses past --fail-threshold.",
    )
    chaos_p.add_argument(
        "--seed", type=int, default=0, help="fault-plan seed (default: 0)"
    )
    chaos_p.add_argument(
        "--controllers",
        default=None,
        metavar="A,B,...",
        help="comma-separated approaches (default: all four)",
    )
    chaos_p.add_argument(
        "--kinds",
        default=None,
        metavar="K,L,...",
        help="comma-separated fault kinds (default: the full taxonomy)",
    )
    chaos_p.add_argument(
        "--steps",
        type=int,
        default=8,
        metavar="N",
        help="Verlet steps per run (default: 8)",
    )
    chaos_p.add_argument(
        "--ranks",
        type=int,
        default=2,
        metavar="N",
        help="ranks per partition (default: 2)",
    )
    chaos_p.add_argument(
        "--budget",
        type=float,
        default=110.0,
        metavar="W",
        help="per-node power budget in watts (default: 110)",
    )
    chaos_p.add_argument(
        "--events",
        type=Path,
        default=None,
        metavar="PATH",
        help="write every fired fault-marker row (tagged with its "
        "cell) as JSONL",
    )
    chaos_p.add_argument(
        "--fail-threshold",
        type=float,
        default=0.25,
        metavar="F",
        help="max tolerated fractional slowdown for non-timing fault "
        "kinds (default: 0.25)",
    )

    campaign_p = sub.add_parser(
        "campaign",
        help="inspect, watch, report on, or resume a campaign journal",
        description="Work with campaign journals written by "
        "'run --journal PATH': 'status' prints the replayable ledger "
        "(completed / in-flight cells, resumability); 'watch' tails "
        "the journal as a live in-terminal dashboard (worker "
        "utilization, steals, ETA, cache hit rate, power sparklines); "
        "'report' renders the SeeSAw-style energy attribution (joules "
        "and wall time by rank x phase x controller decision interval) "
        "as text, JSON, or self-contained HTML; 'resume' "
        "re-enters a killed campaign — completed cells are served from "
        "the recorded cell cache (never recomputed), in-flight and "
        "pending cells execute normally, and the merged results are "
        "bit-identical to an uninterrupted run.",
    )
    campaign_sub = campaign_p.add_subparsers(dest="campaign_cmd", required=True)
    status_p = campaign_sub.add_parser(
        "status", help="print the campaign ledger of one journal"
    )
    status_p.add_argument("journal", type=Path, help="campaign journal path")
    watch_p = campaign_sub.add_parser(
        "watch",
        help="live dashboard: tail a (possibly still-running) campaign",
    )
    watch_p.add_argument("journal", type=Path, help="campaign journal path")
    watch_p.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="S",
        help="refresh period in seconds (default: 1.0)",
    )
    watch_p.add_argument(
        "--iterations",
        type=int,
        default=None,
        metavar="N",
        help="stop after N frames (default: run until the summary row)",
    )
    watch_p.add_argument(
        "--once",
        action="store_true",
        help="render a single snapshot and exit",
    )
    report_p = campaign_sub.add_parser(
        "report",
        help="energy attribution report from the journal's telemetry",
    )
    report_p.add_argument("journal", type=Path, help="campaign journal path")
    report_p.add_argument(
        "--format",
        choices=("text", "json", "html"),
        default="text",
        help="output format (default: text)",
    )
    report_p.add_argument(
        "--out",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the report to PATH instead of stdout",
    )
    resume_p = campaign_sub.add_parser(
        "resume",
        help="resume a killed campaign; completed cells are never recomputed",
    )
    resume_p.add_argument("journal", type=Path, help="campaign journal path")
    resume_p.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="override the recorded worker count for the resumed leg",
    )

    bench_p = sub.add_parser(
        "bench",
        help="capture or check benchmark-regression baselines",
        description="Benchmark regression tracking: 'capture' writes a "
        "BENCH_<date>.json baseline; 'check' re-runs the collectors "
        "and compares against the latest baseline (exit 1 on a gated "
        "regression, 2 when no baseline exists).",
    )
    bench_sub = bench_p.add_subparsers(dest="bench_cmd", required=True)
    capture_p = bench_sub.add_parser(
        "capture", help="run the collectors and write a baseline"
    )
    capture_p.add_argument(
        "--out",
        type=Path,
        default=Path("benchmarks/baselines"),
        metavar="DIR",
        help="baseline directory (default: benchmarks/baselines)",
    )
    capture_p.add_argument(
        "--date",
        default=None,
        help="override the baseline date stamp (default: today)",
    )
    check_p = bench_sub.add_parser(
        "check", help="compare a fresh capture against the latest baseline"
    )
    check_p.add_argument(
        "--baselines",
        type=Path,
        default=Path("benchmarks/baselines"),
        metavar="DIR",
        help="baseline directory (default: benchmarks/baselines)",
    )
    check_p.add_argument(
        "--out",
        type=Path,
        default=None,
        metavar="DIR",
        help="also save the fresh capture into DIR (CI artifact)",
    )
    check_p.add_argument(
        "--summary",
        type=Path,
        default=None,
        metavar="PATH",
        help="append a markdown delta table (e.g. $GITHUB_STEP_SUMMARY)",
    )

    args = parser.parse_args(argv)

    if args.command == "list":
        width = max(len(n) for n in EXPERIMENTS)
        for name in sorted(EXPERIMENTS):
            print(f"{name:<{width}}  {_first_doc_line(EXPERIMENTS[name])}")
        return 0

    if args.command == "trace":
        if args.steps < 1 or args.ranks < 1:
            parser.error("--steps and --ranks must be >= 1")
        return _cmd_trace(args)

    if args.command == "audit":
        return _cmd_audit(args)

    if args.command == "chaos":
        if args.steps < 1 or args.ranks < 1:
            parser.error("--steps and --ranks must be >= 1")
        return _cmd_chaos(args)

    if args.command == "bench":
        return _cmd_bench(args)

    if args.command == "campaign":
        if args.campaign_cmd == "resume" and args.jobs is not None and args.jobs < 1:
            parser.error("--jobs must be >= 1")
        if args.campaign_cmd == "watch":
            if args.interval <= 0:
                parser.error("--interval must be > 0")
            if args.iterations is not None and args.iterations < 1:
                parser.error("--iterations must be >= 1")
        return _cmd_campaign(args)

    if args.runs is not None and args.runs < 1:
        parser.error("--runs must be >= 1")
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.faults is not None and args.chaos_seed is not None:
        parser.error("--faults and --chaos-seed are mutually exclusive")

    names = (
        sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    )
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(sorted(EXPERIMENTS))}", file=sys.stderr)
        return 2

    overrides = dict(QUICK_OVERRIDES) if args.quick else {}
    if args.runs is not None:
        overrides["n_runs"] = args.runs

    if args.jobs > 1 and (
        args.trace is not None
        or args.metrics is not None
        or args.audit is not None
    ):
        from repro.obs import shipping_enabled

        if not shipping_enabled():
            print(
                "warning: SEESAW_OBS_SHIP=0 disables worker telemetry "
                "shipping; --trace/--metrics will record in-process "
                "work only (--audit always does)",
                file=sys.stderr,
            )
        elif args.audit is not None:
            print(
                "warning: --audit records in-process decisions only; "
                "pool workers ship trace/metrics but not audit rows",
                file=sys.stderr,
            )

    # One tracer can feed both the metrics registry and the Chrome
    # trace: the MetricsSink folds records and forwards to the file
    # sink, so --metrics and --trace compose.
    trace_sink = None
    registry = None
    audit_journal = None
    scopes = contextlib.ExitStack()
    if args.no_shared_replica:
        from repro.insitu import use_shared_replica

        scopes.enter_context(use_shared_replica(False))
    if args.trace is not None:
        trace_sink = ChromeTraceSink()
    if args.metrics is not None:
        from repro.metrics import MetricRegistry, MetricsSink, use_metrics

        registry = MetricRegistry()
        scopes.enter_context(use_metrics(registry))
        scopes.enter_context(
            use_tracer(Tracer(MetricsSink(registry, forward=trace_sink)))
        )
    elif trace_sink is not None:
        scopes.enter_context(use_tracer(Tracer(trace_sink)))
    if args.audit is not None:
        from repro.metrics import AuditJournal, use_audit

        audit_journal = AuditJournal(args.audit)
        scopes.enter_context(use_audit(audit_journal))
    if args.faults is not None or args.chaos_seed is not None:
        # constructed after the tracer/metrics/audit scopes: the
        # injector caches those ambients at build time
        from repro.faults import FaultInjector, FaultPlan, use_faults

        if args.faults is not None:
            try:
                plan = FaultPlan.from_spec(args.faults)
            except ValueError as exc:
                parser.error(str(exc))
        else:
            # 16 ranks covers the paper jobs' world sizes; per-rank
            # faults drawn beyond a smaller world simply never match
            plan = FaultPlan.sample(
                args.chaos_seed, n_ranks=16, horizon_s=args.chaos_horizon
            )
        scopes.enter_context(use_faults(FaultInjector(plan)))
        print(
            f"[faults: {len(plan)} event(s), kinds "
            f"{', '.join(plan.kinds) or 'none'}; cell cache bypassed]",
            file=sys.stderr,
        )

    engine, journal = _build_engine(args)
    if args.journal is not None:
        # the campaign header makes the journal a resumable ledger
        meta = campaign_meta(
            experiments=names,
            overrides=overrides,
            jobs=args.jobs,
            cache=str(engine.store.root) if engine.store is not None else None,
            output=str(args.output) if args.output is not None else None,
            no_shared_replica=args.no_shared_replica,
            faulted=args.faults is not None or args.chaos_seed is not None,
        )
        cid = campaign_id(meta)
        journal.campaign(cid, **meta)
        # shipped worker telemetry carries the campaign identity
        engine.obs.campaign_id = cid
    profiler = None
    if args.profile is not None:
        import cProfile

        profiler = cProfile.Profile()
    try:
        with scopes:
            with use_engine(engine):
                if profiler is not None:
                    profiler.enable()
                try:
                    for name in names:
                        print(_run_one(name, overrides, args.output))
                        print()
                finally:
                    if profiler is not None:
                        profiler.disable()
        journal.summary(jobs=args.jobs, experiments=names)
    finally:
        if audit_journal is not None:
            audit_journal.close()
        engine.close()
        journal.close()
    if profiler is not None:
        import io
        import pstats

        profiler.dump_stats(args.profile)
        buf = io.StringIO()
        pstats.Stats(profiler, stream=buf).sort_stats(
            "cumulative"
        ).print_stats(12)
        print(buf.getvalue(), file=sys.stderr)
        print(f"[profile -> {args.profile}]")
    if trace_sink is not None:
        path = trace_sink.write(args.trace)
        print(f"[trace: {len(trace_sink.records)} records -> {path}]")
    if registry is not None:
        registry.report().write(args.metrics)
        print(f"[metrics report -> {args.metrics}]")
    if audit_journal is not None:
        n_dec = sum(1 for r in audit_journal.records if r.kind == "decision")
        print(f"[audit: {n_dec} decisions -> {args.audit}]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
