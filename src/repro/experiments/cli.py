"""Command-line entry point: regenerate any paper table/figure.

Usage::

    seesaw-experiments list
    seesaw-experiments run fig4
    seesaw-experiments run all
    seesaw-experiments run fig3a --quick
    seesaw-experiments run all --output artifacts/

``--quick`` trades statistical fidelity for speed (fewer Verlet steps,
single run instead of median-of-3) — useful for smoke-testing.
``--output DIR`` additionally writes each experiment's rendered table
(``<name>.txt``) and a best-effort JSON dump of its raw result
(``<name>.json``) into ``DIR``.
"""

from __future__ import annotations

import argparse
import dataclasses
import inspect
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.experiments import EXPERIMENTS

__all__ = ["main"]

#: parameter overrides applied by --quick where the harness accepts them
QUICK_OVERRIDES = {"n_runs": 1, "n_verlet_steps": 100}


def _jsonable(obj):
    """Best-effort conversion of a result object to JSON-safe data."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: _jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.integer, np.floating)):
        return obj.item()
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return repr(obj)


def _run_one(name: str, quick: bool, output: Path | None) -> str:
    fn = EXPERIMENTS[name]
    kwargs = {}
    if quick:
        params = inspect.signature(fn).parameters
        kwargs = {k: v for k, v in QUICK_OVERRIDES.items() if k in params}
    t0 = time.perf_counter()
    result = fn(**kwargs)
    elapsed = time.perf_counter() - t0
    rendered = result.render()
    if output is not None:
        output.mkdir(parents=True, exist_ok=True)
        (output / f"{name}.txt").write_text(rendered + "\n")
        (output / f"{name}.json").write_text(
            json.dumps(_jsonable(result), indent=2) + "\n"
        )
    return f"{rendered}\n\n[{name} regenerated in {elapsed:.1f} s]"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="seesaw-experiments",
        description="Regenerate the SeeSAw paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run_p = sub.add_parser("run", help="run one experiment (or 'all')")
    run_p.add_argument("experiment", help="experiment id or 'all'")
    run_p.add_argument(
        "--quick",
        action="store_true",
        help="fewer steps / single run for a fast smoke pass",
    )
    run_p.add_argument(
        "--output",
        type=Path,
        default=None,
        help="directory to write <name>.txt and <name>.json artifacts",
    )
    args = parser.parse_args(argv)

    if args.command == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0

    names = (
        sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    )
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(sorted(EXPERIMENTS))}", file=sys.stderr)
        return 2
    for name in names:
        print(_run_one(name, args.quick, args.output))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
