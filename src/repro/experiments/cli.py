"""Command-line entry point: regenerate any paper table/figure.

Usage::

    seesaw-experiments list
    seesaw-experiments run fig4
    seesaw-experiments run all --jobs 8
    seesaw-experiments run fig3a --quick --cache /tmp/cells
    seesaw-experiments run all --output artifacts/ --journal run.jsonl
    seesaw-experiments run fig8 --trace fig8-trace.json
    seesaw-experiments trace --out trace.json --approach seesaw

``--quick`` trades statistical fidelity for speed (fewer Verlet steps,
single run instead of median-of-3) — useful for smoke-testing.
``--runs N`` overrides the number of repeated runs per data point.
``--output DIR`` additionally writes each experiment's rendered table
(``<name>.txt``) and a JSON dump of its raw result (``<name>.json``)
into ``DIR``.

Campaign flags (see :mod:`repro.campaign`): ``--jobs N`` fans the
underlying cells out across N worker processes; results are cached
content-addressed under ``--cache DIR`` (default
``~/.cache/seesaw-repro/cells``; disable with ``--no-cache``) so
re-running an experiment whose inputs and code are unchanged is
near-instant; ``--journal PATH`` appends a JSONL record per cell plus
a final summary.

Tracing (see :mod:`repro.telemetry`): ``run ... --trace PATH`` records
spans/counters from every layer of the in-process runs into a Chrome
``trace_event`` JSON that opens in ``chrome://tracing`` / Perfetto;
``trace`` runs a purpose-built small in-situ job under any approach
and writes its trace plus a per-phase time/power summary.
"""

from __future__ import annotations

import argparse
import contextlib
import dataclasses
import enum
import inspect
import json
import sys
import time
from pathlib import Path
from types import SimpleNamespace

import numpy as np

from repro.campaign import (
    CampaignEngine,
    CellStore,
    RunJournal,
    default_cache_dir,
    use_engine,
)
from repro.experiments import EXPERIMENTS
from repro.telemetry import (
    ChromeTraceSink,
    Tracer,
    summarize,
    use_tracer,
    validate_spans,
)

__all__ = ["main"]

#: parameter overrides applied by --quick where the harness accepts them
QUICK_OVERRIDES = {"n_runs": 1, "n_verlet_steps": 100}


def _jsonable(obj):
    """Best-effort conversion of a result object to JSON-safe data."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: _jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, enum.Enum):
        return _jsonable(obj.value)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.integer, np.floating)):
        return obj.item()
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (set, frozenset)):
        return sorted((_jsonable(v) for v in obj), key=repr)
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, Path):
        return str(obj)
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return repr(obj)


def _harness_kwargs(fn, overrides: dict) -> dict:
    """The subset of ``overrides`` the harness signature accepts."""
    params = inspect.signature(fn).parameters
    return {k: v for k, v in overrides.items() if k in params}


def _run_one(name: str, overrides: dict, output: Path | None) -> str:
    fn = EXPERIMENTS[name]
    kwargs = _harness_kwargs(fn, overrides)
    t0 = time.perf_counter()
    result = fn(**kwargs)
    elapsed = time.perf_counter() - t0
    rendered = result.render()
    if output is not None:
        output.mkdir(parents=True, exist_ok=True)
        (output / f"{name}.txt").write_text(rendered + "\n")
        (output / f"{name}.json").write_text(
            json.dumps(_jsonable(result), indent=2) + "\n"
        )
    return f"{rendered}\n\n[{name} regenerated in {elapsed:.1f} s]"


def _first_doc_line(fn) -> str:
    doc = inspect.getdoc(fn) or ""
    for line in doc.splitlines():
        if line.strip():
            return line.strip()
    return ""


def _build_engine(args) -> tuple[CampaignEngine, RunJournal]:
    """Campaign engine from the CLI flags (cache failures degrade)."""
    store = None
    if not args.no_cache:
        cache_dir = args.cache if args.cache is not None else default_cache_dir()
        try:
            store = CellStore(cache_dir)
        except OSError as exc:
            print(
                f"warning: cell cache disabled ({cache_dir}: {exc})",
                file=sys.stderr,
            )
    journal = RunJournal(args.journal)
    engine = CampaignEngine(
        jobs=args.jobs,
        store=store,
        journal=journal,
        progress=sys.stderr.isatty(),
    )
    return engine, journal


def _cmd_trace(args) -> int:
    """Run one small fully-instrumented in-situ job; write its trace."""
    from repro.experiments.runner import APPROACHES, build_controller
    from repro.insitu import InsituConfig, run_insitu

    if args.approach not in APPROACHES:
        print(
            f"unknown approach {args.approach!r}; "
            f"choose from {', '.join(APPROACHES)}",
            file=sys.stderr,
        )
        return 2
    cfg = InsituConfig(
        n_sim_ranks=args.ranks,
        n_ana_ranks=args.ranks,
        n_verlet_steps=args.steps,
        power_cap_w=args.budget,
        seed=args.seed,
    )
    # build_controller only reads the budget/shape triple off the config
    shape = SimpleNamespace(
        budget_w=cfg.world_size * cfg.power_cap_w,
        n_sim=cfg.n_sim_ranks,
        n_ana=cfg.n_ana_ranks,
    )
    controller = build_controller(args.approach, shape)
    sink = ChromeTraceSink()
    with use_tracer(Tracer(sink)):
        result = run_insitu(cfg, controller)
    problems = validate_spans(sink.records)
    if problems:
        for p in problems:
            print(f"malformed trace: {p}", file=sys.stderr)
        return 1
    path = sink.write(args.out)
    print(summarize(sink.records).render())
    print()
    print(
        f"[{args.approach}: {cfg.n_verlet_steps} steps on "
        f"2x{args.ranks} ranks, virtual time {result.virtual_time_s:.3f} s "
        f"-> {len(sink.records)} records in {path}]"
    )
    print("open in https://ui.perfetto.dev or chrome://tracing")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="seesaw-experiments",
        description="Regenerate the SeeSAw paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run_p = sub.add_parser("run", help="run one experiment (or 'all')")
    run_p.add_argument("experiment", help="experiment id or 'all'")
    run_p.add_argument(
        "--quick",
        action="store_true",
        help="fewer steps / single run for a fast smoke pass",
    )
    run_p.add_argument(
        "--runs",
        type=int,
        default=None,
        metavar="N",
        help="repeated runs per data point (overrides --quick's 1)",
    )
    run_p.add_argument(
        "--output",
        type=Path,
        default=None,
        help="directory to write <name>.txt and <name>.json artifacts",
    )
    run_p.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for cell fan-out (default: 1, serial)",
    )
    run_p.add_argument(
        "--cache",
        type=Path,
        default=None,
        metavar="DIR",
        help="cell result cache directory "
        "(default: $SEESAW_CACHE_DIR or ~/.cache/seesaw-repro/cells)",
    )
    run_p.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the cell result cache",
    )
    run_p.add_argument(
        "--journal",
        type=Path,
        default=None,
        metavar="PATH",
        help="append a JSONL journal line per cell (plus a summary)",
    )
    run_p.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="PATH",
        help="write a Chrome trace_event JSON of the in-process runs "
        "(open in chrome://tracing or Perfetto)",
    )
    trace_p = sub.add_parser(
        "trace",
        help="run a small traced in-situ job and write a Chrome trace",
        description="Run one fully-instrumented in-situ job (real MD + "
        "analyses on simulated MPI) and export spans from the DES, "
        "controller, power, and in-situ layers as Chrome trace_event "
        "JSON, plus a per-phase time/power summary.",
    )
    trace_p.add_argument(
        "--out",
        type=Path,
        default=Path("trace.json"),
        metavar="PATH",
        help="output trace path (default: trace.json)",
    )
    trace_p.add_argument(
        "--approach",
        default="seesaw",
        help="controller to trace (default: seesaw)",
    )
    trace_p.add_argument(
        "--steps",
        type=int,
        default=6,
        metavar="N",
        help="Verlet steps (default: 6)",
    )
    trace_p.add_argument(
        "--ranks",
        type=int,
        default=2,
        metavar="N",
        help="ranks per partition (default: 2)",
    )
    trace_p.add_argument(
        "--budget",
        type=float,
        default=110.0,
        metavar="W",
        help="per-node power budget in watts (default: 110)",
    )
    trace_p.add_argument(
        "--seed", type=int, default=2020, help="job seed (default: 2020)"
    )
    args = parser.parse_args(argv)

    if args.command == "list":
        width = max(len(n) for n in EXPERIMENTS)
        for name in sorted(EXPERIMENTS):
            print(f"{name:<{width}}  {_first_doc_line(EXPERIMENTS[name])}")
        return 0

    if args.command == "trace":
        if args.steps < 1 or args.ranks < 1:
            parser.error("--steps and --ranks must be >= 1")
        return _cmd_trace(args)

    if args.runs is not None and args.runs < 1:
        parser.error("--runs must be >= 1")
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    names = (
        sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    )
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(sorted(EXPERIMENTS))}", file=sys.stderr)
        return 2

    overrides = dict(QUICK_OVERRIDES) if args.quick else {}
    if args.runs is not None:
        overrides["n_runs"] = args.runs

    trace_sink = None
    trace_scope = contextlib.nullcontext()
    if args.trace is not None:
        if args.jobs > 1:
            print(
                "warning: --trace records in-process work only; "
                "pool workers (--jobs > 1) are not traced",
                file=sys.stderr,
            )
        trace_sink = ChromeTraceSink()
        trace_scope = use_tracer(Tracer(trace_sink))

    engine, journal = _build_engine(args)
    try:
        with trace_scope:
            with use_engine(engine):
                for name in names:
                    print(_run_one(name, overrides, args.output))
                    print()
        journal.summary(jobs=args.jobs, experiments=names)
    finally:
        journal.close()
    if trace_sink is not None:
        path = trace_sink.write(args.trace)
        print(f"[trace: {len(trace_sink.records)} records -> {path}]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
