"""Figure 8: diminishing returns with more power headroom.

Paper setup (§VII-D): LAMMPS with all analyses including full MSD on
128 nodes, dim=16, w=1, j=1; sweep the per-node cap and report SeeSAw's
median improvement over the static baseline at each cap. Expected
shape: highest gains in the 110–120 W band, fading to nothing beyond
~140 W (LAMMPS cannot utilize more power), and nothing at the 98 W
hardware floor (no headroom to move).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.experiments.report import format_table, heading
from repro.experiments.runner import scenario_improvement
from repro.scenario import ScenarioMatrix, load_suite

__all__ = ["Fig8Result", "run_fig8"]

DEFAULT_CAPS = (98.0, 105.0, 110.0, 115.0, 120.0, 130.0, 140.0, 160.0, 180.0, 215.0)


@dataclass
class Fig8Result:
    #: {cap watts: median % improvement}
    improvements: dict = field(default_factory=dict)

    @property
    def best_cap(self) -> float:
        return max(self.improvements, key=self.improvements.get)

    def render(self) -> str:
        rows = [(f"{cap:.0f} W", imp) for cap, imp in self.improvements.items()]
        return "\n".join(
            [
                heading(
                    "Figure 8: SeeSAw improvement vs per-node power cap, "
                    "128 nodes, all analyses + full MSD, dim=16, w=1, j=1"
                ),
                format_table(
                    ["cap per node", "SeeSAw improvement %"],
                    rows,
                    float_fmt="{:+.2f}",
                ),
                "",
                f"best cap: {self.best_cap:.0f} W "
                "(paper: highest improvements at 110-120 W)",
            ]
        )


def run_fig8(
    caps: tuple[float, ...] = DEFAULT_CAPS,
    n_runs: int = 3,
    n_verlet_steps: int = 400,
    seed: int = 88,
) -> Fig8Result:
    """Regenerate the cap sweep (the specs/fig8.json matrix)."""
    base = replace(
        load_suite("fig8").matrix.base, repeats=n_runs
    ).with_job(n_verlet_steps=n_verlet_steps, seed=seed)
    matrix = ScenarioMatrix(
        base=base, axes={"job.budget_per_node_w": list(caps)}
    )
    result = Fig8Result()
    for spec in matrix.expand():
        result.improvements[spec.job.budget_per_node_w] = (
            scenario_improvement(spec)
        )
    return result
