"""Figure 8: diminishing returns with more power headroom.

Paper setup (§VII-D): LAMMPS with all analyses including full MSD on
128 nodes, dim=16, w=1, j=1; sweep the per-node cap and report SeeSAw's
median improvement over the static baseline at each cap. Expected
shape: highest gains in the 110–120 W band, fading to nothing beyond
~140 W (LAMMPS cannot utilize more power), and nothing at the 98 W
hardware floor (no headroom to move).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.report import format_table, heading
from repro.experiments.runner import median_improvement
from repro.workloads import JobConfig

__all__ = ["Fig8Result", "run_fig8"]

DEFAULT_CAPS = (98.0, 105.0, 110.0, 115.0, 120.0, 130.0, 140.0, 160.0, 180.0, 215.0)


@dataclass
class Fig8Result:
    #: {cap watts: median % improvement}
    improvements: dict = field(default_factory=dict)

    @property
    def best_cap(self) -> float:
        return max(self.improvements, key=self.improvements.get)

    def render(self) -> str:
        rows = [(f"{cap:.0f} W", imp) for cap, imp in self.improvements.items()]
        return "\n".join(
            [
                heading(
                    "Figure 8: SeeSAw improvement vs per-node power cap, "
                    "128 nodes, all analyses + full MSD, dim=16, w=1, j=1"
                ),
                format_table(
                    ["cap per node", "SeeSAw improvement %"],
                    rows,
                    float_fmt="{:+.2f}",
                ),
                "",
                f"best cap: {self.best_cap:.0f} W "
                "(paper: highest improvements at 110-120 W)",
            ]
        )


def run_fig8(
    caps: tuple[float, ...] = DEFAULT_CAPS,
    n_runs: int = 3,
    n_verlet_steps: int = 400,
    seed: int = 88,
) -> Fig8Result:
    """Regenerate the cap sweep."""
    result = Fig8Result()
    for cap in caps:
        cfg = JobConfig(
            analyses=("all_msd",),
            dim=16,
            n_nodes=128,
            n_verlet_steps=n_verlet_steps,
            budget_per_node_w=cap,
            seed=seed,
        )
        result.improvements[cap] = median_improvement(
            "seesaw", cfg, n_runs=n_runs
        )
    return result
