"""Reproduction summary: every headline claim, checked automatically.

Runs a compact version of the whole evaluation and renders a
paper-vs-measured verdict table (the machine-checked core of
EXPERIMENTS.md). Each :class:`Claim` carries the paper's statement, a
measurement, and a pass predicate on the *shape* — the same checks the
benchmark suite enforces, gathered in one report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.experiments.report import format_table, heading
from repro.experiments.runner import median_improvement, run_managed
from repro.workloads import JobConfig

__all__ = ["Claim", "SummaryResult", "run_summary"]


@dataclass
class Claim:
    claim: str
    paper: str
    measured: float
    ok: bool

    def row(self) -> tuple:
        verdict = "PASS" if self.ok else "MISS"
        return (self.claim, self.paper, f"{self.measured:+.2f} %", verdict)


@dataclass
class SummaryResult:
    claims: list = field(default_factory=list)

    @property
    def all_pass(self) -> bool:
        return all(c.ok for c in self.claims)

    def render(self) -> str:
        rows = [c.row() for c in self.claims]
        passed = sum(c.ok for c in self.claims)
        return "\n".join(
            [
                heading("Reproduction summary: headline claims"),
                format_table(
                    ["claim", "paper", "measured", "verdict"], rows
                ),
                "",
                f"{passed}/{len(self.claims)} claims reproduce "
                "(shape, not absolute numbers)",
            ]
        )


def run_summary(
    n_runs: int = 3, n_verlet_steps: int = 200, seed: int = 1000
) -> SummaryResult:
    """Run the headline comparisons and check every claim's shape."""
    result = SummaryResult()

    def check(
        claim: str,
        paper: str,
        measured: float,
        predicate: Callable[[float], bool],
    ) -> None:
        result.claims.append(
            Claim(claim, paper, measured, bool(predicate(measured)))
        )

    def cfg(analyses, dim, nodes=128, **kw):
        return JobConfig(
            analyses=analyses,
            dim=dim,
            n_nodes=nodes,
            n_verlet_steps=n_verlet_steps,
            seed=seed,
            **kw,
        )

    def imp(name, c, **kw):
        return median_improvement(name, c, n_runs=n_runs, **kw)

    msd = cfg(("full_msd",), 16)
    vacf = cfg(("vacf",), 36)
    all36 = cfg(("all",), 36)
    all1024 = cfg(("all",), 48, nodes=1024)

    check(
        "SeeSAw positive on full MSD (128)",
        "+4..30 %",
        imp("seesaw", msd),
        lambda v: v > 0,
    )
    check(
        "SeeSAw positive on VACF (128)",
        "+4..30 %",
        imp("seesaw", vacf),
        lambda v: v > 0,
    )
    check(
        "SeeSAw positive at 1024 nodes",
        "+4..30 %",
        imp("seesaw", all1024),
        lambda v: v > -0.5,
    )
    check(
        "time-aware competitive on VACF (128)",
        "up to +13 %",
        imp("time-aware", vacf),
        lambda v: v > 3,
    )
    check(
        "time-aware loses on full MSD (128)",
        "negative (Fig. 4b lock)",
        imp("time-aware", msd),
        lambda v: v < 0,
    )
    check(
        "time-aware degrades at 1024 nodes",
        "down to -60 %",
        imp("time-aware", all1024),
        lambda v: v < -3,
    )
    check(
        "power-aware loses on full MSD",
        "negative, all cases",
        imp("power-aware", msd),
        lambda v: v < 0,
    )
    check(
        "power-aware loses on VACF",
        "negative, all cases",
        imp("power-aware", vacf),
        lambda v: v < 0,
    )
    check(
        "power-aware loses on the mix",
        "negative, all cases",
        imp("power-aware", all36),
        lambda v: v < 0,
    )

    # Fig. 8 bookends: nothing to gain at the floor or with headroom
    floor = cfg(("all_msd",), 16, budget_per_node_w=98.0)
    loose = cfg(("all_msd",), 16, budget_per_node_w=180.0)
    check(
        "no gain at the 98 W floor",
        "0 % (Fig. 8)",
        imp("seesaw", floor),
        lambda v: abs(v) < 1.0,
    )
    check(
        "no gain with 180 W headroom",
        "~0 % (Fig. 8)",
        imp("seesaw", loose),
        lambda v: abs(v) < 2.0,
    )

    # Fig. 4a allocation direction: analysis gets more power on MSD
    res = run_managed("seesaw", msd)
    last = res.records[-1]
    check(
        "SeeSAw gives analysis more power on MSD",
        "Fig. 4a",
        last.ana_cap_mean_w - last.sim_cap_mean_w,
        lambda v: v > 0,
    )
    return result
