"""Workload layer: calibrated profiles and the scaled proxy job.

:mod:`repro.workloads.profiles` carries the paper-anchored constants
(phase power characters, per-analysis work, scale effects);
:mod:`repro.workloads.lammps_proxy` runs full 128–1024-node jobs in
milliseconds; :mod:`repro.workloads.calibration` cross-checks the
constants against the *real* engines in :mod:`repro.md` /
:mod:`repro.analysis`.
"""

from repro.workloads.lammps_proxy import (
    JobConfig,
    JobResult,
    ProxyJobSession,
    SyncRecord,
    run_job,
)
from repro.workloads.time_shared import (
    TimeSharedResult,
    run_time_shared_job,
)
from repro.workloads.profiles import (
    ANALYSIS_PHASES,
    PHASES,
    WorkPhase,
    analysis_work_phases,
    atoms_total,
    comm_scale,
    sim_step_phases,
    snapshot_bytes_per_node,
)

__all__ = [
    "ANALYSIS_PHASES",
    "JobConfig",
    "JobResult",
    "ProxyJobSession",
    "PHASES",
    "SyncRecord",
    "TimeSharedResult",
    "WorkPhase",
    "analysis_work_phases",
    "atoms_total",
    "comm_scale",
    "run_job",
    "run_time_shared_job",
    "sim_step_phases",
    "snapshot_bytes_per_node",
]
