"""Workload profiles: phase kinds and calibrated work constants.

This module is the single source of truth for *what a Verlet step and
each analysis cost*, both for the per-rank DES path (the in-situ
coupler converts real-engine operation counts into seconds using the
``SECONDS_PER_*`` constants) and for the vectorized proxy jobs that
regenerate the paper's figures at 128–1024 nodes.

Calibration anchors, with the paper sentence each one encodes:

* "4 seconds between synchronizations" for LAMMPS+MSD on 128 nodes,
  ``dim=16``, ``j=1`` at 110 W/node (§VII-B1, Fig. 4d/e) — fixes
  ``SIM_SECONDS_PER_ATOM`` and the full-MSD work so that, *throttled at
  110 W*, both take ~4 s.
* "VACF, RDF, MSD1D, and MSD2D are 2–4× faster than simulation"
  (§VII-B1) — fixes those analyses' work constants.
* "MSD has high CPU and memory utilization, MSD2D is mostly
  memory-intensive (less than MSD), RDF is compute bound but with
  higher memory needs than VACF and MSD1D, both having low memory and
  CPU utilization" (§VI-C) — fixes each phase kind's (k, gamma, beta).
* "LAMMPS fails to utilize additional power beyond 140 W per node"
  (§VII-D) — the simulation's blended demand saturates near 140–150 W.
* "simulation consumes 102–104 W" when capped high but waiting /
  communication-bound (§VII-B1) — the COMM phase's flat ~103 W demand.
* "In the first couple steps the simulation has extra setup overhead,
  which is consistent in repeated runs with MSD" (§VII-B1) —
  ``SETUP_OVERHEAD_FACTOR`` on the first ``SETUP_OVERHEAD_STEPS``
  synchronizations.
* At scale, communication time grows (Theta's collectives are
  log-radix) so the communication *fraction* of a fixed-``dim`` step
  grows with node count — the mechanism behind §VII-B3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.power.model import PhaseKind

__all__ = [
    "ANALYSIS_PHASES",
    "ANCHOR_ANA_NODES",
    "ANCHOR_ATOMS_PER_NODE",
    "ANCHOR_DIM",
    "ANCHOR_SIM_NODES",
    "PHASES",
    "SETUP_OVERHEAD_FACTOR",
    "SETUP_OVERHEAD_STEPS",
    "WorkPhase",
    "analysis_work_phases",
    "atoms_total",
    "comm_scale",
    "sim_step_phases",
    "snapshot_bytes_per_node",
]

# --------------------------------------------------------------------------
# Phase kinds: (k_watts above the 65 W floor at base clock, gamma, beta).
# beta ~ 1: compute-bound; beta small: memory/communication-bound.
# COMM's tiny gamma makes its demand essentially flat (~100-104 W),
# which is what pins both the Fig. 1 idle level and the §VII-B3
# low-power communication phases.
# --------------------------------------------------------------------------
PHASES = {
    # force: saturates at demand(f_turbo) = 65 + 60*1.205 ~ 137 W — the
    # "cannot utilize beyond 140 W" observation — while staying highly
    # power-sensitive inside the 98-137 W band (beta/gamma ~ 0.77).
    "force": PhaseKind("force", k_watts=60.0, gamma=1.3, beta=1.0),
    "integrate": PhaseKind("integrate", k_watts=45.0, gamma=1.5, beta=0.7),
    "neighbor": PhaseKind("neighbor", k_watts=55.0, gamma=1.5, beta=0.6),
    "comm": PhaseKind("comm", k_watts=38.0, gamma=0.1, beta=0.05),
    # analysis kernels; ana_cpu (the full-MSD averaging) saturates at
    # ~152 W — a *higher*-demand kernel than the simulation blend.
    "ana_cpu": PhaseKind("ana_cpu", k_watts=70.0, gamma=1.5, beta=0.95),
    "ana_mem": PhaseKind("ana_mem", k_watts=58.0, gamma=1.5, beta=0.5),
    "ana_light": PhaseKind("ana_light", k_watts=38.0, gamma=1.0, beta=0.5),
    "rdf_cpu": PhaseKind("rdf_cpu", k_watts=65.0, gamma=1.6, beta=0.9),
}

# --------------------------------------------------------------------------
# Calibration anchor: 128-node job (64 sim + 64 ana), dim=16, j=1.
# --------------------------------------------------------------------------
ANCHOR_DIM = 16
ANCHOR_SIM_NODES = 64
ANCHOR_ANA_NODES = 64
ANCHOR_ATOMS_PER_NODE = 1568 * ANCHOR_DIM**3 / ANCHOR_SIM_NODES  # 100 352

#: seconds of *base-frequency* simulation work per atom per Verlet step
#: (all compute phases combined); chosen so that at a 110 W cap the
#: anchor step takes ~4 s including communication.
SIM_SECONDS_PER_ATOM = 3.27e-5

#: fraction of the per-step compute budget per phase
SIM_PHASE_SPLIT = {
    "force": 0.55,
    "neighbor": 0.17,
    "integrate": 0.08,
}
#: communication work as a fraction of the compute budget at the anchor
#: scale (neighbor-list exchange + per-step thermo output, §V)
SIM_COMM_SPLIT = {
    "neighbor_comm": 0.08,
    "thermo_io": 0.12,
}

#: first `SETUP_OVERHEAD_STEPS` synchronizations carry simulation setup
#: (Fig. 4d: a pronounced transient, "consistent in repeated runs");
#: it is what baits the time-aware balancer into its wrong-direction
#: shift (§VII-B1: "Because MSD is initially faster than simulation,
#: the time-aware approach assigns [the simulation] more power too
#: quickly")
SETUP_OVERHEAD_STEPS = 2
SETUP_OVERHEAD_FACTOR = 1.6

#: growth of communication work per doubling of total node count beyond
#: the anchor scale (log-radix collectives + congestion)
COMM_GROWTH_PER_DOUBLING = 0.35


@dataclass(frozen=True)
class WorkPhase:
    """One phase of a partition's per-synchronization program."""

    kind: PhaseKind
    work_s: float  # seconds at base frequency, speed 1.0

    def __post_init__(self) -> None:
        if self.work_s < 0:
            raise ValueError("negative work")


def atoms_total(dim: int) -> int:
    """The paper's problem size: 1568 * dim^3 atoms."""
    if dim < 1:
        raise ValueError("dim must be >= 1")
    return 1568 * dim**3


def comm_scale(n_total_nodes: int) -> float:
    """Communication work multiplier relative to the 128-node anchor."""
    if n_total_nodes <= 0:
        raise ValueError("need nodes")
    doublings = math.log2(
        max(n_total_nodes, 1) / (ANCHOR_SIM_NODES + ANCHOR_ANA_NODES)
    )
    return max(1.0 + COMM_GROWTH_PER_DOUBLING * doublings, 0.25)


def snapshot_bytes_per_node(dim: int, n_sim_nodes: int) -> int:
    """Bytes a sim node ships at each synchronization: coordinates and
    velocities, 6 doubles/atom (§V step 2)."""
    return int(atoms_total(dim) / n_sim_nodes * 6 * 8)


def sim_step_phases(
    dim: int, n_sim_nodes: int, n_total_nodes: int, sync_step: int = 10
) -> list[WorkPhase]:
    """Phase program of ONE Verlet step on each simulation node.

    ``sync_step`` is the synchronization index (0-based); the first two
    carry the setup overhead observed in the paper's Fig. 4d.
    """
    per_node = atoms_total(dim) / n_sim_nodes
    budget = SIM_SECONDS_PER_ATOM * per_node
    if 1 <= sync_step <= SETUP_OVERHEAD_STEPS:
        budget *= SETUP_OVERHEAD_FACTOR
    scale = comm_scale(n_total_nodes)
    phases = [
        WorkPhase(PHASES["integrate"], SIM_PHASE_SPLIT["integrate"] * budget),
        WorkPhase(PHASES["neighbor"], SIM_PHASE_SPLIT["neighbor"] * budget),
        WorkPhase(
            PHASES["comm"], SIM_COMM_SPLIT["neighbor_comm"] * budget * scale
        ),
        WorkPhase(PHASES["force"], SIM_PHASE_SPLIT["force"] * budget),
        WorkPhase(
            PHASES["comm"], SIM_COMM_SPLIT["thermo_io"] * budget * scale
        ),
    ]
    return phases


# --------------------------------------------------------------------------
# Analyses: per-synchronization work at the anchor, in seconds at base
# frequency per analysis node, split into kernel phases. Values chosen
# so the *throttled* (110 W) runtimes land on the paper's ratios:
# full MSD ~ simulation; others 2-4x faster. A small collective term
# (comm kind) scales with node count.
# --------------------------------------------------------------------------
ANALYSIS_PHASES: dict[str, list[tuple[str, float]]] = {
    # (kind name, seconds at base at the anchor per analysis node).
    # msd_avg is the "final averaging of all particles" — the high-CPU
    # component that makes full MSD simulation-sized (full MSD throttled
    # at 110 W lands at ~1.15x the simulation step: "nearly identical",
    # Fig. 4d, with a visible baseline slack SeeSAw removes by giving
    # analysis more power).
    "rdf": [("rdf_cpu", 1.30)],
    "vacf": [("ana_light", 1.20)],
    "msd1d": [("ana_light", 1.10)],
    "msd2d": [("ana_mem", 1.35)],
    "msd_avg": [("ana_cpu", 1.05)],
}

#: composite workloads expanded by :func:`analysis_work_phases`; the
#: paper's "full MSD" is MSD1D + MSD2D + the final averaging (§VII-B).
#: "all" includes the final MSD averaging only "in case of full MSD",
#: i.e. for the memory-limited dim=16 runs — use ``all_msd`` there and
#: plain ``all`` for dim 36/48.
COMPOSITES = {
    "full_msd": ("msd1d", "msd2d", "msd_avg"),
    "all": ("rdf", "msd1d", "msd2d", "vacf"),
    "all_msd": ("rdf", "msd1d", "msd2d", "msd_avg", "vacf"),
}

#: collective/communication work per analysis invocation, as a fraction
#: of the analysis's anchor kernel work, multiplied by the comm scale —
#: the final reductions (histogram merges, all-particle averages) are
#: collectives whose cost grows with node count, which is why the
#: analyses become relatively *slower* at scale (Fig. 5a)
ANALYSIS_COMM_FRACTION = 0.22

#: fraction of each analysis kernel that does not scale with the atom
#: count — reductions, histogram/bin bookkeeping, per-invocation setup.
#: This is why the analyses' speed *relative to the simulation* depends
#: on atoms-per-node: at large per-node problems (dim=36 on 128 nodes,
#: Fig. 7) the analyses outpace the simulation, while at small per-node
#: problems at scale the fixed part dominates and the analysis becomes
#: the straggler (Fig. 5a: SeeSAw allocates more power to analysis at
#: 1024 nodes).
ANALYSIS_FIXED_FRACTION = 0.25



# Register every runnable analysis-workload name (base kernels and the
# paper's composites) so scenario specs can validate their ``analyses``
# tuples against the actual dispatch table above.
from repro.scenario.registry import register_analysis  # noqa: E402

for _name in ANALYSIS_PHASES:
    register_analysis(_name, "base kernel")
for _name, _members in COMPOSITES.items():
    register_analysis(_name, "composite: " + "+".join(_members))
del _name, _members


def expand_analyses(names: list[str] | tuple[str, ...]) -> list[str]:
    """Expand composite workload names into base analyses."""
    out: list[str] = []
    for name in names:
        if name in COMPOSITES:
            out.extend(COMPOSITES[name])
        else:
            out.append(name)
    return out


def analysis_work_phases(
    names: list[str],
    dim: int,
    n_ana_nodes: int,
    n_total_nodes: int,
) -> list[WorkPhase]:
    """Phase program of one analysis invocation (all ``names`` run in
    sequence — the paper's *all* category works this way, §VII-B)."""
    per_node_ratio = (atoms_total(dim) / n_ana_nodes) / ANCHOR_ATOMS_PER_NODE
    work_ratio = (
        ANALYSIS_FIXED_FRACTION
        + (1.0 - ANALYSIS_FIXED_FRACTION) * per_node_ratio
    )
    scale = comm_scale(n_total_nodes)
    phases: list[WorkPhase] = []
    for name in expand_analyses(names):
        try:
            kernels = ANALYSIS_PHASES[name]
        except KeyError:
            raise ValueError(
                f"unknown analysis {name!r}; choose from "
                f"{sorted(ANALYSIS_PHASES) + sorted(COMPOSITES)}"
            ) from None
        kernel_sum = 0.0
        for kind_name, anchor_work in kernels:
            kernel_sum += anchor_work
            phases.append(
                WorkPhase(PHASES[kind_name], anchor_work * work_ratio)
            )
        phases.append(
            WorkPhase(
                PHASES["comm"],
                ANALYSIS_COMM_FRACTION * kernel_sum * scale,
            )
        )
    return phases
