"""Time-shared in-situ mode: the paper's §III contrast case.

The paper scopes SeeSAw to *space-shared* in-situ analysis and argues
the alternative is easy: "The time-shared mode with alternating
simulation and analysis poses a simpler problem of managing a power
budget: when one workload enters the critical section, power can be
either kept at the budget or reduced to save energy."

This module demonstrates exactly that. In time-shared mode every node
runs the simulation phases and then the analysis phases back-to-back —
there is no partner partition, no synchronization wait, no slack to
harvest, and therefore nothing for SeeSAw to optimize. The only
management decision left is the paper's sentence:

* ``budget`` policy — hold every node at the budget cap throughout;
* ``eco`` policy — during each segment, lower the cap to the segment's
  *saturation demand* (the draw above which its phases gain no speed).
  Runtime and measured energy are unchanged (in this power model an
  unthrottled node draws its demand, not its cap); what the eco policy
  buys is **released budget** — reserved watts handed back per segment,
  exactly what a system-wide manager (:mod:`repro.sched`) can lend to
  other jobs. On hardware whose uncore/limit circuitry tracks the cap,
  the released budget is additionally an energy saving.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.noise import NoiseModel
from repro.core.controller import PowerController  # noqa: F401 (docs)
from repro.power.execution import execute_phase
from repro.scenario.registry import register_workload
from repro.power.rapl import RaplDomainArray
from repro.util.rng import RngStream
from repro.workloads.lammps_proxy import JobConfig, _analyses_due
from repro.workloads.profiles import (
    WorkPhase,
    analysis_work_phases,
    sim_step_phases,
)

__all__ = ["TimeSharedResult", "run_time_shared_job", "segment_saturation_w"]


@dataclass
class TimeSharedResult:
    """Outcome of a time-shared run."""

    policy: str
    total_time_s: float
    total_energy_j: float
    #: time-integral of the requested caps (J-equivalent of reserved
    #: power); ``budget_per_node * n * T`` minus this is what the eco
    #: policy handed back to the machine
    reserved_j: float = 0.0
    #: the job's nominal reservation over its lifetime
    nominal_j: float = 0.0

    @property
    def mean_power_w(self) -> float:
        return self.total_energy_j / self.total_time_s

    @property
    def released_j(self) -> float:
        """Budget returned to the machine (0 for the budget policy)."""
        return max(self.nominal_j - self.reserved_j, 0.0)

    @property
    def mean_released_w(self) -> float:
        return self.released_j / self.total_time_s


def segment_saturation_w(phases: list[WorkPhase], node) -> float:
    """The cap above which none of ``phases`` runs any faster.

    Each phase saturates at its turbo demand; the segment saturates at
    the max across phases (a small margin covers model noise).
    """
    if not phases:
        return node.rapl_min_watts
    peak = max(float(p.kind.demand(node, node.f_turbo)) for p in phases)
    return max(peak + 1.0, node.rapl_min_watts)


@register_workload("time-shared")
def run_time_shared_job(
    cfg: JobConfig,
    policy: str = "budget",
    run_index: int = 0,
) -> TimeSharedResult:
    """Run ``cfg``'s workload time-shared on all ``cfg.n_nodes`` nodes.

    The same Verlet/analysis programs as the space-shared proxy, but
    executed alternately on one set of nodes. ``policy`` is ``budget``
    (hold the cap) or ``eco`` (drop to saturation per segment).
    """
    if policy not in ("budget", "eco"):
        raise ValueError("policy must be 'budget' or 'eco'")
    node = cfg.machine.node
    n = cfg.n_nodes
    per_node_budget = node.clamp_cap(cfg.budget_per_node_w)
    domain = RaplDomainArray(
        node,
        n,
        per_node_budget,
        mode=cfg.cap_mode,
        actuation_delay_s=cfg.machine.rapl_actuation_s,
    )
    root = RngStream(cfg.seed, name="ts-job")
    run_rng = root.child(f"run{run_index}")
    job_factor = NoiseModel.draw_job_factor(
        root.child("job_shared"), cfg.cap_mode, cfg.noise_config
    )
    noise = NoiseModel(
        root.child("nodes"),
        n,
        cfg.cap_mode,
        cfg.noise_config,
        job_factor=job_factor,
        phase_rng=run_rng.child("phase"),
    )

    t = 0.0
    energy = 0.0
    reserved = 0.0
    for step in range(1, cfg.n_syncs + 1):
        # In time-shared mode all nodes cooperate on each program, so
        # per-node work shrinks by the 2x node count relative to the
        # space-shared split of the same job.
        sim_phases: list[WorkPhase] = []
        for _ in range(cfg.j):
            sim_phases.extend(sim_step_phases(cfg.dim, n, n, step))
        due = _analyses_due(cfg, step)
        ana_phases = (
            analysis_work_phases(due, cfg.dim, n, n) if due else []
        )
        for segment in (sim_phases, ana_phases):
            if not segment:
                continue
            cap = per_node_budget
            if policy == "eco":
                cap = min(
                    per_node_budget, segment_saturation_w(segment, node)
                )
                domain.request_caps(cap, now=t)
            seg_t = t + cfg.machine.rapl_actuation_s if policy == "eco" else t
            times = np.zeros(n)
            for phase in segment:
                out = execute_phase(
                    phase.kind,
                    node,
                    phase.work_s,
                    domain,
                    t_start=seg_t + float(times.mean()),
                    noise_factors=noise.phase_factors(),
                )
                times += out.durations
                energy += float(out.energy_joules.sum())
            # barrier at segment end: everyone waits for the slowest
            seg_dur = float(times.max())
            waits = seg_dur - times
            caps_now, _ = domain.segment_at(t + seg_dur)
            energy += float(
                (waits * np.minimum(node.p_wait_watts, caps_now)).sum()
            )
            reserved += cap * n * seg_dur
            t += seg_dur
            if policy == "eco":
                domain.request_caps(per_node_budget, now=t)

    return TimeSharedResult(
        policy=policy,
        total_time_s=t,
        total_energy_j=energy,
        reserved_j=reserved,
        nominal_j=per_node_budget * n * t,
    )
