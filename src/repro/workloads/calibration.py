"""Calibration bridge: real engines → workload profiles.

The proxy profiles in :mod:`repro.workloads.profiles` are anchored to
the paper's reported numbers (step times, speed ratios). This module
cross-checks them against the *real* engines in :mod:`repro.md` and
:mod:`repro.analysis`: it runs a small system, collects operation
counts, and verifies the proportionalities the profiles assume —

* simulation work scales linearly with atoms per node (pair counts per
  atom are density-controlled, so total pairs ∝ atoms);
* the analyses' relative operation counts order the same way the
  profiles order their work (RDF's cross-pair search is the heaviest
  light analysis; VACF/MSD1D are the cheapest);
* full MSD's operation count exceeds each of its components.

``calibrate()`` returns a report the tests (and curious users) can
inspect; it is deliberately cheap (a dim=1 cell, a handful of steps).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis import frame_from_system, make_analysis
from repro.md import VelocityVerlet, water_ion_box

__all__ = ["CalibrationReport", "calibrate"]


@dataclass
class CalibrationReport:
    """Measured operation counts from the real engines."""

    n_atoms: int
    #: mean neighbor pairs per Verlet step
    pairs_per_step: float
    #: pairs per atom — the density-controlled constant that justifies
    #: linear atom scaling in the proxy
    pairs_per_atom: float
    #: neighbor rebuild frequency over the probe run
    rebuild_fraction: float
    #: per-analysis work estimates on one frame
    analysis_ops: dict = field(default_factory=dict)

    def render(self) -> str:
        lines = [
            f"system: {self.n_atoms} atoms",
            f"pairs/step: {self.pairs_per_step:.0f} "
            f"({self.pairs_per_atom:.1f} per atom)",
            f"neighbor rebuilds: {self.rebuild_fraction * 100:.0f}% of steps",
            "analysis ops per frame:",
        ]
        for name, ops in sorted(
            self.analysis_ops.items(), key=lambda kv: -kv[1]
        ):
            lines.append(f"  {name:10s} {ops:>10d}")
        return "\n".join(lines)


def calibrate(
    dim: int = 1, n_steps: int = 10, seed: int = 2020
) -> CalibrationReport:
    """Probe the real engines and report their operation counts."""
    system = water_ion_box(dim=dim, seed=seed)
    integrator = VelocityVerlet(system, dt=0.0005, thermostat_t=1.0)
    reports = integrator.run(n_steps)

    pairs = np.array([r.pair_count for r in reports], dtype=float)
    rebuilds = np.array([r.rebuilt_neighbors for r in reports])

    frame = frame_from_system(system, step=n_steps, time=n_steps * 0.0005)
    analysis_ops: dict[str, int] = {}
    for name in ("rdf", "vacf", "msd", "msd1d", "msd2d", "full_msd"):
        analysis = make_analysis(name)
        analysis.update(frame)
        analysis_ops[name] = analysis.work_estimate

    return CalibrationReport(
        n_atoms=system.n_atoms,
        pairs_per_step=float(pairs.mean()),
        pairs_per_atom=float(pairs.mean()) / system.n_atoms,
        rebuild_fraction=float(rebuilds.mean()),
        analysis_ops=analysis_ops,
    )
