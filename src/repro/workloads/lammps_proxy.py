"""LAMMPS+Splitanalysis proxy job: the scaled experiment engine.

Runs a full power-managed in-situ job — 128 to 1024 nodes, 400 Verlet
steps — in milliseconds of host time by evaluating both partitions'
phase programs with vectorized per-node numpy math instead of per-rank
DES processes. The physics (phase power model, RAPL actuation, noise,
interconnect costs) is shared with the per-rank path; only the
execution strategy differs.

Timeline of one synchronization interval (paper §V, §VI-B):

1. both partitions run their independent work programs (simulation:
   ``j`` Verlet steps; analysis: the analyses due at this step);
   per-node durations come from :func:`repro.power.execution
   .execute_phase` under the current caps and noise draws;
2. each rank calls ``poli_power_alloc`` on *arrival* — the allgather
   inside synchronizes everyone, so the partition work time is the
   slowest node's arrival (the paper's measurement);
3. world rank 0 evaluates the controller and broadcasts; caps are
   requested (10 ms RAPL actuation applies);
4. the simulation→analysis data exchange (steps 2–4 of §V) completes
   the synchronization; the next interval starts.

Measurement model details:

* the **work time** handed to controllers is the instrumented pre-wait
  arrival time (SeeSAw's signal);
* the **epoch time** per node — what an uninstrumented system-level
  balancer sees — is ``work + ATTRIBUTION_LEAK * wait`` with
  multiplicative jitter: a system tool cannot cleanly separate the
  in-situ exchange wait from application work inside the nested
  sub-communicators (the paper's core argument, §I/§IV-B);
* per-node **power** is the RAPL counter difference over the interval
  (compute + wait + sync segments), with sensor noise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.machine import MachineSpec, theta
from repro.cluster.noise import NoiseConfig, NoiseModel
from repro.core.controller import PowerController
from repro.core.types import Observation, PartitionMeasurement
from repro.power.execution import execute_phase
from repro.power.rapl import CapMode, RaplDomainArray
from repro.power.trace import PowerTrace
from repro.scenario.registry import register_workload
from repro.telemetry import get_tracer
from repro.util.rng import RngStream
from repro.workloads.profiles import (
    WorkPhase,
    analysis_work_phases,
    sim_step_phases,
    snapshot_bytes_per_node,
)

__all__ = ["JobConfig", "JobResult", "ProxyJobSession", "SyncRecord", "run_job"]

#: bytes of the per-rank report exchanged by the power manager
REPORT_BYTES = 64


def attribution_leak(n_total_nodes: int) -> tuple[float, float]:
    """Fractions of synchronization slack a system-level observer
    misattributes as work — ``(sim_leak, ana_leak)``.

    The two partitions' slack looks different from outside (the paper's
    §I/§IV-B argument that linking time measurements to application
    events is non-trivial):

    * when the **analysis** is the straggler, the simulation's excess
      time is spent *inside* the steps-2–4 exchange protocol — blocking
      sends, data-structure rebuilds, count verification — i.e.
      low-power communication *work* ("simulation consumes 102–104 W at
      each synchronization", §VII-B1). A time-only balancer counts it
      as work, so simulation and analysis epochs look nearly equal —
      "the time difference between them is incidentally low" (§VII-B3)
      — and the balancer locks into whatever allocation its early steps
      chose. Hence a high ``sim_leak`` that grows with scale (longer
      collective phases).
    * when the **simulation** is the straggler, the analysis sits in a
      bare MPI receive, which any PMPI-level observer attributes as
      wait. Hence a low ``ana_leak`` — and this clean signal during the
      simulation's setup transient is exactly what baits the balancer
      into shifting power away from the analysis "too quickly"
      (§VII-B1).
    """
    import math

    sim_leak = 0.85
    if n_total_nodes > 128:
        sim_leak = min(1.0, sim_leak + 0.05 * math.log2(n_total_nodes / 128))
    return sim_leak, 0.25


@dataclass(frozen=True)
class JobConfig:
    """One LAMMPS in-situ job (paper §VII parameter set)."""

    analyses: tuple[str, ...] = ("full_msd",)
    dim: int = 16
    n_nodes: int = 128  #: total nodes; split equally sim/ana
    j: int = 1  #: Verlet steps between synchronizations
    n_verlet_steps: int = 400
    budget_per_node_w: float = 110.0
    cap_mode: CapMode = CapMode.LONG
    seed: int = 0
    #: per-analysis invocation interval in synchronizations (Table II);
    #: analyses absent from the map run at every synchronization
    analysis_intervals: dict = field(default_factory=dict)
    machine: MachineSpec = field(default_factory=theta)
    noise_config: NoiseConfig = field(default_factory=NoiseConfig)
    collect_traces: bool = False

    def __post_init__(self) -> None:
        if self.n_nodes < 2 or self.n_nodes % 2:
            raise ValueError(
                f"n_nodes must be even and >= 2 (half simulate, half "
                f"analyze), got {self.n_nodes}"
            )
        if self.j < 1:
            raise ValueError(f"j must be >= 1, got {self.j}")
        if self.n_verlet_steps < self.j:
            raise ValueError(
                f"n_verlet_steps ({self.n_verlet_steps}) must cover at "
                f"least one synchronization interval (j={self.j})"
            )
        if not self.analyses:
            raise ValueError("need at least one analysis")
        if not math.isfinite(self.budget_per_node_w):
            raise ValueError(
                f"budget_per_node_w must be finite, got "
                f"{self.budget_per_node_w}"
            )
        floor = self.machine.node.rapl_min_watts
        if self.budget_per_node_w < floor:
            raise ValueError(
                f"budget_per_node_w={self.budget_per_node_w} is below the "
                f"{self.machine.name} RAPL floor of {floor} W per node; "
                f"the cap could never be enforced"
            )
        self.machine.validate_job(self.n_nodes)

    @property
    def n_sim(self) -> int:
        return self.n_nodes // 2

    @property
    def n_ana(self) -> int:
        return self.n_nodes // 2

    @property
    def n_syncs(self) -> int:
        return self.n_verlet_steps // self.j

    @property
    def budget_w(self) -> float:
        return self.budget_per_node_w * self.n_nodes


@dataclass
class SyncRecord:
    """Everything the figures need about one synchronization interval."""

    step: int
    t_start: float
    interval_s: float
    sim_work_s: float
    ana_work_s: float
    overhead_s: float
    sync_s: float
    #: |T_sim - T_ana| normalized by the interval (Fig. 4's black line)
    slack_norm: float
    sim_cap_mean_w: float
    ana_cap_mean_w: float
    sim_power_mean_w: float
    ana_power_mean_w: float
    sim_energy_j: float
    ana_energy_j: float


@dataclass
class JobResult:
    config: JobConfig
    controller_name: str
    total_time_s: float
    records: list[SyncRecord]
    sim_trace: PowerTrace | None = None
    ana_trace: PowerTrace | None = None

    @property
    def mean_slack(self) -> float:
        """Mean normalized slack from the 10th step on (paper §VII-B1
        computes the MSD slack average "calculated from the 10th
        step")."""
        tail = [r.slack_norm for r in self.records if r.step >= 10]
        if not tail:
            tail = [r.slack_norm for r in self.records]
        return float(np.mean(tail))


class _Partition:
    """Vectorized per-node state of one partition."""

    def __init__(
        self,
        name: str,
        n_nodes: int,
        cfg: JobConfig,
        noise: NoiseModel,
        initial_caps: np.ndarray,
        trace: PowerTrace | None,
    ) -> None:
        self.name = name
        self.n = n_nodes
        self.node = cfg.machine.node
        self.domain = RaplDomainArray(
            self.node,
            n_nodes,
            initial_caps,
            mode=cfg.cap_mode,
            actuation_delay_s=cfg.machine.rapl_actuation_s,
        )
        self.noise = noise
        self.trace = trace

    def run_program(
        self, phases: list[WorkPhase], t_start: float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Execute phases sequentially.

        Returns per-node ``(times, clean_times, energy)`` — ``times``
        carries the slowest-rank view (interference spikes included;
        this is what gates the partition and what PoLiMER reports),
        ``clean_times`` the median-of-ranks view a system-level
        balancer sees (spikes filtered).

        Phases run back-to-back per node; since cap changes happen only
        near the interval start, executing each phase from the *mean*
        frontier keeps the cap-splitting exact enough while staying
        vectorized (the 10 ms actuation offset is tiny against multi-
        second phases).
        """
        times = np.zeros(self.n)
        clean_times = np.zeros(self.n)
        energy = np.zeros(self.n)
        t = t_start
        for phase in phases:
            spiked, clean = self.noise.phase_factor_pair()
            outcome = execute_phase(
                phase.kind,
                self.node,
                phase.work_s,
                self.domain,
                t_start=t,
                noise_factors=spiked,
            )
            if self.trace is not None and outcome.slowest > 0:
                mean_dur = float(outcome.durations.mean())
                if mean_dur > 0:
                    draw = float(outcome.energy_joules.mean()) / mean_dur
                    self.trace.add(t, t + mean_dur, draw)
            times += outcome.durations
            # duration scales linearly with the noise factor, so the
            # clean view is an exact rescale per node
            clean_times += outcome.durations * (clean / spiked)
            energy += outcome.energy_joules
            t = t_start + float(times.mean())
        return times, clean_times, energy

    def wait_draw(self, t: float) -> np.ndarray:
        caps, _ = self.domain.segment_at(t)
        return np.minimum(self.node.p_wait_watts, caps)

    def add_trace(self, t0: float, t1: float, draw: float) -> None:
        if self.trace is not None and t1 > t0:
            self.trace.add(t0, t1, draw)


def _analyses_due(cfg: JobConfig, step: int) -> list[str]:
    """Which analyses run at synchronization ``step`` (Table II)."""
    due = []
    for name in cfg.analyses:
        interval = cfg.analysis_intervals.get(name, 1)
        if step % interval == 0:
            due.append(name)
    return due


def _overhead_s(cfg: JobConfig) -> float:
    """Controller invocation cost: the manager's allgather + bcast plus
    a fixed software term (measurement reads + Eq. 1-4 arithmetic)."""
    ic = cfg.machine.interconnect()
    return (
        ic.collective_time("allgather", cfg.n_nodes, REPORT_BYTES)
        + ic.collective_time("bcast", cfg.n_nodes, REPORT_BYTES * cfg.n_nodes)
        + 120e-6
    )


class ProxyJobSession:
    """A steppable power-managed job: one synchronization per ``step``.

    ``run_job`` wraps this for the common run-to-completion case; the
    cluster-level scheduler (:mod:`repro.sched`) steps multiple
    sessions concurrently and retargets their budgets between epochs
    via :meth:`set_budget`.

    ``cfg.seed`` fixes the *job* identity (node allocation, job-wide
    speed factor); ``run_index`` selects one *run* within that job
    (transient phase/sensor noise). Repeating a seed with different
    run indices reproduces the paper's run-to-run setup (§VII-A,
    Table I); changing the seed is a new job.
    """

    def __init__(
        self,
        cfg: JobConfig,
        controller: PowerController,
        rng: RngStream | None = None,
        run_index: int = 0,
    ) -> None:
        if controller.n_sim != cfg.n_sim or controller.n_ana != cfg.n_ana:
            raise ValueError("controller shape does not match the job")
        self.cfg = cfg
        self.controller = controller
        root = rng if rng is not None else RngStream(cfg.seed, name="job")
        run_rng = root.child(f"run{run_index}")
        # One job-wide allocation factor shared by both partitions: the
        # machine's run-to-run state affects the whole job, not a side.
        job_factor = NoiseModel.draw_job_factor(
            root.child("job_shared"), cfg.cap_mode, cfg.noise_config
        )
        noise_sim = NoiseModel(
            root.child("sim"),
            cfg.n_sim,
            cfg.cap_mode,
            cfg.noise_config,
            job_factor=job_factor,
            phase_rng=run_rng.child("sim_phase"),
        )
        noise_ana = NoiseModel(
            root.child("ana"),
            cfg.n_ana,
            cfg.cap_mode,
            cfg.noise_config,
            job_factor=job_factor,
            phase_rng=run_rng.child("ana_phase"),
        )
        self._sensor = run_rng.child("sensor")
        self._epoch_rng = run_rng.child("epoch")

        alloc = controller.initial_allocation()
        self.sim = _Partition(
            "sim",
            cfg.n_sim,
            cfg,
            noise_sim,
            alloc.sim_caps_w,
            PowerTrace("sim") if cfg.collect_traces else None,
        )
        self.ana = _Partition(
            "ana",
            cfg.n_ana,
            cfg,
            noise_ana,
            alloc.ana_caps_w,
            PowerTrace("ana") if cfg.collect_traces else None,
        )
        ic = cfg.machine.interconnect()
        self._overhead = _overhead_s(cfg)
        self._sync_s = ic.exchange_time(
            snapshot_bytes_per_node(cfg.dim, cfg.n_sim), cfg.n_sim
        ) + ic.collective_time("barrier", cfg.n_nodes, 0)

        self.t = 0.0
        self.step_index = 0
        self.records: list[SyncRecord] = []

        # Phase telemetry rides the ambient tracer when one is enabled
        # (campaign workers install a shipping tracer, `run --trace` an
        # in-process one). Mirror the DES engine: each run binds the
        # job's virtual clock and becomes its own trace process, so
        # back-to-back runs never overlap timelines.
        tracer = get_tracer()
        self._tracer = tracer if tracer.enabled else None
        if self._tracer is not None:
            tracer.bind_clock(
                lambda: self.t,
                label=(
                    f"proxy {controller.name} d{cfg.dim} "
                    f"s{cfg.seed} r{run_index}"
                ),
            )

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self.step_index >= self.cfg.n_syncs

    @property
    def budget_w(self) -> float:
        return self.controller.budget_w

    def set_budget(self, budget_w: float) -> None:
        """Retarget the job's global power budget (scheduler hook).

        The controller's subsequent decisions honour the new budget;
        to make feedback-free controllers (and the interval until the
        next decision) honour it too, the currently requested caps are
        rescaled proportionally and re-requested immediately.
        """
        lo = self.cfg.n_nodes * self.cfg.machine.node.rapl_min_watts
        hi = self.cfg.n_nodes * self.cfg.machine.node.tdp_watts
        budget_w = min(max(budget_w, lo), hi)
        self.controller.budget_w = budget_w
        current = float(
            self.sim.domain.requested_caps.sum()
            + self.ana.domain.requested_caps.sum()
        )
        if current > 0:
            scale = budget_w / current
            self.sim.domain.request_caps(
                self.sim.domain.requested_caps * scale, now=self.t
            )
            self.ana.domain.request_caps(
                self.ana.domain.requested_caps * scale, now=self.t
            )

    # ------------------------------------------------------------------
    def step(self) -> SyncRecord:
        """Advance one synchronization interval."""
        if self.done:
            raise RuntimeError("job already completed")
        cfg = self.cfg
        sim, ana = self.sim, self.ana
        step = self.step_index + 1
        t0 = self.t
        overhead, sync_s = self._overhead, self._sync_s

        # --- independent work -----------------------------------------
        sim_phases: list[WorkPhase] = []
        for _ in range(cfg.j):
            sim_phases.extend(
                sim_step_phases(cfg.dim, cfg.n_sim, cfg.n_nodes, step)
            )
        due = _analyses_due(cfg, step)
        ana_phases = (
            analysis_work_phases(due, cfg.dim, cfg.n_ana, cfg.n_nodes)
            if due
            else []
        )
        sim_times, sim_clean, sim_energy = sim.run_program(sim_phases, t0)
        ana_times, ana_clean, ana_energy = ana.run_program(ana_phases, t0)
        if not len(ana_phases):
            ana_times = np.zeros(cfg.n_ana)
            ana_clean = np.zeros(cfg.n_ana)
            ana_energy = np.zeros(cfg.n_ana)

        sim_work = float(sim_times.max())
        ana_work = float(ana_times.max()) if due else 0.0
        work = max(sim_work, ana_work)

        # waiting for the other partition (spin-wait draw)
        sim_wait = work - sim_times
        ana_wait = work - ana_times
        # pre-wait energies: what "md"/"analysis" phases burned doing
        # work, before wait/sync draws are folded in (telemetry splits
        # the two; the controller sees only the folded totals below)
        sim_work_j, ana_work_j = sim_energy, ana_energy
        t_arrive = t0 + work
        sim_energy = sim_energy + sim_wait * sim.wait_draw(t_arrive)
        ana_energy = ana_energy + ana_wait * ana.wait_draw(t_arrive)

        # trace the waiting tail of the faster partition (Fig. 1's idle
        # plateau at ~105 W)
        if cfg.collect_traces:
            sim_mean_end = t0 + float(sim_times.mean())
            ana_mean_end = t0 + float(ana_times.mean())
            sim.add_trace(
                sim_mean_end, t_arrive, float(sim.wait_draw(t_arrive).mean())
            )
            ana.add_trace(
                ana_mean_end, t_arrive, float(ana.wait_draw(t_arrive).mean())
            )

        # --- allocation + synchronization ------------------------------
        # With no analysis due this step, there is no simulation↔
        # analysis synchronization at all (§V: steps 2-4 and 7 are
        # skipped until the next j-th step) — hence no exchange, no
        # poli_power_alloc, and the measurement carries no analysis
        # information the controller could act on.
        step_sync_s = sync_s if due else 0.0
        step_overhead = overhead if due else 0.0
        interval = work + step_overhead + step_sync_s
        comm_draw_sim = np.minimum(103.0, sim.wait_draw(t_arrive))
        comm_draw_ana = np.minimum(103.0, ana.wait_draw(t_arrive))
        sim_energy = sim_energy + (step_overhead + step_sync_s) * comm_draw_sim
        ana_energy = ana_energy + (step_overhead + step_sync_s) * comm_draw_ana
        if cfg.collect_traces:
            sim.add_trace(t_arrive, t0 + interval, float(comm_draw_sim.mean()))
            ana.add_trace(t_arrive, t0 + interval, float(comm_draw_ana.mean()))

        t_decide = t_arrive + step_overhead
        if due:
            obs = _build_observation(
                step,
                cfg,
                sim_times,
                ana_times,
                sim_clean,
                ana_clean,
                sim_wait,
                ana_wait,
                sim_energy,
                ana_energy,
                interval,
                self._sensor,
                self._epoch_rng,
                due,
            )
            decision = self.controller.observe(obs)
            if decision is not None:
                sim.domain.request_caps(decision.sim_caps_w, now=t_decide)
                ana.domain.request_caps(decision.ana_caps_w, now=t_decide)

        if self._tracer is not None:
            self._emit_phases(
                t0,
                due,
                work,
                step_overhead + step_sync_s,
                sim_times,
                ana_times,
                sim_work_j,
                ana_work_j,
                sim_energy,
                ana_energy,
            )

        record = SyncRecord(
            step=step,
            t_start=t0,
            interval_s=interval,
            sim_work_s=sim_work,
            ana_work_s=ana_work,
            overhead_s=step_overhead,
            sync_s=step_sync_s,
            slack_norm=abs(sim_work - ana_work) / interval,
            sim_cap_mean_w=float(np.mean(sim.domain.requested_caps)),
            ana_cap_mean_w=float(np.mean(ana.domain.requested_caps)),
            sim_power_mean_w=float(np.mean(sim_energy)) / interval,
            ana_power_mean_w=float(np.mean(ana_energy)) / interval,
            sim_energy_j=float(np.sum(sim_energy)),
            ana_energy_j=float(np.sum(ana_energy)),
        )
        self.records.append(record)
        self.t = t0 + interval
        self.step_index = step
        return record

    def _emit_phases(
        self,
        t0: float,
        due: list,
        work: float,
        tail_s: float,
        sim_times: np.ndarray,
        ana_times: np.ndarray,
        sim_work_j: np.ndarray,
        ana_work_j: np.ndarray,
        sim_total_j: np.ndarray,
        ana_total_j: np.ndarray,
    ) -> None:
        """Per-rank phase spans for this interval (tracer enabled only).

        Simulation ranks are trace threads ``1..n_sim``, analysis ranks
        ``n_sim+1..n_nodes`` (tid 0 stays the controller lane).
        ``phase.md`` / ``phase.analysis`` carry each rank's work time
        and pre-wait energy; ``insitu.sync`` carries the spin-wait plus
        the exchange/actuation tail and the energy burned waiting — so
        the attribution report's md / analysis / sync-wait split sums
        exactly to the proxy's own per-interval energy accounting.
        """
        # Vectorized batch emission: the sync spans and wait energies
        # for every rank come out of four numpy expressions (matching
        # the per-rank scalar arithmetic bit for bit), and the finished
        # Chrome records go to the sink in one emit_many pass.
        pid = self._tracer.pid
        records: list[dict] = []

        def lane(times, work_j, total_j, tid0, phase_name, emit_phase):
            t_list = times.tolist()
            wj_list = work_j.tolist()
            sync_list = (work - times + tail_s).tolist()
            sync_j_list = (total_j - work_j).tolist()
            for r, t_r in enumerate(t_list):
                tid = tid0 + r
                if emit_phase and t_r > 0.0:
                    records.append(
                        {
                            "ph": "X", "name": phase_name, "cat": "proxy",
                            "ts": t0, "dur": t_r, "pid": pid, "tid": tid,
                            "args": {"energy_j": wj_list[r]},
                        }
                    )
                if sync_list[r] > 0.0:
                    records.append(
                        {
                            "ph": "X", "name": "insitu.sync", "cat": "proxy",
                            "ts": t0 + t_r, "dur": sync_list[r], "pid": pid,
                            "tid": tid, "args": {"energy_j": sync_j_list[r]},
                        }
                    )

        lane(sim_times, sim_work_j, sim_total_j, 1, "phase.md", True)
        lane(
            ana_times,
            ana_work_j,
            ana_total_j,
            self.cfg.n_sim + 1,
            "phase.analysis",
            bool(due),
        )
        self._tracer.emit_many(records)

    def run(self) -> JobResult:
        """Run the remaining synchronizations to completion."""
        while not self.done:
            self.step()
        return self.result()

    def result(self) -> JobResult:
        return JobResult(
            config=self.cfg,
            controller_name=self.controller.name,
            total_time_s=self.t,
            records=self.records,
            sim_trace=self.sim.trace,
            ana_trace=self.ana.trace,
        )


@register_workload("proxy")
def run_job(
    cfg: JobConfig,
    controller: PowerController,
    rng: RngStream | None = None,
    run_index: int = 0,
) -> JobResult:
    """Run one power-managed in-situ job to completion.

    Convenience wrapper around :class:`ProxyJobSession`.
    """
    return ProxyJobSession(cfg, controller, rng=rng, run_index=run_index).run()


def _build_observation(
    step: int,
    cfg: JobConfig,
    sim_times: np.ndarray,
    ana_times: np.ndarray,
    sim_clean: np.ndarray,
    ana_clean: np.ndarray,
    sim_wait: np.ndarray,
    ana_wait: np.ndarray,
    sim_energy: np.ndarray,
    ana_energy: np.ndarray,
    interval: float,
    sensor: RngStream,
    epoch_rng: RngStream,
    due: list[str],
) -> Observation:
    """Assemble the controllers' view of one interval.

    The partition ``work_time`` is the slowest-rank time (spikes
    included — that is PoLiMER's instrumented measurement and also what
    physically gates the job); the per-node epoch times use the
    median-of-ranks (spike-filtered) view plus misattributed wait,
    which is what a system-level balancer observes.
    """

    sim_leak, ana_leak = attribution_leak(cfg.n_nodes)

    def epoch(clean: np.ndarray, waits: np.ndarray, leak: float, rng_) -> np.ndarray:
        observed = clean + leak * waits
        jitter = rng_.lognormal(0.0, 0.03, size=len(clean))
        return observed * jitter

    def power(energy: np.ndarray) -> np.ndarray:
        return np.maximum(
            energy / interval + sensor.normal(0.0, 1.5, size=len(energy)),
            1.0,
        )

    sim_m = PartitionMeasurement(
        work_time_s=float(sim_times.max()),
        energy_j=float(sim_energy.sum()),
        interval_s=interval,
        node_epoch_times_s=epoch(sim_clean, sim_wait, sim_leak, epoch_rng),
        node_power_w=power(sim_energy),
    )
    ana_work = float(ana_times.max()) if due else 1e-9
    ana_m = PartitionMeasurement(
        work_time_s=max(ana_work, 1e-9),
        energy_j=float(ana_energy.sum()),
        interval_s=interval,
        node_epoch_times_s=epoch(ana_clean, ana_wait, ana_leak, epoch_rng),
        node_power_w=power(ana_energy),
    )
    return Observation(step=step, sim=sim_m, ana=ana_m)
