"""Virtual-clock time series: preallocated ring buffers + DES sampler.

The paper's Figure 1 is a fixed-period power trace; the metrics layer
reproduces that view live with bounded memory. A :class:`RingBuffer`
holds the last ``capacity`` ``(t, value)`` samples in preallocated
numpy storage; a :class:`PeriodicSampler` reads a set of probes every
``period_s`` of *virtual* time.

The sampler deliberately schedules **no DES events**. A self-
rescheduling heap event would extend the run past the last real event
and shift the virtual end time — breaking the bit-identity contract
between metered and unmetered runs. Instead the engine invokes the
sampler inline whenever its clock advances (one attribute check per
dispatch when metrics are off, see :class:`repro.des.engine.Engine`),
and the sampler fires its probes whenever a period boundary has been
crossed. Samples are therefore stamped at real event times, never at
synthetic ones.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["PeriodicSampler", "RingBuffer"]


class RingBuffer:
    """Last-``capacity`` ``(t, value)`` samples, oldest overwritten."""

    __slots__ = ("_t", "_v", "_next", "_size")

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._t = np.empty(capacity, dtype=float)
        self._v = np.empty(capacity, dtype=float)
        self._next = 0
        self._size = 0

    @property
    def capacity(self) -> int:
        return len(self._t)

    def __len__(self) -> int:
        return self._size

    def push(self, t: float, value: float) -> None:
        i = self._next
        self._t[i] = t
        self._v[i] = value
        self._next = (i + 1) % len(self._t)
        self._size = min(self._size + 1, len(self._t))

    def arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """``(times, values)`` in chronological order (copies)."""
        if self._size < len(self._t):
            sl = slice(0, self._size)
            return self._t[sl].copy(), self._v[sl].copy()
        order = np.r_[self._next : len(self._t), 0 : self._next]
        return self._t[order], self._v[order]

    def to_json(self) -> dict:
        t, v = self.arrays()
        return {"t": t.tolist(), "values": v.tolist()}


class PeriodicSampler:
    """Probe reader fired by the engine's clock advances.

    ``probes`` maps a time-series name to a zero-argument callable
    returning the current value; each probe feeds the registry's ring
    buffer of that name. A probe may return ``None`` to skip this
    sample (e.g. the probed object does not exist yet). Probes that
    raise are disabled for the rest of the run rather than killing the
    simulation — a sampler must never be able to fail a run.
    """

    __slots__ = ("period_s", "_probes", "_series", "_next_t", "_dead")

    def __init__(self, registry, period_s: float, probes: dict[str, Callable[[], float]]):
        if period_s <= 0:
            raise ValueError("sampling period must be positive")
        self.period_s = period_s
        self._probes = dict(probes)
        self._series = {name: registry.timeseries(name) for name in probes}
        self._next_t = 0.0
        self._dead: set[str] = set()

    def __call__(self, now: float) -> None:
        """Engine hook: called whenever virtual time advances."""
        if now < self._next_t:
            return
        for name, probe in self._probes.items():
            if name in self._dead:
                continue
            try:
                value = probe()
            except Exception:
                self._dead.add(name)
                continue
            if value is None:
                continue
            self._series[name].push(now, float(value))
        self._next_t = now + self.period_s
