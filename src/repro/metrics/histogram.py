"""Log-bucketed streaming histogram: quantiles without samples.

The metrics layer needs percentile views of quantities that occur
thousands of times per run (sync waits, phase durations, power slack)
across arbitrarily many runs. Storing samples is out of the question at
campaign scale, so values land in geometrically spaced buckets:

    bucket(v) = floor(log(v / v0) / log(growth))

With the default ``growth = 1.1`` every bucket spans a 10 % value
range — ~24 buckets per decade — so any quantile estimate is within one
bucket (±10 %) of the exact sample quantile, which is the resolution
contract the property tests pin (DESIGN.md §10). Buckets are held in a
dict keyed by integer index: a histogram covering nanoseconds to hours
costs a few hundred ints, and merging two histograms is a dict add.

Values below ``v0`` (including zero — zero-width spans are legal) are
collected in a dedicated underflow bucket reported as 0. Negative
values are invalid: every metered quantity in this code base (seconds,
joules, watts of |slack|) is non-negative by construction.
"""

from __future__ import annotations

import math

__all__ = ["StreamingHistogram"]


class StreamingHistogram:
    """Fixed-growth log-bucket histogram with O(1) observe."""

    __slots__ = (
        "growth",
        "v0",
        "_log_growth",
        "_buckets",
        "_underflow",
        "count",
        "total",
        "_min",
        "_max",
    )

    def __init__(self, growth: float = 1.1, v0: float = 1e-9) -> None:
        if growth <= 1.0:
            raise ValueError("growth must be > 1")
        if v0 <= 0.0:
            raise ValueError("v0 must be positive")
        self.growth = growth
        self.v0 = v0
        self._log_growth = math.log(growth)
        self._buckets: dict[int, int] = {}
        self._underflow = 0
        self.count = 0
        self.total = 0.0
        self._min = math.inf
        self._max = -math.inf

    # ------------------------------------------------------------------
    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        if value < 0.0 or math.isnan(value) or math.isinf(value):
            raise ValueError(f"histogram values must be finite and >= 0, got {value}")
        self.count += 1
        self.total += value
        self._min = min(self._min, value)
        self._max = max(self._max, value)
        if value < self.v0:
            self._underflow += 1
            return
        idx = int(math.floor(math.log(value / self.v0) / self._log_growth))
        self._buckets[idx] = self._buckets.get(idx, 0) + 1

    def merge(self, other: "StreamingHistogram") -> None:
        """Fold ``other`` (same growth/v0) into this histogram."""
        if (other.growth, other.v0) != (self.growth, self.v0):
            raise ValueError("cannot merge histograms with different bucketing")
        for idx, n in other._buckets.items():
            self._buckets[idx] = self._buckets.get(idx, 0) + n
        self._underflow += other._underflow
        self.count += other.count
        self.total += other.total
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError("mean of empty histogram")
        return self.total / self.count

    @property
    def minimum(self) -> float:
        if self.count == 0:
            raise ValueError("min of empty histogram")
        return self._min

    @property
    def maximum(self) -> float:
        if self.count == 0:
            raise ValueError("max of empty histogram")
        return self._max

    def bucket_bounds(self, idx: int) -> tuple[float, float]:
        """The value interval ``[lo, hi)`` covered by bucket ``idx``."""
        return self.v0 * self.growth**idx, self.v0 * self.growth ** (idx + 1)

    def quantile(self, q: float) -> float:
        """Estimate of the ``q``-quantile (0 <= q <= 1).

        Returns the geometric midpoint of the bucket holding the
        quantile rank, clamped to the observed [min, max] so estimates
        never stray outside the data range.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            raise ValueError("quantile of empty histogram")
        rank = q * (self.count - 1)
        seen = self._underflow
        if rank < seen:
            return 0.0
        for idx in sorted(self._buckets):
            seen += self._buckets[idx]
            if rank < seen:
                lo, hi = self.bucket_bounds(idx)
                return min(max(math.sqrt(lo * hi), self._min), self._max)
        return self._max

    def quantiles(self, qs: tuple[float, ...] = (0.5, 0.9, 0.99)) -> list[float]:
        return [self.quantile(q) for q in qs]

    # ------------------------------------------------------------------
    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """Prometheus-style ``(le_upper_bound, cumulative_count)`` rows.

        The underflow bucket surfaces as ``le = v0``; an implicit
        ``le = +Inf`` row equal to :attr:`count` is the exporter's job.
        """
        rows: list[tuple[float, int]] = []
        cum = self._underflow
        if self._underflow:
            rows.append((self.v0, cum))
        for idx in sorted(self._buckets):
            cum += self._buckets[idx]
            rows.append((self.bucket_bounds(idx)[1], cum))
        return rows

    def to_json(self) -> dict:
        """Summary statistics (not the raw buckets) for report export."""
        if self.count == 0:
            return {"count": 0}
        p50, p90, p99 = self.quantiles((0.5, 0.9, 0.99))
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "p50": p50,
            "p90": p90,
            "p99": p99,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.count == 0:
            return "<StreamingHistogram empty>"
        return (
            f"<StreamingHistogram n={self.count} mean={self.mean:.4g} "
            f"p50={self.quantile(0.5):.4g} p99={self.quantile(0.99):.4g}>"
        )
