"""Streaming metrics, controller audit journal, benchmark tracking.

The observability layer on top of (and independent of) the telemetry
tracer — see DESIGN.md §10:

* :mod:`repro.metrics.registry` — counters, gauges, streaming
  histograms and virtual-clock time series behind an ambient
  ``get_metrics()`` / ``use_metrics()`` pair;
* :mod:`repro.metrics.audit` — every controller decision recorded,
  replayable and diffable;
* :mod:`repro.metrics.bench` — benchmark baselines and the regression
  gate (imported explicitly as ``repro.metrics.bench``: it depends on
  the experiment harness, which depends on the core package, which
  imports this one).
"""

from repro.metrics.audit import (
    AuditJournal,
    AuditRecord,
    NULL_AUDIT,
    get_audit,
    load_journal,
    use_audit,
)
from repro.metrics.histogram import StreamingHistogram
from repro.metrics.registry import (
    MetricRegistry,
    MetricsReport,
    MetricsSink,
    NULL_METRICS,
    NullMetricRegistry,
    get_metrics,
    use_metrics,
)
from repro.metrics.timeseries import PeriodicSampler, RingBuffer

__all__ = [
    "AuditJournal",
    "AuditRecord",
    "MetricRegistry",
    "MetricsReport",
    "MetricsSink",
    "NULL_AUDIT",
    "NULL_METRICS",
    "NullMetricRegistry",
    "PeriodicSampler",
    "RingBuffer",
    "StreamingHistogram",
    "get_audit",
    "get_metrics",
    "load_journal",
    "use_audit",
    "use_metrics",
]
