"""Metric registry: counters, gauges, histograms, time series.

The registry is the metrics layer's hub, mirroring the tracer's shape
(:mod:`repro.telemetry.tracer`) so instrumentation reads the same at
every seam:

* ``get_metrics()`` returns the ambient registry — a process-wide
  **null registry** unless :func:`use_metrics` installs a real one, so
  instrumented hot paths cost one cached identity check when metrics
  are off;
* instruments are created on first use and cached by name; names are
  dotted (``insitu.sync_wait_s``) with the unit as the last component
  by convention;
* a DES :class:`~repro.des.engine.Engine` binds its virtual clock at
  construction, so gauge/time-series timestamps live on simulated
  seconds exactly like trace records.

Two ways in
-----------
Direct instrumentation (controllers, node runtimes) calls the registry;
:class:`MetricsSink` additionally *feeds the registry off the tracer* —
install it as (or chain it in front of) a tracer sink and every
complete-span duration, counter sample and instant lands in streaming
histograms/gauges without touching the instrumented code. The two
sources share one namespace: tracer-fed series are prefixed ``span.``/
``event.`` to keep them apart from first-class metrics.

The per-run :class:`MetricsReport` renders the registry three ways:
a terminal table, Prometheus text exposition (counters, gauges and
cumulative ``_bucket`` rows), and a JSON dict.
"""

from __future__ import annotations

import contextlib
import json
import re
from typing import Callable, Optional

from repro.metrics.histogram import StreamingHistogram
from repro.metrics.timeseries import RingBuffer
from repro.telemetry.sinks import Sink
from repro.util.stats import quantiles as exact_quantiles

__all__ = [
    "MetricRegistry",
    "MetricsReport",
    "MetricsSink",
    "NULL_METRICS",
    "NullMetricRegistry",
    "get_metrics",
    "use_metrics",
]


class _CounterM:
    """Monotonic counter (no per-inc record emission, unlike the tracer's)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, delta: float = 1.0) -> None:
        self.value += delta


class _GaugeM:
    """Last-written value plus a min/max envelope."""

    __slots__ = ("name", "value", "minimum", "maximum", "samples")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self.samples = 0

    def set(self, value: float) -> None:
        value = float(value)
        self.value = value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)
        self.samples += 1


class MetricRegistry:
    """Named instruments + the clock they are sampled on."""

    enabled = True

    def __init__(
        self,
        histogram_growth: float = 1.1,
        timeseries_capacity: int = 1024,
    ) -> None:
        self._histogram_growth = histogram_growth
        self._timeseries_capacity = timeseries_capacity
        self._counters: dict[str, _CounterM] = {}
        self._gauges: dict[str, _GaugeM] = {}
        self._histograms: dict[str, StreamingHistogram] = {}
        self._timeseries: dict[str, RingBuffer] = {}
        self._clock: Optional[Callable[[], float]] = None

    # ------------------------------------------------------------ clock
    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Adopt a (virtual) clock for time-series timestamps."""
        self._clock = clock

    def now(self) -> float:
        clock = self._clock
        return clock() if clock is not None else 0.0

    # ------------------------------------------------------ instruments
    def counter(self, name: str) -> _CounterM:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = _CounterM(name)
        return c

    def gauge(self, name: str) -> _GaugeM:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = _GaugeM(name)
        return g

    def histogram(self, name: str) -> StreamingHistogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = StreamingHistogram(
                growth=self._histogram_growth
            )
        return h

    def timeseries(self, name: str) -> RingBuffer:
        t = self._timeseries.get(name)
        if t is None:
            t = self._timeseries[name] = RingBuffer(self._timeseries_capacity)
        return t

    def sample(self, name: str, value: float) -> None:
        """Push ``(now, value)`` onto the ring buffer called ``name``."""
        self.timeseries(name).push(self.now(), value)

    # ------------------------------------------------------------ views
    def report(self) -> "MetricsReport":
        return MetricsReport(self)


class NullMetricRegistry(MetricRegistry):
    """Allocation-free no-op registry; the process default.

    Instruments are shared inert singletons, so unconditional
    ``get_metrics().counter("x").inc()`` in cold paths stays cheap and
    hot paths can cache ``registry if registry.enabled else None``.
    """

    enabled = False

    class _NullCounter(_CounterM):
        __slots__ = ()

        def inc(self, delta: float = 1.0) -> None:
            pass

    class _NullGauge(_GaugeM):
        __slots__ = ()

        def set(self, value: float) -> None:
            pass

    class _NullHistogram(StreamingHistogram):
        __slots__ = ()

        def observe(self, value: float) -> None:
            pass

    class _NullRing(RingBuffer):
        __slots__ = ()

        def push(self, t: float, value: float) -> None:
            pass

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = self._NullCounter("")
        self._null_gauge = self._NullGauge("")
        self._null_histogram = self._NullHistogram()
        self._null_ring = self._NullRing(1)

    def bind_clock(self, clock) -> None:
        pass

    def counter(self, name: str) -> _CounterM:
        return self._null_counter

    def gauge(self, name: str) -> _GaugeM:
        return self._null_gauge

    def histogram(self, name: str) -> StreamingHistogram:
        return self._null_histogram

    def timeseries(self, name: str) -> RingBuffer:
        return self._null_ring

    def sample(self, name: str, value: float) -> None:
        pass


#: the process-wide default — safe to call, records nothing
NULL_METRICS = NullMetricRegistry()

_current: MetricRegistry | None = None


def get_metrics() -> MetricRegistry:
    """The ambient registry (:data:`NULL_METRICS` unless installed)."""
    current = _current
    return current if current is not None else NULL_METRICS


@contextlib.contextmanager
def use_metrics(registry: MetricRegistry):
    """Install ``registry`` as the ambient metric registry for a scope."""
    global _current
    previous = _current
    _current = registry
    try:
        yield registry
    finally:
        _current = previous


# ---------------------------------------------------------------------------
# tracer -> registry bridge


class MetricsSink(Sink):
    """Telemetry sink that folds trace records into a registry.

    * ``"X"`` complete spans  -> ``span.<name>.s`` duration histograms
      (plus ``span.<name>.energy_j`` when the span carries energy);
    * ``"C"`` counter samples -> gauges (final value + envelope);
    * ``"i"`` instants        -> ``event.<name>`` counters.

    ``forward`` chains another sink behind the fold, so one tracer can
    feed the live registry *and* a Chrome trace file at once.
    """

    def __init__(self, registry: MetricRegistry, forward: Sink | None = None):
        self.registry = registry
        self.forward = forward

    def emit(self, record: dict) -> None:
        ph = record.get("ph")
        if ph == "X":
            name = record["name"]
            self.registry.histogram(f"span.{name}.s").observe(
                max(record.get("dur", 0.0), 0.0)
            )
            args = record.get("args") or {}
            energy = args.get("energy_j")
            if energy is not None:
                self.registry.histogram(f"span.{name}.energy_j").observe(
                    max(float(energy), 0.0)
                )
        elif ph == "C":
            value = (record.get("args") or {}).get("value", 0.0)
            self.registry.gauge(record["name"]).set(float(value))
        elif ph == "i":
            self.registry.counter(f"event.{record['name']}").inc()
        if self.forward is not None:
            self.forward.emit(record)

    def close(self) -> None:
        if self.forward is not None:
            self.forward.close()


# ---------------------------------------------------------------------------
# report rendering

_PROM_BAD = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str) -> str:
    out = _PROM_BAD.sub("_", name)
    if out and out[0].isdigit():
        out = "_" + out
    return out


class MetricsReport:
    """Snapshot renderer for one registry (text / Prometheus / JSON)."""

    #: quantiles surfaced by the table and JSON views
    QS = (0.5, 0.9, 0.99)

    def __init__(self, registry: MetricRegistry) -> None:
        self.registry = registry

    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        reg = self.registry
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}, "timeseries": {}}
        for name, c in sorted(reg._counters.items()):
            out["counters"][name] = c.value
        for name, g in sorted(reg._gauges.items()):
            out["gauges"][name] = {
                "value": g.value,
                "min": g.minimum,
                "max": g.maximum,
                "samples": g.samples,
            }
        for name, h in sorted(reg._histograms.items()):
            out["histograms"][name] = h.to_json()
        for name, t in sorted(reg._timeseries.items()):
            out["timeseries"][name] = t.to_json()
        return out

    def to_prometheus(self) -> str:
        """Prometheus text exposition (format 0.0.4)."""
        lines: list[str] = []
        reg = self.registry
        for name, c in sorted(reg._counters.items()):
            pname = _prom_name(name)
            lines.append(f"# TYPE {pname} counter")
            lines.append(f"{pname} {c.value:g}")
        for name, g in sorted(reg._gauges.items()):
            pname = _prom_name(name)
            lines.append(f"# TYPE {pname} gauge")
            lines.append(f"{pname} {g.value:g}")
        for name, h in sorted(reg._histograms.items()):
            pname = _prom_name(name)
            lines.append(f"# TYPE {pname} histogram")
            for le, cum in h.cumulative_buckets():
                lines.append(f'{pname}_bucket{{le="{le:g}"}} {cum}')
            lines.append(f'{pname}_bucket{{le="+Inf"}} {h.count}')
            lines.append(f"{pname}_sum {h.total:g}")
            lines.append(f"{pname}_count {h.count}")
        return "\n".join(lines) + "\n"

    def render(self) -> str:
        """Human-readable terminal report."""
        reg = self.registry
        lines = ["== metrics report =="]
        if reg._histograms:
            lines.append("")
            lines.append(
                f"  {'histogram':<34} {'count':>7} {'mean':>10}"
                f" {'p50':>10} {'p90':>10} {'p99':>10} {'max':>10}"
            )
            for name, h in sorted(reg._histograms.items()):
                if h.count == 0:
                    continue
                p50, p90, p99 = h.quantiles(self.QS)
                lines.append(
                    f"  {name:<34} {h.count:>7} {h.mean:>10.4g}"
                    f" {p50:>10.4g} {p90:>10.4g} {p99:>10.4g}"
                    f" {h.maximum:>10.4g}"
                )
        if reg._counters:
            lines.append("")
            lines.append("counters:")
            for name, c in sorted(reg._counters.items()):
                lines.append(f"  {name:<40} {c.value:g}")
        if reg._gauges:
            lines.append("")
            lines.append("gauges (last / min / max):")
            for name, g in sorted(reg._gauges.items()):
                lines.append(
                    f"  {name:<40} {g.value:g} / {g.minimum:g} / {g.maximum:g}"
                )
        if reg._timeseries:
            lines.append("")
            lines.append("time series:")
            for name, t in sorted(reg._timeseries.items()):
                if len(t) == 0:
                    continue
                ts, vs = t.arrays()
                p50, p90 = exact_quantiles(vs, (0.5, 0.9))
                lines.append(
                    f"  {name:<34} {len(t):>5} samples over"
                    f" [{ts[0]:.4g}, {ts[-1]:.4g}] s"
                    f"  p50={p50:.4g} p90={p90:.4g}"
                )
        return "\n".join(lines)

    def write(self, path) -> None:
        """Write the report to ``path``: JSON for ``.json``, Prometheus
        text otherwise. Missing parent directories are created."""
        from pathlib import Path

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        if path.suffix == ".json":
            path.write_text(json.dumps(self.to_json(), indent=2) + "\n")
        else:
            path.write_text(self.to_prometheus())
