"""Benchmark regression tracker: capture, baseline, compare, gate.

``repro bench capture`` runs a fixed set of small-but-real benchmark
collectors and writes a ``BENCH_<date>.json`` baseline; ``repro bench
check`` re-runs them and compares against the latest committed baseline
(``benchmarks/baselines/`` in CI). Two classes of metric:

* **gated** — deterministic quantities (seeded cap-sweep improvements,
  virtual runtimes, event counts). These are bit-reproducible, so the
  tolerances only absorb deliberate-but-small algorithmic drift; a real
  behavior change fails the gate and forces a baseline refresh in the
  same PR.
* **informational** (``gate=False``) — wall-clock throughputs and
  overheads. Machine-dependent, reported in the delta table but never
  failing.

This module imports the experiment harness, which imports the core
controllers, which import :mod:`repro.metrics` — so it is deliberately
NOT re-exported from the package ``__init__``; import it as
``repro.metrics.bench``.
"""

from __future__ import annotations

import datetime as _dt
import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

__all__ = [
    "BenchMetric",
    "BenchResult",
    "Delta",
    "capture",
    "compare",
    "latest_baseline",
    "load",
    "render_markdown",
    "render_text",
    "save",
]

SCHEMA_VERSION = 1

#: two cap points from the Fig. 8 sweep: one in the high-gain band,
#: one where gains have faded (the shape the paper's §VII-D predicts)
_FIG8_CAPS = (110.0, 140.0)


@dataclass
class BenchMetric:
    """One benchmarked quantity with its regression policy."""

    value: float
    unit: str
    #: "higher" (is better), "lower" (is better), or "equal" (must not
    #: move in either direction)
    direction: str = "equal"
    tol_abs: float = 0.0
    tol_pct: float = 0.0
    #: gated metrics fail the check; informational ones only report
    gate: bool = True


@dataclass
class BenchResult:
    """A captured benchmark run (what a ``BENCH_*.json`` file holds)."""

    schema: int = SCHEMA_VERSION
    captured_at: str = ""
    metrics: dict = field(default_factory=dict)  # name -> BenchMetric

    def to_json(self) -> dict:
        return {
            "schema": self.schema,
            "captured_at": self.captured_at,
            "metrics": {k: asdict(m) for k, m in sorted(self.metrics.items())},
        }

    @classmethod
    def from_json(cls, data: dict) -> "BenchResult":
        return cls(
            schema=data.get("schema", 1),
            captured_at=data.get("captured_at", ""),
            metrics={
                name: BenchMetric(**m)
                for name, m in data.get("metrics", {}).items()
            },
        )


# ---------------------------------------------------------------------------
# collectors


def _collect_fig8(metrics: dict) -> None:
    """Seeded cap-sweep improvements: the repo's headline numbers."""
    from repro.experiments.runner import paired_improvement
    from repro.workloads import JobConfig

    for cap in _FIG8_CAPS:
        cfg = JobConfig(
            analyses=("all_msd",),
            dim=16,
            n_nodes=128,
            n_verlet_steps=60,
            budget_per_node_w=cap,
            seed=88,
        )
        imp = paired_improvement("seesaw", cfg)
        metrics[f"fig8.cap{cap:.0f}.improvement_pct"] = BenchMetric(
            value=imp,
            unit="pct",
            direction="higher",
            tol_abs=0.25,
        )


def _collect_proxy_job(metrics: dict) -> None:
    """A small managed proxy job: virtual runtime is deterministic;
    wall time gives an events-per-second figure."""
    from repro.experiments.runner import build_controller
    from repro.workloads import JobConfig, run_job

    cfg = JobConfig(n_nodes=8, n_verlet_steps=40, seed=7)
    t0 = time.perf_counter()
    result = run_job(cfg, build_controller("seesaw", cfg))
    wall = time.perf_counter() - t0
    metrics["job8.seesaw.virtual_time_s"] = BenchMetric(
        value=result.total_time_s,
        unit="s",
        direction="equal",
        tol_pct=0.01,
    )
    metrics["job8.seesaw.wall_s"] = BenchMetric(
        value=wall, unit="s", direction="lower", gate=False
    )


def _collect_insitu(metrics: dict) -> None:
    """The real-computation coupled job at miniature scale."""
    from repro.cluster.node import THETA_NODE
    from repro.core import SeeSAwController
    from repro.insitu.coupler import InsituConfig, run_insitu

    cfg = InsituConfig(
        n_sim_ranks=2, n_ana_ranks=2, dim=1, n_verlet_steps=6, j=1
    )
    controller = SeeSAwController(
        cfg.power_cap_w * cfg.world_size,
        cfg.n_sim_ranks,
        cfg.n_ana_ranks,
        THETA_NODE,
    )
    t0 = time.perf_counter()
    result = run_insitu(cfg, controller)
    wall = time.perf_counter() - t0
    metrics["insitu.virtual_time_s"] = BenchMetric(
        value=result.virtual_time_s,
        unit="s",
        direction="equal",
        tol_pct=0.01,
    )
    metrics["insitu.wall_s"] = BenchMetric(
        value=wall, unit="s", direction="lower", gate=False
    )


def _collect_insitu_fig2(metrics: dict) -> None:
    """Fig. 2-scale coupled job with the shared-replica fast path on
    and off (informational): same virtual trajectory by construction,
    so the pair of wall times is the measured dedup speedup."""
    from repro.cluster.node import THETA_NODE
    from repro.core import SeeSAwController
    from repro.insitu.coupler import InsituConfig, run_insitu

    def one(shared: bool) -> float:
        cfg = InsituConfig(shared_replica=shared)  # default 4+4, 10 steps
        controller = SeeSAwController(
            cfg.power_cap_w * cfg.world_size,
            cfg.n_sim_ranks,
            cfg.n_ana_ranks,
            THETA_NODE,
        )
        t0 = time.perf_counter()
        run_insitu(cfg, controller)
        return time.perf_counter() - t0

    one(True)  # warm import/jit caches off the clock
    shared_wall = min(one(True) for _ in range(2))
    unshared_wall = min(one(False) for _ in range(2))
    metrics["insitu.fig2.wall_s"] = BenchMetric(
        value=shared_wall, unit="s", direction="lower", gate=False
    )
    metrics["insitu.fig2.unshared.wall_s"] = BenchMetric(
        value=unshared_wall, unit="s", direction="lower", gate=False
    )
    metrics["insitu.fig2.shared_replica_speedup"] = BenchMetric(
        value=unshared_wall / max(shared_wall, 1e-9),
        unit="x",
        direction="higher",
        gate=False,
    )


def _collect_substrate(metrics: dict) -> None:
    """DES micro: event count (gated) and dispatch throughput.

    Throughput is gated as a *floor* with a wide tolerance: the slotted
    dispatch loop is worth >2x over the handle-object engine, so even a
    50% CI-jitter allowance keeps the gate far above the old design.
    Best-of-3 fresh engines absorbs cold-start noise.
    """
    from repro.des.engine import Engine

    n = 50_000

    def one() -> tuple[int, float]:
        engine = Engine()
        fired = [0]

        def tick() -> None:
            fired[0] += 1
            if fired[0] < n:
                engine.schedule(0.001, tick)

        engine.schedule(0.0, tick)
        t0 = time.perf_counter()
        engine.run()
        return engine.events_executed, time.perf_counter() - t0

    one()  # warm the specialized run loop off the clock
    runs = [one() for _ in range(3)]
    events = runs[0][0]
    wall = min(w for _, w in runs)
    metrics["des.micro.events"] = BenchMetric(
        value=float(events), unit="events", direction="equal"
    )
    metrics["des.micro.events_per_s"] = BenchMetric(
        value=events / max(wall, 1e-9),
        unit="events/s",
        direction="higher",
        tol_pct=50.0,
    )


def _collect_des_churn(metrics: dict) -> None:
    """Cancellation-churn micro: a cap-change-storm shaped load that
    schedules, cancels, and reschedules in waves. The compaction count
    is deterministic (gated); throughput is informational."""
    from repro.des.engine import Engine

    engine = Engine()
    waves = 200
    per_wave = 256
    state = {"wave": 0}

    def storm() -> None:
        state["wave"] += 1
        handles = [
            engine.schedule(1.0 + i * 1e-6, _noop) for i in range(per_wave)
        ]
        # The "cap changed, restart the phase" pattern: cancel nearly
        # everything just scheduled and reschedule a replacement.
        for h in handles[: per_wave - 1]:
            engine.cancel(h)
        if state["wave"] < waves:
            engine.schedule(1e-3, storm)

    engine.schedule(0.0, storm)
    t0 = time.perf_counter()
    engine.run()
    wall = time.perf_counter() - t0
    ops = waves * (2 * per_wave - 1)  # schedules + cancels issued
    metrics["des.churn.compactions"] = BenchMetric(
        value=float(engine.compactions), unit="count", direction="equal"
    )
    metrics["des.churn.ops_per_s"] = BenchMetric(
        value=ops / max(wall, 1e-9),
        unit="ops/s",
        direction="higher",
        gate=False,
    )


def _noop() -> None:
    pass


def _collect_fig5_scale(metrics: dict) -> None:
    """Fig. 5-style managed run at full 1024-node scale: virtual time
    is deterministic (gated); wall time tracks the vectorized power
    path (informational)."""
    from repro.experiments.runner import build_controller
    from repro.workloads import JobConfig, run_job

    cfg = JobConfig(
        analyses=("all",), dim=36, n_nodes=1024, n_verlet_steps=60, seed=17
    )
    run_job(cfg, build_controller("seesaw", cfg))  # warm numpy/caches
    walls = []
    result = None
    for _ in range(3):
        t0 = time.perf_counter()
        result = run_job(cfg, build_controller("seesaw", cfg))
        walls.append(time.perf_counter() - t0)
    metrics["fig5.scale1024.virtual_time_s"] = BenchMetric(
        value=result.total_time_s,
        unit="s",
        direction="equal",
        tol_pct=0.01,
    )
    metrics["fig5.scale1024.wall_s"] = BenchMetric(
        value=min(walls), unit="s", direction="lower", gate=False
    )


def _collect_metrics_overhead(metrics: dict) -> None:
    """Wall-clock cost of running with a live registry + journal
    installed vs bare (informational: the gated property tests pin the
    *results* to be bit-identical; this tracks the speed tax)."""
    from repro.experiments.runner import build_controller
    from repro.metrics.audit import AuditJournal, use_audit
    from repro.metrics.registry import MetricRegistry, use_metrics
    from repro.workloads import JobConfig, run_job

    cfg = JobConfig(n_nodes=8, n_verlet_steps=40, seed=7)

    def bare() -> float:
        t0 = time.perf_counter()
        run_job(cfg, build_controller("seesaw", cfg))
        return time.perf_counter() - t0

    def metered() -> float:
        t0 = time.perf_counter()
        with use_metrics(MetricRegistry()), use_audit(AuditJournal()):
            run_job(cfg, build_controller("seesaw", cfg))
        return time.perf_counter() - t0

    bare()  # warm caches
    t_bare = min(bare() for _ in range(3))
    t_metered = min(metered() for _ in range(3))
    overhead = 100.0 * (t_metered - t_bare) / max(t_bare, 1e-9)
    metrics["metrics.overhead_pct"] = BenchMetric(
        value=overhead, unit="pct", direction="lower", gate=False
    )


def _scaleout_sleep(spec):
    """Sleep-based cell for the scale-out collector: cost tracks the
    spec's Verlet steps exactly, so the gap measured between schedulers
    is pure placement, not compute noise. Module-level: pool-picklable."""
    time.sleep(spec.cfg.n_verlet_steps * 1e-3)
    return spec.cfg.seed


def _collect_campaign_scaleout(metrics: dict) -> None:
    """Work-stealing vs FIFO/static on a skewed sweep (informational:
    wall-clock; the >= 1.3x floor is pinned by the benchmark suite)."""
    from repro.campaign import CampaignEngine, CellSpec
    from repro.workloads import JobConfig

    def specs():
        # 12 light (10 ms) + 4 heavy (120 ms) cells, heavies last
        return [
            CellSpec(
                "seesaw",
                JobConfig(
                    analyses=("vacf",),
                    n_nodes=8,
                    seed=seed,
                    n_verlet_steps=10 if seed <= 12 else 120,
                ),
            )
            for seed in range(1, 17)
        ]

    def sweep_wall(**policy) -> float:
        engine = CampaignEngine(jobs=4, run_fn=_scaleout_sleep, **policy)
        try:
            engine.run_cells(specs()[:4])  # warm the pool off the clock
            t0 = time.perf_counter()
            engine.run_cells(specs())
            return time.perf_counter() - t0
        finally:
            engine.close()

    fifo = sweep_wall(longest_first=False, steal=False, static_chunks=True)
    ws = sweep_wall()
    metrics["campaign.scaleout.ws_wall_s"] = BenchMetric(
        value=ws, unit="s", direction="lower", gate=False
    )
    metrics["campaign.scaleout.fifo_wall_s"] = BenchMetric(
        value=fifo, unit="s", direction="lower", gate=False
    )
    metrics["campaign.scaleout.speedup_x"] = BenchMetric(
        value=fifo / max(ws, 1e-9), unit="x", direction="higher", gate=False
    )


_COLLECTORS = (
    _collect_fig8,
    _collect_proxy_job,
    _collect_insitu,
    _collect_insitu_fig2,
    _collect_substrate,
    _collect_des_churn,
    _collect_fig5_scale,
    _collect_metrics_overhead,
    _collect_campaign_scaleout,
)


def capture(date: str | None = None) -> BenchResult:
    """Run every collector and return the captured result."""
    metrics: dict = {}
    for collector in _COLLECTORS:
        collector(metrics)
    return BenchResult(
        captured_at=date or _dt.date.today().isoformat(),
        metrics=metrics,
    )


# ---------------------------------------------------------------------------
# persistence


def save(result: BenchResult, directory: Path | str) -> Path:
    """Write ``BENCH_<captured_at>.json`` under ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{result.captured_at}.json"
    path.write_text(json.dumps(result.to_json(), indent=2) + "\n")
    return path


def load(path: Path | str) -> BenchResult:
    return BenchResult.from_json(json.loads(Path(path).read_text()))


def latest_baseline(directory: Path | str) -> Path | None:
    """Newest ``BENCH_*.json`` in ``directory`` (ISO dates sort
    lexicographically), or None."""
    candidates = sorted(Path(directory).glob("BENCH_*.json"))
    return candidates[-1] if candidates else None


# ---------------------------------------------------------------------------
# comparison


@dataclass
class Delta:
    """One metric's movement against the baseline."""

    name: str
    unit: str
    baseline: float | None
    current: float | None
    gate: bool
    regressed: bool
    note: str = ""

    @property
    def delta(self) -> float | None:
        if self.baseline is None or self.current is None:
            return None
        return self.current - self.baseline


def _tolerance(metric: BenchMetric, reference: float) -> float:
    return max(metric.tol_abs, abs(reference) * metric.tol_pct / 100.0)


def compare(baseline: BenchResult, current: BenchResult) -> list[Delta]:
    """Per-metric deltas; ``regressed`` is only ever True on gated
    metrics. The *baseline's* policy fields (direction/tolerance/gate)
    govern, so tightening a tolerance takes effect with the next
    captured baseline, not retroactively."""
    deltas: list[Delta] = []
    for name, base in sorted(baseline.metrics.items()):
        cur = current.metrics.get(name)
        if cur is None:
            deltas.append(
                Delta(
                    name=name,
                    unit=base.unit,
                    baseline=base.value,
                    current=None,
                    gate=base.gate,
                    regressed=base.gate,
                    note="metric disappeared",
                )
            )
            continue
        tol = _tolerance(base, base.value)
        moved = cur.value - base.value
        if base.direction == "higher":
            bad = moved < -tol
        elif base.direction == "lower":
            bad = moved > tol
        else:
            bad = abs(moved) > tol
        deltas.append(
            Delta(
                name=name,
                unit=base.unit,
                baseline=base.value,
                current=cur.value,
                gate=base.gate,
                regressed=bool(base.gate and bad),
                note=f"beyond tolerance {tol:g}" if base.gate and bad else "",
            )
        )
    for name, cur in sorted(current.metrics.items()):
        if name not in baseline.metrics:
            deltas.append(
                Delta(
                    name=name,
                    unit=cur.unit,
                    baseline=None,
                    current=cur.value,
                    gate=False,
                    regressed=False,
                    note="new metric",
                )
            )
    return deltas


def render_text(deltas: list[Delta]) -> str:
    """Terminal delta table."""
    lines = [
        f"  {'metric':<34} {'baseline':>12} {'current':>12}"
        f" {'delta':>10}  status"
    ]
    for d in deltas:
        base = f"{d.baseline:.4f}" if d.baseline is not None else "-"
        cur = f"{d.current:.4f}" if d.current is not None else "-"
        delta = f"{d.delta:+.4f}" if d.delta is not None else "-"
        status = "REGRESSED" if d.regressed else ("info" if not d.gate else "ok")
        note = f" ({d.note})" if d.note else ""
        lines.append(
            f"  {d.name:<34} {base:>12} {cur:>12} {delta:>10}  {status}{note}"
        )
    return "\n".join(lines)


def render_markdown(deltas: list[Delta]) -> str:
    """GitHub-flavoured delta table for ``$GITHUB_STEP_SUMMARY``."""
    lines = [
        "### Benchmark regression check",
        "",
        "| metric | unit | baseline | current | delta | status |",
        "| --- | --- | ---: | ---: | ---: | --- |",
    ]
    for d in deltas:
        base = f"{d.baseline:.4f}" if d.baseline is not None else "—"
        cur = f"{d.current:.4f}" if d.current is not None else "—"
        delta = f"{d.delta:+.4f}" if d.delta is not None else "—"
        if d.regressed:
            status = f"❌ regressed ({d.note})" if d.note else "❌ regressed"
        elif not d.gate:
            status = "ℹ️ informational"
        else:
            status = "✅ ok"
        lines.append(
            f"| `{d.name}` | {d.unit} | {base} | {cur} | {delta} | {status} |"
        )
    return "\n".join(lines) + "\n"
