"""Controller audit journal: record, replay, diff, timeline.

The paper's Figures 1–2 are *decision traces*: what the controller
observed at instant *t*, what it believed the optimum was, and where
the caps moved. This module makes that a first-class artifact. While an
:class:`AuditJournal` is installed (:func:`use_audit`), every
controller decision — from the flat proxy jobs and the real in-situ
coupler alike — is recorded as a structured :class:`AuditRecord`:

* ``init``     — the initial allocation;
* ``obs``      — one synchronization's measurement (work times and
  partition powers) as the controller saw it;
* ``decision`` — caps before/after, the decision's *inputs* (window
  means, per-node arrays, controller parameters — everything needed to
  recompute it), and the predicted slack where the controller's model
  yields one. The realized slack is derived at read time from the
  first observation following the decision, so streamed journals never
  need backfilling.

Because the inputs are complete, :func:`replay` re-executes every
decision through the controllers' pure decision functions
(:func:`repro.core.seesaw.decide_totals`,
:func:`repro.core.power_aware.redistribute_caps`,
:func:`repro.core.time_aware.balance_caps`) and verifies the recorded
cap schedule bit for bit — a journal is not just a log, it is a
checkable proof of what the controller did. :func:`diff_decisions`
compares two journals decision by decision (the CLI exits nonzero iff
they diverge), and :func:`render_timeline` draws the Fig. 1/2-style
power-split view in the terminal.
"""

from __future__ import annotations

import contextlib
import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

from repro.util.term import sparkline

__all__ = [
    "AuditJournal",
    "AuditRecord",
    "NULL_AUDIT",
    "ReplayResult",
    "decision_views",
    "diff_decisions",
    "get_audit",
    "load_journal",
    "render_timeline",
    "replay",
    "use_audit",
]

#: replay tolerance: JSON round-trips floats exactly (repr-based), so
#: recomputation only has to match to the last ulp of the arithmetic
_EXACT = 1e-12


@dataclass
class AuditRecord:
    """One journal row; ``kind`` is ``init``/``obs``/``decision``/
    ``hold`` (controller declined a degraded observation) / ``fault``
    (an injected fault window opened)."""

    kind: str
    step: int
    controller: str
    t: float | None = None
    before_sim_w: float | None = None
    before_ana_w: float | None = None
    after_sim_w: float | None = None
    after_ana_w: float | None = None
    #: everything needed to recompute the decision (controller-specific)
    inputs: dict = field(default_factory=dict)
    #: per-node caps after the decision, for array-valued controllers
    after_caps: dict = field(default_factory=dict)
    predicted_slack_s: float | None = None
    #: observation payload (kind == "obs")
    measured: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        out = {"kind": self.kind, "step": self.step, "controller": self.controller}
        for key in (
            "t",
            "before_sim_w",
            "before_ana_w",
            "after_sim_w",
            "after_ana_w",
            "predicted_slack_s",
        ):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        if self.inputs:
            out["inputs"] = self.inputs
        if self.after_caps:
            out["after_caps"] = self.after_caps
        if self.measured:
            out["measured"] = self.measured
        return out

    @classmethod
    def from_json(cls, data: dict) -> "AuditRecord":
        return cls(
            kind=data["kind"],
            step=int(data["step"]),
            controller=data.get("controller", ""),
            t=data.get("t"),
            before_sim_w=data.get("before_sim_w"),
            before_ana_w=data.get("before_ana_w"),
            after_sim_w=data.get("after_sim_w"),
            after_ana_w=data.get("after_ana_w"),
            inputs=data.get("inputs", {}),
            after_caps=data.get("after_caps", {}),
            predicted_slack_s=data.get("predicted_slack_s"),
            measured=data.get("measured", {}),
        )


class AuditJournal:
    """Decision recorder; in-memory always, JSONL-streamed when given a
    path (missing parent directories are created)."""

    enabled = True

    def __init__(self, path: Path | str | None = None) -> None:
        self.records: list[AuditRecord] = []
        self.path = Path(path) if path is not None else None
        self._fh = None
        self._clock: Optional[Callable[[], float]] = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("a")

    # ------------------------------------------------------------ clock
    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Adopt the DES virtual clock (done by Engine construction)."""
        self._clock = clock

    def now(self) -> float | None:
        clock = self._clock
        return clock() if clock is not None else None

    # ------------------------------------------------------------ write
    def _append(self, record: AuditRecord) -> None:
        self.records.append(record)
        if self._fh is not None:
            self._fh.write(json.dumps(record.to_json(), sort_keys=True) + "\n")
            self._fh.flush()

    def record_init(
        self, controller: str, after_sim_w: float, after_ana_w: float
    ) -> None:
        self._append(
            AuditRecord(
                kind="init",
                step=0,
                controller=controller,
                t=self.now(),
                after_sim_w=after_sim_w,
                after_ana_w=after_ana_w,
            )
        )

    def record_observation(self, controller: str, obs) -> None:
        """One synchronization's measurement (an ``Observation``)."""
        self._append(
            AuditRecord(
                kind="obs",
                step=obs.step,
                controller=controller,
                t=self.now(),
                measured={
                    "sim_work_s": obs.sim.work_time_s,
                    "ana_work_s": obs.ana.work_time_s,
                    "sim_power_w": obs.sim.total_power_w,
                    "ana_power_w": obs.ana.total_power_w,
                },
            )
        )

    def record_decision(
        self,
        controller: str,
        step: int,
        before: tuple[float, float],
        after: tuple[float, float],
        inputs: dict,
        predicted_slack_s: float | None = None,
        after_caps: dict | None = None,
    ) -> None:
        self._append(
            AuditRecord(
                kind="decision",
                step=step,
                controller=controller,
                t=self.now(),
                before_sim_w=before[0],
                before_ana_w=before[1],
                after_sim_w=after[0],
                after_ana_w=after[1],
                inputs=inputs,
                after_caps=after_caps or {},
                predicted_slack_s=predicted_slack_s,
            )
        )

    def record_hold(
        self, controller: str, step: int, reason: str, detail: dict
    ) -> None:
        """Controller held its caps on a degraded observation."""
        self._append(
            AuditRecord(
                kind="hold",
                step=step,
                controller=controller,
                t=self.now(),
                inputs={"reason": reason, **detail},
            )
        )

    def record_fault(self, fault_kind: str, t: float, detail: dict) -> None:
        """An injected fault window opened at virtual time ``t``."""
        self._append(
            AuditRecord(
                kind="fault",
                step=0,
                controller="faults",
                t=t,
                inputs={"fault": fault_kind, **detail},
            )
        )

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "AuditJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class _NullAuditJournal(AuditJournal):
    """Inert default: instrumentation checks ``enabled`` and moves on."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def bind_clock(self, clock) -> None:
        pass

    def _append(self, record: AuditRecord) -> None:  # pragma: no cover
        pass


NULL_AUDIT = _NullAuditJournal()

_current: AuditJournal | None = None


def get_audit() -> AuditJournal:
    """The ambient audit journal (:data:`NULL_AUDIT` unless installed)."""
    current = _current
    return current if current is not None else NULL_AUDIT


@contextlib.contextmanager
def use_audit(journal: AuditJournal):
    """Install ``journal`` as the ambient audit journal for a scope."""
    global _current
    previous = _current
    _current = journal
    try:
        yield journal
    finally:
        _current = previous


# ---------------------------------------------------------------------------
# reading journals back


def load_journal(path: Path | str) -> list[AuditRecord]:
    """Parse a JSONL audit journal (blank lines ignored)."""
    records = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            records.append(AuditRecord.from_json(json.loads(line)))
    return records


def decision_views(records: list[AuditRecord]) -> list[dict]:
    """Decisions with their *realized* slack attached.

    The realized slack of a decision is the |sim work − ana work| of
    the first observation recorded after it — what the reallocation
    actually achieved, to be read against ``predicted_slack_s``.
    """
    views: list[dict] = []
    pending: dict | None = None
    for rec in records:
        if rec.kind == "decision":
            pending = {
                "record": rec,
                "realized_slack_s": None,
            }
            views.append(pending)
        elif rec.kind == "obs" and pending is not None:
            measured = rec.measured
            pending["realized_slack_s"] = abs(
                measured.get("sim_work_s", 0.0) - measured.get("ana_work_s", 0.0)
            )
            pending = None
    return views


# ---------------------------------------------------------------------------
# replay


@dataclass
class ReplayResult:
    """Outcome of re-executing a journal's decisions."""

    n_decisions: int = 0
    n_replayed: int = 0
    n_skipped: int = 0
    #: degraded observations the controller declined to act on
    n_holds: int = 0
    #: injected fault windows recorded in the journal
    n_faults: int = 0
    #: (step, field, recorded, recomputed) for every divergence
    mismatches: list = field(default_factory=list)
    #: the verified cap schedule: (step, after_sim_w, after_ana_w)
    schedule: list = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.mismatches

    def render(self) -> str:
        lines = [
            f"replayed {self.n_replayed}/{self.n_decisions} decisions"
            + (f" ({self.n_skipped} unsupported controller(s) skipped)"
               if self.n_skipped else ""),
        ]
        if self.n_faults:
            lines.append(f"{self.n_faults} fault window(s) injected")
        if self.n_holds:
            lines.append(
                f"{self.n_holds} hold(s): controller kept caps on"
                " degraded observations"
            )
        lines += [
            "",
            f"  {'step':>6} {'sim W':>10} {'ana W':>10}",
        ]
        for step, sim_w, ana_w in self.schedule:
            lines.append(f"  {step:>6} {sim_w:>10.3f} {ana_w:>10.3f}")
        if self.mismatches:
            lines.append("")
            lines.append("MISMATCHES:")
            for step, fieldname, recorded, recomputed in self.mismatches:
                lines.append(
                    f"  step {step}: {fieldname} recorded={recorded!r}"
                    f" recomputed={recomputed!r}"
                )
        else:
            lines.append("")
            lines.append("recorded cap schedule reproduced exactly")
        return "\n".join(lines)


def _replay_seesaw(rec: AuditRecord) -> tuple[float, float] | None:
    from repro.core.seesaw import decide_totals

    i = rec.inputs
    try:
        _, total_s, total_a = decide_totals(
            i["t_sim_s"],
            i["p_sim_w"],
            i["t_ana_s"],
            i["p_ana_w"],
            i["budget_w"],
            i["prev_sim_w"],
            i["prev_ana_w"],
            i["feedback"],
            i["damping"],
            i["n_sim"],
            i["n_ana"],
            i["lo_w"],
            i["hi_w"],
        )
    except KeyError:
        return None
    return total_s, total_a


def _replay_power_aware(rec: AuditRecord) -> tuple[float, float] | None:
    import numpy as np

    from repro.core.power_aware import redistribute_caps

    i = rec.inputs
    try:
        decided = redistribute_caps(
            np.asarray(i["caps_w"], dtype=float),
            np.asarray(i["mean_power_w"], dtype=float),
            i["lo_w"],
            i["hi_w"],
            i["at_cap_margin_w"],
            i["reclaim_margin_w"],
        )
        n_sim = i["n_sim"]
    except KeyError:
        return None
    if decided is None:
        return None
    caps = decided[0]
    return float(caps[:n_sim].sum()), float(caps[n_sim:].sum())


def _replay_time_aware(rec: AuditRecord) -> tuple[float, float] | None:
    import numpy as np

    from repro.core.time_aware import balance_caps

    i = rec.inputs
    try:
        caps, _slack = balance_caps(
            np.asarray(i["caps_w"], dtype=float),
            np.asarray(i["times_s"], dtype=float),
            i["eta_w"],
            i["reactivity"],
            i["budget_w"],
            i["lo_w"],
            i["hi_w"],
        )
        n_sim = i["n_sim"]
    except KeyError:
        return None
    return float(caps[:n_sim].sum()), float(caps[n_sim:].sum())


#: controller name -> pure-function replayer. SeeSAw variants replay
#: the level-1 split (hierarchical's waterfill and exploring's probes
#: preserve / bypass partition totals respectively).
_REPLAYERS = {
    "seesaw": _replay_seesaw,
    "seesaw-hierarchical": _replay_seesaw,
    "seesaw-exploring": _replay_seesaw,
    "power-aware": _replay_power_aware,
    "time-aware": _replay_time_aware,
}


def replay(records: list[AuditRecord]) -> ReplayResult:
    """Re-execute every decision from its recorded inputs and verify
    the recorded cap schedule."""
    result = ReplayResult()
    for rec in records:
        if rec.kind == "init":
            result.schedule.append((rec.step, rec.after_sim_w, rec.after_ana_w))
            continue
        if rec.kind == "hold":
            result.n_holds += 1
            continue
        if rec.kind == "fault":
            result.n_faults += 1
            continue
        if rec.kind != "decision":
            continue
        result.n_decisions += 1
        replayer = _REPLAYERS.get(rec.controller)
        if replayer is None:
            result.n_skipped += 1
            result.schedule.append((rec.step, rec.after_sim_w, rec.after_ana_w))
            continue
        recomputed = replayer(rec)
        if recomputed is None:
            result.n_skipped += 1
            result.schedule.append((rec.step, rec.after_sim_w, rec.after_ana_w))
            continue
        result.n_replayed += 1
        total_s, total_a = recomputed
        for fieldname, recorded, value in (
            ("after_sim_w", rec.after_sim_w, total_s),
            ("after_ana_w", rec.after_ana_w, total_a),
        ):
            if recorded is None or not math.isclose(
                recorded, value, rel_tol=0.0, abs_tol=_EXACT
            ):
                result.mismatches.append((rec.step, fieldname, recorded, value))
        result.schedule.append((rec.step, rec.after_sim_w, rec.after_ana_w))
    return result


# ---------------------------------------------------------------------------
# diff


def diff_decisions(
    a: list[AuditRecord], b: list[AuditRecord]
) -> list[str]:
    """Decision-by-decision divergences between two journals.

    Empty list means the journals agree on every decision (controller,
    step, and after-caps); the CLI maps non-empty to a nonzero exit.
    """
    da = [r for r in a if r.kind == "decision"]
    db = [r for r in b if r.kind == "decision"]
    divergences: list[str] = []
    for i, (ra, rb) in enumerate(zip(da, db)):
        if ra.controller != rb.controller:
            divergences.append(
                f"decision {i}: controller {ra.controller!r} vs {rb.controller!r}"
            )
            continue
        if ra.step != rb.step:
            divergences.append(f"decision {i}: step {ra.step} vs {rb.step}")
        for fieldname in ("after_sim_w", "after_ana_w"):
            va, vb = getattr(ra, fieldname), getattr(rb, fieldname)
            if va is None or vb is None or not math.isclose(
                va, vb, rel_tol=0.0, abs_tol=_EXACT
            ):
                divergences.append(
                    f"decision {i} (step {ra.step}): {fieldname}"
                    f" {va!r} vs {vb!r}"
                )
    if len(da) != len(db):
        divergences.append(f"decision count differs: {len(da)} vs {len(db)}")
    return divergences


# ---------------------------------------------------------------------------
# timeline rendering (Fig. 1/2 style)


def render_timeline(records: list[AuditRecord], width: int = 64) -> str:
    """Terminal power-split timeline: measured partition power per
    synchronization, the cap schedule the decisions installed, and the
    predicted-vs-realized slack of each decision."""
    obs = [r for r in records if r.kind == "obs"]
    lines = ["== controller timeline =="]
    if obs:
        sim_p = [r.measured.get("sim_power_w", 0.0) for r in obs]
        ana_p = [r.measured.get("ana_power_w", 0.0) for r in obs]
        lines.append("")
        lines.append(f"measured partition power over {len(obs)} syncs:")
        lines.append("  " + sparkline(sim_p, width=width, label="sim W"))
        lines.append("  " + sparkline(ana_p, width=width, label="ana W"))
    # forward-fill the cap schedule over the observed steps
    sched = [
        r
        for r in records
        if r.kind in ("init", "decision") and r.after_sim_w is not None
    ]
    if sched and obs:
        sim_caps, ana_caps = [], []
        i = 0
        cur = sched[0]
        for r in obs:
            while i + 1 < len(sched) and sched[i + 1].step <= r.step:
                i += 1
                cur = sched[i]
            sim_caps.append(cur.after_sim_w)
            ana_caps.append(cur.after_ana_w)
        lines.append("")
        lines.append("installed cap split (forward-filled per sync):")
        lines.append("  " + sparkline(sim_caps, width=width, label="sim cap W"))
        lines.append("  " + sparkline(ana_caps, width=width, label="ana cap W"))
    views = decision_views(records)
    if views:
        lines.append("")
        lines.append(
            f"  {'step':>6} {'sim W':>9} {'ana W':>9}"
            f" {'pred slack s':>13} {'real slack s':>13}"
        )
        for view in views:
            rec = view["record"]
            pred = rec.predicted_slack_s
            real = view["realized_slack_s"]
            lines.append(
                f"  {rec.step:>6} {rec.after_sim_w:>9.2f}"
                f" {rec.after_ana_w:>9.2f}"
                f" {pred if pred is not None else float('nan'):>13.4f}"
                f" {real if real is not None else float('nan'):>13.4f}"
            )
    if len(lines) == 1:
        lines.append("(journal holds no observations or decisions)")
    return "\n".join(lines)
