"""Cluster-level power management across concurrent in-situ jobs.

The paper's §VIII integration point: a machine-wide budget divided
among jobs (each internally SeeSAw-managed), retargeted at epochs.
"""

from repro.sched.manager import ClusterPowerManager, ClusterResult, JobTelemetry

__all__ = ["ClusterPowerManager", "ClusterResult", "JobTelemetry"]
