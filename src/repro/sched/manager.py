"""System-wide power management across concurrent in-situ jobs.

The paper's future work (§VIII): "SeeSAw could be integrated with job
schedulers and system-wide power management schemes." This module
implements that integration point: a :class:`ClusterPowerManager` owns
a *machine-level* power budget, runs several power-managed in-situ jobs
concurrently (each one a :class:`~repro.workloads.ProxyJobSession`,
internally managed by its own SeeSAw/other controller), and retargets
the per-job budgets at fixed epochs.

Two cluster-level policies:

* ``static`` — each job keeps a budget proportional to its node count
  for its whole life (what a budget-unaware scheduler does);
* ``utilization`` — budgets track each job's *measured power share*
  (EWMA-damped): a job whose workload saturates below its budget (a
  communication-bound or low-demand mix) naturally cedes watts to jobs
  that can convert them into speed. Note the contrast with the paper's
  §VII finding: power-only feedback is harmful *between coupled
  partitions* (waits masquerade as headroom), but across
  **independent jobs** there is no such coupling, so utilization
  tracking is sound — this boundary is exactly why the paper positions
  SeeSAw as an application-level scheme complementary to system-wide
  ones (§II).

Budgets always respect each job's feasible envelope
(``n_nodes x [δ_min, δ_max]``) and their sum never exceeds the machine
budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field


from repro.workloads.lammps_proxy import ProxyJobSession

__all__ = ["ClusterPowerManager", "ClusterResult", "JobTelemetry"]


@dataclass
class JobTelemetry:
    """Per-job outcome of a cluster run."""

    name: str
    finish_time_s: float
    n_syncs: int
    #: (epoch index, budget watts) history
    budget_history: list = field(default_factory=list)
    #: mean measured power over the job's life (W)
    mean_power_w: float = 0.0


@dataclass
class ClusterResult:
    policy: str
    makespan_s: float
    jobs: dict = field(default_factory=dict)  # {name: JobTelemetry}

    def finish_time(self, name: str) -> float:
        return self.jobs[name].finish_time_s


class ClusterPowerManager:
    """Epoch-based cluster power manager over proxy job sessions."""

    def __init__(
        self,
        jobs: dict[str, ProxyJobSession],
        machine_budget_w: float,
        epoch_s: float = 60.0,
        policy: str = "utilization",
        damping: float = 0.5,
    ) -> None:
        """``jobs`` maps names to *fresh* sessions. ``machine_budget_w``
        is the total power available to all jobs together; it must
        cover every job's minimum (``n_nodes * δ_min``).

        ``damping`` is the EWMA weight on new headroom measurements —
        budget retargeting is deliberately sluggish, the opposite of the
        per-synchronization inner loop."""
        if not jobs:
            raise ValueError("need at least one job")
        if policy not in ("static", "utilization"):
            raise ValueError("policy must be 'static' or 'utilization'")
        if epoch_s <= 0:
            raise ValueError("epoch must be positive")
        if not 0.0 < damping <= 1.0:
            raise ValueError("damping must be in (0, 1]")
        self.jobs = dict(jobs)
        self.policy = policy
        self.epoch_s = epoch_s
        self.damping = damping

        self._lo = {
            name: s.cfg.n_nodes * s.cfg.machine.node.rapl_min_watts
            for name, s in self.jobs.items()
        }
        self._hi = {
            name: s.cfg.n_nodes * s.cfg.machine.node.tdp_watts
            for name, s in self.jobs.items()
        }
        min_needed = sum(self._lo.values())
        if machine_budget_w < min_needed:
            raise ValueError(
                f"machine budget {machine_budget_w} W below the jobs' "
                f"aggregate minimum {min_needed} W"
            )
        self.machine_budget_w = machine_budget_w

        self._last_measured: dict[str, float] = {}
        # initial division: proportional to node counts
        total_nodes = sum(s.cfg.n_nodes for s in self.jobs.values())
        self._budgets = {
            name: self._clamp(
                name, machine_budget_w * s.cfg.n_nodes / total_nodes
            )
            for name, s in self.jobs.items()
        }
        for name, session in self.jobs.items():
            session.set_budget(self._budgets[name])

    # ------------------------------------------------------------------
    def _clamp(self, name: str, budget: float) -> float:
        return min(max(budget, self._lo[name]), self._hi[name])

    def _epoch_power(
        self, name: str, session: ProxyJobSession, records_before: int
    ) -> float:
        """Mean measured power over the records of the last epoch.

        A job whose synchronization interval exceeds the epoch length
        can overshoot a horizon and contribute no records to the next
        epoch; its previous measurement is carried forward rather than
        read as zero draw.
        """
        recs = session.records[records_before:]
        if not recs:
            return self._last_measured.get(name, 0.0)
        energy = sum(r.sim_energy_j + r.ana_energy_j for r in recs)
        span = sum(r.interval_s for r in recs)
        power = energy / span if span > 0 else 0.0
        self._last_measured[name] = power
        return power

    def _rebalance(self, measured_w: dict[str, float], active: list[str]) -> None:
        """Utilization-proportional retargeting across active jobs.

        Each active job's target budget is its share of the measured
        power draw, scaled onto the power the active jobs currently
        hold; the move is EWMA-damped and clamped to every job's
        feasible envelope (iterating so clamp surpluses flow to the
        unclamped jobs — same water-filling idea as the hierarchical
        controller's level 2).
        """
        if self.policy == "static" or len(active) < 2:
            return
        budgets = self._budgets
        total_active = sum(budgets[name] for name in active)
        total_measured = sum(max(measured_w[name], 1.0) for name in active)
        targets = {
            name: total_active * max(measured_w[name], 1.0) / total_measured
            for name in active
        }
        new = {
            name: budgets[name]
            + self.damping * (targets[name] - budgets[name])
            for name in active
        }
        # clamp + redistribute the residual over unclamped jobs
        for _ in range(len(active)):
            clamped = {n: self._clamp(n, b) for n, b in new.items()}
            residual = total_active - sum(clamped.values())
            if abs(residual) < 1e-9:
                new = clamped
                break
            if residual > 0:
                free = [
                    n for n in active if clamped[n] < self._hi[n] - 1e-9
                ]
            else:
                free = [
                    n for n in active if clamped[n] > self._lo[n] + 1e-9
                ]
            if not free:
                new = clamped
                break
            for n in free:
                clamped[n] += residual / len(free)
            new = clamped
        for name in active:
            budgets[name] = self._clamp(name, new[name])
            self.jobs[name].set_budget(budgets[name])

    # ------------------------------------------------------------------
    def run(self) -> ClusterResult:
        """Run every job to completion; rebalance at epoch boundaries."""
        telem = {
            name: JobTelemetry(name=name, finish_time_s=0.0, n_syncs=0)
            for name in self.jobs
        }
        epoch = 0
        while any(not s.done for s in self.jobs.values()):
            epoch += 1
            horizon = epoch * self.epoch_s
            measured: dict[str, float] = {}
            active: list[str] = []
            for name, session in self.jobs.items():
                if session.done:
                    continue
                before = len(session.records)
                while not session.done and session.t < horizon:
                    session.step()
                measured[name] = self._epoch_power(name, session, before)
                if session.done:
                    telem[name].finish_time_s = session.t
                else:
                    active.append(name)
            self._rebalance(measured, active)
            for name in self.jobs:
                telem[name].budget_history.append(
                    (epoch, self._budgets[name])
                )

        makespan = 0.0
        for name, session in self.jobs.items():
            t = telem[name]
            t.n_syncs = session.step_index
            energy = sum(
                r.sim_energy_j + r.ana_energy_j for r in session.records
            )
            t.mean_power_w = (
                energy / session.t / session.cfg.n_nodes
                if session.t > 0
                else 0.0
            )
            makespan = max(makespan, t.finish_time_s)
        return ClusterResult(
            policy=self.policy, makespan_s=makespan, jobs=telem
        )
