"""Deterministic discrete-event engine.

This is the execution substrate for the whole reproduction: the
simulated MPI runtime, the RAPL power domains, the in-situ workflow and
the 1024-node proxy jobs all advance a single virtual clock owned by an
:class:`Engine`.

Design notes
------------
* Events are kept in a binary heap keyed by ``(time, sequence)``. The
  monotonically increasing sequence number makes simultaneous events
  fire in schedule order, which keeps runs bit-for-bit reproducible —
  a property the experiment harness relies on to pair managed runs with
  their baselines (paper §VII-A).
* Events are cancellable in O(1) by flagging the handle; cancelled
  entries are dropped lazily when popped. Power-cap changes re-schedule
  in-flight compute completions, so cancellation is on the hot path.
* There is no wall-clock coupling anywhere: a 1024-node, 400-step job
  simulates in milliseconds of host time.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional

from repro.faults.injector import get_faults
from repro.metrics.audit import get_audit
from repro.metrics.registry import get_metrics
from repro.telemetry import get_tracer

__all__ = ["Engine", "EventHandle", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for structural errors in the simulation (deadlock, etc.)."""


class EventHandle:
    """Handle to a scheduled callback; supports O(1) cancellation."""

    __slots__ = ("time", "seq", "callback", "cancelled", "_engine")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[[], None],
        engine: "Engine | None" = None,
    ):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        # live-event accounting: the owning engine is detached once the
        # event fires or is cancelled, so each handle decrements the
        # engine's live counter at most once
        self._engine = engine

    def cancel(self) -> None:
        """Prevent the callback from firing; safe to call twice."""
        if self.cancelled:
            return
        self.cancelled = True
        self.callback = None  # release references promptly
        engine = self._engine
        self._engine = None
        if engine is not None:
            engine._live -= 1

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "cancelled" if self.cancelled else "pending"
        return f"<EventHandle t={self.time:.6f} seq={self.seq} {state}>"


class Engine:
    """Virtual-time event loop.

    Typical use::

        eng = Engine()
        eng.schedule(1.5, lambda: print("fired at", eng.now))
        eng.run()
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[EventHandle] = []
        self._seq = itertools.count()
        self._running = False
        #: count of live (scheduled, not yet fired or cancelled) events;
        #: maintained incrementally so ``pending`` is O(1)
        self._live = 0
        #: number of callbacks executed; useful for complexity assertions
        self.events_executed = 0
        # Each traced engine is a fresh trace "process": sequential runs
        # all start their virtual clocks at 0 and must not overlap.
        tracer = get_tracer()
        self._tracer = tracer if tracer.enabled else None
        if self._tracer is not None:
            tracer.bind_clock(lambda: self._now, label="des-engine")
            tracer.name_thread(0, "des/engine")
        # The metrics registry and audit journal sample on the same
        # virtual clock; both bindings are no-ops on the null objects.
        metrics = get_metrics()
        self._metrics = metrics if metrics.enabled else None
        if self._metrics is not None:
            metrics.bind_clock(lambda: self._now)
        audit = get_audit()
        if audit.enabled:
            audit.bind_clock(lambda: self._now)
        # Fault windows open/close at exact virtual times via the same
        # inline-hook discipline as the sampler: markers are fired on
        # clock advances, never as heap events (which would move the
        # virtual end time and break bit-identity).
        faults = get_faults()
        self._faults = faults if faults.enabled else None
        if self._faults is not None:
            faults.bind_engine(self)
        #: inline sampler hook fired on clock advances (never a heap
        #: event — synthetic events would move the virtual end time and
        #: break the bit-identity contract). See attach_sampler().
        self._sampler: Optional[Callable[[float], None]] = None

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def attach_sampler(self, sampler: Callable[[float], None]) -> None:
        """Install a callable invoked with ``now`` after every clock
        advance (see :class:`repro.metrics.timeseries.PeriodicSampler`).

        The sampler is a pure observer: it must not schedule events or
        otherwise perturb the simulation.
        """
        self._sampler = sampler

    def schedule(
        self, delay: float, callback: Callable[[], None]
    ) -> EventHandle:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        handle = EventHandle(
            self._now + delay, next(self._seq), callback, engine=self
        )
        heapq.heappush(self._heap, handle)
        self._live += 1
        return handle

    def schedule_at(
        self, time: float, callback: Callable[[], None]
    ) -> EventHandle:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        handle = EventHandle(time, next(self._seq), callback, engine=self)
        heapq.heappush(self._heap, handle)
        self._live += 1
        return handle

    # ------------------------------------------------------------------
    def _pop_live(self) -> Optional[EventHandle]:
        while self._heap:
            handle = heapq.heappop(self._heap)
            if not handle.cancelled:
                self._live -= 1
                handle._engine = None  # fired: no longer live
                return handle
        return None

    def peek(self) -> Optional[float]:
        """Time of the next live event, or None when the heap is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Execute the next event. Returns False when nothing is pending."""
        handle = self._pop_live()
        if handle is None:
            return False
        self._now = handle.time
        if self._faults is not None:
            self._faults.on_advance(self._now)
        if self._sampler is not None:
            self._sampler(self._now)
        callback = handle.callback
        handle.callback = None
        self.events_executed += 1
        if self._tracer is not None:
            # Callbacks are instantaneous in virtual time: a zero-width
            # complete span keeps dispatches visible under des.run.
            self._tracer.complete(
                "des.dispatch", 0.0, cat="des", tid=0, seq=handle.seq
            )
        callback()
        return True

    def run(self, max_events: int | None = None) -> None:
        """Run until the event heap drains (or ``max_events`` fire)."""
        if self._running:
            raise SimulationError("engine is not re-entrant")
        self._running = True
        run_span = (
            self._tracer.begin("des.run", cat="des", tid=0)
            if self._tracer is not None
            else None
        )
        try:
            fired = 0
            while self.step():
                fired += 1
                if max_events is not None and fired >= max_events:
                    return
        finally:
            self._running = False
            if run_span is not None:
                run_span.end(events=self.events_executed)
            if self._metrics is not None:
                self._metrics.counter("des.runs").inc()
                self._metrics.histogram("des.events_per_run").observe(
                    float(self.events_executed)
                )
                self._metrics.gauge("des.virtual_time_s").set(self._now)

    def run_until(self, time: float) -> None:
        """Run events with timestamps <= ``time``; then set now = time."""
        if time < self._now:
            raise ValueError("cannot run backwards")
        while True:
            nxt = self.peek()
            if nxt is None or nxt > time:
                break
            self.step()
        self._now = max(self._now, time)

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of live events still queued (O(1))."""
        return self._live

    def _pending_scan(self) -> int:
        """O(n) heap scan of live events — the reference the O(1)
        counter is asserted against in the engine's test suite."""
        return sum(1 for h in self._heap if not h.cancelled)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Engine now={self._now:.6f} pending={self.pending}>"
