"""Deterministic discrete-event engine.

This is the execution substrate for the whole reproduction: the
simulated MPI runtime, the RAPL power domains, the in-situ workflow and
the 1024-node proxy jobs all advance a single virtual clock owned by an
:class:`Engine`.

Design notes
------------
* Events are kept in a binary heap of slotted ``[time, seq, callback]``
  entries. The monotonically increasing sequence number is unique, so a
  heap sift is decided entirely by the ``(time, seq)`` prefix and runs
  in C — the hot loop pays no Python-level comparison calls and no
  per-event handle allocation. The sequence number also makes
  simultaneous events fire in schedule order, which keeps runs
  bit-for-bit reproducible — a property the experiment harness relies
  on to pair managed runs with their baselines (paper §VII-A).
* The entry itself is the cancellation handle: :meth:`Engine.cancel`
  clears the callback slot in O(1) and cleared entries are dropped
  lazily when popped. Power-cap changes re-schedule in-flight compute
  completions, so cancellation is on the hot path. When dead entries
  outnumber live ones the heap is compacted (filter + re-heapify),
  bounding both memory and per-pop skip work under cap-change storms
  (see DESIGN.md §15).
* ``run()`` selects a dispatch loop specialized for the hooks actually
  installed (tracer / sampler / faults), so a bare engine pays zero
  per-event branch checks for disabled instrumentation. ``step()``
  stays the fully general single-step API; both produce bit-identical
  trajectories.
* There is no wall-clock coupling anywhere: a 1024-node, 400-step job
  simulates in milliseconds of host time.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable, List, Optional

from repro.faults.injector import get_faults
from repro.metrics.audit import get_audit
from repro.metrics.registry import get_metrics
from repro.telemetry import get_tracer

__all__ = ["Engine", "EventHandle", "SimulationError"]

_INF = math.inf
_heappush = heapq.heappush
_heappop = heapq.heappop

#: A scheduled event is its own handle: a mutable ``[time, seq,
#: callback]`` triple whose ``(time, seq)`` prefix orders the heap in C.
#: Slot 2 is the *callback slot* — cleared to ``None`` when the event
#: fires or is cancelled, so a handle is live iff ``handle[2] is not
#: None``. Cancel through :meth:`Engine.cancel` (which keeps the dead
#:-entry accounting right), never by mutating the slot directly.
EventHandle = List[Any]


class SimulationError(RuntimeError):
    """Raised for structural errors in the simulation (deadlock, etc.)."""


def _build_run_loop(
    tracer_on: bool, sampler_on: bool, faults_on: bool
) -> Callable[["Engine"], None]:
    """Compile a drain-the-heap loop with only the needed hook lines.

    Hook order matches :meth:`Engine.step` exactly (advance clock →
    faults → sampler → count → tracer → callback) so every variant
    produces the same trajectory; disabled hooks are absent from the
    bytecode rather than guarded by per-event branches. The executed
    -event count is accumulated locally and flushed in a ``finally`` so
    an exception in a callback still leaves ``events_executed`` exact.
    """
    lines = ["def _run_loop(engine):", "    heap = engine._heap"]
    if faults_on:
        lines.append("    faults_advance = engine._faults.on_advance")
    if sampler_on:
        lines.append("    sampler = engine._sampler")
    if tracer_on:
        lines.append("    trace_complete = engine._tracer.complete")
    lines += [
        "    n = 0",
        "    try:",
        "        while heap:",
        "            entry = _heappop(heap)",
        "            callback = entry[2]",
        "            if callback is None:",
        "                engine._dead -= 1",
        "                continue",
        "            entry[2] = None",
        "            engine._now = entry[0]",
    ]
    if faults_on:
        lines.append("            faults_advance(entry[0])")
    if sampler_on:
        lines.append("            sampler(entry[0])")
    lines.append("            n += 1")
    if tracer_on:
        lines.append(
            "            trace_complete("
            "'des.dispatch', 0.0, cat='des', tid=0, seq=entry[1])"
        )
    lines += [
        "            callback()",
        "    finally:",
        "        engine.events_executed += n",
    ]
    namespace: dict = {"_heappop": heapq.heappop}
    exec(compile("\n".join(lines), "<des-run-loop>", "exec"), namespace)
    return namespace["_run_loop"]


#: pre-built dispatch loops keyed by (tracer_on, sampler_on, faults_on)
_RUN_LOOPS: dict[tuple[bool, bool, bool], Callable[["Engine"], None]] = {
    (t, s, f): _build_run_loop(t, s, f)
    for t in (False, True)
    for s in (False, True)
    for f in (False, True)
}


class Engine:
    """Virtual-time event loop.

    Typical use::

        eng = Engine()
        eng.schedule(1.5, lambda: print("fired at", eng.now))
        eng.run()
    """

    #: compaction trigger: rebuild the heap once at least this many
    #: cancelled entries are parked in it AND they outnumber live ones.
    #: The floor keeps tiny heaps on the pure lazy-deletion path; the
    #: majority rule makes compaction cost amortized O(1) per cancel.
    COMPACT_MIN_DEAD = 64

    def __init__(self) -> None:
        self._now = 0.0
        #: heap of slotted [time, seq, callback] entries — see module notes
        self._heap: list[EventHandle] = []
        self._seq = itertools.count()
        self._running = False
        #: cancelled entries still parked in the heap; drives compaction
        #: and makes ``pending`` O(1) (len(heap) minus dead entries)
        self._dead = 0
        #: number of heap compactions performed (diagnostic)
        self.compactions = 0
        #: number of callbacks executed; useful for complexity assertions
        self.events_executed = 0
        # Each traced engine is a fresh trace "process": sequential runs
        # all start their virtual clocks at 0 and must not overlap.
        tracer = get_tracer()
        self._tracer = tracer if tracer.enabled else None
        if self._tracer is not None:
            tracer.bind_clock(lambda: self._now, label="des-engine")
            tracer.name_thread(0, "des/engine")
        # The metrics registry and audit journal sample on the same
        # virtual clock; both bindings are no-ops on the null objects.
        metrics = get_metrics()
        self._metrics = metrics if metrics.enabled else None
        if self._metrics is not None:
            metrics.bind_clock(lambda: self._now)
        audit = get_audit()
        if audit.enabled:
            audit.bind_clock(lambda: self._now)
        # Fault windows open/close at exact virtual times via the same
        # inline-hook discipline as the sampler: markers are fired on
        # clock advances, never as heap events (which would move the
        # virtual end time and break bit-identity).
        faults = get_faults()
        self._faults = faults if faults.enabled else None
        if self._faults is not None:
            faults.bind_engine(self)
        #: inline sampler hook fired on clock advances (never a heap
        #: event — synthetic events would move the virtual end time and
        #: break the bit-identity contract). See attach_sampler().
        self._sampler: Optional[Callable[[float], None]] = None

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def attach_sampler(self, sampler: Callable[[float], None]) -> None:
        """Install a callable invoked with ``now`` after every clock
        advance (see :class:`repro.metrics.timeseries.PeriodicSampler`).

        The sampler is a pure observer: it must not schedule events or
        otherwise perturb the simulation. Hooks are bound when ``run()``
        selects its dispatch loop, so samplers must be attached before
        the run starts.
        """
        if self._running:
            raise SimulationError(
                "attach_sampler() during run(): hooks are bound when the "
                "dispatch loop is selected at run() entry"
            )
        self._sampler = sampler

    def schedule(
        self, delay: float, callback: Callable[[], None]
    ) -> EventHandle:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if not 0.0 <= delay < _INF:  # rejects negatives, inf and NaN
            raise ValueError(
                f"cannot schedule with non-finite or negative delay "
                f"(delay={delay})"
            )
        entry = [self._now + delay, next(self._seq), callback]
        _heappush(self._heap, entry)
        return entry

    def schedule_at(
        self, time: float, callback: Callable[[], None]
    ) -> EventHandle:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        if not self._now <= time < _INF:  # rejects past, inf and NaN
            raise ValueError(
                f"cannot schedule at t={time}: need a finite time >= "
                f"now={self._now}"
            )
        entry = [time, next(self._seq), callback]
        _heappush(self._heap, entry)
        return entry

    # ------------------------------------------------------------------
    def cancel(self, handle: EventHandle) -> None:
        """Prevent a scheduled callback from firing, in O(1).

        Safe to call twice and safe on handles that already fired: both
        are no-ops (the callback slot is already cleared).
        """
        if handle[2] is not None:
            handle[2] = None
            self._note_cancelled()

    def _note_cancelled(self) -> None:
        """Account for a cancellation; compact once dead entries win."""
        dead = self._dead + 1
        self._dead = dead
        if dead >= self.COMPACT_MIN_DEAD and dead * 2 > len(self._heap):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify, in place.

        In place (``heap[:] =``) so aliases held by a dispatch loop in
        progress keep observing the same list object.
        """
        heap = self._heap
        heap[:] = [entry for entry in heap if entry[2] is not None]
        heapq.heapify(heap)
        self._dead = 0
        self.compactions += 1
        if self._metrics is not None:
            self._metrics.counter("des.heap_compactions").inc()

    def peek(self) -> Optional[float]:
        """Time of the next live event, or None when the heap is empty."""
        heap = self._heap
        while heap and heap[0][2] is None:
            _heappop(heap)
            self._dead -= 1
        return heap[0][0] if heap else None

    def step(self) -> bool:
        """Execute the next event. Returns False when nothing is pending."""
        heap = self._heap
        while heap:
            entry = _heappop(heap)
            callback = entry[2]
            if callback is None:
                self._dead -= 1
                continue
            entry[2] = None  # fired: the handle is no longer live
            self._now = entry[0]
            if self._faults is not None:
                self._faults.on_advance(self._now)
            if self._sampler is not None:
                self._sampler(self._now)
            self.events_executed += 1
            if self._tracer is not None:
                # Callbacks are instantaneous in virtual time: a zero-width
                # complete span keeps dispatches visible under des.run.
                self._tracer.complete(
                    "des.dispatch", 0.0, cat="des", tid=0, seq=entry[1]
                )
            callback()
            return True
        return False

    def run(self, max_events: int | None = None) -> None:
        """Run until the event heap drains (or ``max_events`` fire).

        The unbounded form dispatches through a loop specialized at
        entry for the hooks actually installed; the bounded form uses
        the general :meth:`step`. Both orders are bit-identical.
        """
        if self._running:
            raise SimulationError("engine is not re-entrant")
        self._running = True
        run_span = (
            self._tracer.begin("des.run", cat="des", tid=0)
            if self._tracer is not None
            else None
        )
        try:
            if max_events is None:
                _RUN_LOOPS[
                    (
                        self._tracer is not None,
                        self._sampler is not None,
                        self._faults is not None,
                    )
                ](self)
            else:
                fired = 0
                while self.step():
                    fired += 1
                    if fired >= max_events:
                        return
        finally:
            self._running = False
            if run_span is not None:
                run_span.end(events=self.events_executed)
            if self._metrics is not None:
                self._metrics.counter("des.runs").inc()
                self._metrics.histogram("des.events_per_run").observe(
                    float(self.events_executed)
                )
                self._metrics.gauge("des.virtual_time_s").set(self._now)

    def run_until(self, time: float) -> None:
        """Run events with timestamps <= ``time``; then set now = time."""
        if time < self._now:
            raise ValueError("cannot run backwards")
        while True:
            nxt = self.peek()
            if nxt is None or nxt > time:
                break
            self.step()
        self._now = max(self._now, time)

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of live events still queued (O(1))."""
        return len(self._heap) - self._dead

    def _pending_scan(self) -> int:
        """O(n) heap scan of live events — the reference the O(1)
        counter is asserted against in the engine's test suite."""
        return sum(1 for entry in self._heap if entry[2] is not None)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Engine now={self._now:.6f} pending={self.pending}>"
