"""Discrete-event simulation substrate.

The engine owns virtual time; processes are Python generators that
yield awaitables (delays, events, other processes). See
:mod:`repro.des.engine` for the event loop and
:mod:`repro.des.process` for the process model.
"""

from repro.des.engine import Engine, EventHandle, SimulationError
from repro.des.process import Delay, Process, SimEvent

__all__ = [
    "Delay",
    "Engine",
    "EventHandle",
    "Process",
    "SimEvent",
    "SimulationError",
]
