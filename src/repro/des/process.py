"""Generator-based simulated processes and one-shot events.

A :class:`Process` wraps a Python generator that models one thread of
control (an MPI rank, a partition, a power monitor). The generator
yields *awaitables*:

* ``Delay(dt)`` — advance virtual time by ``dt``;
* a :class:`SimEvent` — block until someone calls ``succeed(value)``;
  the value is sent back into the generator;
* another :class:`Process` — block until that process terminates; its
  return value is sent back.

Higher layers (the MPI runtime, node compute) hand processes richer
objects that ultimately reduce to these primitives.
"""

from __future__ import annotations

from typing import Any, Callable, Generator

from repro.des.engine import Engine, SimulationError

__all__ = ["Delay", "Process", "SimEvent"]


class Delay:
    """Awaitable that resumes the process after ``duration`` seconds."""

    __slots__ = ("duration",)

    def __init__(self, duration: float) -> None:
        if duration < 0:
            raise ValueError(f"negative delay {duration}")
        self.duration = duration

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Delay({self.duration})"


class SimEvent:
    """One-shot event processes can wait on.

    ``succeed(value)`` wakes every waiter exactly once, delivering
    ``value`` as the result of the ``yield``. Waiting on an event that
    already succeeded resumes immediately (next engine step), so there
    is no race between signal and wait.
    """

    __slots__ = ("_engine", "_value", "_done", "_waiters", "name")

    def __init__(self, engine: Engine, name: str = "") -> None:
        self._engine = engine
        self._value: Any = None
        self._done = False
        self._waiters: list[Callable[[Any], None]] = []
        self.name = name

    @property
    def triggered(self) -> bool:
        return self._done

    @property
    def value(self) -> Any:
        if not self._done:
            raise SimulationError(f"event {self.name!r} has no value yet")
        return self._value

    def succeed(self, value: Any = None) -> None:
        if self._done:
            raise SimulationError(f"event {self.name!r} succeeded twice")
        self._done = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for resume in waiters:
            # Resume via the engine so waiters run in deterministic order
            # and never re-enter the caller's stack.
            self._engine.schedule(0.0, lambda r=resume: r(value))

    def _succeed_inline(self, value: Any = None) -> None:
        """Succeed and resume waiters synchronously, in join order.

        Used by the coalesced collective release
        (:meth:`repro.mpi.comm._CollectiveRound.release`): one heap
        event wakes every member instead of scheduling one zero-delay
        event per waiter. Join order is exactly the order the per-event
        scheme resumed waiters in, so trajectories are unchanged; only
        the event count drops. Waiters run on the caller's stack — only
        use this from an engine callback.
        """
        if self._done:
            raise SimulationError(f"event {self.name!r} succeeded twice")
        self._done = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for resume in waiters:
            resume(value)

    def _add_waiter(self, resume: Callable[[Any], None]) -> None:
        if self._done:
            self._engine.schedule(0.0, lambda: resume(self._value))
        else:
            self._waiters.append(resume)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "done" if self._done else f"{len(self._waiters)} waiting"
        return f"<SimEvent {self.name!r} {state}>"


class Process:
    """A simulated thread of control driven by the engine.

    Parameters
    ----------
    engine:
        The engine that owns virtual time.
    gen:
        Generator implementing the process body.
    name:
        Diagnostic label (appears in error messages and deadlock dumps).

    The process starts on the next engine step after construction, so
    sibling processes created "at the same time" all observe the same
    start time regardless of construction order.
    """

    __slots__ = (
        "engine",
        "name",
        "_gen",
        "_done_event",
        "_alive",
        "_result",
    )

    def __init__(
        self,
        engine: Engine,
        gen: Generator[Any, Any, Any],
        name: str = "process",
    ) -> None:
        self.engine = engine
        self.name = name
        self._gen = gen
        self._done_event = SimEvent(engine, name=f"{name}.done")
        self._alive = True
        self._result: Any = None
        engine.schedule(0.0, lambda: self._advance(None))

    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        return self._alive

    @property
    def result(self) -> Any:
        """Return value of the generator; valid once ``alive`` is False."""
        if self._alive:
            raise SimulationError(f"process {self.name!r} still running")
        return self._result

    @property
    def done_event(self) -> SimEvent:
        return self._done_event

    # ------------------------------------------------------------------
    def _advance(self, send_value: Any) -> None:
        """Resume the generator with ``send_value`` and dispatch its yield."""
        try:
            awaited = self._gen.send(send_value)
        except StopIteration as stop:
            self._alive = False
            self._result = stop.value
            self._done_event.succeed(stop.value)
            return
        self._dispatch(awaited)

    def _dispatch(self, awaited: Any) -> None:
        if isinstance(awaited, Delay):
            self.engine.schedule(awaited.duration, lambda: self._advance(None))
        elif isinstance(awaited, SimEvent):
            awaited._add_waiter(self._advance)
        elif isinstance(awaited, Process):
            awaited._done_event._add_waiter(self._advance)
        elif hasattr(awaited, "__sim_await__"):
            # Extension point: objects provide __sim_await__(process)
            # and call process._advance(value) when complete.
            awaited.__sim_await__(self)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported {awaited!r}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "alive" if self._alive else "done"
        return f"<Process {self.name!r} {state}>"
