"""Phase executor: turn (work, phase kind, caps over time) into
(durations, energies, draw segments).

This is the numerical core shared by the vectorized 1024-node proxy and
the per-rank DES jobs. Given

* a nominal amount of work (seconds at base frequency, speed 1.0),
* per-node noise factors (multiplying duration),
* and the RAPL domain's piecewise-constant cap schedule,

it integrates per-node progress through cap segments and returns exact
per-node completion times plus the energy drawn. Nodes that finish
early are *not* idled here — synchronization waiting is owned by the
caller (the partition), which knows who it is waiting for and charges
the spin-wait power (:attr:`NodeSpec.p_wait_watts`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.node import NodeSpec
from repro.power.model import OperatingPoint, PhaseKind, operating_point
from repro.power.rapl import RaplDomainArray

__all__ = ["DrawSegment", "PhaseOutcome", "execute_phase", "wait_energy"]


def _operating_point_cached(
    domain: RaplDomainArray, kind: PhaseKind, node: NodeSpec, caps: np.ndarray
):
    """Operating point for ``kind`` under the domain's *current* caps.

    Caps are piecewise-constant, so the resolved point is valid for the
    whole cap segment: it is parked in :attr:`RaplDomainArray.op_cache`,
    which the domain clears whenever the installed caps change. The
    cached arrays are shared — callers must treat them as read-only.
    """
    cache = domain.op_cache
    key = (kind, id(node))
    op = cache.get(key)
    if op is None:
        if caps.size > 1 and (caps == caps[0]).all():
            # Uniform caps (the common controller output): resolve the
            # model on one element and broadcast. Ufuncs are elementwise,
            # so the broadcast view is bit-identical to the full-width
            # computation at 1/n the cost.
            one = operating_point(kind, node, caps[:1])
            shape = caps.shape
            op = OperatingPoint(
                speed=np.broadcast_to(one.speed, shape),
                draw_watts=np.broadcast_to(one.draw_watts, shape),
            )
        else:
            op = operating_point(kind, node, caps)
        cache[key] = op
    return op


@dataclass(frozen=True)
class DrawSegment:
    """Piecewise-constant per-node power draw over [t0, t1).

    ``draw_watts`` has one entry per node; nodes that already finished
    the phase within this segment contribute their *active* draw only up
    to their completion time — the executor splits segments so that
    within one :class:`DrawSegment` every node is in a single state.
    """

    t0: float
    t1: float
    draw_watts: np.ndarray

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


@dataclass
class PhaseOutcome:
    """Result of executing one phase across a partition's nodes."""

    #: per-node phase duration in seconds (from phase start)
    durations: np.ndarray
    #: per-node energy in joules consumed while *active* in the phase
    energy_joules: np.ndarray
    #: trace segments while at least one node was active
    segments: list[DrawSegment] = field(default_factory=list)

    @property
    def slowest(self) -> float:
        return float(self.durations.max())

    @property
    def fastest(self) -> float:
        return float(self.durations.min())


def execute_phase(
    kind: PhaseKind,
    node: NodeSpec,
    work_seconds: float,
    domain: RaplDomainArray,
    t_start: float,
    noise_factors: np.ndarray | float = 1.0,
    collect_segments: bool = False,
) -> PhaseOutcome:
    """Execute ``work_seconds`` of ``kind`` on every node of ``domain``.

    ``noise_factors`` multiplies each node's effective work (OS noise,
    allocation effects — see :mod:`repro.cluster.noise`).
    """
    if work_seconds < 0:
        raise ValueError("negative work")
    n = domain.n_nodes
    noise = np.broadcast_to(np.asarray(noise_factors, dtype=float), (n,))
    remaining = work_seconds * noise  # per-node work still to do (owned)
    durations = np.zeros(n)
    energy = np.zeros(n)
    segments: list[DrawSegment] = []

    t = t_start
    active = remaining > 0.0

    # Fast path: no cap change lands before the slowest node finishes,
    # so the whole phase resolves in one closed-form pass. The float
    # expressions mirror the general loop's first iteration exactly
    # (same np.where forms, same operand order) to stay bit-identical.
    if not collect_segments and active.any():
        caps, t_change = domain.segment_at(t)
        op = _operating_point_cached(domain, kind, node, caps)
        speed = np.maximum(op.speed, 1e-12)
        finish_at = np.where(active, t + remaining / speed, t)
        # max over all == max over active: inactive entries hold t and
        # every active completion is >= t
        if float(finish_at.max()) <= t_change:
            active_time = np.where(active, finish_at - t, 0.0)
            durations = np.where(active, finish_at - t_start, durations)
            energy += active_time * op.draw_watts
            return PhaseOutcome(
                durations=durations, energy_joules=energy, segments=segments
            )

    guard = 0
    while active.any():
        guard += 1
        if guard > 10_000:
            raise RuntimeError("phase executor failed to converge")
        caps, t_change = domain.segment_at(t)
        op = _operating_point_cached(domain, kind, node, caps)
        speed = np.maximum(op.speed, 1e-12)
        finish_at = np.where(active, t + remaining / speed, t)
        # The segment ends at the earliest of: next cap change, or the
        # last active node's completion within this cap regime (max over
        # all entries — inactive ones hold t, never above an active one).
        seg_end = min(t_change, float(finish_at.max()))
        if seg_end <= t:
            # Cap change exactly at t (or zero work): apply and retry.
            if t_change <= t:
                # Force pending application by advancing an epsilon-free
                # query; segment_at applies pending when t >= t_act.
                continue
            seg_end = t_change
        span = seg_end - t
        done_in_seg = active & (finish_at <= seg_end)
        still_going = active & ~done_in_seg

        # Progress accounting.
        active_time = np.where(
            done_in_seg, finish_at - t, np.where(still_going, span, 0.0)
        )
        remaining = np.where(
            still_going, remaining - span * speed, np.where(done_in_seg, 0.0, remaining)
        )
        durations = np.where(
            done_in_seg, finish_at - t_start, durations
        )
        energy += active_time * op.draw_watts
        if collect_segments:
            segments.append(
                DrawSegment(
                    t0=t,
                    t1=seg_end,
                    draw_watts=np.where(active, op.draw_watts, 0.0).copy(),
                )
            )
        active = still_going
        t = seg_end

    # Zero-work phase: all durations stay 0.
    return PhaseOutcome(durations=durations, energy_joules=energy, segments=segments)


def wait_energy(
    node: NodeSpec,
    domain: RaplDomainArray,
    wait_seconds: np.ndarray,
    t: float,
) -> np.ndarray:
    """Energy of spin-waiting for ``wait_seconds`` per node at time ``t``.

    The wait draw is the MPI busy-wait power clipped by the node's
    enforced cap (a node capped at 98 W cannot burn 105 W waiting).
    Cap changes during waits are ignored — waits follow a controller
    decision by less than the actuation delay only in degenerate
    configurations, and the energy difference is sub-watt-second.
    """
    caps, _ = domain.segment_at(t)
    draw = np.minimum(node.p_wait_watts, caps)
    return np.asarray(wait_seconds, dtype=float) * draw
