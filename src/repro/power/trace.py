"""Power traces: piecewise-constant draw records and sampling.

The paper's Figure 1 is a 200 ms-sampled power trace of simulation and
analysis processes; Figures 4, 5 and 7 plot per-synchronization
allocated vs measured power. Both views are derived from the same
underlying record: a sequence of ``(t0, t1, watts)`` segments per
traced entity (typically "mean node of partition X").
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

import numpy as np

__all__ = ["PowerTrace", "sample_trace"]


@dataclass
class PowerTrace:
    """Piecewise-constant power draw of one traced entity.

    Segments must be appended in non-decreasing time order; gaps are
    treated as zero draw (the entity did not exist / was not traced).
    """

    name: str = "trace"
    _t0: list = field(default_factory=list)
    _t1: list = field(default_factory=list)
    _watts: list = field(default_factory=list)

    def add(self, t0: float, t1: float, watts: float) -> None:
        """Append one segment. Zero-length segments are dropped."""
        if t1 < t0:
            raise ValueError(f"segment ends before it starts: [{t0}, {t1})")
        if self._t0 and t0 < self._t1[-1] - 1e-12:
            raise ValueError(
                f"segments must be time-ordered: {t0} < {self._t1[-1]}"
            )
        if t1 == t0:
            return
        # Merge with previous segment when draw is identical — keeps
        # long steady-state runs compact.
        if (
            self._t0
            and self._watts[-1] == watts
            and abs(self._t1[-1] - t0) < 1e-12
        ):
            self._t1[-1] = t1
            return
        self._t0.append(t0)
        self._t1.append(t1)
        self._watts.append(watts)

    # ------------------------------------------------------------------
    @property
    def empty(self) -> bool:
        return not self._t0

    @property
    def span(self) -> tuple[float, float]:
        if self.empty:
            raise ValueError("empty trace has no span")
        return self._t0[0], self._t1[-1]

    def power_at(self, t: float) -> float:
        """Instantaneous draw at time ``t`` (0 outside any segment)."""
        i = bisect_right(self._t0, t) - 1
        if i < 0:
            return 0.0
        return self._watts[i] if t < self._t1[i] else 0.0

    def mean_power(self, t0: float | None = None, t1: float | None = None) -> float:
        """Time-averaged draw over [t0, t1] (defaults to full span)."""
        lo, hi = self.span
        t0 = lo if t0 is None else t0
        t1 = hi if t1 is None else t1
        if t1 <= t0:
            raise ValueError("empty averaging window")
        return self.energy(t0, t1) / (t1 - t0)

    def energy(self, t0: float | None = None, t1: float | None = None) -> float:
        """Joules drawn over [t0, t1] (defaults to full span)."""
        if self.empty:
            return 0.0
        lo, hi = self.span
        t0 = lo if t0 is None else t0
        t1 = hi if t1 is None else t1
        total = 0.0
        for s0, s1, w in zip(self._t0, self._t1, self._watts):
            overlap = min(s1, t1) - max(s0, t0)
            if overlap > 0:
                total += overlap * w
        return total

    def segments(self) -> list[tuple[float, float, float]]:
        return list(zip(self._t0, self._t1, self._watts))

    def __len__(self) -> int:
        return len(self._t0)


def sample_trace(
    trace: PowerTrace,
    period_s: float,
    t0: float | None = None,
    t1: float | None = None,
    noise=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample a trace at fixed period, Fig.-1 style.

    Each sample reports the *mean* power over the preceding period
    (what an energy-counter-difference measurement yields, which is how
    RAPL-based monitors like PoLiMER read power). Optional ``noise`` is
    a callable ``noise(size) -> ndarray`` of additive watt errors.
    """
    if period_s <= 0:
        raise ValueError("period must be positive")
    lo, hi = trace.span
    t0 = lo if t0 is None else t0
    t1 = hi if t1 is None else t1
    edges = np.arange(t0, t1 + period_s * 0.5, period_s)
    if len(edges) < 2:
        raise ValueError("window shorter than one period")
    means = np.array(
        [
            trace.energy(a, b) / (b - a)
            for a, b in zip(edges[:-1], edges[1:])
        ]
    )
    if noise is not None:
        means = means + noise(means.size)
    return edges[1:], means
