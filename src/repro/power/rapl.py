"""RAPL power-capping emulation.

Models the behaviour of Intel RAPL as deployed on Theta (paper §VI-A,
§VII-A):

* caps are clamped to the supported range (98 W … TDP);
* a new cap request takes effect only after an **actuation delay**
  (10 ms on Theta's CPUs — §VII-E);
* the **long-term** window (1 s moving average) is the default
  enforcement: the draw of a throttled phase averages to the cap;
* enabling the **short-term** window additionally (9.766 ms) makes RAPL
  limit *slightly below* the requested power and increases run-to-run
  variability (Table I) — we model the undershoot as a multiplicative
  factor and let :mod:`repro.cluster.noise` widen its noise draw for
  this mode.

One :class:`RaplDomainArray` manages the caps of a whole partition as
numpy arrays, which is what the vectorized proxy jobs use; a
single-node domain is just an array of length 1.
"""

from __future__ import annotations

import enum
from typing import Optional

import numpy as np

from repro.cluster.node import NodeSpec
from repro.faults.injector import get_faults
from repro.metrics.registry import get_metrics
from repro.telemetry import get_tracer
from repro.util.units import MS

__all__ = ["CapMode", "RaplDomainArray"]


class CapMode(enum.Enum):
    """Which RAPL windows are armed (Table I's three cap types)."""

    NONE = "none"  #: no capping — nodes run unconstrained (cap = TDP)
    LONG = "long"  #: long-term (1 s) window only — the paper's default
    LONG_SHORT = "long_short"  #: both windows — strict but noisy

    @property
    def undershoot(self) -> float:
        """Fraction of the requested cap actually enforced.

        With both windows armed, "RAPL limits the power slightly below
        the requested power" (§VII-A).
        """
        return 0.985 if self is CapMode.LONG_SHORT else 1.0


class RaplDomainArray:
    """Per-node power caps for a set of nodes, with actuation latency.

    Parameters
    ----------
    node:
        Hardware envelope used for clamping.
    n_nodes:
        Number of nodes in the domain.
    initial_cap_watts:
        Cap installed at time 0 (scalar or per-node array). Ignored and
        pinned to TDP when ``mode`` is :attr:`CapMode.NONE`.
    mode:
        Which RAPL windows are armed.
    actuation_delay_s:
        Seconds between a cap request and it taking effect.
    """

    def __init__(
        self,
        node: NodeSpec,
        n_nodes: int,
        initial_cap_watts,
        mode: CapMode = CapMode.LONG,
        actuation_delay_s: float = 10 * MS,
    ) -> None:
        if n_nodes <= 0:
            raise ValueError("domain needs at least one node")
        if actuation_delay_s < 0:
            raise ValueError("negative actuation delay")
        self.node = node
        self.n_nodes = n_nodes
        self.mode = mode
        self.actuation_delay_s = actuation_delay_s
        if mode is CapMode.NONE:
            caps = np.full(n_nodes, node.tdp_watts, dtype=float)
        else:
            caps = self._clamp(
                np.broadcast_to(
                    np.asarray(initial_cap_watts, dtype=float), (n_nodes,)
                ).copy()
            )
        self._caps = caps
        self._pending: Optional[tuple[float, np.ndarray]] = None
        #: monotone counter bumped whenever the installed caps change;
        #: anything derived from the effective caps (the phase
        #: executor's operating points) is valid for exactly one version
        self.caps_version = 0
        #: memo for cap-derived values, cleared on every caps change —
        #: the phase executor parks resolved operating points here so a
        #: piecewise-constant cap schedule costs one model inversion per
        #: (phase kind, cap segment) instead of one per query
        self.op_cache: dict = {}
        #: cached effective caps (undershoot applied), read-only so the
        #: shared array cannot be corrupted by callers
        self._effective = self._make_effective(caps)
        #: diagnostic: number of accepted cap requests
        self.requests = 0
        # cached: segment_at/_apply_pending sit inside the phase
        # executor's integration loop
        tracer = get_tracer()
        self._tracer = tracer if tracer.enabled else None
        metrics = get_metrics()
        self._metrics = metrics if metrics.enabled else None
        faults = get_faults()
        self._faults = faults if faults.enabled else None

    # ------------------------------------------------------------------
    def _clamp(self, caps: np.ndarray) -> np.ndarray:
        return np.clip(caps, self.node.rapl_min_watts, self.node.tdp_watts)

    def _make_effective(self, caps: np.ndarray) -> np.ndarray:
        effective = caps * self.mode.undershoot
        effective.flags.writeable = False
        return effective

    def request_caps(
        self, caps_watts, now: float, fault_rank: int | None = None
    ) -> np.ndarray:
        """Request new per-node caps at time ``now``.

        The request must be finite and strictly positive — NaN or
        non-positive watts raise :class:`ValueError` rather than being
        silently clamped into the supported range (a controller emitting
        garbage is a bug, not a request). Valid caps are clamped and
        take effect at ``now + actuation_delay``. A second request
        before activation supersedes the first (RAPL registers hold one
        value). Returns the clamped caps that will be installed. In
        ``NONE`` mode the request is ignored.

        ``fault_rank`` identifies the requesting node to the fault
        injector for rank-targeted actuation faults; ``None`` matches
        domain-wide faults only.
        """
        requested = np.asarray(caps_watts, dtype=float)
        if requested.size == 0:
            raise ValueError("empty cap request")
        if not np.all(np.isfinite(requested)):
            raise ValueError(
                f"cap request contains non-finite watts: {requested!r}"
            )
        if np.any(requested <= 0.0):
            raise ValueError(
                f"cap request contains non-positive watts: {requested!r}"
            )
        if self.mode is CapMode.NONE:
            return self._caps.copy()
        caps = self._clamp(
            np.broadcast_to(requested, (self.n_nodes,)).copy()
        )
        delay_s = self.actuation_delay_s
        fault = (
            self._faults.actuation(now, fault_rank)
            if self._faults is not None
            else None
        )
        if fault is not None:
            if fault.dropped:
                # silently lost: registers keep their old value, but the
                # requester still believes the request landed
                return caps.copy()
            delay_s += fault.extra_delay_s
            if fault.offset_w:
                # miscalibrated actuation: installed != requested
                caps = self._clamp(caps + fault.offset_w)
        self._pending = (now + delay_s, caps)
        self.requests += 1
        if self._tracer is not None:
            self._tracer.instant(
                "power.rapl.request",
                cat="power",
                ts=now,
                mean_cap_w=float(caps.mean()),
                n_nodes=self.n_nodes,
                effective_at=now + delay_s,
            )
            self._tracer.counter("power.caps_requested", cat="power").inc()
        if self._metrics is not None:
            self._metrics.counter("power.caps_requested").inc()
            # magnitude of the requested move per node — how hard the
            # controller is steering
            self._metrics.histogram("power.cap_change_w").observe(
                float(np.abs(caps - self._caps).mean())
            )
        return caps.copy()

    # ------------------------------------------------------------------
    def _apply_pending(self, t: float) -> None:
        if self._pending is not None and t >= self._pending[0]:
            t_act, caps = self._pending
            unchanged = np.array_equal(caps, self._caps)
            self._caps = caps
            self._pending = None
            if not unchanged:
                # Re-requesting the caps already installed (steady-state
                # controllers do this every step) is a no-op for the
                # physics: keep the operating-point cache and effective
                # array alive instead of rebuilding them.
                self.caps_version += 1
                self.op_cache.clear()
                self._effective = self._make_effective(caps)
            if self._tracer is not None:
                # stamped at the actuation time, not the query time, so
                # the trace shows when RAPL actually switched registers
                self._tracer.instant(
                    "power.rapl.apply",
                    cat="power",
                    ts=t_act,
                    mean_cap_w=float(caps.mean()),
                    n_nodes=self.n_nodes,
                )
                self._tracer.counter("power.caps_applied", cat="power").inc()
            if self._metrics is not None:
                self._metrics.counter("power.caps_applied").inc()
                self._metrics.gauge("power.mean_cap_w").set(float(caps.mean()))

    def segment_at(self, t: float) -> tuple[np.ndarray, float]:
        """Enforced caps at time ``t`` and when they next change.

        Returns ``(effective_caps, t_next_change)`` where
        ``t_next_change`` is ``inf`` if no change is pending. The
        effective caps include the short-window undershoot and are a
        shared read-only array, recomputed only when the installed caps
        actually change (see :attr:`caps_version`).
        """
        self._apply_pending(t)
        if self._pending is not None:
            nxt = self._pending[0]
        else:
            nxt = np.inf
        return self._effective, nxt

    @property
    def requested_caps(self) -> np.ndarray:
        """Most recently *requested* caps (pending included) — what the
        controllers believe they allocated (Fig. 5 contrasts this with
        measured power)."""
        if self._pending is not None:
            return self._pending[1].copy()
        return self._caps.copy()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<RaplDomainArray n={self.n_nodes} mode={self.mode.value} "
            f"caps~{float(np.mean(self._caps)):.1f}W>"
        )
