"""Phase-level power/performance model.

Everything the paper measures follows from two per-phase curves:

* **demand** — the power a node draws while running a phase unthrottled
  at frequency ``f``::

      demand(f) = p_floor + k * (f / f_base) ** gamma

* **speed** — relative execution rate at frequency ``f``::

      speed(f) = (f / f_base) ** beta

``beta ~ 1`` models compute-bound phases (force evaluation, MSD), and
``beta << 1`` models memory- or communication-bound phases whose speed
barely responds to frequency. ``gamma`` shapes how steeply demand rises
with clock; communication phases use a tiny ``gamma`` so their draw is
nearly flat (~100–105 W regardless of the cap) — this is exactly the
mechanism behind the paper's two key observations:

1. LAMMPS cannot *utilize* power beyond ~140 W/node however high the
   cap (Fig. 8), because the demand curves saturate at turbo;
2. at δ_min the analysis drags a synchronizing simulation into a
   low-power state where time differences vanish while the allocation
   is grossly inefficient (Fig. 5b discussion).

Given a cap the model inverts the demand curve:

* cap above ``demand(f_turbo)``   → run at turbo, draw the demand
  (leaving *headroom* the power-aware scheme misreads as slack);
* cap within the curve's range    → throttle to the largest feasible
  frequency, draw exactly the cap (RAPL's moving-average enforcement);
* cap below ``demand(f_min)``     → duty-cycle: stay at ``f_min`` but
  scale speed by ``cap / demand(f_min)``; draw the cap.

All functions are vectorized over per-node arrays so the 1024-node
proxy evaluates the whole partition at once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.node import NodeSpec

__all__ = ["OperatingPoint", "PhaseKind", "operating_point"]


@dataclass(frozen=True)
class PhaseKind:
    """Power/performance character of one class of work.

    Parameters
    ----------
    name:
        Diagnostic label ("force", "neighbor", "analysis.msd", ...).
    k_watts:
        Dynamic power above the node floor at base frequency.
    gamma:
        Exponent of demand growth with frequency ratio.
    beta:
        Exponent of speed growth with frequency ratio (frequency
        sensitivity; 1.0 = perfectly compute-bound).
    """

    name: str
    k_watts: float
    gamma: float
    beta: float

    def __post_init__(self) -> None:
        if self.k_watts < 0:
            raise ValueError(f"{self.name}: negative dynamic power")
        if self.gamma < 0 or self.beta < 0:
            raise ValueError(f"{self.name}: exponents must be non-negative")

    # -- curves ---------------------------------------------------------
    def demand(self, node: NodeSpec, freq_ghz) -> np.ndarray | float:
        """Unthrottled draw (W) at frequency ``freq_ghz``."""
        ratio = np.asarray(freq_ghz, dtype=float) / node.f_base
        return node.p_floor_watts + self.k_watts * ratio**self.gamma

    def speed(self, node: NodeSpec, freq_ghz) -> np.ndarray | float:
        """Execution rate relative to base frequency."""
        ratio = np.asarray(freq_ghz, dtype=float) / node.f_base
        return ratio**self.beta

    def freq_for_cap(self, node: NodeSpec, cap_watts) -> np.ndarray:
        """Largest frequency whose demand fits under ``cap_watts``.

        Result is clamped to ``[f_min, f_turbo]``; the duty-cycle case
        (cap below ``demand(f_min)``) is handled by
        :func:`operating_point`, not here.
        """
        cap = np.asarray(cap_watts, dtype=float)
        if self.k_watts == 0 or self.gamma == 0:
            # Demand is flat: frequency is unconstrained by the cap.
            return np.full_like(cap, node.f_turbo)
        headroom = np.maximum(cap - node.p_floor_watts, 0.0)
        ratio = (headroom / self.k_watts) ** (1.0 / self.gamma)
        freq = ratio * node.f_base
        return np.clip(freq, node.f_min, node.f_turbo)


@dataclass(frozen=True)
class OperatingPoint:
    """Resolved (speed, draw) for a phase under a set of per-node caps.

    Arrays are aligned with the caller's node ordering. ``speed`` is the
    execution-rate multiplier applied to the phase's nominal duration;
    ``draw_watts`` is the steady power the node pulls while executing.
    """

    speed: np.ndarray
    draw_watts: np.ndarray


def operating_point(
    kind: PhaseKind, node: NodeSpec, cap_watts
) -> OperatingPoint:
    """Resolve the operating point of ``kind`` under per-node caps.

    Implements the three-regime cap inversion described in the module
    docstring. Vectorized: ``cap_watts`` may be a scalar or an array.
    """
    cap = np.atleast_1d(np.asarray(cap_watts, dtype=float))
    if np.any(cap <= 0):
        raise ValueError("power caps must be positive")

    demand_turbo = float(kind.demand(node, node.f_turbo))
    demand_min = float(kind.demand(node, node.f_min))

    freq = kind.freq_for_cap(node, cap)
    speed = np.asarray(kind.speed(node, freq), dtype=float)
    draw = np.asarray(kind.demand(node, freq), dtype=float)

    # Regime 1: headroom — unthrottled turbo, draw the (lower) demand.
    unconstrained = cap >= demand_turbo
    speed = np.where(unconstrained, kind.speed(node, node.f_turbo), speed)
    draw = np.where(unconstrained, demand_turbo, draw)

    # Regime 2: throttled — RAPL holds the moving average at the cap.
    throttled = (~unconstrained) & (cap >= demand_min)
    draw = np.where(throttled, cap, draw)

    # Regime 3: duty-cycled — cannot reach the cap even at f_min.
    starved = cap < demand_min
    if np.any(starved):
        duty = cap / demand_min
        speed = np.where(
            starved, kind.speed(node, node.f_min) * duty, speed
        )
        draw = np.where(starved, cap, draw)

    return OperatingPoint(speed=speed, draw_watts=draw)
