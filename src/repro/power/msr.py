"""msr-safe / powercap-sysfs façade.

On Theta, users reach RAPL through the ``msr-safe`` kernel module
(paper §VI-A, ref [40]), typically via the powercap sysfs tree. This
module provides an in-memory filesystem with the same *shape*, so code
written against sysfs paths (and the PoLiMER layer's low-level reader)
exercises a realistic interface:

* ``intel-rapl:<node>/constraint_0_power_limit_uw`` — long-term cap (µW,
  read/write)
* ``intel-rapl:<node>/constraint_1_power_limit_uw`` — short-term cap
* ``intel-rapl:<node>/energy_uj`` — monotone energy counter (µJ, read)
* ``intel-rapl:<node>/constraint_0_time_window_us`` — 1 s on Theta
* ``intel-rapl:<node>/constraint_1_time_window_us`` — 9766 µs on Theta

Writes are translated into :meth:`RaplDomainArray.request_caps` calls;
energy reads pull from a caller-provided accumulator so the façade
stays consistent with whatever execution model is running on top.
"""

from __future__ import annotations

from typing import Callable

from repro.power.rapl import RaplDomainArray

__all__ = ["MsrSafeFs"]

#: RAPL window lengths on Theta (paper §VII-A).
LONG_WINDOW_US = 1_000_000
SHORT_WINDOW_US = 9766


class MsrSafeFs:
    """sysfs-like RAPL file tree backed by a :class:`RaplDomainArray`.

    Parameters
    ----------
    domain:
        The power domain array holding per-node caps.
    energy_uj:
        Callable ``energy_uj(node_index) -> int`` giving the cumulative
        energy counter; defaults to a constant 0 for tests that only
        exercise the cap path.
    clock:
        Callable returning the current virtual time, needed because cap
        writes carry an actuation timestamp.
    """

    def __init__(
        self,
        domain: RaplDomainArray,
        energy_uj: Callable[[int], int] | None = None,
        clock: Callable[[], float] = lambda: 0.0,
    ) -> None:
        self.domain = domain
        self._energy_uj = energy_uj if energy_uj is not None else (lambda i: 0)
        self._clock = clock

    # ------------------------------------------------------------------
    def _parse(self, path: str) -> tuple[int, str]:
        path = path.strip("/")
        parts = path.split("/")
        if len(parts) != 2 or not parts[0].startswith("intel-rapl:"):
            raise FileNotFoundError(path)
        try:
            node = int(parts[0].split(":", 1)[1])
        except ValueError:
            raise FileNotFoundError(path) from None
        if not 0 <= node < self.domain.n_nodes:
            raise FileNotFoundError(f"{path}: no such node")
        return node, parts[1]

    def read(self, path: str) -> int:
        """Read an integer attribute, sysfs-style."""
        node, attr = self._parse(path)
        if attr == "energy_uj":
            return int(self._energy_uj(node))
        if attr in ("constraint_0_power_limit_uw", "constraint_1_power_limit_uw"):
            return int(self.domain.requested_caps[node] * 1e6)
        if attr == "constraint_0_time_window_us":
            return LONG_WINDOW_US
        if attr == "constraint_1_time_window_us":
            return SHORT_WINDOW_US
        if attr == "name":
            return 0  # sysfs exposes "package-0"; integer façade returns 0
        raise FileNotFoundError(path)

    def write(self, path: str, value: int) -> None:
        """Write a cap in µW to one node's constraint file."""
        node, attr = self._parse(path)
        if attr not in (
            "constraint_0_power_limit_uw",
            "constraint_1_power_limit_uw",
        ):
            raise PermissionError(f"{path} is read-only")
        if value <= 0:
            raise ValueError("cap must be positive")
        caps = self.domain.requested_caps
        caps[node] = value / 1e6
        self.domain.request_caps(caps, now=self._clock())

    def listdir(self) -> list[str]:
        """Node directories, mirroring /sys/class/powercap layout."""
        return [f"intel-rapl:{i}" for i in range(self.domain.n_nodes)]
