"""Power substrate: phase power model, RAPL emulation, traces, sysfs façade."""

from repro.power.execution import (
    DrawSegment,
    PhaseOutcome,
    execute_phase,
    wait_energy,
)
from repro.power.model import OperatingPoint, PhaseKind, operating_point
from repro.power.msr import MsrSafeFs
from repro.power.rapl import CapMode, RaplDomainArray
from repro.power.trace import PowerTrace, sample_trace

__all__ = [
    "CapMode",
    "DrawSegment",
    "MsrSafeFs",
    "OperatingPoint",
    "PhaseKind",
    "PhaseOutcome",
    "PowerTrace",
    "RaplDomainArray",
    "execute_phase",
    "operating_point",
    "sample_trace",
    "wait_energy",
]
