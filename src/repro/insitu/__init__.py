"""In-situ coupling: the Verlet-Splitanalysis workflow of paper §V.

Runs real MD + real analyses space-shared over simulated MPI with
PoLiMER power management. The paper-scale figure harnesses use the
vectorized proxy instead (:mod:`repro.workloads`); this path is the
full-stack integration of every substrate.
"""

from repro.insitu.coupler import InsituConfig, InsituResult, run_insitu

__all__ = ["InsituConfig", "InsituResult", "run_insitu"]
