"""In-situ coupling: the Verlet-Splitanalysis workflow of paper §V.

Runs real MD + real analyses space-shared over simulated MPI with
PoLiMER power management. The paper-scale figure harnesses use the
vectorized proxy instead (:mod:`repro.workloads`); this path is the
full-stack integration of every substrate.
"""

from repro.insitu.coupler import InsituConfig, InsituResult, run_insitu
from repro.insitu.replica import (
    AnalysisEnsemble,
    ReplicaKey,
    ReplicaOrderError,
    ReplicaPool,
    SharedReplica,
    merge_slices,
    shared_replica_default,
    use_shared_replica,
)

__all__ = [
    "AnalysisEnsemble",
    "InsituConfig",
    "InsituResult",
    "ReplicaKey",
    "ReplicaOrderError",
    "ReplicaPool",
    "SharedReplica",
    "merge_slices",
    "run_insitu",
    "shared_replica_default",
    "use_shared_replica",
]
