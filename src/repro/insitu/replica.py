"""Shared-replica fast path: compute rank-invariant work once.

The coupler's execution model (see :mod:`repro.insitu.coupler`) has
every simulation rank advance an *identical replica* of the global
system — deterministic seeding makes the N per-rank integrators
bit-for-bit interchangeable — and every analysis rank run the same
analyses over the same merged frame. A ``run_insitu`` job with 2×N
ranks therefore performs N identical Verlet integrations per step and
N identical analysis updates per synchronization: host wall time scales
as O(ranks × atoms) for physics that is rank-invariant by construction.

This module deduplicates that host-side work while leaving the
*virtual* execution untouched:

* :class:`SharedReplica` owns the one real :class:`VelocityVerlet`
  integrator + :class:`ParticleSystem` + :class:`DomainDecomposition`
  and memoizes per-step :class:`StepReport`/thermo records and per-sync
  domain snapshots. The first rank to request a step advances the
  integrator; every other rank gets the cached result.
* :class:`AnalysisEnsemble` owns one instance of each configured
  analysis and runs ``update(frame)`` once per synchronization (one
  ``_merge_slices`` call instead of N), returning the shared per-
  analysis work estimates to every analysis rank.
* :class:`ReplicaPool` hands out replicas keyed by the physics tuple
  ``(dim, seed, dt, thermostat_t, n_sim_ranks)`` so a run's ranks all
  resolve to the same instance.

Why virtual-time bit-identity is preserved: ranks still perform every
*virtual* action individually — the sends, allgathers, bcasts,
``node.compute`` charges and controller interactions are untouched —
and all virtual durations derive from values (atom counts, pair counts,
rebuild flags, analysis work estimates) that are bit-identical between
the memoized results and what each rank's private replica would have
produced. The DES event trajectory, thermo log, analysis results and
allocation log are therefore unchanged; the property tests in
``tests/insitu/test_replica.py`` pin this for multiple controllers and
rank counts.

Ordering safety: the per-sync world collective (``poli_power_alloc``)
and the per-step thermo allreduce mean no rank can request step ``t+1``
(or sync ``s+1`` snapshots) before every rank has requested step ``t``
(sync ``s``), so lazy advance-on-first-request is sound. The memoizers
still assert monotone requests and raise :class:`ReplicaOrderError` on
any out-of-order access rather than silently serving stale state.

The fast path defaults **on**. Escape hatches, in resolution order:
``InsituConfig(shared_replica=False)`` explicitly per job, the
:func:`use_shared_replica` context manager (the CLI's
``run --no-shared-replica``), and the ``SEESAW_SHARED_REPLICA=0``
environment variable (inherited by campaign pool workers).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from repro.analysis import Analysis, Frame, make_analysis
from repro.md import DomainDecomposition, VelocityVerlet, compute_thermo, water_ion_box
from repro.md.domain import Snapshot
from repro.md.thermo import ThermoRecord
from repro.md.verlet import StepReport
from repro.metrics.registry import get_metrics

__all__ = [
    "AnalysisEnsemble",
    "ReplicaKey",
    "ReplicaOrderError",
    "ReplicaPool",
    "SharedReplica",
    "shared_replica_default",
    "use_shared_replica",
]

#: module-level override installed by :func:`use_shared_replica`;
#: ``None`` defers to the environment variable
_OVERRIDE: bool | None = None


def shared_replica_default() -> bool:
    """Effective default for jobs that don't set the switch explicitly."""
    if _OVERRIDE is not None:
        return _OVERRIDE
    return os.environ.get("SEESAW_SHARED_REPLICA", "1") != "0"


@contextmanager
def use_shared_replica(enabled: bool):
    """Scope the shared-replica default (and export it to subprocesses
    via ``SEESAW_SHARED_REPLICA`` so campaign pool workers inherit it)."""
    global _OVERRIDE
    prev_override = _OVERRIDE
    prev_env = os.environ.get("SEESAW_SHARED_REPLICA")
    _OVERRIDE = bool(enabled)
    os.environ["SEESAW_SHARED_REPLICA"] = "1" if enabled else "0"
    try:
        yield
    finally:
        _OVERRIDE = prev_override
        if prev_env is None:
            os.environ.pop("SEESAW_SHARED_REPLICA", None)
        else:
            os.environ["SEESAW_SHARED_REPLICA"] = prev_env


class ReplicaOrderError(RuntimeError):
    """A rank requested replica state out of protocol order."""


@dataclass(frozen=True)
class ReplicaKey:
    """The physics tuple that makes two sim-rank replicas identical."""

    dim: int
    seed: int
    dt: float
    thermostat_t: float | None
    n_sim_ranks: int


class SharedReplica:
    """One real MD replica memoized across all simulation ranks."""

    def __init__(self, key: ReplicaKey) -> None:
        self.key = key
        self.system = water_ion_box(dim=key.dim, seed=key.seed)
        self.integrator = VelocityVerlet(
            self.system, dt=key.dt, thermostat_t=key.thermostat_t
        )
        self.dd = DomainDecomposition(self.system, key.n_sim_ranks)
        #: step -> (StepReport, ThermoRecord); the thermo record is
        #: captured at advance time because another rank may advance the
        #: live system before rank 0 gets to its thermo output
        self._steps: dict[int, tuple[StepReport, ThermoRecord]] = {}
        #: sync -> per-rank snapshots (previous sync evicted on miss)
        self._snapshots: dict[int, list[Snapshot]] = {}
        self.hits = 0
        self.misses = 0
        metrics = get_metrics()
        self._metrics = metrics if metrics.enabled else None

    # ------------------------------------------------------------------
    def _hit(self) -> None:
        self.hits += 1
        if self._metrics is not None:
            self._metrics.counter("insitu.replica.hits").inc()

    def _miss(self) -> None:
        self.misses += 1
        if self._metrics is not None:
            self._metrics.counter("insitu.replica.misses").inc()

    # ------------------------------------------------------------------
    def step_report(self, step: int) -> tuple[StepReport, ThermoRecord]:
        """The report + thermo record of Verlet step ``step`` (1-based).

        The first request advances the shared integrator; the memoized
        pair is served to every other rank. Advancing more than one step
        at a time would mean a rank skipped the per-step collective, so
        it is rejected.
        """
        cached = self._steps.get(step)
        if cached is not None:
            self._hit()
            return cached
        if step != self.integrator.step_count + 1:
            raise ReplicaOrderError(
                f"step {step} requested with integrator at "
                f"{self.integrator.step_count}"
            )
        self._miss()
        report = self.integrator.step()
        record = compute_thermo(self.system, report)
        result = (report, record)
        self._steps[step] = result
        return result

    def snapshots(self, sync: int, at_step: int) -> list[Snapshot]:
        """All ranks' domain snapshots for synchronization ``sync``.

        ``at_step`` is the Verlet step count the system must be at when
        the batch is extracted (``(sync - 1) * j`` for the coupler's
        protocol); a mismatch on first request means a rank raced past
        the synchronization collective.
        """
        cached = self._snapshots.get(sync)
        if cached is not None:
            self._hit()
            return cached
        if self.integrator.step_count != at_step:
            raise ReplicaOrderError(
                f"sync {sync} snapshots requested at step "
                f"{self.integrator.step_count}, expected {at_step}"
            )
        self._miss()
        # by the time any rank reaches sync s+1 every rank has consumed
        # sync s (power_alloc is a world collective), so keep one batch
        self._snapshots.clear()
        batch = self.dd.snapshot_all(step=sync)
        self._snapshots[sync] = batch
        return batch


class AnalysisEnsemble:
    """One set of analyses updated once per sync, shared across ranks."""

    def __init__(self, names: tuple[str, ...]) -> None:
        self.analyses: list[Analysis] = [make_analysis(n) for n in names]
        self._work: dict[int, dict[str, int]] = {}
        self._last_sync = 0
        self.hits = 0
        self.misses = 0
        metrics = get_metrics()
        self._metrics = metrics if metrics.enabled else None

    def update(self, sync: int, frame_factory) -> dict[str, int]:
        """Per-analysis work estimates for ``sync``.

        ``frame_factory`` builds the merged frame; it is only called on
        the first request per sync, so the slice merge also runs once.
        """
        cached = self._work.get(sync)
        if cached is not None:
            self.hits += 1
            if self._metrics is not None:
                self._metrics.counter("insitu.replica.hits").inc()
            return cached
        if sync != self._last_sync + 1:
            raise ReplicaOrderError(
                f"analysis sync {sync} requested after {self._last_sync}"
            )
        self.misses += 1
        if self._metrics is not None:
            self._metrics.counter("insitu.replica.misses").inc()
        frame: Frame = frame_factory()
        work: dict[str, int] = {}
        for a in self.analyses:
            a.update(frame)
            work[a.name] = a.work_estimate
        self._work[sync] = work
        self._last_sync = sync
        return work

    def results(self) -> dict:
        return {a.name: a.result() for a in self.analyses}


class ReplicaPool:
    """Replicas keyed by their physics tuple.

    A pool is scoped to one ``run_insitu`` invocation: every sim rank
    of a job acquires the same :class:`SharedReplica` because the job's
    config maps to one :class:`ReplicaKey`. (Replicas are *stateful*
    trajectories, so a pool must never be shared between runs — a fresh
    run must start from step 0.)
    """

    def __init__(self) -> None:
        self._replicas: dict[ReplicaKey, SharedReplica] = {}

    def acquire(self, key: ReplicaKey) -> SharedReplica:
        replica = self._replicas.get(key)
        if replica is None:
            replica = SharedReplica(key)
            self._replicas[key] = replica
        return replica

    @property
    def replicas(self) -> int:
        return len(self._replicas)

    def cache_stats(self) -> tuple[int, int]:
        """Aggregate (hits, misses) across the pool's replicas."""
        hits = sum(r.hits for r in self._replicas.values())
        misses = sum(r.misses for r in self._replicas.values())
        return hits, misses


def merge_slices(
    slices: list[Snapshot], box_lengths: np.ndarray, time: float
) -> Frame:
    """Rebuild a whole-system frame from per-rank snapshots.

    Slices may arrive in any rank order; atoms are restored to global
    id order so the merged frame is independent of gather order.
    """
    order = np.argsort(np.concatenate([s.atom_ids for s in slices]))
    positions = np.concatenate([s.positions for s in slices])[order]
    velocities = np.concatenate([s.velocities for s in slices])[order]
    types = np.concatenate([s.types for s in slices])[order]
    mols = np.concatenate([s.molecule_ids for s in slices])[order]
    return Frame(
        step=slices[0].step,
        time=time,
        box_lengths=box_lengths,
        positions=positions,
        velocities=velocities,
        types=types,
        molecule_ids=mols,
    )
