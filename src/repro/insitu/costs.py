"""Virtual-time cost constants for the per-rank in-situ path.

The per-rank coupler executes the *real* MD engine and analyses, then
charges virtual compute time proportional to the measured operation
counts (pair interactions, analysis work estimates). The constants
below set the exchange rate; they are scaled so a dim=1 in-situ job's
virtual phase mix resembles the proxy's anchor mix (force-dominated
simulation steps, analyses fractions of a step).

These constants only shape the *small demonstration runs* — the
paper-scale figures use :mod:`repro.workloads.profiles`, which is
calibrated against the paper directly.
"""

from __future__ import annotations

from repro.workloads.profiles import PHASES

__all__ = [
    "ANALYSIS_KIND",
    "SECONDS_PER_ANALYSIS_OP",
    "SECONDS_PER_ATOM_INTEGRATE",
    "SECONDS_PER_ATOM_NEIGHBOR",
    "SECONDS_PER_ATOM_THERMO",
    "SECONDS_PER_PAIR",
    "SECONDS_PER_EXCHANGE_ATOM",
]

#: force kernel: seconds of base-frequency work per neighbor pair
SECONDS_PER_PAIR = 2.0e-5

#: initial+final integration per local atom
SECONDS_PER_ATOM_INTEGRATE = 1.0e-4

#: neighbor-list rebuild per local atom (only on rebuild steps)
SECONDS_PER_ATOM_NEIGHBOR = 2.5e-4

#: thermo output per local atom (communication/IO kind)
SECONDS_PER_ATOM_THERMO = 1.5e-4

#: data-structure rebuild on exchange, per exchanged atom (step 3)
SECONDS_PER_EXCHANGE_ATOM = 5.0e-5

#: virtual seconds per analysis work-estimate unit, per analysis
SECONDS_PER_ANALYSIS_OP = {
    "rdf": 3.0e-5,
    "vacf": 2.0e-4,
    "msd": 2.0e-4,
    "msd1d": 2.0e-4,
    "msd2d": 2.5e-4,
    "full_msd": 2.5e-4,
}

#: which power-model phase kind each analysis's kernel maps onto
ANALYSIS_KIND = {
    "rdf": PHASES["rdf_cpu"],
    "vacf": PHASES["ana_light"],
    "msd": PHASES["ana_cpu"],
    "msd1d": PHASES["ana_light"],
    "msd2d": PHASES["ana_mem"],
    "full_msd": PHASES["ana_cpu"],
}
