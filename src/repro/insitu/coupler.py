"""Verlet-Splitanalysis in-situ coupler (paper §V) on simulated MPI.

Runs the *real* miniature MD engine and the *real* analyses through the
paper's 8-step per-Verlet-step protocol, space-shared across a
simulated MPI world, with full PoLiMER power management:

1. simulation ranks perform initial integration;
2. simulation sends particle coordinates and velocities to its paired
   analysis rank;
3. both partitions rebuild data structures;
4. simulation sends the particle count for verification;
5. both partitions update neighbor lists;
6. simulation computes forces and final integration;
7. analysis is invoked at the end of the time step;
8. thermodynamic output (collective + I/O).

Power instrumentation follows the paper's two-line recipe exactly:
``poli_init_power_manager(...)`` once, ``poli_power_alloc()`` before
each synchronization.

Execution model: every simulation rank advances an identical replica of
the global system (deterministic seeding) and ships its *domain slice*
at each synchronization; analysis ranks allgather the slices into a
full frame and run the analyses. Replicating the integration instead of
exchanging ghost atoms keeps this path compact — parallel force
decomposition is not what the paper studies — while exercising every
coupling mechanism the controllers interact with (partition split,
pairing, tagged exchange, count verification, collective thermo,
pre-synchronization allocation). Virtual compute durations come from
the engines' measured operation counts via :mod:`repro.insitu.costs`.

Because the replicas are bit-identical by construction, the host-side
physics is computed **once** by default and memoized across ranks (the
shared-replica fast path, :mod:`repro.insitu.replica`): one Verlet
integration per step and one analysis update per synchronization
instead of N of each, while every rank still performs all of its
*virtual* actions individually. ``InsituConfig(shared_replica=False)``
restores the fully replicated execution; both paths are pinned
bit-identical in virtual time, thermo, analysis results and allocation
decisions by ``tests/insitu/test_replica.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import Analysis, make_analysis
from repro.cluster.machine import MachineSpec, theta
from repro.core.controller import PowerController
from repro.des.engine import Engine
from repro.faults.injector import get_faults
from repro.md import (
    DomainDecomposition,
    VelocityVerlet,
    compute_thermo,
    water_ion_box,
    write_lammps_dump,
)
from repro.md.thermo import ThermoLog
from repro.mpi.comm import Communicator, MpiWorld
from repro.insitu.costs import (
    ANALYSIS_KIND,
    SECONDS_PER_ANALYSIS_OP,
    SECONDS_PER_ATOM_INTEGRATE,
    SECONDS_PER_ATOM_NEIGHBOR,
    SECONDS_PER_ATOM_THERMO,
    SECONDS_PER_EXCHANGE_ATOM,
    SECONDS_PER_PAIR,
)
from repro.insitu.replica import (
    AnalysisEnsemble,
    ReplicaKey,
    ReplicaPool,
    merge_slices,
    shared_replica_default,
)
from repro.metrics.registry import get_metrics
from repro.metrics.timeseries import PeriodicSampler
from repro.polimer import poli_init_power_manager, poli_power_alloc
from repro.scenario.registry import register_workload
from repro.telemetry import get_tracer
from repro.workloads.profiles import PHASES

#: virtual-time sampling period of the live power-split series —
#: comfortably finer than any compute phase in the miniature jobs
SAMPLE_PERIOD_S = 0.01

__all__ = ["InsituConfig", "InsituResult", "run_insitu"]

# kept under its old private name for the analysis-side merge
_merge_slices = merge_slices


@dataclass(frozen=True)
class InsituConfig:
    """A small-scale, real-computation in-situ job."""

    n_sim_ranks: int = 4
    n_ana_ranks: int = 4
    dim: int = 1
    n_verlet_steps: int = 10
    j: int = 1  #: Verlet steps between synchronizations
    analyses: tuple[str, ...] = ("rdf", "vacf", "msd")
    power_cap_w: float = 110.0
    dt: float = 0.0005
    seed: int = 2020
    thermostat_t: float | None = 1.0
    #: optional LAMMPS-dump trajectory path (step 8's "optional output
    #: of state of S"); one frame per synchronization, written by sim
    #: rank 0
    dump_path: str | None = None
    #: compute rank-invariant MD/analysis work once and share it across
    #: ranks (:mod:`repro.insitu.replica`). ``None`` defers to the
    #: ambient default (on, unless ``SEESAW_SHARED_REPLICA=0`` or the
    #: CLI's ``--no-shared-replica`` scope is active).
    shared_replica: bool | None = None

    def __post_init__(self) -> None:
        if self.n_sim_ranks != self.n_ana_ranks:
            # §VI-C: "the number of analysis and simulation ranks is
            # equal in all results" — pairing below relies on it.
            raise ValueError("sim and analysis rank counts must match")
        if self.n_sim_ranks < 1:
            raise ValueError("need at least one rank per partition")
        if self.j < 1 or self.n_verlet_steps < self.j:
            raise ValueError("invalid j / step count")

    @property
    def world_size(self) -> int:
        return self.n_sim_ranks + self.n_ana_ranks

    @property
    def n_syncs(self) -> int:
        return self.n_verlet_steps // self.j

    def resolve_shared_replica(self) -> bool:
        """The effective fast-path switch for this job."""
        if self.shared_replica is not None:
            return self.shared_replica
        return shared_replica_default()


@dataclass
class InsituResult:
    """Science + power-management outcome of an in-situ run."""

    config: InsituConfig
    virtual_time_s: float
    thermo: ThermoLog
    analysis_results: dict
    #: (step, Allocation) decisions (from the controller-carrying rank)
    allocation_log: list
    #: per-sync Observations as the controller saw them
    observation_log: list
    #: count-verification failures (step 4); always 0 in a correct run
    verification_failures: int = 0
    #: DES callbacks fired — deterministic for a given engine version
    #: (coalesced collectives fire fewer events than the per-rank
    #: scheme for the same virtual trajectory)
    events_executed: int = 0
    #: whether the shared-replica fast path was active
    shared_replica: bool = False
    #: replica memo hits/misses (0/0 on the per-rank path)
    replica_hits: int = 0
    replica_misses: int = 0
    #: injected fault-marker rows that fired during this run (empty
    #: unless a FaultInjector with a non-empty plan was installed)
    fault_events: list = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.fault_events is None:
            self.fault_events = []


@register_workload("insitu")
def run_insitu(
    cfg: InsituConfig,
    controller: PowerController,
    machine: MachineSpec | None = None,
) -> InsituResult:
    """Run the coupled job to completion and collect results."""
    machine = machine if machine is not None else theta()
    if controller.n_sim != cfg.n_sim_ranks or controller.n_ana != cfg.n_ana_ranks:
        raise ValueError("controller shape does not match the job")
    engine = Engine()
    world = MpiWorld(engine, cfg.world_size, cost=machine.interconnect())

    thermo_out = ThermoLog()
    analysis_out: dict = {}
    managers: dict[int, object] = {}
    verification_failures = [0]

    shared = cfg.resolve_shared_replica()
    pool = ReplicaPool() if shared else None
    replica = (
        pool.acquire(
            ReplicaKey(
                dim=cfg.dim,
                seed=cfg.seed,
                dt=cfg.dt,
                thermostat_t=cfg.thermostat_t,
                n_sim_ranks=cfg.n_sim_ranks,
            )
        )
        if shared
        else None
    )
    ensemble = AnalysisEnsemble(cfg.analyses) if shared else None

    # The null tracer's begin/end are no-ops, so the per-sync span
    # bookkeeping below costs a method call when tracing is off.
    tracer = get_tracer()

    # Live Fig. 1-style power-split series: sample the lead ranks' caps
    # on a fixed virtual period. The sampler is a pure observer invoked
    # inline by the engine (never a heap event), and the probes return
    # None until the managers exist, so runs stay bit-identical.
    metrics = get_metrics()
    if metrics.enabled:

        def cap_probe(rank: int):
            def probe():
                pm = managers.get(rank)
                return None if pm is None else pm.node.current_cap_w

            return probe

        engine.attach_sampler(
            PeriodicSampler(
                metrics,
                SAMPLE_PERIOD_S,
                {
                    "power.cap.sim_w": cap_probe(0),
                    "power.cap.ana_w": cap_probe(cfg.n_sim_ranks),
                },
            )
        )

    def sim_rank(rank: int, comm: Communicator):
        tid = rank + 1
        pm = poli_init_power_manager(
            engine,
            comm,
            rank,
            master=0,
            power_cap_w=cfg.power_cap_w,
            node=machine.node,
            controller=controller if rank == 0 else None,
        )
        managers[rank] = pm
        yield from pm.initialize()

        if shared:
            system = replica.system
            integrator = None
            dd = None
        else:
            system = water_ion_box(dim=cfg.dim, seed=cfg.seed)
            integrator = VelocityVerlet(
                system, dt=cfg.dt, thermostat_t=cfg.thermostat_t
            )
            dd = DomainDecomposition(system, cfg.n_sim_ranks)
        if rank == 0:
            # analysis partition needs the box to rebuild frames
            yield comm.bcast(rank, system.box.lengths, root=0)
        else:
            yield comm.bcast(rank, None, root=0)
        node = pm.node
        pair_rank = cfg.n_sim_ranks + rank  # world rank of paired analysis

        for sync in range(1, cfg.n_syncs + 1):
            sync_span = tracer.begin(
                "insitu.sync", cat="insitu", tid=tid, sync=sync
            )
            # poli_power_alloc(); // synchronization  (paper §VI-C)
            yield from poli_power_alloc(pm)

            # steps 2-4: ship this rank's slice, rebuild, verify count
            exchange_span = tracer.begin(
                "insitu.exchange", cat="insitu", tid=tid
            )
            if shared:
                snap = replica.snapshots(sync, at_step=(sync - 1) * cfg.j)[
                    rank
                ]
            else:
                snap = dd.snapshot(rank, step=sync)
            yield comm.send(rank, dest=pair_rank, payload=snap, tag=sync)
            yield node.compute(
                PHASES["comm"], snap.n_atoms * SECONDS_PER_EXCHANGE_ATOM
            )
            yield comm.send(
                rank, dest=pair_rank, payload=snap.n_atoms, tag=10_000 + sync
            )
            exchange_span.end(atoms=snap.n_atoms)

            n_local = snap.n_atoms
            for k in range(cfg.j):
                step_span = tracer.begin(
                    "insitu.step", cat="insitu", tid=tid
                )
                # steps 1, 5, 6: integrate, neighbor, force
                if shared:
                    report, thermo_rec = replica.step_report(
                        (sync - 1) * cfg.j + k + 1
                    )
                else:
                    report = integrator.step()
                    # thermo is captured per-step on the owning replica
                    thermo_rec = (
                        compute_thermo(system, report) if rank == 0 else None
                    )
                yield node.compute(
                    PHASES["integrate"],
                    n_local * SECONDS_PER_ATOM_INTEGRATE,
                )
                if report.rebuilt_neighbors:
                    yield node.compute(
                        PHASES["neighbor"],
                        n_local * SECONDS_PER_ATOM_NEIGHBOR,
                    )
                yield node.compute(
                    PHASES["force"],
                    report.pair_count
                    / cfg.n_sim_ranks
                    * SECONDS_PER_PAIR,
                )
                # step 8: thermodynamic output — a real collective over
                # the simulation partition plus I/O time
                local_pe = report.potential_energy / cfg.n_sim_ranks
                total_pe = yield pm.part_comm.allreduce(
                    pm.part_rank, local_pe
                )
                yield node.compute(
                    PHASES["comm"], n_local * SECONDS_PER_ATOM_THERMO
                )
                if rank == 0:
                    # cross-rank reduced energy replaces the local one
                    record = type(thermo_rec)(
                        step=thermo_rec.step,
                        temperature=thermo_rec.temperature,
                        kinetic_energy=thermo_rec.kinetic_energy,
                        potential_energy=total_pe,
                        total_energy=thermo_rec.kinetic_energy + total_pe,
                        density=thermo_rec.density,
                    )
                    thermo_out.append(record)
                step_span.end()
            if rank == 0 and cfg.dump_path is not None:
                # step 8: optional output of the simulation state
                write_lammps_dump(cfg.dump_path, system, step=sync)
            sync_span.end()
        return None

    def ana_rank(rank: int, comm: Communicator):
        tid = rank + 1
        pm = poli_init_power_manager(
            engine,
            comm,
            rank,
            master=1,
            power_cap_w=cfg.power_cap_w,
            node=machine.node,
        )
        managers[rank] = pm
        yield from pm.initialize()
        box_lengths = yield comm.bcast(rank, None, root=0)
        analyses: list[Analysis] = (
            ensemble.analyses
            if shared
            else [make_analysis(name) for name in cfg.analyses]
        )
        node = pm.node
        local = rank - cfg.n_sim_ranks
        pair_rank = local  # world rank of paired simulation rank

        for sync in range(1, cfg.n_syncs + 1):
            sync_span = tracer.begin(
                "insitu.sync", cat="insitu", tid=tid, sync=sync
            )
            yield from poli_power_alloc(pm)

            exchange_span = tracer.begin(
                "insitu.exchange", cat="insitu", tid=tid
            )
            snap = yield comm.recv(rank, source=pair_rank, tag=sync)
            count = yield comm.recv(
                rank, source=pair_rank, tag=10_000 + sync
            )
            if count != snap.n_atoms:  # step-4 verification
                verification_failures[0] += 1
            slices = yield pm.part_comm.allgather(pm.part_rank, snap)
            exchange_span.end(atoms=snap.n_atoms)
            frame_time = sync * cfg.j * cfg.dt
            # step 7: run the analyses, charging measured work. On the
            # fast path the merge + updates run once per sync (first
            # rank to arrive); every rank still charges the shared
            # work estimate to its own node.
            if shared:
                work = ensemble.update(
                    sync,
                    lambda: merge_slices(
                        slices, box_lengths, time=frame_time
                    ),
                )
                for a in analyses:
                    analysis_span = tracer.begin(
                        f"insitu.analysis.{a.name}", cat="insitu", tid=tid
                    )
                    yield node.compute(
                        ANALYSIS_KIND[a.name],
                        work[a.name] * SECONDS_PER_ANALYSIS_OP[a.name],
                    )
                    analysis_span.end()
            else:
                frame = merge_slices(slices, box_lengths, time=frame_time)
                for a in analyses:
                    analysis_span = tracer.begin(
                        f"insitu.analysis.{a.name}", cat="insitu", tid=tid
                    )
                    a.update(frame)
                    yield node.compute(
                        ANALYSIS_KIND[a.name],
                        a.work_estimate * SECONDS_PER_ANALYSIS_OP[a.name],
                    )
                    analysis_span.end()
            sync_span.end()
        if local == 0:
            for a in analyses:
                analysis_out[a.name] = a.result()
        return None

    def main(rank: int, comm: Communicator):
        if rank < cfg.n_sim_ranks:
            return sim_rank(rank, comm)
        return ana_rank(rank, comm)

    faults = get_faults()
    fault_mark = faults.log_mark() if faults.enabled else 0
    world.run(main)
    pm0 = managers[0]
    if shared:
        hits, misses = pool.cache_stats()
        hits += ensemble.hits
        misses += ensemble.misses
    else:
        hits = misses = 0
    return InsituResult(
        config=cfg,
        virtual_time_s=engine.now,
        thermo=thermo_out,
        analysis_results=analysis_out,
        allocation_log=list(pm0.allocation_log),
        observation_log=list(pm0.observation_log),
        verification_failures=verification_failures[0],
        events_executed=engine.events_executed,
        shared_replica=shared,
        replica_hits=hits,
        replica_misses=misses,
        fault_events=faults.log_since(fault_mark) if faults.enabled else [],
    )
