"""Chaos matrix: sweep controllers × fault kinds, report resilience.

For every controller a clean baseline run establishes the fault-free
virtual completion time, then one faulted run per fault kind replays
the *same job* under a seeded :class:`~repro.faults.plan.FaultPlan`
containing only that kind. Each cell reports:

* **completion** — did the run finish without an exception;
* **slowdown** — faulted vs. baseline virtual time;
* **allocation stability** — the standard deviation of the simulation
  partition's cap total across decisions (a resilient controller holds
  its allocation under measurement faults rather than thrashing);
* **budget** — whether any installed allocation exceeded the budget.

The gate (:meth:`ChaosResult.failures`) fails a cell that crashed,
exceeded the budget, or — for fault kinds that do not physically slow
the machine — regressed completion time beyond ``fail_threshold``.
Kinds in :data:`TIMING_FAULT_KINDS` stall compute or delay messages by
construction, so their slowdown is expected and only completion and
budget are enforced.

This module imports the coupler and is therefore *not* re-exported
from :mod:`repro.faults` (the DES engine imports the injector; pulling
the coupler in from the package ``__init__`` would cycle). The CLI
imports it lazily.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from types import SimpleNamespace

import numpy as np

from repro.faults.injector import FaultInjector, NULL_FAULTS, use_faults
from repro.faults.plan import FaultKind, FaultPlan

__all__ = [
    "ChaosCell",
    "ChaosResult",
    "DEFAULT_CONTROLLERS",
    "TIMING_FAULT_KINDS",
    "chaos_matrix_spec",
    "run_chaos_matrix",
]

#: the paper's four approaches (same set the experiment runner builds)
DEFAULT_CONTROLLERS = ("static", "power-aware", "time-aware", "seesaw")

#: kinds that physically stall compute or delay messages — their
#: slowdown is injected, not a controller failure, so the gate does not
#: apply ``fail_threshold`` to them
TIMING_FAULT_KINDS = frozenset(
    {FaultKind.SLOWDOWN, FaultKind.CRASH, FaultKind.MPI_DELAY}
)


@dataclass
class ChaosCell:
    """One (controller, fault kind) run of the matrix."""

    controller: str
    kind: str
    ok: bool
    error: str = ""
    virtual_time_s: float = 0.0
    baseline_time_s: float = 0.0
    n_decisions: int = 0
    cap_std_w: float = 0.0
    budget_ok: bool = True
    n_fault_windows: int = 0

    @property
    def slowdown(self) -> float:
        """Faulted time over baseline time (1.0 = no regression)."""
        if not self.ok or self.baseline_time_s <= 0:
            return float("inf") if not self.ok else 1.0
        return self.virtual_time_s / self.baseline_time_s


@dataclass
class ChaosResult:
    """The full matrix plus the per-controller baselines."""

    seed: int
    cells: list[ChaosCell] = field(default_factory=list)
    baselines: dict[str, float] = field(default_factory=dict)

    def failures(self, fail_threshold: float) -> list[str]:
        """Gate violations: crashes, budget breaches, excess slowdown."""
        problems = []
        for c in self.cells:
            tag = f"{c.controller}/{c.kind}"
            if not c.ok:
                problems.append(f"{tag}: crashed ({c.error})")
                continue
            if not c.budget_ok:
                problems.append(f"{tag}: allocation exceeded the budget")
            timing = FaultKind(c.kind) in TIMING_FAULT_KINDS
            if not timing and c.slowdown - 1.0 > fail_threshold:
                problems.append(
                    f"{tag}: slowdown {100 * (c.slowdown - 1):.1f}% "
                    f"> {100 * fail_threshold:.0f}% threshold"
                )
        return problems

    def render(self) -> str:
        header = (
            f"{'controller':<12} {'fault':<11} {'status':<7} "
            f"{'time (s)':>9} {'slowdown':>9} {'decisions':>9} "
            f"{'cap σ (W)':>10} {'budget':>7}"
        )
        lines = [
            f"chaos matrix (seed {self.seed}): "
            f"{len(self.baselines)} controllers x "
            f"{len(self.cells) // max(len(self.baselines), 1)} fault kinds",
            header,
            "-" * len(header),
        ]
        for c in self.cells:
            if c.ok:
                lines.append(
                    f"{c.controller:<12} {c.kind:<11} {'ok':<7} "
                    f"{c.virtual_time_s:>9.3f} "
                    f"{100 * (c.slowdown - 1):>+8.1f}% "
                    f"{c.n_decisions:>9d} {c.cap_std_w:>10.2f} "
                    f"{'ok' if c.budget_ok else 'OVER':>7}"
                )
            else:
                lines.append(
                    f"{c.controller:<12} {c.kind:<11} {'CRASH':<7} "
                    f"{c.error[:48]}"
                )
        return "\n".join(lines)


def _sim_cap_totals(allocation_log) -> np.ndarray:
    totals = []
    for entry in allocation_log:
        alloc = entry[1] if isinstance(entry, tuple) else entry
        totals.append(float(alloc.sim_caps_w.sum()))
    return np.asarray(totals)


def chaos_matrix_spec(
    controllers=DEFAULT_CONTROLLERS,
    kinds=None,
    seed: int = 0,
    steps: int = 8,
    ranks: int = 2,
    budget_w: float = 110.0,
    job_seed: int = 2020,
):
    """The sweep as a declarative :class:`~repro.scenario.ScenarioMatrix`.

    ``run_chaos_matrix`` expands this matrix to drive its cells, so the
    spec — not ad-hoc nested loops — is the single source of the sweep
    order: controllers on the outer axis, fault kinds on the inner one.
    The CLI's ``chaos --matrix-out`` dumps it as a suite file that
    ``scenario expand``/``validate`` understand.
    """
    from repro.scenario import ScenarioMatrix, ScenarioSpec

    kinds = tuple(FaultKind(k) for k in kinds) if kinds else tuple(FaultKind)
    base = ScenarioSpec(
        name="chaos",
        approach=controllers[0],
        workload="insitu",
        chaos_seed=seed,
        insitu={
            "n_sim_ranks": ranks,
            "n_ana_ranks": ranks,
            "n_verlet_steps": steps,
            "power_cap_w": budget_w,
            "seed": job_seed,
        },
    )
    return ScenarioMatrix(
        base=base,
        axes={
            "approach": list(controllers),
            "extras.fault_kind": [k.value for k in kinds],
        },
    )


def run_chaos_matrix(
    controllers=DEFAULT_CONTROLLERS,
    kinds=None,
    seed: int = 0,
    steps: int = 8,
    ranks: int = 2,
    budget_w: float = 110.0,
    events_path: str | Path | None = None,
    job_seed: int = 2020,
) -> ChaosResult:
    """Run the controllers × fault-kinds matrix; see the module docstring.

    ``seed`` drives the fault plans (same seed ⇒ byte-identical fault
    schedules); ``budget_w`` is the per-node cap. ``events_path``
    collects every fired fault-marker row, tagged with its cell, as
    JSONL — the artifact the CI chaos-smoke job uploads.
    """
    from repro.experiments.runner import build_controller
    from repro.insitu import InsituConfig, run_insitu

    matrix = chaos_matrix_spec(
        controllers=controllers,
        kinds=kinds,
        seed=seed,
        steps=steps,
        ranks=ranks,
        budget_w=budget_w,
        job_seed=job_seed,
    )
    cfg = InsituConfig(**matrix.base.insitu)
    shape = SimpleNamespace(
        budget_w=cfg.world_size * budget_w, n_sim=ranks, n_ana=ranks
    )
    result = ChaosResult(seed=seed)
    event_rows: list[dict] = []

    for cell_spec in matrix.expand():
        name = cell_spec.approach
        kind = FaultKind(cell_spec.extras["fault_kind"])
        if name not in result.baselines:
            # clean baseline under the null injector (bit-identical to
            # an uninstrumented run) fixes the horizon the plans are
            # sampled on
            with use_faults(NULL_FAULTS):
                baseline = run_insitu(cfg, build_controller(name, shape))
            result.baselines[name] = baseline.virtual_time_s
        baseline_s = result.baselines[name]

        plan = FaultPlan.sample(
            cell_spec.chaos_seed,
            cfg.world_size,
            horizon_s=max(baseline_s, 1e-3),
            kinds=(kind,),
        )
        injector = FaultInjector(plan)
        cell = ChaosCell(
            controller=name,
            kind=kind.value,
            ok=True,
            baseline_time_s=baseline_s,
        )
        try:
            with use_faults(injector):
                faulted = run_insitu(cfg, build_controller(name, shape))
        except Exception as exc:  # the gate reports, caller decides
            cell.ok = False
            cell.error = f"{type(exc).__name__}: {exc}"
        else:
            totals = _sim_cap_totals(faulted.allocation_log)
            cell.virtual_time_s = faulted.virtual_time_s
            cell.n_decisions = len(faulted.allocation_log)
            cell.cap_std_w = float(totals.std()) if len(totals) > 1 else 0.0
            cell.budget_ok = all(
                (entry[1] if isinstance(entry, tuple) else entry).total_w
                <= shape.budget_w + 1e-6
                for entry in faulted.allocation_log
            )
            cell.n_fault_windows = sum(
                1 for r in injector.event_log if r["phase"] == "start"
            )
        for row in injector.event_log:
            event_rows.append(
                {"controller": name, "cell_kind": kind.value, **row}
            )
        result.cells.append(cell)

    if events_path is not None:
        path = Path(events_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as fh:
            for row in event_rows:
                fh.write(json.dumps(row, sort_keys=True) + "\n")
    return result
