"""Deterministic fault injection for the in-situ power testbed.

:mod:`repro.faults.plan` declares *what* goes wrong (typed, windowed
:class:`FaultEvent` schedules — declarative or seed-sampled);
:mod:`repro.faults.injector` decides *when consumers see it* (pure
``(plan, t, rank)`` queries + exact-virtual-time markers fired from the
DES engine); :mod:`repro.faults.chaos` sweeps a fault matrix across the
controllers and scores resilience (imported lazily by the CLI — it
pulls in the coupler, so it must not be imported here).
"""

from repro.faults.injector import (
    ActuationFault,
    FaultInjector,
    NULL_FAULTS,
    get_faults,
    use_faults,
)
from repro.faults.plan import (
    SAMPLED_KINDS,
    FaultEvent,
    FaultKind,
    FaultPlan,
)

__all__ = [
    "ActuationFault",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "NULL_FAULTS",
    "SAMPLED_KINDS",
    "get_faults",
    "use_faults",
]
