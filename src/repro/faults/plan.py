"""Deterministic fault plans: typed fault events on the virtual clock.

A :class:`FaultPlan` is a fixed, ordered set of :class:`FaultEvent`
windows on the DES virtual timeline. Plans are *data*, never random at
query time: they are either written declaratively (JSON / the compact
spec DSL) or sampled **up front** from a seeded
:class:`~repro.util.rng.RngStream`, so the same seed always yields the
byte-identical plan and therefore the bit-identical faulted trajectory.
This mirrors how the rest of the reproduction treats stochasticity
(:mod:`repro.cluster.noise`): draw once, replay forever.

The taxonomy covers the failure modes the paper's platform actually
exhibits (Theta: slow nodes, RAPL actuation latency, noisy power
telemetry — §VII, Table I) plus the MPI perturbations SIM-SITU-style
what-if studies need:

========== ============================================================
kind       effect while the window is active
========== ============================================================
slowdown   phase cost on the target rank is multiplied by ``magnitude``
crash      node outage: compute stalls until the window ends (respawn)
cap_drop   RAPL cap requests are silently dropped
cap_lag    cap requests suffer ``magnitude`` s extra actuation latency
cap_skew   installed caps are offset by ``magnitude`` W (miscalibration)
meas_drop  the rank's PoLiMER report is lost for that synchronization
meas_stale the rank re-reports its previous measurement (old seq)
meas_garble the rank's power reading is multiplied by ``magnitude``
mpi_delay  every message/collective pays ``magnitude`` s extra wire time
========== ============================================================
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.util.rng import RngStream

__all__ = ["FaultEvent", "FaultKind", "FaultPlan", "SAMPLED_KINDS"]


class FaultKind(enum.Enum):
    """Typed fault taxonomy (see the module docstring table)."""

    SLOWDOWN = "slowdown"
    CRASH = "crash"
    CAP_DROP = "cap_drop"
    CAP_LAG = "cap_lag"
    CAP_SKEW = "cap_skew"
    MEAS_DROP = "meas_drop"
    MEAS_STALE = "meas_stale"
    MEAS_GARBLE = "meas_garble"
    MPI_DELAY = "mpi_delay"


#: kinds included by default when sampling a chaos plan
SAMPLED_KINDS = tuple(FaultKind)


@dataclass(frozen=True)
class FaultEvent:
    """One fault window: ``[t_start, t_start + duration)`` virtual s.

    ``rank`` is the world rank the fault targets (``None`` = every
    rank). ``magnitude`` is kind-specific: a multiplicative factor for
    ``slowdown``/``meas_garble``, extra seconds for ``cap_lag``/
    ``mpi_delay``, a watt offset for ``cap_skew``, unused otherwise.
    """

    kind: FaultKind
    t_start: float
    duration: float
    rank: int | None = None
    magnitude: float = 1.0

    def __post_init__(self) -> None:
        if self.t_start < 0 or self.duration <= 0:
            raise ValueError(
                f"fault window must satisfy t_start >= 0 < duration "
                f"(got {self.t_start}, {self.duration})"
            )
        if self.kind in (FaultKind.SLOWDOWN, FaultKind.MEAS_GARBLE):
            if self.magnitude <= 0:
                raise ValueError("multiplicative magnitude must be > 0")
        if self.kind in (FaultKind.CAP_LAG, FaultKind.MPI_DELAY):
            if self.magnitude < 0:
                raise ValueError("delay magnitude must be >= 0")

    @property
    def t_end(self) -> float:
        return self.t_start + self.duration

    def active(self, t: float) -> bool:
        """Is the window open at virtual time ``t``?"""
        return self.t_start <= t < self.t_end

    def hits(self, rank: int | None) -> bool:
        """Does this fault target ``rank``? (``None`` targets all; a
        caller with no rank identity matches all-rank faults only.)"""
        return self.rank is None or self.rank == rank

    # -- serialization -------------------------------------------------
    def to_json(self) -> dict:
        out = {
            "kind": self.kind.value,
            "t_start": self.t_start,
            "duration": self.duration,
            "magnitude": self.magnitude,
        }
        if self.rank is not None:
            out["rank"] = self.rank
        return out

    @classmethod
    def from_json(cls, data: dict) -> "FaultEvent":
        return cls(
            kind=FaultKind(data["kind"]),
            t_start=float(data["t_start"]),
            duration=float(data["duration"]),
            rank=data.get("rank"),
            magnitude=float(data.get("magnitude", 1.0)),
        )


def _sort_key(e: FaultEvent):
    return (e.t_start, e.kind.value, -1 if e.rank is None else e.rank, e.magnitude)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, time-ordered fault schedule (+ seed provenance)."""

    events: tuple[FaultEvent, ...] = ()
    seed: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "events", tuple(sorted(self.events, key=_sort_key))
        )

    def __len__(self) -> int:
        return len(self.events)

    def by_kind(self, kind: FaultKind) -> tuple[FaultEvent, ...]:
        return tuple(e for e in self.events if e.kind is kind)

    @property
    def kinds(self) -> tuple[str, ...]:
        return tuple(sorted({e.kind.value for e in self.events}))

    # -- construction --------------------------------------------------
    @classmethod
    def from_spec(cls, spec) -> "FaultPlan":
        """Build a plan from a declarative spec.

        Accepts a dict (``{"events": [...], "seed": ...}``), a path to
        a JSON file of that shape, or the compact DSL::

            kind@START+DURATION[xMAGNITUDE][:rankN]

        with events separated by ``;``, e.g.
        ``slowdown@1.0+2.5x1.8:rank3;cap_drop@0.5+4.0``.
        """
        if isinstance(spec, FaultPlan):
            return spec
        if isinstance(spec, dict):
            return cls(
                events=tuple(
                    FaultEvent.from_json(e) for e in spec.get("events", [])
                ),
                seed=spec.get("seed"),
            )
        text = str(spec).strip()
        path = Path(text)
        if text.endswith((".json", ".jsonl")) and path.is_file():
            body = path.read_text().strip()
            if text.endswith(".jsonl"):
                rows = [json.loads(ln) for ln in body.splitlines() if ln.strip()]
                return cls(events=tuple(FaultEvent.from_json(r) for r in rows))
            return cls.from_spec(json.loads(body))
        return cls(events=tuple(_parse_dsl(text)))

    @classmethod
    def sample(
        cls,
        seed: int,
        n_ranks: int,
        horizon_s: float = 20.0,
        kinds: Sequence[FaultKind | str] | None = None,
        events_per_kind: int = 2,
    ) -> "FaultPlan":
        """Sample a seed-replayable plan over ``[0, horizon_s)``.

        Each kind draws from its own name-addressed child stream, so
        adding a kind never shifts another kind's draws — the same
        property :mod:`repro.cluster.noise` relies on.
        """
        if n_ranks < 1:
            raise ValueError("need at least one rank")
        if horizon_s <= 0:
            raise ValueError("horizon must be positive")
        if events_per_kind < 1:
            raise ValueError("events_per_kind must be >= 1")
        resolved = [
            k if isinstance(k, FaultKind) else FaultKind(k)
            for k in (kinds if kinds is not None else SAMPLED_KINDS)
        ]
        root = RngStream(seed, name="faults")
        events: list[FaultEvent] = []
        for kind in sorted(resolved, key=lambda k: k.value):
            st = root.child(f"kind/{kind.value}")
            for _ in range(events_per_kind):
                t0 = float(st.uniform(0.05, 0.70)) * horizon_s
                dur = float(st.uniform(0.08, 0.20)) * horizon_s
                rank: int | None = int(st.integers(0, n_ranks))
                magnitude = 1.0
                if kind is FaultKind.SLOWDOWN:
                    magnitude = float(st.uniform(1.4, 2.2))
                elif kind is FaultKind.CRASH:
                    dur = float(st.uniform(0.03, 0.08)) * horizon_s
                elif kind is FaultKind.CAP_LAG:
                    magnitude = float(st.uniform(0.02, 0.06))
                    rank = None  # actuation faults hit the whole domain
                elif kind is FaultKind.CAP_DROP:
                    rank = None
                elif kind is FaultKind.CAP_SKEW:
                    magnitude = float(st.uniform(-8.0, 8.0))
                    rank = None
                elif kind is FaultKind.MEAS_GARBLE:
                    magnitude = float(st.uniform(0.25, 2.75))
                elif kind is FaultKind.MPI_DELAY:
                    magnitude = float(st.uniform(0.001, 0.004))
                    rank = None
                events.append(
                    FaultEvent(
                        kind=kind,
                        t_start=t0,
                        duration=dur,
                        rank=rank,
                        magnitude=magnitude,
                    )
                )
        return cls(events=tuple(events), seed=seed)

    # -- serialization -------------------------------------------------
    def to_jsonl(self) -> str:
        """Canonical one-event-per-line form; byte-stable per plan."""
        return "".join(
            json.dumps(e.to_json(), sort_keys=True) + "\n" for e in self.events
        )

    def write_jsonl(self, path: Path | str) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_jsonl())
        return path

    def fingerprint(self) -> str:
        """Content hash of the canonical form (cache-key salt)."""
        return hashlib.sha256(self.to_jsonl().encode()).hexdigest()[:16]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<FaultPlan {len(self.events)} events"
            f" kinds={','.join(self.kinds) or 'none'}>"
        )


def _parse_dsl(text: str) -> Iterable[FaultEvent]:
    """Parse ``kind@START+DUR[xMAG][:rankN]`` clauses."""
    for raw in text.replace(",", ";").split(";"):
        clause = raw.strip()
        if not clause:
            continue
        try:
            kind_s, rest = clause.split("@", 1)
            rank: int | None = None
            if ":" in rest:
                rest, rank_s = rest.split(":", 1)
                if rank_s not in ("all", "*"):
                    rank = int(rank_s.removeprefix("rank"))
            magnitude = 1.0
            if "x" in rest:
                rest, mag_s = rest.split("x", 1)
                magnitude = float(mag_s)
            start_s, dur_s = rest.split("+", 1)
            yield FaultEvent(
                kind=FaultKind(kind_s.strip()),
                t_start=float(start_s),
                duration=float(dur_s),
                rank=rank,
                magnitude=magnitude,
            )
        except (ValueError, KeyError) as exc:
            raise ValueError(
                f"malformed fault clause {clause!r} "
                "(expected kind@START+DUR[xMAG][:rankN])"
            ) from exc
