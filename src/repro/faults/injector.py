"""The fault injector: fires a :class:`FaultPlan` on the DES clock.

The injector is an **ambient singleton** exactly like the tracer,
metrics registry, and audit journal (:func:`get_faults` /
:func:`use_faults`, with an inert :data:`NULL_FAULTS` default), so the
hot paths pay a single cached ``is not None`` check when no faults are
installed — the same discipline that keeps telemetry overhead under its
bench budget.

Determinism contract
--------------------
The plan is static data; every query (``slowdown_factor``,
``actuation``, ``measurement``, ...) is a pure function of
``(plan, t, rank)``. Window *boundaries* are surfaced by an inline
``on_advance`` hook called from :meth:`repro.des.engine.Engine.step`
right after each clock advance — never as heap events, which would move
the virtual end time and break the bit-identity contract. A boundary
whose time falls beyond the last real event simply never fires, which
is correct: nothing in the simulation could have observed it.
"""

from __future__ import annotations

import contextlib
from typing import NamedTuple

from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.metrics.audit import get_audit
from repro.metrics.registry import get_metrics
from repro.telemetry import get_tracer

__all__ = [
    "ActuationFault",
    "FaultInjector",
    "NULL_FAULTS",
    "get_faults",
    "use_faults",
]


class ActuationFault(NamedTuple):
    """Effect of active cap-actuation faults on one request."""

    dropped: bool
    extra_delay_s: float
    offset_w: float


class FaultInjector:
    """Evaluates a :class:`FaultPlan` against the virtual clock.

    One injector serves one run. Construct it with the plan, install it
    with :func:`use_faults`, and build the :class:`~repro.des.Engine`
    inside that scope — engine construction calls :meth:`bind_engine`,
    arming the boundary cursor and the observability hooks.
    """

    enabled = True

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        #: chronological fault-marker rows (dicts), appended as windows
        #: open/close; byte-stable given the same plan + trajectory
        self.event_log: list[dict] = []
        # (t, phase, event) boundaries in firing order; phase 0 = start,
        # 1 = end so a window opening at another's close fires after it
        bounds: list[tuple[float, int, FaultEvent]] = []
        for ev in plan.events:
            bounds.append((ev.t_start, 0, ev))
            bounds.append((ev.t_end, 1, ev))
        self._bounds = sorted(bounds, key=lambda b: (b[0], b[1], b[2].kind.value))
        self._cursor = 0
        tracer = get_tracer()
        self._tracer = tracer if tracer.enabled else None
        metrics = get_metrics()
        self._metrics = metrics if metrics.enabled else None
        audit = get_audit()
        self._audit = audit if audit.enabled else None

    @property
    def active(self) -> bool:
        """True when the plan carries at least one event."""
        return bool(self.plan.events)

    # ------------------------------------------------------------ engine
    def bind_engine(self, engine) -> None:
        """Reset the boundary cursor for a fresh engine run."""
        self._cursor = 0

    def on_advance(self, now: float) -> None:
        """Fire start/end markers for boundaries at or before ``now``.

        Called inline from ``Engine.step`` after every clock advance;
        O(1) when no boundary is due.
        """
        bounds = self._bounds
        i = self._cursor
        while i < len(bounds) and bounds[i][0] <= now:
            t, phase, ev = bounds[i]
            i += 1
            self._mark(t, "start" if phase == 0 else "end", ev)
        self._cursor = i

    def _mark(self, t: float, phase: str, ev: FaultEvent) -> None:
        self.event_log.append(
            {
                "t": t,
                "phase": phase,
                "kind": ev.kind.value,
                "rank": ev.rank,
                "magnitude": ev.magnitude,
                "duration": ev.duration,
            }
        )
        if self._tracer is not None:
            self._tracer.instant(
                f"faults.{ev.kind.value}.{phase}",
                cat="faults",
                ts=t,
                rank=-1 if ev.rank is None else ev.rank,
                magnitude=ev.magnitude,
            )
        if self._metrics is not None and phase == "start":
            self._metrics.counter("faults.injected").inc()
            self._metrics.counter(f"faults.{ev.kind.value}").inc()
        if self._audit is not None and phase == "start":
            self._audit.record_fault(
                ev.kind.value,
                t,
                {
                    "rank": ev.rank,
                    "magnitude": ev.magnitude,
                    "duration": ev.duration,
                },
            )

    # -------------------------------------------------------- event log
    def log_mark(self) -> int:
        """Current length of the event log (for scoped extraction)."""
        return len(self.event_log)

    def log_since(self, mark: int) -> list[dict]:
        """Rows appended after ``mark`` (copies, safe to mutate)."""
        return [dict(row) for row in self.event_log[mark:]]

    # ----------------------------------------------------------- queries
    def _active(self, t: float, kind: FaultKind, rank: int | None):
        for ev in self.plan.events:
            if ev.kind is kind and ev.active(t) and ev.hits(rank):
                yield ev

    def slowdown_factor(self, t: float, rank: int | None) -> float:
        """Multiplicative phase-cost factor (1.0 = unfaulted)."""
        factor = 1.0
        for ev in self._active(t, FaultKind.SLOWDOWN, rank):
            factor *= ev.magnitude
        return factor

    def outage_extra(self, t: float, rank: int | None) -> float:
        """Seconds until the node respawns (0.0 = no active outage).

        A phase starting mid-outage stalls for the remaining window;
        the stall is charged at the node's wait draw, like any gap.
        """
        stall = 0.0
        for ev in self._active(t, FaultKind.CRASH, rank):
            stall = max(stall, ev.t_end - t)
        if stall > 0.0 and self._metrics is not None:
            self._metrics.counter("faults.outage_stalls").inc()
            self._metrics.histogram("faults.outage_stall_s").observe(stall)
        return stall

    def actuation(self, t: float, rank: int | None = None) -> ActuationFault | None:
        """Active cap-actuation faults, or None when the path is clean."""
        dropped = False
        extra = 0.0
        offset = 0.0
        for ev in self._active(t, FaultKind.CAP_DROP, rank):
            dropped = True
        for ev in self._active(t, FaultKind.CAP_LAG, rank):
            extra += ev.magnitude
        for ev in self._active(t, FaultKind.CAP_SKEW, rank):
            offset += ev.magnitude
        if not (dropped or extra or offset):
            return None
        if self._metrics is not None:
            if dropped:
                self._metrics.counter("faults.cap_dropped").inc()
            if extra:
                self._metrics.counter("faults.cap_lagged").inc()
            if offset:
                self._metrics.counter("faults.cap_skewed").inc()
        return ActuationFault(dropped, extra, offset)

    def measurement(self, t: float, rank: int | None) -> tuple[str, float] | None:
        """Active measurement fault for ``rank``: ``(kind, magnitude)``.

        Drop wins over stale wins over garble when windows overlap (a
        lost report can't also be re-sent).
        """
        for kind, metric in (
            (FaultKind.MEAS_DROP, "faults.meas_dropped"),
            (FaultKind.MEAS_STALE, "faults.meas_stale"),
            (FaultKind.MEAS_GARBLE, "faults.meas_garbled"),
        ):
            for ev in self._active(t, kind, rank):
                if self._metrics is not None:
                    self._metrics.counter(metric).inc()
                return (kind.value, ev.magnitude)
        return None

    def comm_delay(self, t: float) -> float:
        """Extra wire seconds for a message/collective started at ``t``."""
        delay = 0.0
        for ev in self._active(t, FaultKind.MPI_DELAY, None):
            delay += ev.magnitude
        if delay > 0.0 and self._metrics is not None:
            self._metrics.counter("faults.mpi_delays").inc()
        return delay

    def active_kinds(self, t: float) -> tuple[str, ...]:
        """Kinds with an open window at ``t`` (diagnostics)."""
        return tuple(
            sorted({e.kind.value for e in self.plan.events if e.active(t)})
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<FaultInjector {len(self.plan.events)} events>"


class _NullFaultInjector(FaultInjector):
    """Inert default: consumers check ``enabled`` once and cache None."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(FaultPlan())

    @property
    def active(self) -> bool:
        return False

    def bind_engine(self, engine) -> None:
        pass

    def on_advance(self, now: float) -> None:  # pragma: no cover
        pass


NULL_FAULTS = _NullFaultInjector()

_current: FaultInjector | None = None


def get_faults() -> FaultInjector:
    """The ambient injector (:data:`NULL_FAULTS` unless installed)."""
    current = _current
    return current if current is not None else NULL_FAULTS


@contextlib.contextmanager
def use_faults(injector: FaultInjector):
    """Install ``injector`` as the ambient fault injector for a scope."""
    global _current
    previous = _current
    _current = injector
    try:
        yield injector
    finally:
        _current = previous
