"""Chrome ``trace_event`` exporter.

Buffers tracer records and writes the JSON object format understood by
``chrome://tracing`` and https://ui.perfetto.dev: a ``traceEvents``
array of events with microsecond timestamps. Span begin/end pairs,
complete ("X") spans, instants, counter samples and process/thread
metadata all map 1:1 onto Chrome phases, so a traced run opens directly
in the viewer with one row per simulated rank and one process per
simulation run.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.telemetry.sinks import MemorySink

__all__ = ["ChromeTraceSink", "to_chrome_events"]

#: tracer timestamps are seconds; Chrome wants microseconds
_US = 1e6


def to_chrome_events(records: list[dict]) -> list[dict]:
    """Convert tracer records to Chrome ``traceEvents`` dicts."""
    events: list[dict] = []
    for rec in records:
        ph = rec["ph"]
        ev: dict = {
            "name": rec["name"],
            "cat": rec.get("cat") or "default",
            "ph": ph,
            "ts": rec["ts"] * _US,
            "pid": rec.get("pid", 0),
            "tid": rec.get("tid", 0),
        }
        args = rec.get("args")
        if ph == "X":
            ev["dur"] = rec.get("dur", 0.0) * _US
        if ph == "i":
            ev["s"] = "t"  # thread-scoped instant
        if ph == "C":
            ev["args"] = {"value": (args or {}).get("value", 0.0)}
        elif args:
            ev["args"] = args
        events.append(ev)
    return events


class ChromeTraceSink(MemorySink):
    """In-memory sink with a Chrome-trace ``write``/``render``.

    The raw records stay available on :attr:`records` (the summary
    report consumes them); :meth:`write` exports the Chrome JSON.
    """

    def render(self) -> dict:
        """The full trace object (``traceEvents`` + metadata)."""
        return {
            "traceEvents": to_chrome_events(self.records),
            "displayTimeUnit": "ms",
            "otherData": {"clock": "simulated-seconds * 1e6"},
        }

    def write(self, path: Path | str) -> Path:
        """Write the trace JSON to ``path`` and return the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.render()) + "\n")
        return path
