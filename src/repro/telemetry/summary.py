"""Trace post-processing: validation and the summary report.

:func:`validate_spans` checks structural well-formedness — every end
matches the innermost open begin of its ``(pid, tid)`` lane, nothing is
left open, and children lie within their parent's interval. The
property tests drive it with randomized span programs; the CLI runs it
before writing a trace so a malformed instrumentation change fails
loudly rather than producing a file Perfetto rejects.

:func:`summarize` folds a record stream into per-phase time/power
breakdowns (from the ``"X"`` phase spans' ``energy_j`` args), per-name
span totals, and final counter values; ``render()`` prints the tables
the ``trace`` subcommand shows after a run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SpanStat", "TelemetrySummary", "summarize", "validate_spans"]


def validate_spans(records: list[dict]) -> list[str]:
    """Structural violations in a record stream (empty list = clean).

    Checks, independently per ``(pid, tid)`` lane:

    * "E" records match the innermost open "B" by name;
    * timestamps never run backwards within a lane;
    * every opened span is closed (balanced enter/exit);
    * child spans end no later than their parent ends.

    The parent-interval property follows from the first three for
    stack-disciplined spans, but malformed ``ts`` overrides can break
    it independently, so it is verified directly.
    """
    problems: list[str] = []
    # per-lane stack of [begin_record, max_end_of_closed_children]
    stacks: dict[tuple, list[list]] = {}
    last_ts: dict[tuple, float] = {}
    for rec in records:
        ph = rec.get("ph")
        if ph not in ("B", "E", "X"):
            continue
        lane = (rec.get("pid", 0), rec.get("tid", 0))
        ts = rec["ts"]
        if ts < last_ts.get(lane, float("-inf")):
            problems.append(
                f"lane {lane}: ts went backwards at {rec['name']!r} "
                f"({ts} < {last_ts[lane]})"
            )
        last_ts[lane] = ts
        stack = stacks.setdefault(lane, [])
        if ph == "B":
            stack.append([rec, float("-inf")])
        elif ph == "E":
            if not stack:
                problems.append(
                    f"lane {lane}: end of {rec['name']!r} with no open span"
                )
                continue
            top, child_end = stack.pop()
            if top["name"] != rec["name"]:
                problems.append(
                    f"lane {lane}: end of {rec['name']!r} closes "
                    f"{top['name']!r}"
                )
            if ts < top["ts"]:
                problems.append(
                    f"lane {lane}: span {top['name']!r} ends before it begins"
                )
            if child_end > ts + 1e-9:
                problems.append(
                    f"lane {lane}: a child outlives parent {top['name']!r}"
                )
            if stack:  # this span is itself a closed child of its parent
                stack[-1][1] = max(stack[-1][1], ts)
        else:  # X: a pre-closed span; note its end for the open parent
            end = ts + rec.get("dur", 0.0)
            if stack:
                stack[-1][1] = max(stack[-1][1], end)
    for lane, stack in stacks.items():
        for rec, _ in stack:
            problems.append(f"lane {lane}: span {rec['name']!r} never ended")
    return problems


@dataclass
class SpanStat:
    """Aggregate over all spans sharing one (cat, name)."""

    count: int = 0
    total_s: float = 0.0
    energy_j: float = 0.0

    @property
    def mean_power_w(self) -> float:
        return self.energy_j / self.total_s if self.total_s > 0 else 0.0


@dataclass
class TelemetrySummary:
    """What :func:`summarize` extracts from a trace."""

    #: (cat, name) -> aggregate over closed spans (B/E pairs and X)
    spans: dict = field(default_factory=dict)
    #: phase-kind name -> aggregate (the per-phase time/power table)
    phases: dict = field(default_factory=dict)
    #: counter/gauge name -> final value
    counters: dict = field(default_factory=dict)
    #: instant-event name -> occurrence count
    instants: dict = field(default_factory=dict)

    def render(self) -> str:
        lines = ["== telemetry summary =="]
        if self.phases:
            lines.append("")
            lines.append("per-phase time/power:")
            lines.append(
                f"  {'phase':<12} {'count':>6} {'time s':>10}"
                f" {'energy J':>10} {'mean W':>8}"
            )
            for name in sorted(self.phases):
                s = self.phases[name]
                lines.append(
                    f"  {name:<12} {s.count:>6} {s.total_s:>10.4f}"
                    f" {s.energy_j:>10.2f} {s.mean_power_w:>8.1f}"
                )
        if self.spans:
            lines.append("")
            lines.append("span totals:")
            for (cat, name) in sorted(self.spans):
                s = self.spans[(cat, name)]
                lines.append(
                    f"  {cat + '/' + name:<32} x{s.count:<5}"
                    f" {s.total_s:.4f} s"
                )
        if self.counters:
            lines.append("")
            lines.append("counters:")
            for name in sorted(self.counters):
                lines.append(f"  {name:<32} {self.counters[name]:g}")
        if self.instants:
            lines.append("")
            lines.append("events:")
            for name in sorted(self.instants):
                lines.append(f"  {name:<32} x{self.instants[name]}")
        return "\n".join(lines)


def summarize(records: list[dict]) -> TelemetrySummary:
    """Fold a record stream into a :class:`TelemetrySummary`."""
    out = TelemetrySummary()
    open_spans: dict[tuple, list[dict]] = {}

    def add_span(cat: str, name: str, dur: float, energy: float) -> None:
        stat = out.spans.setdefault((cat, name), SpanStat())
        stat.count += 1
        stat.total_s += dur
        stat.energy_j += energy

    for rec in records:
        ph = rec.get("ph")
        name = rec.get("name", "")
        cat = rec.get("cat", "")
        args = rec.get("args") or {}
        if ph == "B":
            lane = (rec.get("pid", 0), rec.get("tid", 0))
            open_spans.setdefault(lane, []).append(rec)
        elif ph == "E":
            lane = (rec.get("pid", 0), rec.get("tid", 0))
            stack = open_spans.get(lane)
            if stack:
                top = stack.pop()
                add_span(
                    top.get("cat", ""),
                    top["name"],
                    rec["ts"] - top["ts"],
                    0.0,
                )
        elif ph == "X":
            dur = rec.get("dur", 0.0)
            energy = float(args.get("energy_j", 0.0))
            add_span(cat, name, dur, energy)
            if name.startswith("phase."):
                stat = out.phases.setdefault(name[len("phase."):], SpanStat())
                stat.count += 1
                stat.total_s += dur
                stat.energy_j += energy
        elif ph == "C":
            out.counters[name] = float(args.get("value", 0.0))
        elif ph == "i":
            out.instants[name] = out.instants.get(name, 0) + 1
    return out
