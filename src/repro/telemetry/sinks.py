"""Telemetry sinks: where trace records go.

A sink receives flat record dicts (see :mod:`repro.telemetry.tracer`
for the schema) and may buffer, stream, or drop them:

* :class:`NullSink` — drops everything; ``enabled = False`` lets the
  tracer short-circuit before a record is even built, which is what
  keeps an untraced run within the overhead budget (DESIGN.md §9);
* :class:`MemorySink` — keeps records in a list; the test sink;
* :class:`JsonlSink` — one JSON object per line to a file;
* :class:`JournalSink` — forwards records into a campaign
  :class:`repro.campaign.RunJournal`, interleaving telemetry with the
  journal's cell records in one crash-tolerant JSONL stream.

The Chrome ``trace_event`` exporter lives in
:mod:`repro.telemetry.chrome`.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

__all__ = ["Sink", "NullSink", "MemorySink", "JsonlSink", "JournalSink"]


class Sink:
    """Base sink: receives record dicts via :meth:`emit`."""

    #: tracers short-circuit all instrumentation when the sink of the
    #: installed tracer reports ``enabled = False``
    enabled = True

    def emit(self, record: dict) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush/release resources; safe to call twice."""


class NullSink(Sink):
    """Discards every record (the default sink)."""

    enabled = False

    def emit(self, record: dict) -> None:  # pragma: no cover - never hot
        pass


class MemorySink(Sink):
    """Buffers records in memory — for tests and the summary report.

    Emit/clear are lock-guarded: with campaign telemetry shipping the
    parent merges worker batches while in-process instrumentation may
    be emitting on another thread, so two concurrent ``emit`` calls
    must never corrupt the list (CPython's list.append is atomic, but
    subclasses — :class:`~repro.telemetry.chrome.ChromeTraceSink` — and
    ``clear`` racing an append are not guaranteed to be).
    """

    def __init__(self) -> None:
        self.records: list[dict] = []
        self._lock = threading.Lock()

    def emit(self, record: dict) -> None:
        with self._lock:
            self.records.append(record)

    def clear(self) -> None:
        with self._lock:
            self.records.clear()


class JsonlSink(Sink):
    """Streams records as JSON lines to ``path`` (append mode).

    ``flush_every`` bounds how stale the file can be: the sink flushes
    after every N records (and on :meth:`close`), so a live tail — a
    concurrent ``campaign watch``, or post-crash forensics — sees
    records promptly instead of whatever survived libc's buffer.
    """

    def __init__(self, path: Path | str, flush_every: int = 64) -> None:
        if flush_every < 1:
            raise ValueError("flush_every must be >= 1")
        self.path = Path(path)
        self.flush_every = flush_every
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("a")
        self._pending = 0

    def emit(self, record: dict) -> None:
        if self._fh is not None:
            self._fh.write(json.dumps(record, sort_keys=True) + "\n")
            self._pending += 1
            if self._pending >= self.flush_every:
                self._fh.flush()
                self._pending = 0

    def close(self) -> None:
        if self._fh is not None:
            self._fh.flush()
            self._fh.close()
            self._fh = None
            self._pending = 0


class JournalSink(Sink):
    """Forwards records into a campaign ``RunJournal``.

    Every record becomes a ``{"event": "telemetry", ...}`` journal line,
    so a campaign's cells and the telemetry of the runs that produced
    them land in one stream and survive crashes together (the journal
    flushes-or-fsyncs per record).
    """

    def __init__(self, journal) -> None:
        self.journal = journal

    def emit(self, record: dict) -> None:
        self.journal.telemetry(record)
