"""Low-overhead tracer: nestable spans, counters, gauges, sim-time.

Record schema (what sinks receive) — a flat dict modelled on Chrome's
``trace_event`` format, with timestamps in **seconds** on whatever
clock the tracer is bound to:

``{"ph": .., "name": .., "cat": .., "ts": .., "pid": .., "tid": ..,
"args": {..}}``

* ``ph``   — ``"B"``/``"E"`` span begin/end, ``"X"`` complete span
  (carries ``"dur"``), ``"i"`` instant, ``"C"`` counter sample,
  ``"M"`` metadata (process/thread names);
* ``pid``  — one *process* per simulation run: every time a DES
  :class:`~repro.des.engine.Engine` binds its virtual clock the pid is
  bumped, so back-to-back runs (paired baselines, campaign sweeps) get
  separate, individually-monotone timelines instead of overlapping ts
  ranges;
* ``tid``  — one *thread* per simulated rank (``rank + 1``), with
  ``tid 0`` reserved for the engine / controller / campaign layer.

Clocks
------
The tracer starts on a wall clock (``perf_counter`` relative to tracer
creation). A DES engine constructed while a tracer is installed calls
:meth:`Tracer.bind_clock` so that every subsequent timestamp is
**simulated seconds** — the paper's whole argument is about *when*
things happen in virtual time, so that is the axis traces live on.

Overhead contract
-----------------
``get_tracer()`` returns a process-wide null tracer unless a real one
is installed with :func:`use_tracer`. The null tracer's ``enabled``
is False and all of its methods are allocation-free no-ops, so
instrumentation in hot paths costs one attribute check (the DES event
loop additionally caches ``None`` at engine construction and pays only
an identity test per dispatch). The overhead budget — < 3 % on a full
in-situ run — is asserted by ``benchmarks/test_telemetry_overhead.py``.
"""

from __future__ import annotations

import contextlib
import time
from typing import Callable, Optional

from repro.telemetry.sinks import MemorySink, NullSink, Sink

__all__ = [
    "Counter",
    "Gauge",
    "SpanHandle",
    "Tracer",
    "get_tracer",
    "use_tracer",
]


class SpanHandle:
    """An open span; close it with :meth:`end` (or ``Tracer.end``).

    Handles are what generator-based rank code uses: a context manager
    cannot straddle a ``yield`` back into the DES scheduler, a
    begin/end pair can.
    """

    __slots__ = ("tracer", "name", "cat", "pid", "tid", "ts", "closed")

    def __init__(self, tracer: "Tracer", name: str, cat: str, pid: int, tid: int, ts: float):
        self.tracer = tracer
        self.name = name
        self.cat = cat
        self.pid = pid
        self.tid = tid
        self.ts = ts
        self.closed = False

    def end(self, **args) -> None:
        self.tracer.end(self, **args)


class Counter:
    """Monotonic counter; each :meth:`inc` emits a ``"C"`` sample."""

    __slots__ = ("_tracer", "name", "cat", "value")

    def __init__(self, tracer: "Tracer", name: str, cat: str):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.value = 0.0

    def inc(self, delta: float = 1.0) -> None:
        self.value += delta
        self._tracer._emit_counter(self.name, self.cat, self.value)


class Gauge:
    """Point-in-time value; each :meth:`set` emits a ``"C"`` sample."""

    __slots__ = ("_tracer", "name", "cat", "value")

    def __init__(self, tracer: "Tracer", name: str, cat: str):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)
        self._tracer._emit_counter(self.name, self.cat, self.value)


class Tracer:
    """Span/counter/gauge recorder in front of a pluggable sink."""

    def __init__(
        self,
        sink: Sink | None = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.sink = sink if sink is not None else MemorySink()
        self.enabled = bool(getattr(self.sink, "enabled", True))
        self._clock = clock
        self._wall0 = time.perf_counter()
        self.pid = 0
        self._pid_count = 0
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}

    # ------------------------------------------------------------ time
    def now(self) -> float:
        """Current timestamp: bound clock, else wall seconds."""
        clock = self._clock
        if clock is not None:
            return clock()
        return time.perf_counter() - self._wall0

    def wall_now(self) -> float:
        """Wall seconds since tracer creation (clock-binding immune)."""
        return time.perf_counter() - self._wall0

    def bind_clock(self, clock: Callable[[], float], label: str | None = None) -> int:
        """Adopt a simulation clock; returns the run's fresh ``pid``.

        Each binding starts a new trace "process" so sequential runs
        (whose virtual clocks all start at 0) do not overlap.
        """
        self._clock = clock
        self._pid_count += 1
        self.pid = self._pid_count
        if label:
            self.name_process(label, pid=self.pid)
        return self.pid

    # ------------------------------------------------------------ emit
    def _emit(self, record: dict) -> None:
        self.sink.emit(record)

    def _emit_counter(self, name: str, cat: str, value: float) -> None:
        self._emit(
            {
                "ph": "C",
                "name": name,
                "cat": cat,
                "ts": self.now(),
                "pid": self.pid,
                "tid": 0,
                "args": {"value": value},
            }
        )

    def emit_many(self, records) -> None:
        """Emit pre-built records in one batched pass.

        Hot emitters (the proxy session's per-rank phase spans) compute
        their fields vectorized and hand the finished Chrome records
        straight to the sink, skipping per-record keyword plumbing. Each
        record must be fully formed — ``ph``/``name``/``ts``/``pid``/
        ``tid`` — exactly as the per-record helpers would build it.
        """
        emit = self.sink.emit
        for record in records:
            emit(record)

    # ----------------------------------------------------------- spans
    def begin(
        self,
        name: str,
        cat: str = "",
        tid: int = 0,
        ts: float | None = None,
        **args,
    ) -> SpanHandle:
        """Open a span; returns the handle to :meth:`end` later."""
        t = self.now() if ts is None else ts
        self._emit(
            {
                "ph": "B",
                "name": name,
                "cat": cat,
                "ts": t,
                "pid": self.pid,
                "tid": tid,
                "args": args or None,
            }
        )
        return SpanHandle(self, name, cat, self.pid, tid, t)

    def end(self, span: SpanHandle, ts: float | None = None, **args) -> None:
        """Close ``span``; idempotent (a second call is ignored)."""
        if span.closed:
            return
        span.closed = True
        self._emit(
            {
                "ph": "E",
                "name": span.name,
                "cat": span.cat,
                "ts": self.now() if ts is None else ts,
                "pid": span.pid,
                "tid": span.tid,
                "args": args or None,
            }
        )

    @contextlib.contextmanager
    def span(self, name: str, cat: str = "", tid: int = 0, **args):
        """Context-manager span for straight-line (non-generator) code."""
        handle = self.begin(name, cat=cat, tid=tid, **args)
        try:
            yield handle
        finally:
            handle.end()

    def complete(
        self,
        name: str,
        dur: float,
        cat: str = "",
        tid: int = 0,
        ts: float | None = None,
        pid: int | None = None,
        **args,
    ) -> None:
        """A closed span in one record (Chrome ``"X"``).

        ``ts`` is the span *start*; callers that know a phase's duration
        up front (the DES compute awaitable) use this instead of B/E.
        """
        self._emit(
            {
                "ph": "X",
                "name": name,
                "cat": cat,
                "ts": self.now() if ts is None else ts,
                "dur": dur,
                "pid": self.pid if pid is None else pid,
                "tid": tid,
                "args": args or None,
            }
        )

    def instant(
        self,
        name: str,
        cat: str = "",
        tid: int = 0,
        ts: float | None = None,
        **args,
    ) -> None:
        """A point event (controller decision, cap actuation, ...)."""
        self._emit(
            {
                "ph": "i",
                "name": name,
                "cat": cat,
                "ts": self.now() if ts is None else ts,
                "pid": self.pid,
                "tid": tid,
                "args": args or None,
            }
        )

    # ------------------------------------------------- counters/gauges
    def counter(self, name: str, cat: str = "") -> Counter:
        """The (cached) counter called ``name``."""
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(self, name, cat)
        return c

    def gauge(self, name: str, cat: str = "") -> Gauge:
        """The (cached) gauge called ``name``."""
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(self, name, cat)
        return g

    # -------------------------------------------------------- metadata
    def name_process(self, label: str, pid: int | None = None) -> None:
        self._emit(
            {
                "ph": "M",
                "name": "process_name",
                "cat": "",
                "ts": 0.0,
                "pid": self.pid if pid is None else pid,
                "tid": 0,
                "args": {"name": label},
            }
        )

    def name_thread(self, tid: int, label: str) -> None:
        self._emit(
            {
                "ph": "M",
                "name": "thread_name",
                "cat": "",
                "ts": 0.0,
                "pid": self.pid,
                "tid": tid,
                "args": {"name": label},
            }
        )

    def close(self) -> None:
        self.sink.close()


class _NullSpanHandle(SpanHandle):
    """Shared no-op handle returned by the null tracer."""

    __slots__ = ()

    def end(self, **args) -> None:
        pass


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, delta: float = 1.0) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class NullTracer(Tracer):
    """Allocation-free no-op tracer; the process default.

    Every method returns immediately; ``span()`` hands back a shared
    null context manager, ``begin()`` a shared closed handle, and
    ``counter()/gauge()`` shared no-op instruments, so instrumented code
    needs no ``if`` guards outside the very hottest loops.
    """

    def __init__(self) -> None:
        super().__init__(NullSink())
        self._null_span = _NullSpanHandle(self, "", "", 0, 0, 0.0)
        self._null_counter = _NullCounter(self, "", "")
        self._null_gauge = _NullGauge(self, "", "")
        self._null_cm = contextlib.nullcontext(self._null_span)

    def bind_clock(self, clock, label=None) -> int:
        return 0

    def _emit(self, record: dict) -> None:  # pragma: no cover - no-op
        pass

    def _emit_counter(self, name, cat, value) -> None:
        pass

    def emit_many(self, records) -> None:
        pass

    def begin(self, name, cat="", tid=0, ts=None, **args) -> SpanHandle:
        return self._null_span

    def end(self, span, ts=None, **args) -> None:
        pass

    def span(self, name, cat="", tid=0, **args):
        return self._null_cm

    def complete(self, name, dur, cat="", tid=0, ts=None, pid=None, **args) -> None:
        pass

    def instant(self, name, cat="", tid=0, ts=None, **args) -> None:
        pass

    def counter(self, name, cat="") -> Counter:
        return self._null_counter

    def gauge(self, name, cat="") -> Gauge:
        return self._null_gauge

    def name_process(self, label, pid=None) -> None:
        pass

    def name_thread(self, tid, label) -> None:
        pass


#: the process-wide default — near-zero cost, always safe to call
NULL_TRACER = NullTracer()

_current: Tracer | None = None


def get_tracer() -> Tracer:
    """The tracer in effect: the :func:`use_tracer` scope's tracer, or
    the shared :data:`NULL_TRACER`."""
    current = _current
    return current if current is not None else NULL_TRACER


@contextlib.contextmanager
def use_tracer(tracer: Tracer):
    """Install ``tracer`` as the ambient tracer for the scope.

    Everything constructed inside the scope — DES engines, controllers,
    RAPL domains, campaign engines — picks it up without parameter
    plumbing, mirroring :func:`repro.campaign.use_engine`.
    """
    global _current
    previous = _current
    _current = tracer
    try:
        yield tracer
    finally:
        _current = previous
