"""Tracing & metrics for the simulation stack (DESIGN.md §9).

The reproduction's argument — like the paper's — is about *when* things
happen: controllers observing (time, power) tuples, partitions reaching
synchronization points together, caps landing after their actuation
delay. This package makes that visible:

* :class:`Tracer` — nestable spans, instants, typed counters/gauges,
  timestamped on the DES **virtual clock** once an engine binds it;
* sinks — :class:`NullSink` (default, near-zero cost),
  :class:`MemorySink` (tests), :class:`JsonlSink` /
  :class:`JournalSink` (streaming JSONL, campaign journal), and
  :class:`ChromeTraceSink` (opens in ``chrome://tracing`` / Perfetto);
* :func:`summarize` — per-phase time/power breakdown and counter report;
* :func:`get_tracer` / :func:`use_tracer` — the ambient-tracer pattern
  (same shape as :func:`repro.campaign.use_engine`) through which the
  CLI's ``--trace`` reaches every layer without parameter plumbing.

Instrumented seams: DES event dispatch, controller decisions
(``core``), RAPL cap requests/actuations (``power``), compute phases
and sync waits (``insitu``), campaign cells and cache outcomes
(``campaign``).
"""

from repro.telemetry.chrome import ChromeTraceSink, to_chrome_events
from repro.telemetry.sinks import (
    JournalSink,
    JsonlSink,
    MemorySink,
    NullSink,
    Sink,
)
from repro.telemetry.summary import (
    TelemetrySummary,
    summarize,
    validate_spans,
)
from repro.telemetry.tracer import (
    NULL_TRACER,
    Counter,
    Gauge,
    NullTracer,
    SpanHandle,
    Tracer,
    get_tracer,
    use_tracer,
)

__all__ = [
    "ChromeTraceSink",
    "Counter",
    "Gauge",
    "JournalSink",
    "JsonlSink",
    "MemorySink",
    "NULL_TRACER",
    "NullSink",
    "NullTracer",
    "Sink",
    "SpanHandle",
    "TelemetrySummary",
    "Tracer",
    "get_tracer",
    "summarize",
    "to_chrome_events",
    "use_tracer",
    "validate_spans",
]
