"""Simulated MPI: communicators, collectives and point-to-point.

This module reproduces the slice of MPI that the in-situ workflow and
PoLiMER need, with mpi4py-flavoured semantics:

* a world communicator created by :class:`MpiWorld`;
* ``split(color, key)`` building sub-communicators — the paper's
  in-situ frameworks organize simulation and analysis partitions with
  exactly this mechanism (§IV-B);
* blocking ``send``/``recv`` with tag/source matching (wildcards
  supported);
* ``barrier``, ``bcast``, ``gather``, ``allgather``, ``allreduce``,
  ``reduce`` and ``alltoall``.

All operations are *awaitables*: a simulated process obtains one from
the communicator and ``yield``s it. Completion timing comes from the
communicator's :class:`~repro.mpi.costs.CommCostModel`.

Payload size for the cost model is estimated with
:func:`payload_nbytes`, which understands numpy arrays and common
containers; logical tests with ``ZeroCost`` never look at it.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Sequence

import numpy as np

from repro.des.engine import Engine, SimulationError
from repro.des.process import Process, SimEvent
from repro.faults.injector import get_faults
from repro.mpi.costs import CommCostModel, ZeroCost

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Communicator",
    "MpiWorld",
    "RankView",
    "Request",
    "payload_nbytes",
]

#: Wildcard constants mirroring MPI_ANY_SOURCE / MPI_ANY_TAG.
ANY_SOURCE: int = -1
ANY_TAG: int = -1


def payload_nbytes(obj: Any) -> int:
    """Best-effort byte size of a message payload for the cost model."""
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, (int, float, bool, np.integer, np.floating)):
        return 8
    if isinstance(obj, str):
        return len(obj.encode())
    if isinstance(obj, (list, tuple, set)):
        return sum(payload_nbytes(x) for x in obj)
    if isinstance(obj, dict):
        return sum(payload_nbytes(k) + payload_nbytes(v) for k, v in obj.items())
    return 64  # opaque object: charge a small fixed envelope


class Request:
    """Handle to a non-blocking operation (mpi4py Request flavour).

    Yield :meth:`wait` (or the request itself) inside a simulated
    process to block until completion; poll :attr:`complete` to test.
    """

    __slots__ = ("_event",)

    def __init__(self, event: SimEvent) -> None:
        self._event = event

    @property
    def complete(self) -> bool:
        return self._event.triggered

    def wait(self) -> SimEvent:
        """The awaitable completing this request (yields its value)."""
        return self._event

    def __sim_await__(self, process) -> None:
        # allow `yield request` directly
        self._event._add_waiter(process._advance)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "complete" if self.complete else "pending"
        return f"<Request {state}>"


class _Message:
    __slots__ = ("source", "tag", "payload", "arrival")

    def __init__(self, source: int, tag: int, payload: Any, arrival: float):
        self.source = source
        self.tag = tag
        self.payload = payload
        self.arrival = arrival


class _PendingRecv:
    __slots__ = ("source", "tag", "event")

    def __init__(self, source: int, tag: int, event: SimEvent):
        self.source = source
        self.tag = tag
        self.event = event

    def matches(self, msg: _Message) -> bool:
        return (self.source in (ANY_SOURCE, msg.source)) and (
            self.tag in (ANY_TAG, msg.tag)
        )


def _coalesce_default() -> bool:
    """Coalesced collective release is on unless SEESAW_MPI_COALESCE=0.

    The opt-out keeps the historical one-wakeup-event-per-rank scheme
    available as the reference the equivalence tests compare against.
    """
    return os.environ.get("SEESAW_MPI_COALESCE", "1") != "0"


class _CollectiveRound:
    """State for one in-flight collective on a communicator.

    Arrival times are kept in a preallocated vector (``arrivals[rank]``
    is NaN until that rank joins), so the round never grows per-rank
    Python containers beyond the contribution dict it already needs.
    ``members`` records ``(rank, per_rank_event, deliver)`` in join
    order for the coalesced release.
    """

    __slots__ = (
        "op",
        "expected",
        "contributions",
        "event",
        "finalize",
        "arrivals",
        "members",
    )

    def __init__(
        self,
        op: str,
        expected: int,
        event: SimEvent,
        finalize: Callable[[dict[int, Any]], Any],
    ):
        self.op = op
        self.expected = expected
        self.contributions: dict[int, Any] = {}
        self.event = event
        self.finalize = finalize
        self.arrivals = np.full(expected, np.nan)
        self.members: list[tuple[int, SimEvent, Callable[[int, Any], Any]]] = []

    @property
    def last_arrival(self) -> float:
        """Latest join time over the vectorized arrival record."""
        return float(np.nanmax(self.arrivals))

    def release(self, result: Any) -> None:
        """Wake every member from one engine event, in join order.

        This replaces the O(N) per-rank wakeup storm: the shared event
        succeeds inline, then each per-rank wrapper (ops with a
        ``deliver``) succeeds inline with its delivered slice. Join
        order equals the order the per-rank zero-delay events fired in
        the old scheme, so the trajectory is bit-identical while the
        heap sees exactly one release event (ordering proof in
        DESIGN.md §15).
        """
        self.event._succeed_inline(result)
        for rank, per_rank_event, deliver in self.members:
            per_rank_event._succeed_inline(deliver(rank, result))


class Communicator:
    """A group of ranks sharing collectives and point-to-point matching.

    Rank numbering is always dense ``0..size-1`` within the
    communicator; :attr:`world_ranks` maps back to world numbering.
    """

    _next_id = 0

    def __init__(
        self,
        engine: Engine,
        world_ranks: Sequence[int],
        cost: CommCostModel,
        name: str = "comm",
        coalesce: bool | None = None,
    ) -> None:
        self.engine = engine
        self.world_ranks = tuple(world_ranks)
        self.cost = cost
        self.name = name
        #: one coalesced release event per collective vs the legacy
        #: per-rank wakeup storm; sub-communicators inherit the choice
        self._coalesce = _coalesce_default() if coalesce is None else coalesce
        self.id = Communicator._next_id
        Communicator._next_id += 1
        self._mailboxes: dict[int, list[_Message]] = {
            r: [] for r in range(len(world_ranks))
        }
        self._pending_recvs: dict[int, list[_PendingRecv]] = {
            r: [] for r in range(len(world_ranks))
        }
        self._rounds: dict[str, _CollectiveRound] = {}
        # Each rank may have at most one outstanding collective; track
        # arrivals for deadlock diagnostics.
        self._stats = {"p2p_messages": 0, "collectives": 0}
        faults = get_faults()
        self._faults = faults if faults.enabled and faults.active else None

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self.world_ranks)

    def translate_world_rank(self, world_rank: int) -> int:
        """Local rank of a world rank, or raise if not a member."""
        try:
            return self.world_ranks.index(world_rank)
        except ValueError:
            raise SimulationError(
                f"world rank {world_rank} not in {self.name}"
            ) from None

    # -- point-to-point ------------------------------------------------
    def send(self, source: int, dest: int, payload: Any, tag: int = 0) -> SimEvent:
        """Eager send: the returned event fires after sender overhead.

        The message is injected immediately and becomes receivable at
        ``now + p2p_time(size)``. The sender-side event completes at the
        same wire time (rendezvous-free model: small messages dominate
        the control plane here, and the paper's measurements fold
        controller communication into interval time anyway).
        """
        self._check_rank(source)
        self._check_rank(dest)
        nbytes = payload_nbytes(payload)
        wire = self.cost.p2p_time(nbytes)
        if self._faults is not None:
            wire += self._faults.comm_delay(self.engine.now)
        arrival = self.engine.now + wire
        msg = _Message(source, tag, payload, arrival)
        self._stats["p2p_messages"] += 1
        done = SimEvent(self.engine, name=f"{self.name}.send({source}->{dest})")
        self.engine.schedule(wire, lambda: done.succeed(None))
        self.engine.schedule(wire, lambda: self._deliver(dest, msg))
        return done

    def _deliver(self, dest: int, msg: _Message) -> None:
        waiting = self._pending_recvs[dest]
        for i, pending in enumerate(waiting):
            if pending.matches(msg):
                waiting.pop(i)
                pending.event.succeed(msg.payload)
                return
        self._mailboxes[dest].append(msg)

    def recv(
        self, rank: int, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> SimEvent:
        """Blocking receive; resolves with the matched payload."""
        self._check_rank(rank)
        event = SimEvent(self.engine, name=f"{self.name}.recv({rank})")
        mailbox = self._mailboxes[rank]
        for i, msg in enumerate(mailbox):
            if (source in (ANY_SOURCE, msg.source)) and (
                tag in (ANY_TAG, msg.tag)
            ):
                mailbox.pop(i)
                event.succeed(msg.payload)
                return event
        self._pending_recvs[rank].append(_PendingRecv(source, tag, event))
        return event

    # -- non-blocking point-to-point --------------------------------------
    def isend(
        self, source: int, dest: int, payload: Any, tag: int = 0
    ) -> "Request":
        """Non-blocking send: returns a :class:`Request` immediately.

        The message is injected right away (eager), so an un-waited
        isend still gets delivered; waiting on the request models the
        sender-side completion semantics.
        """
        return Request(self.send(source, dest, payload, tag))

    def irecv(
        self, rank: int, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> "Request":
        """Non-blocking receive: returns a :class:`Request` whose wait
        resolves with the matched payload."""
        return Request(self.recv(rank, source, tag))

    def sendrecv(
        self,
        rank: int,
        dest: int,
        payload: Any,
        source: int,
        send_tag: int = 0,
        recv_tag: int = ANY_TAG,
    ) -> SimEvent:
        """Combined send+receive (MPI_Sendrecv) — the deadlock-free
        exchange primitive. Resolves with the received payload once
        both halves complete."""
        send_done = self.send(rank, dest, payload, send_tag)
        recv_done = self.recv(rank, source, recv_tag)
        out = SimEvent(self.engine, name=f"{self.name}.sendrecv({rank})")
        state = {"pending": 2, "payload": None}

        def part_done(value, is_recv):
            if is_recv:
                state["payload"] = value
            state["pending"] -= 1
            if state["pending"] == 0:
                out.succeed(state["payload"])

        send_done._add_waiter(lambda v: part_done(v, False))
        recv_done._add_waiter(lambda v: part_done(v, True))
        return out

    # -- collectives -----------------------------------------------------
    def barrier(self, rank: int) -> SimEvent:
        return self._collective("barrier", rank, None, lambda contrib: None)

    def bcast(self, rank: int, value: Any = None, root: int = 0) -> SimEvent:
        self._check_rank(root)

        def finalize(contrib: dict[int, Any]) -> Any:
            return contrib[root]

        return self._collective(f"bcast.{root}", rank, value, finalize)

    def gather(self, rank: int, value: Any, root: int = 0) -> SimEvent:
        self._check_rank(root)

        def finalize(contrib: dict[int, Any]) -> Any:
            return [contrib[r] for r in range(self.size)]

        # Non-root ranks receive None, matching mpi4py's convention.
        return self._collective(
            f"gather.{root}",
            rank,
            value,
            finalize,
            deliver=lambda r, result: result if r == root else None,
        )

    def scatter(self, rank: int, values: Any = None, root: int = 0) -> SimEvent:
        """Root distributes one element of ``values`` to each rank."""
        self._check_rank(root)
        if rank == root:
            if values is None or len(values) != self.size:
                raise SimulationError(
                    f"scatter root needs {self.size} values"
                )

        def finalize(contrib: dict[int, Any]) -> Any:
            return contrib[root]

        return self._collective(
            f"scatter.{root}",
            rank,
            list(values) if rank == root else None,
            finalize,
            deliver=lambda r, vals: vals[r],
        )

    def dup(self, rank: int) -> SimEvent:
        """Collective duplicate (MPI_Comm_dup): a fresh communicator
        with the same membership but isolated matching/collectives."""
        return self.split(rank, color=0, key=rank)

    def allgather(self, rank: int, value: Any) -> SimEvent:
        def finalize(contrib: dict[int, Any]) -> Any:
            return [contrib[r] for r in range(self.size)]

        return self._collective("allgather", rank, value, finalize)

    def allreduce(
        self, rank: int, value: Any, op: Callable[[Any, Any], Any] | None = None
    ) -> SimEvent:
        reducer = op if op is not None else (lambda a, b: a + b)

        def finalize(contrib: dict[int, Any]) -> Any:
            acc = contrib[0]
            for r in range(1, self.size):
                acc = reducer(acc, contrib[r])
            return acc

        return self._collective("allreduce", rank, value, finalize)

    def reduce(
        self,
        rank: int,
        value: Any,
        root: int = 0,
        op: Callable[[Any, Any], Any] | None = None,
    ) -> SimEvent:
        self._check_rank(root)
        reducer = op if op is not None else (lambda a, b: a + b)

        def finalize(contrib: dict[int, Any]) -> Any:
            acc = contrib[0]
            for r in range(1, self.size):
                acc = reducer(acc, contrib[r])
            return acc

        return self._collective(
            f"reduce.{root}",
            rank,
            value,
            finalize,
            deliver=lambda r, result: result if r == root else None,
        )

    def alltoall(self, rank: int, values: Sequence[Any]) -> SimEvent:
        if len(values) != self.size:
            raise SimulationError(
                f"alltoall needs {self.size} values, got {len(values)}"
            )

        def finalize(contrib: dict[int, Any]) -> Any:
            return contrib  # full matrix; deliver slices per rank

        return self._collective(
            "alltoall",
            rank,
            list(values),
            finalize,
            deliver=lambda r, matrix: [matrix[src][r] for src in range(self.size)],
        )

    def split(self, rank: int, color: int, key: int = 0) -> SimEvent:
        """Collective split into sub-communicators (MPI_Comm_split).

        Resolves with the new :class:`Communicator` for this rank's
        color. Ranks in the new communicator are ordered by ``key``,
        ties broken by old rank. A negative color yields ``None``
        (MPI_UNDEFINED semantics).
        """

        def finalize(contrib: dict[int, Any]) -> Any:
            groups: dict[int, list[tuple[int, int]]] = {}
            for r in range(self.size):
                c, k = contrib[r]
                if c >= 0:
                    groups.setdefault(c, []).append((k, r))
            comms: dict[int, Communicator] = {}
            for c, members in groups.items():
                members.sort()
                ranks = [self.world_ranks[r] for _, r in members]
                comms[c] = Communicator(
                    self.engine,
                    ranks,
                    self.cost,
                    name=f"{self.name}.split({c})",
                    coalesce=self._coalesce,
                )
            return comms

        # deliver closures are per-caller (each rank wraps the shared
        # round event in its own per-rank event), so capturing this
        # rank's color locally is sufficient.
        def deliver(r: int, comms: dict[int, Communicator]) -> Any:
            return comms.get(color) if color >= 0 else None

        return self._collective(
            "split", rank, (color, key), finalize, deliver=deliver
        )

    # ------------------------------------------------------------------
    def _collective(
        self,
        op: str,
        rank: int,
        value: Any,
        finalize: Callable[[dict[int, Any]], Any],
        deliver: Callable[[int, Any], Any] | None = None,
    ) -> SimEvent:
        """Join collective ``op``; the returned event resolves on release.

        Every member must call with the same ``op`` before any member is
        released. Release is scheduled ``collective_time`` after the
        last arrival, modeling the synchronizing cost.
        """
        self._check_rank(rank)
        round_ = self._rounds.get(op)
        if round_ is None:
            event = SimEvent(self.engine, name=f"{self.name}.{op}")
            round_ = _CollectiveRound(op, self.size, event, finalize)
            self._rounds[op] = round_
        if rank in round_.contributions:
            raise SimulationError(
                f"rank {rank} joined collective {op!r} twice on {self.name}"
            )
        round_.contributions[rank] = value
        round_.arrivals[rank] = self.engine.now

        if deliver is not None:
            # Wrap the shared event in a per-rank event applying deliver.
            per_rank = SimEvent(self.engine, name=f"{self.name}.{op}.r{rank}")
            if self._coalesce:
                round_.members.append((rank, per_rank, deliver))
            else:
                round_.event._add_waiter(
                    lambda result, r=rank: per_rank.succeed(deliver(r, result))
                )
            out_event = per_rank
        else:
            out_event = round_.event

        if len(round_.contributions) == round_.expected:
            self._stats["collectives"] += 1
            nbytes = max(
                payload_nbytes(v) for v in round_.contributions.values()
            )
            base_op = op.split(".")[0]
            cost = self.cost.collective_time(base_op, self.size, nbytes)
            if self._faults is not None:
                cost += self._faults.comm_delay(self.engine.now)
            del self._rounds[op]
            result = round_.finalize(round_.contributions)
            if self._coalesce:
                # One release event wakes every member in join order —
                # same (time, seq) member order as the per-rank scheme.
                self.engine.schedule(cost, lambda: round_.release(result))
            else:
                self.engine.schedule(cost, lambda: round_.event.succeed(result))
        return out_event

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise SimulationError(
                f"rank {rank} out of range for {self.name} (size {self.size})"
            )

    @property
    def stats(self) -> dict[str, int]:
        return dict(self._stats)

    def bind(self, rank: int) -> "RankView":
        """A view of this communicator bound to ``rank`` (mpi4py
        style: the rank argument disappears from every call)."""
        self._check_rank(rank)
        return RankView(self, rank)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Communicator {self.name!r} size={self.size}>"


class RankView:
    """A communicator as seen from one rank.

    Wraps every operation of :class:`Communicator` with the bound rank
    pre-applied, so process bodies read like mpi4py code::

        me = comm.bind(rank)
        yield me.barrier()
        total = yield me.allreduce(x)
    """

    __slots__ = ("comm", "rank")

    def __init__(self, comm: Communicator, rank: int) -> None:
        self.comm = comm
        self.rank = rank

    @property
    def size(self) -> int:
        return self.comm.size

    def send(self, dest: int, payload: Any, tag: int = 0) -> SimEvent:
        return self.comm.send(self.rank, dest, payload, tag)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> SimEvent:
        return self.comm.recv(self.rank, source, tag)

    def isend(self, dest: int, payload: Any, tag: int = 0) -> "Request":
        return self.comm.isend(self.rank, dest, payload, tag)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> "Request":
        return self.comm.irecv(self.rank, source, tag)

    def sendrecv(
        self,
        dest: int,
        payload: Any,
        source: int,
        send_tag: int = 0,
        recv_tag: int = ANY_TAG,
    ) -> SimEvent:
        return self.comm.sendrecv(
            self.rank, dest, payload, source, send_tag, recv_tag
        )

    def barrier(self) -> SimEvent:
        return self.comm.barrier(self.rank)

    def bcast(self, value: Any = None, root: int = 0) -> SimEvent:
        return self.comm.bcast(self.rank, value, root)

    def gather(self, value: Any, root: int = 0) -> SimEvent:
        return self.comm.gather(self.rank, value, root)

    def allgather(self, value: Any) -> SimEvent:
        return self.comm.allgather(self.rank, value)

    def allreduce(self, value: Any, op=None) -> SimEvent:
        return self.comm.allreduce(self.rank, value, op)

    def reduce(self, value: Any, root: int = 0, op=None) -> SimEvent:
        return self.comm.reduce(self.rank, value, root, op)

    def scatter(self, values: Any = None, root: int = 0) -> SimEvent:
        return self.comm.scatter(self.rank, values, root)

    def alltoall(self, values: Sequence[Any]) -> SimEvent:
        return self.comm.alltoall(self.rank, values)

    def split(self, color: int, key: int = 0) -> SimEvent:
        return self.comm.split(self.rank, color, key)

    def dup(self) -> SimEvent:
        return self.comm.dup(self.rank)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<RankView rank={self.rank} of {self.comm.name!r}>"


class MpiWorld:
    """Factory for the world communicator and its rank processes.

    Mirrors ``mpiexec -n size``: you provide a rank *main function*
    taking ``(rank, comm)`` and returning a generator; :meth:`launch`
    spawns one simulated process per rank.
    """

    def __init__(
        self,
        engine: Engine,
        size: int,
        cost: CommCostModel | None = None,
    ) -> None:
        if size <= 0:
            raise ValueError("world size must be positive")
        self.engine = engine
        self.comm = Communicator(
            engine, list(range(size)), cost if cost is not None else ZeroCost(),
            name="world",
        )

    @property
    def size(self) -> int:
        return self.comm.size

    def launch(
        self, main: Callable[[int, Communicator], Any]
    ) -> list[Process]:
        """Spawn ``main(rank, world_comm)`` as a process for every rank."""
        return [
            Process(self.engine, main(rank, self.comm), name=f"rank{rank}")
            for rank in range(self.size)
        ]

    def run(self, main: Callable[[int, Communicator], Any]) -> list[Any]:
        """Launch, run to completion, and return per-rank results."""
        procs = self.launch(main)
        self.engine.run()
        still_alive = [p.name for p in procs if p.alive]
        if still_alive:
            raise SimulationError(
                f"deadlock: ranks never finished: {still_alive}"
            )
        return [p.result for p in procs]
