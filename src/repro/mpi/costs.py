"""Communication cost models for the simulated MPI runtime.

The runtime itself only enforces *semantics* (matching, blocking,
synchronization). How long an operation takes on the wire is delegated
to a :class:`CommCostModel`, so unit tests can run with zero cost while
the Theta-like machine model supplies realistic latencies (see
:mod:`repro.cluster.interconnect` for the production model).
"""

from __future__ import annotations

import math
from typing import Protocol

__all__ = ["CommCostModel", "LogPCost", "ZeroCost"]


class CommCostModel(Protocol):
    """Times for point-to-point and collective operations."""

    def p2p_time(self, nbytes: int) -> float:
        """Wire time for one point-to-point message of ``nbytes``."""
        ...

    def collective_time(self, op: str, nranks: int, nbytes: int) -> float:
        """Time from last arrival to release for a collective."""
        ...


class ZeroCost:
    """Free communication — semantics only. Used by most unit tests."""

    def p2p_time(self, nbytes: int) -> float:
        return 0.0

    def collective_time(self, op: str, nranks: int, nbytes: int) -> float:
        return 0.0


class LogPCost:
    """Simple latency/bandwidth model with log-radix collectives.

    ``p2p_time = alpha + nbytes / beta``; collectives pay
    ``ceil(log2(n))`` rounds of that plus a per-rank software term.
    This is the classic alpha-beta (Hockney) model that captures the
    paper-relevant property: collective time grows with node count, so
    the communication *fraction* of a fixed-size step grows with scale.
    """

    def __init__(
        self,
        alpha: float = 2e-6,
        beta: float = 8e9,
        per_rank_software: float = 5e-9,
    ) -> None:
        if alpha < 0 or beta <= 0 or per_rank_software < 0:
            raise ValueError("invalid cost parameters")
        self.alpha = alpha
        self.beta = beta
        self.per_rank_software = per_rank_software

    def p2p_time(self, nbytes: int) -> float:
        return self.alpha + nbytes / self.beta

    def collective_time(self, op: str, nranks: int, nbytes: int) -> float:
        if nranks <= 1:
            return 0.0
        rounds = math.ceil(math.log2(nranks))
        # Reductions touch the payload each round; barriers are empty.
        payload = 0 if op == "barrier" else nbytes
        return rounds * self.p2p_time(payload) + nranks * self.per_rank_software
