"""Simulated MPI runtime on the discrete-event engine.

Provides communicators with mpi4py-style semantics (split, collectives,
tagged point-to-point) plus pluggable communication cost models.
"""

from repro.mpi.comm import (
    ANY_SOURCE,
    ANY_TAG,
    Communicator,
    MpiWorld,
    RankView,
    Request,
    payload_nbytes,
)
from repro.mpi.costs import CommCostModel, LogPCost, ZeroCost

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "CommCostModel",
    "Communicator",
    "LogPCost",
    "MpiWorld",
    "RankView",
    "Request",
    "ZeroCost",
    "payload_nbytes",
]
