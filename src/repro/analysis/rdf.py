"""Radial distribution functions (the paper's "Hydronium and ion RDF").

Computes g(r) between a *center* species and a *target* species,
histogram-averaged over frames, with the standard ideal-gas
normalization::

    g(r) = <n(r)> / (rho_target * V_shell(r))

The paper runs two of these: hydronium–water and ion–water, "averaged
over all molecules" (§VI-C). RDF "is compute bound but with higher
memory needs than VACF and MSD1D" (§VI-C) — the pair search over the
full cross set is what makes it so, and its pair count is the work
estimate the calibration reads.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.analysis.base import Analysis, Frame
from repro.md.system import Species

__all__ = ["RadialDistribution"]


class RadialDistribution(Analysis):
    """g(r) between ``center_type`` and ``target_type`` atoms."""

    name = "rdf"

    def __init__(
        self,
        center_type: int = Species.CAT,
        target_type: int = Species.O,
        r_max: float = 4.0,
        n_bins: int = 100,
    ) -> None:
        super().__init__()
        if r_max <= 0 or n_bins <= 0:
            raise ValueError("invalid histogram shape")
        self.center_type = center_type
        self.target_type = target_type
        self.r_max = r_max
        self.n_bins = n_bins
        self._counts = np.zeros(n_bins)
        self._norm_accum = 0.0  # per-frame ideal-gas normalization

    # ------------------------------------------------------------------
    def _process(self, frame: Frame) -> int:
        box = frame.box_lengths
        wrapped = np.mod(frame.positions, box)
        wrapped = np.minimum(wrapped, np.nextafter(box, 0.0))
        centers = wrapped[frame.types == self.center_type]
        targets = wrapped[frame.types == self.target_type]
        if len(centers) == 0 or len(targets) == 0:
            return 0
        r_search = min(self.r_max, 0.5 * float(box.min()) * 0.999)
        tree_t = cKDTree(targets, boxsize=box)
        tree_c = cKDTree(centers, boxsize=box)
        dists = tree_c.sparse_distance_matrix(
            tree_t, r_search, output_type="coo_matrix"
        )
        r = dists.data
        r = r[r > 1e-9]  # drop self-coincidences if center==target type
        hist, _ = np.histogram(r, bins=self.n_bins, range=(0.0, self.r_max))
        self._counts += hist
        volume = float(np.prod(box))
        rho_target = len(targets) / volume
        self._norm_accum += len(centers) * rho_target
        return len(centers) * len(targets)

    def result(self) -> tuple[np.ndarray, np.ndarray]:
        """Returns ``(r_centers, g_of_r)`` averaged over frames."""
        edges = np.linspace(0.0, self.r_max, self.n_bins + 1)
        r_centers = 0.5 * (edges[:-1] + edges[1:])
        shell_volumes = 4.0 / 3.0 * np.pi * (edges[1:] ** 3 - edges[:-1] ** 3)
        if self._norm_accum == 0:
            return r_centers, np.zeros(self.n_bins)
        g = self._counts / (shell_volumes * self._norm_accum)
        return r_centers, g
