"""In-situ analyses: the five LAMMPS built-ins of the paper's §VI-C.

* :class:`RadialDistribution` — hydronium/ion RDF (compute-bound);
* :class:`VelocityAutocorrelation` — VACF (low demand);
* :class:`MSD1D`, :class:`MSD2D` — spatially binned mean-squared
  displacements (low demand / memory-intensive);
* :class:`FullMSD` — MSD1D + MSD2D + final all-particle averaging (the
  high-demand workload, §VII-B1);
* :func:`make_analysis` — registry used by examples and the workload
  layer.
"""

from repro.analysis.base import Analysis, Frame, frame_from_system, molecule_centers
from repro.analysis.msd import MSD1D, MSD2D, FullMSD, MeanSquaredDisplacement
from repro.analysis.rdf import RadialDistribution
from repro.analysis.vacf import VelocityAutocorrelation

__all__ = [
    "Analysis",
    "Frame",
    "FullMSD",
    "MSD1D",
    "MSD2D",
    "MeanSquaredDisplacement",
    "RadialDistribution",
    "VelocityAutocorrelation",
    "frame_from_system",
    "make_analysis",
    "molecule_centers",
]

_REGISTRY = {
    "rdf": RadialDistribution,
    "vacf": VelocityAutocorrelation,
    "msd": MeanSquaredDisplacement,
    "msd1d": MSD1D,
    "msd2d": MSD2D,
    "full_msd": FullMSD,
}


def make_analysis(name: str, **kwargs) -> Analysis:
    """Instantiate an analysis by its registry name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown analysis {name!r}; choose from {sorted(_REGISTRY)}"
        ) from None
    return cls(**kwargs)
