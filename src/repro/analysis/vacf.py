"""Velocity auto-correlation function (VACF).

``C(t) = <v(0) · v(t)> / <v(0) · v(0)>`` averaged over all molecules
(center-of-mass velocities), with the first processed frame defining
the time origin — matching LAMMPS' ``compute vacf``. The paper
characterizes VACF as a low-demand analysis (low memory and CPU,
§VI-C): one dot product per molecule per frame.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.base import Analysis, Frame, molecule_centers
from repro.md.system import MASSES

__all__ = ["VelocityAutocorrelation"]


class VelocityAutocorrelation(Analysis):
    """Molecule-averaged VACF with the first frame as origin."""

    name = "vacf"

    def __init__(self) -> None:
        super().__init__()
        self._v0: np.ndarray | None = None
        self._v0_norm: float = 0.0
        self._series: list[tuple[float, float]] = []  # (time, C(t))

    def _process(self, frame: Frame) -> int:
        _, _, com_vel = molecule_centers(frame, MASSES[frame.types])
        if self._v0 is None:
            self._v0 = com_vel.copy()
            self._v0_norm = float(np.mean(np.sum(com_vel**2, axis=1)))
            if self._v0_norm == 0:
                raise ValueError("zero initial velocities; VACF undefined")
        if len(com_vel) != len(self._v0):
            raise ValueError("molecule count changed between frames")
        c_t = float(np.mean(np.sum(self._v0 * com_vel, axis=1)))
        self._series.append((frame.time, c_t / self._v0_norm))
        return len(com_vel)

    def result(self) -> tuple[np.ndarray, np.ndarray]:
        """Returns ``(times, C)`` with ``C[0] == 1``."""
        if not self._series:
            return np.zeros(0), np.zeros(0)
        arr = np.asarray(self._series)
        return arr[:, 0], arr[:, 1]
