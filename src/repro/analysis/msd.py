"""Mean-squared-displacement analyses: MSD, MSD1D, MSD2D, full MSD.

The paper's heaviest analyses (§VI-C):

* **MSD1D** — displacement statistics accumulated per 1-D spatial bin
  (slabs along an axis, binned by each molecule's *initial* position);
  "low memory and CPU".
* **MSD2D** — the same over a 2-D grid of bins; "mostly
  memory-intensive (less than MSD)".
* **full MSD** — MSD1D + MSD2D + a final averaging over *all*
  particles; "high CPU and memory utilization", runtime comparable to
  the simulation itself and memory-limited to ``dim = 16`` on Theta.

All displacements use unwrapped center-of-mass positions relative to
the first processed frame.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.base import Analysis, Frame, molecule_centers
from repro.md.system import MASSES
from repro.util.scatter import scatter_add

__all__ = ["FullMSD", "MeanSquaredDisplacement", "MSD1D", "MSD2D"]


class _MSDBase(Analysis):
    """Shared origin bookkeeping for the MSD family."""

    def __init__(self) -> None:
        super().__init__()
        self._origin: np.ndarray | None = None
        self._origin_box: np.ndarray | None = None

    def _displacements(self, frame: Frame) -> np.ndarray:
        """Per-molecule displacement vectors from the origin frame."""
        _, com_pos, _ = molecule_centers(frame, MASSES[frame.types])
        if self._origin is None:
            self._origin = com_pos.copy()
            self._origin_box = frame.box_lengths.copy()
        if len(com_pos) != len(self._origin):
            raise ValueError("molecule count changed between frames")
        return com_pos - self._origin


class MeanSquaredDisplacement(_MSDBase):
    """Plain molecule-averaged MSD time series."""

    name = "msd"

    def __init__(self) -> None:
        super().__init__()
        self._series: list[tuple[float, float]] = []

    def _process(self, frame: Frame) -> int:
        disp = self._displacements(frame)
        msd = float(np.mean(np.sum(disp**2, axis=1)))
        self._series.append((frame.time, msd))
        return len(disp)

    def result(self) -> tuple[np.ndarray, np.ndarray]:
        if not self._series:
            return np.zeros(0), np.zeros(0)
        arr = np.asarray(self._series)
        return arr[:, 0], arr[:, 1]


class MSD1D(_MSDBase):
    """MSD per 1-D spatial bin (slabs along ``axis``)."""

    name = "msd1d"

    def __init__(self, n_bins: int = 10, axis: int = 0) -> None:
        super().__init__()
        if n_bins <= 0 or axis not in (0, 1, 2):
            raise ValueError("invalid binning")
        self.n_bins = n_bins
        self.axis = axis
        self._bin_of_mol: np.ndarray | None = None
        self._sums = np.zeros(n_bins)
        self._counts = np.zeros(n_bins)

    def _assign_bins(self, frame: Frame) -> None:
        assert self._origin is not None
        length = self._origin_box[self.axis]
        coord = np.mod(self._origin[:, self.axis], length)
        self._bin_of_mol = np.minimum(
            (coord / length * self.n_bins).astype(int), self.n_bins - 1
        )

    def _process(self, frame: Frame) -> int:
        disp = self._displacements(frame)
        if self._bin_of_mol is None:
            self._assign_bins(frame)
        sq = np.sum(disp**2, axis=1)
        scatter_add(self._sums, self._bin_of_mol, sq)
        scatter_add(self._counts, self._bin_of_mol, 1.0)
        return len(disp)

    def result(self) -> np.ndarray:
        """Per-bin MSD averaged over molecules and frames."""
        with np.errstate(invalid="ignore", divide="ignore"):
            out = self._sums / self._counts
        return np.nan_to_num(out)


class MSD2D(_MSDBase):
    """MSD per 2-D spatial bin (grid over the two axes != ``normal``)."""

    name = "msd2d"

    def __init__(self, n_bins: int = 8, normal: int = 2) -> None:
        super().__init__()
        if n_bins <= 0 or normal not in (0, 1, 2):
            raise ValueError("invalid binning")
        self.n_bins = n_bins
        self.normal = normal
        self.axes = tuple(a for a in range(3) if a != normal)
        self._bin_of_mol: np.ndarray | None = None
        self._sums = np.zeros(n_bins * n_bins)
        self._counts = np.zeros(n_bins * n_bins)

    def _assign_bins(self, frame: Frame) -> None:
        assert self._origin is not None
        idx = []
        for a in self.axes:
            length = self._origin_box[a]
            coord = np.mod(self._origin[:, a], length)
            idx.append(
                np.minimum(
                    (coord / length * self.n_bins).astype(int),
                    self.n_bins - 1,
                )
            )
        self._bin_of_mol = idx[0] * self.n_bins + idx[1]

    def _process(self, frame: Frame) -> int:
        disp = self._displacements(frame)
        if self._bin_of_mol is None:
            self._assign_bins(frame)
        sq = np.sum(disp**2, axis=1)
        scatter_add(self._sums, self._bin_of_mol, sq)
        scatter_add(self._counts, self._bin_of_mol, 1.0)
        # 2-D binning touches a quadratically larger bin structure —
        # the memory-intensity the paper calls out.
        return len(disp) + self.n_bins * self.n_bins

    def result(self) -> np.ndarray:
        with np.errstate(invalid="ignore", divide="ignore"):
            out = self._sums / self._counts
        return np.nan_to_num(out).reshape(self.n_bins, self.n_bins)


class FullMSD(Analysis):
    """The paper's "full MSD": MSD1D + MSD2D + final all-particle
    averaging, executed in sequence at each invocation."""

    name = "full_msd"

    def __init__(self, n_bins_1d: int = 10, n_bins_2d: int = 8) -> None:
        super().__init__()
        self.msd1d = MSD1D(n_bins=n_bins_1d)
        self.msd2d = MSD2D(n_bins=n_bins_2d)
        self._avg = MeanSquaredDisplacement()
        self._per_atom_series: list[tuple[float, float]] = []
        self._atom_origin: np.ndarray | None = None

    def _process(self, frame: Frame) -> int:
        self.msd1d.update(frame)
        self.msd2d.update(frame)
        self._avg.update(frame)
        # "final averaging of all particles": a per-ATOM (not
        # per-molecule) pass over the whole frame — the high-CPU,
        # high-memory component that makes full MSD simulation-sized.
        if self._atom_origin is None:
            self._atom_origin = frame.positions.copy()
        disp = frame.positions - self._atom_origin
        per_atom = float(np.mean(np.sum(disp**2, axis=1)))
        self._per_atom_series.append((frame.time, per_atom))
        return (
            self.msd1d.work_estimate
            + self.msd2d.work_estimate
            + self._avg.work_estimate
            + 3 * frame.n_atoms
        )

    def result(self) -> dict:
        times, mol_msd = self._avg.result()
        atom_arr = (
            np.asarray(self._per_atom_series)
            if self._per_atom_series
            else np.zeros((0, 2))
        )
        return {
            "times": times,
            "molecule_msd": mol_msd,
            "atom_msd": atom_arr[:, 1] if len(atom_arr) else np.zeros(0),
            "msd1d": self.msd1d.result(),
            "msd2d": self.msd2d.result(),
        }
