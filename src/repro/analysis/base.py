"""Analysis framework: frames in, accumulated science out.

Each analysis consumes :class:`Frame` objects (one per invocation — in
the coupled workflow, one per synchronization) and accumulates results
across frames, as LAMMPS' built-in computes do. The in-situ coupler
hands analyses the frames reconstructed from the simulation partition's
snapshots; the standalone examples feed them directly from a local
engine.

``work_estimate`` reports an operation count for the frame just
processed — the calibration bridge uses it to assign the DES proxy's
per-analysis work units from *measured* behaviour of the real code.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.md.system import ParticleSystem
from repro.util.scatter import scatter_add

__all__ = ["Analysis", "Frame", "frame_from_system", "molecule_centers"]


@dataclass(frozen=True)
class Frame:
    """One analysis input: the state shipped at a synchronization."""

    step: int
    time: float
    box_lengths: np.ndarray
    positions: np.ndarray  # unwrapped (n, 3)
    velocities: np.ndarray
    types: np.ndarray
    molecule_ids: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.positions)
        if (
            self.velocities.shape != (n, 3)
            or len(self.types) != n
            or len(self.molecule_ids) != n
        ):
            raise ValueError("frame arrays must align")

    @property
    def n_atoms(self) -> int:
        return len(self.positions)


def frame_from_system(
    system: ParticleSystem, step: int, time: float
) -> Frame:
    """Build a whole-system frame (the analyses' standalone entry)."""
    return Frame(
        step=step,
        time=time,
        box_lengths=system.box.lengths.copy(),
        positions=system.unwrapped_positions(),
        velocities=system.velocities.copy(),
        types=system.types.copy(),
        molecule_ids=system.molecule_ids.copy(),
    )


def molecule_centers(
    frame: Frame, masses: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Center-of-mass position and velocity per molecule.

    Returns ``(mol_ids_unique, com_positions, com_velocities)``. The
    paper's analyses are "averaged over all molecules", so every MSD /
    VACF variant works on these centers.
    """
    mols, inverse = np.unique(frame.molecule_ids, return_inverse=True)
    m = masses[:, None]
    total_m = scatter_add(np.zeros((len(mols), 1)), inverse, m)
    com_pos = scatter_add(
        np.zeros((len(mols), 3)), inverse, m * frame.positions
    )
    com_vel = scatter_add(
        np.zeros((len(mols), 3)), inverse, m * frame.velocities
    )
    return mols, com_pos / total_m, com_vel / total_m


class Analysis(abc.ABC):
    """Base class for in-situ analyses."""

    #: short identifier used by workload profiles and reports
    name: str = "analysis"

    def __init__(self) -> None:
        self.frames_seen = 0
        self._last_work = 0

    # ------------------------------------------------------------------
    def update(self, frame: Frame) -> None:
        """Process one frame."""
        self._last_work = self._process(frame)
        self.frames_seen += 1

    @abc.abstractmethod
    def _process(self, frame: Frame) -> int:
        """Do the work; return an operation-count estimate."""

    @abc.abstractmethod
    def result(self):
        """Current accumulated result."""

    @property
    def work_estimate(self) -> int:
        """Operation count of the most recent frame."""
        return self._last_work

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} frames={self.frames_seen}>"
