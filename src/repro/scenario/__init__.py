"""Declarative scenario layer: one typed spec from CLI to cell hash.

A scenario — workload + controller + machine + faults + seeds +
repeats — has one first-class representation, :class:`ScenarioSpec`:
JSON round-trippable, schema-validated with actionable errors, and
hash-stable. Sweeps are :class:`ScenarioMatrix` expansions; named
implementations (controllers, workloads, analyses, machines) live in
decorator-populated registries (:mod:`repro.scenario.registry`);
shipped suites under ``specs/`` drive every figure/table module and
the CLI's ``run --spec`` / ``scenario`` subcommands. See DESIGN §16.
"""

# Only the registry is imported eagerly: it is stdlib-only, so
# low-level modules (repro.core.*, repro.cluster.machine, the
# workloads) can pull the decorators in without cycles. The spec /
# matrix / loader layers sit *above* those modules and are resolved
# lazily via module __getattr__ (PEP 562).
from repro.scenario.registry import (
    ControllerInfo,
    MachineInfo,
    RegistryError,
    WorkloadInfo,
    controller_names,
    get_controller,
    get_machine,
    get_workload,
    list_analyses,
    list_controllers,
    list_machines,
    list_workloads,
    paper_approaches,
    register_analysis,
    register_controller,
    register_machine,
    register_workload,
)

#: lazily-resolved name → defining submodule
_LAZY = {
    "JobParams": "spec",
    "ScenarioSpec": "spec",
    "SpecError": "spec",
    "spec_hash": "spec",
    "validate_spec": "spec",
    "ScenarioMatrix": "matrix",
    "set_field": "matrix",
    "SpecSuite": "loader",
    "load_spec_file": "loader",
    "load_suite": "loader",
    "spec_path": "loader",
    "specs_dir": "loader",
    "suite_hash": "loader",
}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(
            f"module 'repro.scenario' has no attribute {name!r}"
        )
    import importlib

    return getattr(importlib.import_module(f"repro.scenario.{module}"), name)


def __dir__():
    return sorted(set(globals()) | set(_LAZY))


__all__ = [
    "ControllerInfo",
    "JobParams",
    "MachineInfo",
    "RegistryError",
    "ScenarioMatrix",
    "ScenarioSpec",
    "SpecError",
    "SpecSuite",
    "WorkloadInfo",
    "controller_names",
    "get_controller",
    "get_machine",
    "get_workload",
    "list_analyses",
    "list_controllers",
    "list_machines",
    "list_workloads",
    "load_spec_file",
    "load_suite",
    "paper_approaches",
    "register_analysis",
    "register_controller",
    "register_machine",
    "register_workload",
    "set_field",
    "spec_hash",
    "spec_path",
    "specs_dir",
    "suite_hash",
    "validate_spec",
]
