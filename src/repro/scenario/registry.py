"""Registries: named controllers, workloads, analyses and machines.

The string→implementation maps that used to live as ``if``-chains in
``runner.build_controller`` and as ad-hoc dicts (``core.CONTROLLERS``,
the CLI's approach checks) become declarative registries populated by
decorators at class/function definition site::

    @register_controller("seesaw", paper=True)
    class SeeSAwController(PowerController): ...

    @register_workload("proxy")
    def run_job(cfg, controller, ...): ...

Each :class:`ControllerInfo` carries introspected metadata — the
keyword options the constructor actually accepts, with defaults — so
callers can validate a kwargs dict *before* construction and report
exactly which keys a controller rejects (``scenario validate`` and
:func:`repro.experiments.runner.build_controller` both use this).

This module imports nothing from the rest of the package (only the
stdlib), so any layer — core, workloads, experiments — can import the
decorators without cycles.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = [
    "ControllerInfo",
    "MachineInfo",
    "RegistryError",
    "WorkloadInfo",
    "controller_names",
    "get_controller",
    "get_machine",
    "get_workload",
    "list_analyses",
    "list_controllers",
    "list_machines",
    "list_workloads",
    "paper_approaches",
    "register_analysis",
    "register_controller",
    "register_machine",
    "register_workload",
]


class RegistryError(KeyError, ValueError):
    """Unknown registry name; the message lists the valid choices.

    Doubles as both ``KeyError`` (it is a failed lookup) and
    ``ValueError`` (what the pre-registry dispatch raised), so callers
    written against either idiom keep working.
    """

    def __str__(self) -> str:  # KeyError quotes its arg; keep prose
        return self.args[0]


#: constructor parameters shared by every controller — positional shape
#: arguments, not per-controller options
_CORE_PARAMS = ("self", "budget_w", "n_sim", "n_ana", "node")


@dataclass(frozen=True)
class ControllerInfo:
    """One registered power-allocation strategy."""

    name: str
    cls: type
    #: one-line description (first docstring line)
    description: str
    #: keyword options the constructor accepts, with their defaults
    options: dict[str, Any] = field(default_factory=dict)
    #: 1-based position in the paper's evaluated approach ordering
    #: (0 = an extension outside the paper's four approaches)
    paper: int = 0

    def rejected_kwargs(self, kwargs: dict) -> list[str]:
        """Keys of ``kwargs`` this controller's constructor rejects."""
        return sorted(k for k in kwargs if k not in self.options)

    def check_kwargs(self, kwargs: dict) -> None:
        """Raise ``TypeError`` naming every rejected kwarg.

        This is the first line of defense the ISSUE's satellite asks
        for: instead of a bare ``TypeError: __init__() got an
        unexpected keyword argument`` from deep inside the
        constructor, the caller learns *which* keys were rejected and
        what the controller does accept.
        """
        bad = self.rejected_kwargs(kwargs)
        if bad:
            accepted = ", ".join(sorted(self.options)) or "(none)"
            raise TypeError(
                f"controller {self.name!r} rejected option(s) "
                f"{', '.join(repr(k) for k in bad)}; it accepts: {accepted}"
            )


@dataclass(frozen=True)
class WorkloadInfo:
    """One registered workload entry point."""

    name: str
    fn: Callable
    description: str


@dataclass(frozen=True)
class MachineInfo:
    """One registered machine factory (fresh spec per call)."""

    name: str
    factory: Callable
    description: str


_CONTROLLERS: dict[str, ControllerInfo] = {}
_WORKLOADS: dict[str, WorkloadInfo] = {}
_ANALYSES: dict[str, str] = {}
_MACHINES: dict[str, MachineInfo] = {}


def _first_doc_line(obj) -> str:
    doc = inspect.getdoc(obj) or ""
    for line in doc.splitlines():
        if line.strip():
            return line.strip()
    return ""


def _introspect_options(cls: type) -> dict[str, Any]:
    """Keyword options (name → default) of a controller constructor,
    excluding the shared positional shape arguments."""
    options: dict[str, Any] = {}
    for p in inspect.signature(cls.__init__).parameters.values():
        if p.name in _CORE_PARAMS or p.kind in (
            inspect.Parameter.VAR_POSITIONAL,
            inspect.Parameter.VAR_KEYWORD,
        ):
            continue
        options[p.name] = p.default
    return options


# ------------------------------------------------------------- decorators
def register_controller(name: str, *, paper: int = 0):
    """Class decorator: register a :class:`PowerController` subclass."""

    def deco(cls: type) -> type:
        _CONTROLLERS[name] = ControllerInfo(
            name=name,
            cls=cls,
            description=_first_doc_line(cls),
            options=_introspect_options(cls),
            paper=paper,
        )
        return cls

    return deco


def register_workload(name: str):
    """Function decorator: register a workload entry point."""

    def deco(fn: Callable) -> Callable:
        _WORKLOADS[name] = WorkloadInfo(
            name=name, fn=fn, description=_first_doc_line(fn)
        )
        return fn

    return deco


def register_analysis(name: str, description: str = "") -> None:
    """Register an analysis workload name (base kernel or composite)."""
    _ANALYSES[name] = description


def register_machine(name: str):
    """Function decorator: register a machine-spec factory."""

    def deco(factory: Callable) -> Callable:
        _MACHINES[name] = MachineInfo(
            name=name, factory=factory, description=_first_doc_line(factory)
        )
        return factory

    return deco


# ---------------------------------------------------------------- lookups
def _ensure_populated() -> None:
    """Import the modules whose definitions self-register.

    Registration happens at class/function definition site; a caller
    that only imported :mod:`repro.scenario` must still see the
    built-ins, so look-ups lazily import the defining modules (cheap
    after the first time — they sit in ``sys.modules``).
    """
    import repro.core  # noqa: F401  (controllers register on import)
    import repro.insitu.coupler  # noqa: F401  (the DES-backed workload)
    import repro.workloads  # noqa: F401  (workloads + analyses + machines)


def get_controller(name: str) -> ControllerInfo:
    _ensure_populated()
    try:
        return _CONTROLLERS[name]
    except KeyError:
        raise RegistryError(
            f"unknown approach {name!r}; choose from "
            f"{', '.join(sorted(_CONTROLLERS))}"
        ) from None


def list_controllers() -> dict[str, ControllerInfo]:
    _ensure_populated()
    return dict(_CONTROLLERS)


def controller_names() -> tuple[str, ...]:
    """Every registered approach name (registration order)."""
    _ensure_populated()
    return tuple(_CONTROLLERS)


def paper_approaches() -> tuple[str, ...]:
    """The paper's evaluated approaches, in the paper's ordering."""
    _ensure_populated()
    ranked = sorted(
        (i.paper, n) for n, i in _CONTROLLERS.items() if i.paper
    )
    return tuple(n for _, n in ranked)


def get_workload(name: str) -> WorkloadInfo:
    _ensure_populated()
    try:
        return _WORKLOADS[name]
    except KeyError:
        raise RegistryError(
            f"unknown workload {name!r}; choose from "
            f"{', '.join(sorted(_WORKLOADS))}"
        ) from None


def list_workloads() -> dict[str, WorkloadInfo]:
    _ensure_populated()
    return dict(_WORKLOADS)


def list_analyses() -> dict[str, str]:
    _ensure_populated()
    return dict(_ANALYSES)


def get_machine(name: str) -> MachineInfo:
    _ensure_populated()
    try:
        return _MACHINES[name]
    except KeyError:
        raise RegistryError(
            f"unknown machine {name!r}; choose from "
            f"{', '.join(sorted(_MACHINES))}"
        ) from None


def list_machines() -> dict[str, MachineInfo]:
    _ensure_populated()
    return dict(_MACHINES)
