"""The typed scenario spec: one declarative description of a run.

A :class:`ScenarioSpec` names everything the paper's measurement
protocol varies — workload parameters (the :class:`~repro.workloads
.JobConfig` fields), the approach and its controller options, the
machine envelope, an optional fault plan, seeds and repeat counts —
in a JSON-serializable, hash-stable form. Every figure/table module
ships its runs as spec files under ``specs/``; the CLI runs arbitrary
spec files with ``run --spec``; campaigns derive their
:class:`~repro.campaign.cells.CellSpec` cache keys from specs.

Three properties are load-bearing:

* **round-trip stability** — ``from_json(to_json(s)) == s`` and the
  serialized form is byte-stable (field order fixed, all fields
  explicit), so specs diff cleanly and hash drift is detectable;
* **hash compatibility** — :func:`to_cells` derives exactly the
  ``CellSpec`` objects the pre-scenario harnesses built, so campaign
  cache keys survive the refactor (pinned by
  ``tests/scenario/test_hash_compat.py``);
* **actionable validation** — :func:`validate_spec` reports every
  problem with its field path and the valid choices, including which
  controller options the chosen approach rejects.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields, replace
from pathlib import Path

from repro.scenario import registry

__all__ = [
    "JobParams",
    "ScenarioSpec",
    "SpecError",
    "spec_hash",
    "validate_spec",
]


class SpecError(ValueError):
    """A spec document failed to parse or validate; message says where."""


@dataclass(frozen=True)
class JobParams:
    """The workload half of a scenario: ``JobConfig`` by value.

    Mirrors :class:`repro.workloads.JobConfig` field-for-field with two
    JSON-friendly substitutions: ``cap_mode`` is the enum's string
    value and ``machine`` is a registry name (``theta`` /
    ``xeon-cluster``) resolved to a fresh ``MachineSpec`` at build
    time. Noise stays at the machine's defaults — custom noise models
    are a Python-API concern, not a scenario knob.
    """

    analyses: tuple[str, ...] = ("full_msd",)
    dim: int = 16
    n_nodes: int = 128
    j: int = 1
    n_verlet_steps: int = 400
    budget_per_node_w: float = 110.0
    cap_mode: str = "long"
    seed: int = 0
    #: per-analysis invocation interval in synchronizations (Table II)
    analysis_intervals: dict = field(default_factory=dict)
    machine: str = "theta"
    collect_traces: bool = False

    def to_job_config(self):
        """Build the concrete :class:`~repro.workloads.JobConfig`."""
        from repro.power.rapl import CapMode
        from repro.workloads import JobConfig

        machine = registry.get_machine(self.machine).factory()
        return JobConfig(
            analyses=tuple(self.analyses),
            dim=self.dim,
            n_nodes=self.n_nodes,
            j=self.j,
            n_verlet_steps=self.n_verlet_steps,
            budget_per_node_w=self.budget_per_node_w,
            cap_mode=CapMode(self.cap_mode),
            seed=self.seed,
            analysis_intervals=dict(self.analysis_intervals),
            machine=machine,
            collect_traces=self.collect_traces,
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative scenario: workload × approach × measurement.

    ``baseline_sim_share`` switches the scenario's *measurement*: when
    ``None`` the scenario is ``repeats`` plain managed runs (the
    metric is each run's total time); when set, every run is paired
    with a static baseline at that share inside the same job — the
    paper's §VII-A protocol — and the metric is the median percentage
    improvement over ``repeats`` pairs.
    """

    name: str
    approach: str = "seesaw"
    workload: str = "proxy"
    job: JobParams = field(default_factory=JobParams)
    #: controller options forwarded to the approach's constructor
    #: (validated against the registry's accepted-option metadata)
    controller: dict = field(default_factory=dict)
    #: static pairing share for improvement scenarios (None = plain run)
    baseline_sim_share: float | None = None
    #: runs per data point (median-of-N for paired scenarios)
    repeats: int = 1
    #: run index of a single plain run (pairing always uses 0..N-1)
    run_index: int = 0
    #: fault plan reference: a plan JSON path or the compact DSL
    faults: str | None = None
    #: seed for a sampled fault plan (mutually exclusive with faults)
    chaos_seed: int | None = None
    #: InsituConfig overrides for DES-backed scenarios (workload insitu)
    insitu: dict = field(default_factory=dict)
    #: renderer annotations (labels, panel ids, seed offsets, ...);
    #: carried verbatim, never interpreted by the scenario layer
    extras: dict = field(default_factory=dict)

    # ------------------------------------------------------- evolution
    def with_job(self, **kw) -> "ScenarioSpec":
        """Copy with ``job`` fields replaced (sweep/override hook)."""
        return replace(self, job=replace(self.job, **kw))

    def with_controller(self, **kw) -> "ScenarioSpec":
        """Copy with controller options merged in."""
        return replace(self, controller={**self.controller, **kw})

    # ----------------------------------------------------- serialization
    def to_json(self) -> dict:
        """Plain-data form: every field explicit, order fixed."""
        doc: dict = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "job":
                value = {
                    jf.name: _plain(getattr(value, jf.name))
                    for jf in fields(JobParams)
                }
            else:
                value = _plain(value)
            doc[f.name] = value
        return doc

    def dumps(self) -> str:
        """The byte-stable serialized form (what ``specs/`` ships)."""
        return json.dumps(self.to_json(), indent=2) + "\n"

    @classmethod
    def from_json(cls, doc: dict, where: str = "scenario") -> "ScenarioSpec":
        """Parse and type-check a plain-data document.

        Unknown keys are rejected (typos must not silently become
        defaults); missing keys take the field defaults, except
        ``name`` which is required.
        """
        if not isinstance(doc, dict):
            raise SpecError(f"{where}: expected an object, got {type(doc).__name__}")
        data = dict(doc)
        if "name" not in data:
            raise SpecError(f"{where}: missing required key 'name'")
        job_doc = data.pop("job", {})
        if not isinstance(job_doc, dict):
            raise SpecError(f"{where}.job: expected an object")
        known_job = {f.name for f in fields(JobParams)}
        bad = sorted(set(job_doc) - known_job)
        if bad:
            raise SpecError(
                f"{where}.job: unknown key(s) {', '.join(bad)}; "
                f"valid keys: {', '.join(sorted(known_job))}"
            )
        job_kwargs = dict(job_doc)
        if "analyses" in job_kwargs:
            job_kwargs["analyses"] = _as_str_tuple(
                job_kwargs["analyses"], f"{where}.job.analyses"
            )
        known = {f.name for f in fields(cls)} - {"job"}
        bad = sorted(set(data) - known)
        if bad:
            raise SpecError(
                f"{where}: unknown key(s) {', '.join(bad)}; "
                f"valid keys: {', '.join(sorted(known | {'job'}))}"
            )
        try:
            job = JobParams(**job_kwargs)
            spec = cls(job=job, **data)
        except TypeError as exc:
            raise SpecError(f"{where}: {exc}") from None
        spec._typecheck(where)
        return spec

    def _typecheck(self, where: str) -> None:
        checks = [
            ("name", self.name, str),
            ("approach", self.approach, str),
            ("workload", self.workload, str),
            ("repeats", self.repeats, int),
            ("run_index", self.run_index, int),
            ("controller", self.controller, dict),
            ("insitu", self.insitu, dict),
            ("extras", self.extras, dict),
            ("job.dim", self.job.dim, int),
            ("job.n_nodes", self.job.n_nodes, int),
            ("job.j", self.job.j, int),
            ("job.n_verlet_steps", self.job.n_verlet_steps, int),
            ("job.budget_per_node_w", self.job.budget_per_node_w, (int, float)),
            ("job.cap_mode", self.job.cap_mode, str),
            ("job.seed", self.job.seed, int),
            ("job.analysis_intervals", self.job.analysis_intervals, dict),
            ("job.machine", self.job.machine, str),
            ("job.collect_traces", self.job.collect_traces, bool),
        ]
        for key, value, types in checks:
            if isinstance(value, bool) and types in (int, (int, float)):
                raise SpecError(f"{where}.{key}: expected a number, got a bool")
            if not isinstance(value, types):
                want = (
                    types.__name__
                    if isinstance(types, type)
                    else "/".join(t.__name__ for t in types)
                )
                raise SpecError(
                    f"{where}.{key}: expected {want}, "
                    f"got {type(value).__name__}"
                )
        if self.baseline_sim_share is not None and (
            isinstance(self.baseline_sim_share, bool)
            or not isinstance(self.baseline_sim_share, (int, float))
        ):
            raise SpecError(
                f"{where}.baseline_sim_share: expected a number or null"
            )

    # ---------------------------------------------------------- derivation
    def to_cells(self):
        """The campaign cells this scenario expands to — exactly the
        ``CellSpec`` objects the pre-scenario harnesses built, so cache
        keys are unchanged (paired scenarios interleave managed and
        baseline cells the way ``runner.median_improvement`` does)."""
        from repro.campaign.cells import CellSpec

        cfg = self.job.to_job_config()
        kwargs = dict(self.controller)
        if self.baseline_sim_share is None:
            start = self.run_index
            return [
                CellSpec(self.approach, cfg, start + i, dict(kwargs))
                for i in range(self.repeats)
            ]
        cells = []
        for i in range(self.repeats):
            cells.append(CellSpec(self.approach, cfg, i, dict(kwargs)))
            cells.append(
                CellSpec(
                    "static", cfg, i, {"sim_share": self.baseline_sim_share}
                )
            )
        return cells


def _plain(value):
    """Recursively convert to JSON-native data (tuples → lists)."""
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, Path):
        return str(value)
    return value


def _as_str_tuple(value, where: str) -> tuple[str, ...]:
    if isinstance(value, str):
        raise SpecError(f"{where}: expected a list of names, got a string")
    try:
        items = tuple(value)
    except TypeError:
        raise SpecError(f"{where}: expected a list of names") from None
    if not all(isinstance(v, str) for v in items):
        raise SpecError(f"{where}: every analysis name must be a string")
    return items


def spec_hash(spec: ScenarioSpec) -> str:
    """Stable content hash of a scenario (code-version independent)."""
    from repro.campaign.hashing import stable_hash

    return stable_hash(spec)


def validate_spec(spec: ScenarioSpec, where: str | None = None) -> list[str]:
    """Every problem with ``spec``, as actionable messages.

    Checks registry membership (approach, workload, machine, analysis
    names), controller options against the approach's accepted-option
    metadata, measurement-protocol fields, and finally attempts the
    concrete ``JobConfig`` construction so infeasible parameter
    combinations (budget below the RAPL floor, odd node counts, bad
    ``j``) surface here rather than mid-campaign.
    """
    where = where or spec.name or "scenario"
    problems: list[str] = []

    try:
        info = registry.get_controller(spec.approach)
    except registry.RegistryError as exc:
        problems.append(f"{where}.approach: {exc}")
        info = None
    if info is not None:
        try:
            info.check_kwargs(spec.controller)
        except TypeError as exc:
            problems.append(f"{where}.controller: {exc}")

    try:
        registry.get_workload(spec.workload)
    except registry.RegistryError as exc:
        problems.append(f"{where}.workload: {exc}")

    try:
        registry.get_machine(spec.job.machine)
    except registry.RegistryError as exc:
        problems.append(f"{where}.job.machine: {exc}")

    known_analyses = registry.list_analyses()
    for name in spec.job.analyses:
        if name not in known_analyses:
            problems.append(
                f"{where}.job.analyses: unknown analysis {name!r}; "
                f"choose from {', '.join(sorted(known_analyses))}"
            )
    for name in spec.job.analysis_intervals:
        if name not in known_analyses:
            problems.append(
                f"{where}.job.analysis_intervals: unknown analysis {name!r}"
            )

    from repro.power.rapl import CapMode

    valid_modes = [m.value for m in CapMode]
    if spec.job.cap_mode not in valid_modes:
        problems.append(
            f"{where}.job.cap_mode: unknown mode {spec.job.cap_mode!r}; "
            f"choose from {', '.join(valid_modes)}"
        )

    if spec.repeats < 1:
        problems.append(f"{where}.repeats: must be >= 1")
    if spec.run_index < 0:
        problems.append(f"{where}.run_index: must be >= 0")
    if spec.baseline_sim_share is not None and not (
        0.0 < spec.baseline_sim_share < 1.0
    ):
        problems.append(
            f"{where}.baseline_sim_share: must lie in (0, 1), "
            f"got {spec.baseline_sim_share}"
        )
    if spec.faults is not None and spec.chaos_seed is not None:
        problems.append(
            f"{where}: faults and chaos_seed are mutually exclusive"
        )
    if spec.faults is not None:
        from repro.faults import FaultPlan

        try:
            FaultPlan.from_spec(spec.faults)
        except (ValueError, OSError) as exc:
            problems.append(f"{where}.faults: {exc}")

    if spec.insitu:
        from repro.insitu.coupler import InsituConfig

        known_insitu = {f.name for f in fields(InsituConfig)}
        bad = sorted(set(spec.insitu) - known_insitu)
        if bad:
            problems.append(
                f"{where}.insitu: unknown key(s) {', '.join(bad)}; "
                f"valid keys: {', '.join(sorted(known_insitu))}"
            )

    # the concrete construction is the last word on feasibility
    if not problems:
        try:
            spec.job.to_job_config()
        except ValueError as exc:
            problems.append(f"{where}.job: {exc}")
    return problems
