"""Loading shipped and user spec files.

A spec file is JSON in one of three shapes:

* a single scenario object (has a ``name`` key);
* a suite: ``{"suite": "fig4", "scenarios": [<scenario>, ...]}``;
* a sweep: ``{"suite": "fig8", "matrix": {"base": ..., "axes": ...}}``.

The repository ships one file per figure/table under ``specs/``
(located next to ``pyproject.toml``; override with
``SEESAW_SPECS_DIR``). ``specs/HASHES.json`` pins every file's content
hash — the CI drift check and ``scenario hash --check`` both compare
against it, so editing a spec without re-pinning fails loudly.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.scenario.matrix import ScenarioMatrix
from repro.scenario.spec import ScenarioSpec, SpecError, spec_hash

__all__ = [
    "SpecSuite",
    "load_spec_file",
    "load_suite",
    "spec_path",
    "specs_dir",
    "suite_hash",
]

#: environment override for the shipped-specs directory
SPECS_DIR_ENV = "SEESAW_SPECS_DIR"


def specs_dir() -> Path:
    """The shipped ``specs/`` directory.

    Resolution order: ``$SEESAW_SPECS_DIR``, the repository root
    (two levels above the installed ``repro`` package — the src
    layout), then ``./specs`` relative to the working directory.
    """
    override = os.environ.get(SPECS_DIR_ENV)
    if override:
        return Path(override)
    import repro

    repo_root = Path(repro.__file__).resolve().parents[2]
    candidate = repo_root / "specs"
    if candidate.is_dir():
        return candidate
    return Path("specs")


def spec_path(name: str) -> Path:
    """Path of a shipped suite file (``fig4`` → ``specs/fig4.json``)."""
    return specs_dir() / f"{name}.json"


@dataclass(frozen=True)
class SpecSuite:
    """One loaded spec file: its concrete scenarios, in file order."""

    name: str
    path: Path | None
    specs: tuple[ScenarioSpec, ...]
    #: the un-expanded sweep, when the file declared one
    matrix: ScenarioMatrix | None = None

    def __iter__(self):
        return iter(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def get(self, name: str) -> ScenarioSpec:
        """Scenario by exact name (or name suffix after the suite)."""
        for s in self.specs:
            if s.name == name or s.name == f"{self.name}/{name}":
                return s
        raise KeyError(
            f"suite {self.name!r} has no scenario {name!r}; "
            f"contains: {', '.join(s.name for s in self.specs)}"
        )


def load_spec_file(path: Path | str) -> SpecSuite:
    """Parse one spec file into a :class:`SpecSuite` (strict)."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise SpecError(f"{path}: cannot read spec file ({exc})") from None
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SpecError(f"{path}: not valid JSON ({exc})") from None

    where = str(path)
    if not isinstance(doc, dict):
        raise SpecError(f"{where}: top level must be an object")

    if "name" in doc and "suite" not in doc:
        spec = ScenarioSpec.from_json(doc, where=where)
        return SpecSuite(name=spec.name, path=path, specs=(spec,))

    suite_name = doc.get("suite")
    if not isinstance(suite_name, str) or not suite_name:
        raise SpecError(
            f"{where}: expected a 'suite' name (or a single scenario "
            "object with a 'name' key)"
        )
    bad = sorted(set(doc) - {"suite", "scenarios", "matrix"})
    if bad:
        raise SpecError(
            f"{where}: unknown key(s) {', '.join(bad)}; "
            "valid keys: matrix, scenarios, suite"
        )
    if ("scenarios" in doc) == ("matrix" in doc):
        raise SpecError(
            f"{where}: a suite needs exactly one of 'scenarios' or 'matrix'"
        )

    if "matrix" in doc:
        matrix = ScenarioMatrix.from_json(
            doc["matrix"], where=f"{where}.matrix"
        )
        return SpecSuite(
            name=suite_name,
            path=path,
            specs=tuple(matrix.expand()),
            matrix=matrix,
        )

    raw = doc["scenarios"]
    if not isinstance(raw, list) or not raw:
        raise SpecError(f"{where}.scenarios: expected a non-empty list")
    specs = tuple(
        ScenarioSpec.from_json(s, where=f"{where}.scenarios[{i}]")
        for i, s in enumerate(raw)
    )
    names = [s.name for s in specs]
    dupes = sorted({n for n in names if names.count(n) > 1})
    if dupes:
        raise SpecError(
            f"{where}: duplicate scenario name(s): {', '.join(dupes)}"
        )
    return SpecSuite(name=suite_name, path=path, specs=specs)


def load_suite(name: str) -> SpecSuite:
    """Load a shipped suite by name (``fig4``, ``table2``, …)."""
    return load_spec_file(spec_path(name))


def suite_hash(suite: SpecSuite) -> str:
    """Content hash of a suite: over its expanded scenario hashes.

    Hashing the *expanded* scenarios (not the raw file bytes) means
    formatting-only edits don't drift the pin, while any change that
    alters what would actually run does.
    """
    from repro.campaign.hashing import stable_hash

    return stable_hash([suite.name, [spec_hash(s) for s in suite.specs]])
