"""Parameter-sweep expansion: one base spec × axes → concrete specs.

A :class:`ScenarioMatrix` is the declarative form of the experiment
sweeps the figures hand-coded as nested loops: a base
:class:`~repro.scenario.spec.ScenarioSpec` plus named axes, each a
dotted field path (``job.budget_per_node_w``, ``controller.window``,
``repeats`` …) with the values to sweep. :meth:`expand` takes the
cartesian product in axis-declaration order — the *first* axis is the
outermost loop, matching how the in-code sweeps iterate — and derives
one concrete, uniquely-named spec per combination.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, fields, replace

from repro.scenario.spec import JobParams, ScenarioSpec, SpecError

__all__ = ["ScenarioMatrix", "set_field"]


def set_field(spec: ScenarioSpec, path: str, value) -> ScenarioSpec:
    """Copy of ``spec`` with the dotted ``path`` set to ``value``.

    Supported roots: any top-level spec field, ``job.<field>``, and
    one-level keys inside the ``controller`` / ``insitu`` / ``extras``
    mappings.
    """
    head, _, rest = path.partition(".")
    if head == "job":
        if rest not in {f.name for f in fields(JobParams)}:
            raise SpecError(f"matrix axis {path!r}: no such job field")
        if rest == "analyses":
            value = tuple(value)
        return spec.with_job(**{rest: value})
    if head in ("controller", "insitu", "extras"):
        if not rest:
            raise SpecError(f"matrix axis {path!r}: needs a key, e.g. {head}.window")
        mapping = {**getattr(spec, head), rest: value}
        return replace(spec, **{head: mapping})
    if rest:
        raise SpecError(f"matrix axis {path!r}: unknown nested root {head!r}")
    if head not in {f.name for f in fields(ScenarioSpec)}:
        raise SpecError(f"matrix axis {path!r}: no such scenario field")
    return replace(spec, **{head: value})


def _axis_label(path: str, value) -> str:
    """Short ``key=value`` tag for expanded spec names."""
    key = path.rsplit(".", 1)[-1]
    if isinstance(value, float) and value == int(value):
        value = int(value)
    if isinstance(value, (list, tuple)):
        value = "+".join(str(v) for v in value)
    return f"{key}={value}"


@dataclass(frozen=True)
class ScenarioMatrix:
    """A sweep: base spec × named axes (dotted path → values)."""

    base: ScenarioSpec
    #: insertion order defines loop nesting (first axis outermost)
    axes: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        for path, values in self.axes.items():
            if not isinstance(values, (list, tuple)) or not values:
                raise SpecError(
                    f"matrix axis {path!r}: expected a non-empty list of values"
                )

    def __len__(self) -> int:
        n = 1
        for values in self.axes.values():
            n *= len(values)
        return n

    def expand(self) -> list[ScenarioSpec]:
        """All concrete specs, cartesian product in axis order."""
        if not self.axes:
            return [self.base]
        paths = list(self.axes)
        out = []
        for combo in itertools.product(*(self.axes[p] for p in paths)):
            spec = self.base
            for path, value in zip(paths, combo):
                spec = set_field(spec, path, value)
            tags = "/".join(
                _axis_label(p, v) for p, v in zip(paths, combo)
            )
            out.append(replace(spec, name=f"{self.base.name}/{tags}"))
        return out

    # ----------------------------------------------------- serialization
    def to_json(self) -> dict:
        return {
            "base": self.base.to_json(),
            "axes": {p: list(vs) for p, vs in self.axes.items()},
        }

    @classmethod
    def from_json(cls, doc: dict, where: str = "matrix") -> "ScenarioMatrix":
        if not isinstance(doc, dict):
            raise SpecError(f"{where}: expected an object")
        bad = sorted(set(doc) - {"base", "axes"})
        if bad:
            raise SpecError(
                f"{where}: unknown key(s) {', '.join(bad)}; "
                "valid keys: axes, base"
            )
        if "base" not in doc:
            raise SpecError(f"{where}: missing required key 'base'")
        base = ScenarioSpec.from_json(doc["base"], where=f"{where}.base")
        axes = doc.get("axes", {})
        if not isinstance(axes, dict):
            raise SpecError(f"{where}.axes: expected an object")
        matrix = cls(base=base, axes=dict(axes))
        # fail fast on bad paths, not at expand time
        for path in matrix.axes:
            set_field(base, path, matrix.axes[path][0])
        return matrix
