"""Fast scatter-add kernels built on :func:`numpy.bincount`.

``np.add.at`` is the obvious way to accumulate per-pair force
contributions (or per-bin statistics) into per-atom (per-bin) arrays,
but its unbuffered fancy-indexing loop is roughly an order of magnitude
slower than ``np.bincount`` for the shapes the MD force loop and the
binned analyses produce (hundreds of thousands of int64 indices into a
few thousand slots). Profiling the in-situ coupler put ``ufunc.at`` at
~20% of host wall time, all of it replaceable.

Bit-reproducibility note: both ``np.add.at`` and ``np.bincount``
traverse the *input* array sequentially and accumulate into the output
slot in encounter order, so per-slot partial sums associate
identically. :func:`scatter_add` therefore returns bit-identical
results to a fresh ``np.add.at`` pass, and :func:`scatter_add_pairs`
reproduces the exact two-pass ``add.at(f, i, w); add.at(f, j, -w)``
chain by concatenating the index blocks in the same order. The
micro-benchmarks in ``benchmarks/test_substrate_micro.py`` pin both
equivalence and the speedup.
"""

from __future__ import annotations

import numpy as np

__all__ = ["scatter_add", "scatter_add_pairs"]


def scatter_add(
    target: np.ndarray, idx: np.ndarray, values: np.ndarray | float
) -> np.ndarray:
    """``target[idx] += values`` via bincount; returns ``target``.

    ``target`` may be 1-D ``(n,)`` or 2-D ``(n, k)``; ``values`` must
    broadcast to ``idx`` (1-D case) or be ``(len(idx), k)`` (2-D case).
    """
    n = target.shape[0]
    if target.ndim == 1:
        values = np.broadcast_to(np.asarray(values, dtype=float), idx.shape)
        target += np.bincount(idx, weights=values, minlength=n)
        return target
    values = np.asarray(values)
    for k in range(target.shape[1]):
        target[:, k] += np.bincount(
            idx, weights=values[:, k], minlength=n
        )
    return target


def scatter_add_pairs(
    n: int, i: np.ndarray, j: np.ndarray, vectors: np.ndarray
) -> np.ndarray:
    """Newton's-third-law accumulation: ``out[i] += v; out[j] -= v``.

    Returns a fresh ``(n, d)`` array bit-identical to the classic ::

        out = np.zeros((n, d))
        np.add.at(out, i, vectors)
        np.add.at(out, j, -vectors)

    (the concatenated traversal visits every contribution in the same
    order the two ``add.at`` passes would).
    """
    out = np.empty((n, vectors.shape[1]))
    idx = np.concatenate([i, j])
    for k in range(vectors.shape[1]):
        w = np.concatenate([vectors[:, k], -vectors[:, k]])
        out[:, k] = np.bincount(idx, weights=w, minlength=n)
    return out
