"""Statistics helpers shared by the controllers and the experiment harness.

The paper reports medians of repeated runs, percentage improvements over
a static baseline, and run-to-run / job-to-job variability percentages
(Table I). The exact definitions used throughout this code base live
here so every table and figure is computed the same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "RunningMean",
    "ewma",
    "median",
    "percent_change",
    "percent_improvement",
    "quantiles",
    "summarize",
    "variability_pct",
]


def median(values: Iterable[float]) -> float:
    """Median of a sequence (the paper's ``median of 3 runs``)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("median of empty sequence")
    return float(np.median(arr))


def percent_change(new: float, old: float, name: str | None = None) -> float:
    """Signed percent change from ``old`` to ``new``.

    Positive means ``new`` is larger. ``old`` must be nonzero; the
    error otherwise names the offending metric when ``name`` is given,
    so a failed comparison in a table of many metrics is attributable.
    """
    if old == 0:
        what = f"metric {name!r}" if name else "percent change"
        raise ValueError(f"{what}: change against zero reference")
    return 100.0 * (new - old) / old


def quantiles(values: Iterable[float], qs: Sequence[float]) -> list[float]:
    """Exact sample quantiles (linear interpolation, numpy convention).

    The shared definition used by :class:`repro.metrics.MetricsReport`
    and the tests that pin the streaming histogram's resolution against
    the exact answer.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("quantiles of empty sequence")
    for q in qs:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
    return [float(v) for v in np.quantile(arr, list(qs))]


def percent_improvement(managed_runtime: float, baseline_runtime: float) -> float:
    """Runtime improvement of a managed run over the static baseline.

    Matches the paper's convention: positive numbers are speedups
    (managed finished *faster* than the baseline), negative numbers are
    slowdowns. A 25 % *slowdown* therefore reads as ``-25``.
    """
    if baseline_runtime <= 0:
        raise ValueError("baseline runtime must be positive")
    return 100.0 * (baseline_runtime - managed_runtime) / baseline_runtime


def variability_pct(values: Sequence[float]) -> float:
    """Variability percentage as used in Table I.

    Defined as the half-spread of the observations around their median:
    ``100 * (max - min) / (2 * median)``. This matches the intuitive
    reading of "runs vary by X %" for small samples (the paper uses 7
    runs) and degrades gracefully to 0 for identical runs.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("variability of empty sequence")
    if arr.size == 1:
        return 0.0  # a single run cannot vary against itself
    med = float(np.median(arr))
    if med == 0:
        raise ValueError("variability undefined around zero median")
    return 100.0 * float(arr.max() - arr.min()) / (2.0 * med)


def ewma(previous: float, observation: float, weight: float) -> float:
    """Exponentially weighted moving average step.

    ``weight`` is the mass placed on the *new* observation:
    ``weight * observation + (1 - weight) * previous``. SeeSAw derives
    this weight from Eq. 3 of the paper.
    """
    if not 0.0 <= weight <= 1.0:
        raise ValueError(f"EWMA weight must be in [0, 1], got {weight}")
    return weight * observation + (1.0 - weight) * previous


@dataclass
class Summary:
    """Five-number-ish summary used by the report renderer."""

    n: int
    mean: float
    median: float
    minimum: float
    maximum: float
    std: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.n} mean={self.mean:.4g} median={self.median:.4g} "
            f"min={self.minimum:.4g} max={self.maximum:.4g} std={self.std:.4g}"
        )


def summarize(values: Iterable[float]) -> Summary:
    """Summary statistics over a sequence of observations."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("summarize of empty sequence")
    return Summary(
        n=int(arr.size),
        mean=float(arr.mean()),
        median=float(np.median(arr)),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
    )


class RunningMean:
    """Numerically stable streaming mean (Welford) with a reset.

    Used by the measurement window: SeeSAw averages time and power over
    the last ``w`` synchronizations, then starts a fresh window.
    """

    __slots__ = ("_count", "_mean")

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0

    def add(self, value: float) -> None:
        self._count += 1
        self._mean += (value - self._mean) / self._count

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        if self._count == 0:
            raise ValueError("mean of empty window")
        return self._mean

    def reset(self) -> None:
        self._count = 0
        self._mean = 0.0
