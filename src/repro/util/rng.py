"""Deterministic, hierarchical random-number streams.

Every stochastic component in the reproduction (OS noise, power-sensor
noise, per-job node allocation factors, MD initial velocities, ...)
draws from its own named stream spawned from a single experiment seed.
This gives two properties the experiment harness depends on:

1. **Reproducibility** — the same experiment seed always produces the
   same run, independent of how many other components consumed
   randomness in between.
2. **Variance isolation** — re-running a job with a different
   *controller* but the same seed sees identical noise, which is how the
   paper pairs each managed run with its baseline inside one job
   (Section VII-A) to cancel allocation variability.

Streams are thin wrappers around :class:`numpy.random.Generator` seeded
via :class:`numpy.random.SeedSequence` spawning, which guarantees
statistically independent child streams.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

import numpy as np

__all__ = ["RngStream", "spawn_streams"]


class RngStream:
    """A named, independently seeded random stream.

    Parameters
    ----------
    seed:
        Either an integer, a :class:`numpy.random.SeedSequence`, or an
        existing :class:`numpy.random.Generator` to wrap.
    name:
        Label used in ``repr`` and when spawning children; purely
        diagnostic.
    """

    __slots__ = ("_gen", "_seq", "name")

    def __init__(
        self,
        seed: int | np.random.SeedSequence | np.random.Generator = 0,
        name: str = "root",
    ) -> None:
        self.name = name
        if isinstance(seed, np.random.Generator):
            self._seq = None
            self._gen = seed
        else:
            self._seq = (
                seed
                if isinstance(seed, np.random.SeedSequence)
                else np.random.SeedSequence(seed)
            )
            self._gen = np.random.default_rng(self._seq)

    # -- spawning ------------------------------------------------------
    def child(self, name: str) -> "RngStream":
        """Spawn an independent child stream addressed by ``name``.

        The child's seed derives from the parent's seed plus a stable
        hash of the name, so children are **name-addressed**: the same
        name always yields the same stream regardless of how many other
        children were spawned before it (order-addressed spawning would
        silently alias ``child("run0")`` and ``child("run1")``), and the
        same name twice yields the same stream by design.
        """
        if self._seq is None:
            raise ValueError(
                f"stream {self.name!r} wraps a bare Generator and cannot spawn"
            )
        digest = int.from_bytes(
            hashlib.sha256(name.encode()).digest()[:8], "little"
        )
        child_seq = np.random.SeedSequence(
            entropy=self._seq.entropy,
            spawn_key=self._seq.spawn_key + (digest,),
        )
        return RngStream(child_seq, name=f"{self.name}/{name}")

    def children(self, names: Iterable[str]) -> dict[str, "RngStream"]:
        """Spawn one child per name, returned keyed by name."""
        return {n: self.child(n) for n in names}

    # -- draws ---------------------------------------------------------
    @property
    def generator(self) -> np.random.Generator:
        """The underlying numpy generator, for vectorized draws."""
        return self._gen

    def uniform(self, low: float = 0.0, high: float = 1.0, size=None):
        return self._gen.uniform(low, high, size=size)

    def normal(self, loc: float = 0.0, scale: float = 1.0, size=None):
        return self._gen.normal(loc, scale, size=size)

    def lognormal(self, mean: float = 0.0, sigma: float = 1.0, size=None):
        """Multiplicative-noise workhorse; mean/sigma are of ``log``."""
        return self._gen.lognormal(mean, sigma, size=size)

    def integers(self, low: int, high: int | None = None, size=None):
        return self._gen.integers(low, high, size=size)

    def choice(self, a, size=None, replace: bool = True, p=None):
        return self._gen.choice(a, size=size, replace=replace, p=p)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RngStream({self.name!r})"


def spawn_streams(seed: int, names: Iterable[str]) -> dict[str, RngStream]:
    """Convenience: build a root from ``seed`` and spawn named children.

    >>> streams = spawn_streams(42, ["noise", "sensor"])
    >>> sorted(streams)
    ['noise', 'sensor']
    """
    root = RngStream(seed, name="root")
    return root.children(names)
