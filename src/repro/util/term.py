"""Terminal charts: sparklines and bar charts for the report renderers.

Everything in this reproduction renders to plain text (no plotting
dependencies are available offline); these helpers keep the figure
harnesses' and examples' charts consistent.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["bar_chart", "sparkline"]

_LEVELS = " .:-=+*#%@"


def sparkline(
    values: Sequence[float],
    width: int = 72,
    label: str = "",
) -> str:
    """Render a series as a one-line density sparkline.

    Values are resampled to ``width`` points and mapped onto a ten-step
    character ramp between the series minimum and maximum; the range is
    printed in the prefix so the line is self-describing.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("empty series")
    if width <= 0:
        raise ValueError("width must be positive")
    if arr.size > width:
        idx = np.linspace(0, arr.size - 1, width).astype(int)
        arr = arr[idx]
    lo, hi = float(arr.min()), float(arr.max())
    span = max(hi - lo, 1e-12)
    chars = "".join(
        _LEVELS[int((x - lo) / span * (len(_LEVELS) - 1))] for x in arr
    )
    prefix = f"{label} " if label else ""
    return f"{prefix}[{lo:.4g}..{hi:.4g}]: {chars}"


def bar_chart(
    rows: Sequence[tuple[str, float]],
    width: int = 40,
    fmt: str = "{:+7.2f}",
) -> str:
    """Render labelled values as horizontal hash bars.

    Bars scale against the largest absolute value; negative values are
    marked with ``-`` bars so gains and losses read at a glance.
    """
    if not rows:
        raise ValueError("empty chart")
    if width <= 0:
        raise ValueError("width must be positive")
    peak = max(abs(v) for _, v in rows)
    label_w = max(len(label) for label, _ in rows)
    lines = []
    for label, value in rows:
        n = 0 if peak == 0 else int(round(abs(value) / peak * width))
        bar = ("#" if value >= 0 else "-") * n
        lines.append(f"{label.rjust(label_w)}  {fmt.format(value)}  {bar}")
    return "\n".join(lines)
