"""Shared utilities: RNG streams, statistics, units, configuration.

These helpers are deliberately dependency-light: everything in
:mod:`repro` builds on them, so they must import quickly and carry no
state of their own beyond what the caller passes in.
"""

from repro.util.rng import RngStream, spawn_streams
from repro.util.scatter import scatter_add, scatter_add_pairs
from repro.util.stats import (
    RunningMean,
    ewma,
    median,
    percent_change,
    summarize,
    variability_pct,
)
from repro.util.units import (
    MS,
    US,
    WATT,
    format_seconds,
    format_watts,
    joules,
)

__all__ = [
    "MS",
    "US",
    "WATT",
    "RngStream",
    "RunningMean",
    "ewma",
    "format_seconds",
    "format_watts",
    "joules",
    "median",
    "percent_change",
    "scatter_add",
    "scatter_add_pairs",
    "spawn_streams",
    "summarize",
    "variability_pct",
]
