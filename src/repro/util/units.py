"""Unit conventions and small formatting helpers.

The whole code base uses SI base units internally:

* time    — seconds (float)
* power   — watts (float)
* energy  — joules (float)
* frequency — GHz (float; a ratio against the base clock is what the
  performance model actually consumes, so the absolute unit only matters
  for display)

The constants below exist so call sites can write ``10 * MS`` instead of
``0.010`` and stay self-documenting.
"""

from __future__ import annotations

#: One millisecond, in seconds.
MS: float = 1e-3

#: One microsecond, in seconds.
US: float = 1e-6

#: One watt (identity; used for readable arithmetic like ``110 * WATT``).
WATT: float = 1.0


def joules(power_watts: float, duration_s: float) -> float:
    """Energy in joules for drawing ``power_watts`` over ``duration_s``.

    >>> joules(110.0, 2.0)
    220.0
    """
    return power_watts * duration_s


def format_seconds(t: float) -> str:
    """Render a duration with a sensible unit for logs and reports."""
    if t < 1e-6:
        return f"{t * 1e9:.1f} ns"
    if t < 1e-3:
        return f"{t * 1e6:.1f} us"
    if t < 1.0:
        return f"{t * 1e3:.1f} ms"
    if t < 120.0:
        return f"{t:.2f} s"
    return f"{t / 60.0:.2f} min"


def format_watts(p: float) -> str:
    """Render a power value for logs and reports."""
    if p >= 1000.0:
        return f"{p / 1000.0:.2f} kW"
    return f"{p:.1f} W"
