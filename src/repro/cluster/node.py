"""Node hardware model (Theta-like Xeon Phi 7230 compute node).

The evaluation platform in the paper is a Cray XC40 node with a
single-socket 64-core KNL: 1.3 GHz base, 1.5 GHz turbo, 215 W TDP and a
minimum RAPL cap of 98 W (paper §VI-A, §VII-D). The controllers never
see frequencies — only power caps in and (time, power) out — so the
node model's job is to translate a cap into an execution speed and a
power draw for each *phase kind* (see :mod:`repro.power.model`).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["NodeSpec", "THETA_NODE"]


@dataclass(frozen=True)
class NodeSpec:
    """Static description of a compute node's power/performance envelope.

    Attributes
    ----------
    f_base, f_turbo, f_min:
        Clock range in GHz. ``f_base`` defines speed 1.0; the
        performance model works in ratios ``f / f_base``.
    tdp_watts:
        Thermal design power — the hardware maximum (δ_max in the
        paper's clamping rule).
    rapl_min_watts:
        Lowest cap RAPL will accept (δ_min; 98 W on Theta).
    p_floor_watts:
        Static/uncore power that is drawn regardless of activity and
        cannot be capped away. Caps below ``p_floor`` force duty-cycle
        throttling with severe slowdown.
    p_wait_watts:
        Draw while spin-waiting in MPI synchronization. Figure 1 of the
        paper shows the analysis partition idling near 105 W between
        synchronizations.
    cores:
        Core count; only used for rank placement bookkeeping.
    """

    f_base: float = 1.3
    f_turbo: float = 1.5
    f_min: float = 0.6
    tdp_watts: float = 215.0
    rapl_min_watts: float = 98.0
    p_floor_watts: float = 65.0
    p_wait_watts: float = 105.0
    cores: int = 64

    def __post_init__(self) -> None:
        if not (0 < self.f_min <= self.f_base <= self.f_turbo):
            raise ValueError(
                f"invalid frequency range {self.f_min}/{self.f_base}/{self.f_turbo}"
            )
        if not (0 < self.p_floor_watts < self.rapl_min_watts < self.tdp_watts):
            raise ValueError("power envelope must satisfy floor < min cap < TDP")
        if self.cores <= 0:
            raise ValueError("node needs at least one core")

    @property
    def turbo_ratio(self) -> float:
        """Turbo frequency as a ratio of base (1.1538 on Theta)."""
        return self.f_turbo / self.f_base

    @property
    def min_ratio(self) -> float:
        return self.f_min / self.f_base

    def clamp_cap(self, cap_watts: float) -> float:
        """Clamp a requested cap to what the hardware supports."""
        return min(max(cap_watts, self.rapl_min_watts), self.tdp_watts)


#: The node used throughout the reproduction (paper §VI-A).
THETA_NODE = NodeSpec()
