"""Run-to-run and job-to-job variability model.

HPC systems — Xeon Phi based Cray XC systems in particular — exhibit
measurable run-to-run variability (Chunduri et al., cited as [32] in
the paper), and the paper shows (Table I) that power capping makes it
worse, most of all when both RAPL windows are armed.

We model three statistically independent ingredients, each drawn from
its own :class:`~repro.util.rng.RngStream`:

* **job factors** — drawn once per job: a job-wide speed factor (the
  allocation ended up on a good/bad part of the machine, shared by all
  nodes) and per-node factors (individual slow nodes). These dominate
  *job-to-job* variability.
* **phase noise** — a fresh multiplicative lognormal factor per phase
  instance per node (OS interference). Dominates *run-to-run*
  variability. Its sigma grows with the cap mode.
* **sensor noise** — additive gaussian watts on power readings, feeding
  the power-aware controller's noise sensitivity (§VII-B1).

Sigma values per :class:`~repro.power.rapl.CapMode` are calibrated so
Table I's ordering and rough magnitudes reproduce: none < long <
long+short for run-to-run, and capping inflating job-to-job spread.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.power.rapl import CapMode
from repro.util.rng import RngStream

__all__ = ["NoiseConfig", "NoiseModel"]


@dataclass(frozen=True)
class NoiseConfig:
    """Sigmas of the lognormal/gaussian noise sources per cap mode."""

    #: per-phase multiplicative noise (log-sigma) keyed by cap mode
    phase_sigma: dict = field(
        default_factory=lambda: {
            CapMode.NONE: 0.004,
            CapMode.LONG: 0.005,
            CapMode.LONG_SHORT: 0.030,
        }
    )
    #: job-wide speed factor (log-sigma) keyed by cap mode
    job_sigma: dict = field(
        default_factory=lambda: {
            CapMode.NONE: 0.010,
            CapMode.LONG: 0.045,
            CapMode.LONG_SHORT: 0.045,
        }
    )
    #: per-run machine-state factor (log-sigma) keyed by cap mode —
    #: rerunning the *same* job minutes later sees different thermal /
    #: network conditions; Table I shows this run-to-run spread jumping
    #: an order of magnitude when both RAPL windows are armed
    run_sigma: dict = field(
        default_factory=lambda: {
            CapMode.NONE: 0.004,
            CapMode.LONG: 0.005,
            CapMode.LONG_SHORT: 0.035,
        }
    )
    #: per-node allocation factor (log-sigma), cap-independent
    node_sigma: float = 0.006
    #: additive power-sensor noise (W, gaussian sigma per reading)
    sensor_sigma_watts: float = 1.5
    #: probability that a node suffers an OS-interference burst during
    #: a phase (the "anomalies" SeeSAw's window w guards against, §IV)
    spike_prob: float = 0.015
    #: duration multiplier of a spiked phase
    spike_scale: float = 1.6

    def validate(self) -> None:
        for mode in CapMode:
            if (
                self.phase_sigma[mode] < 0
                or self.job_sigma[mode] < 0
                or self.run_sigma[mode] < 0
            ):
                raise ValueError("noise sigmas must be non-negative")
        if self.node_sigma < 0 or self.sensor_sigma_watts < 0:
            raise ValueError("noise sigmas must be non-negative")
        if not 0.0 <= self.spike_prob <= 1.0 or self.spike_scale < 1.0:
            raise ValueError("invalid spike parameters")


class NoiseModel:
    """Stateful noise source for one job.

    Construct one per job run; the constructor consumes the job-level
    draws so that two jobs with different seeds land on different parts
    of the "machine".
    """

    def __init__(
        self,
        rng: RngStream,
        n_nodes: int,
        mode: CapMode,
        config: NoiseConfig | None = None,
        job_factor: float | None = None,
        phase_rng: RngStream | None = None,
    ) -> None:
        """``job_factor`` overrides the job-wide speed draw — a job's
        two partitions share one allocation, so the proxy runner draws
        the factor once and passes it to both partitions' models (only
        per-node and per-phase noise stays partition-local).

        ``phase_rng`` decouples the transient (per-run) noise from the
        job identity: Table I's *run-to-run* variability repeats a job
        (same allocation → same job/node factors) with fresh phase
        noise, while *job-to-job* redraws everything.
        """
        if n_nodes <= 0:
            raise ValueError("need at least one node")
        self.config = config if config is not None else NoiseConfig()
        self.config.validate()
        self.mode = mode
        self._phase_rng = (
            phase_rng if phase_rng is not None else rng.child("phase")
        )
        self._sensor_rng = rng.child("sensor")
        job_rng = rng.child("job")
        drawn = float(job_rng.lognormal(0.0, self.config.job_sigma[mode]))
        self.job_factor = drawn if job_factor is None else float(job_factor)
        self.node_factors = job_rng.lognormal(
            0.0, self.config.node_sigma, size=n_nodes
        )
        # The per-run machine-state factor derives from the *run's*
        # stream: same job, fresh run -> fresh factor (Table I).
        self.run_factor = float(
            self._phase_rng.lognormal(0.0, self.config.run_sigma[mode])
        )
        self.n_nodes = n_nodes

    @classmethod
    def draw_job_factor(
        cls, rng: RngStream, mode: CapMode, config: NoiseConfig | None = None
    ) -> float:
        """One job-wide speed factor (to share across partitions)."""
        cfg = config if config is not None else NoiseConfig()
        return float(rng.lognormal(0.0, cfg.job_sigma[mode]))

    def phase_factors(self) -> np.ndarray:
        """Per-node multiplicative duration factors for one phase.

        Shorthand for the spiked element of :meth:`phase_factor_pair`.
        """
        spiked, _ = self.phase_factor_pair()
        return spiked

    def phase_factor_pair(self) -> tuple[np.ndarray, np.ndarray]:
        """``(spiked, clean)`` per-node duration factors for one phase.

        Both include the job-wide, per-node and per-phase lognormal
        factors; ``spiked`` additionally carries rare OS-interference
        bursts hitting one rank of one node. The distinction models
        measurement granularity: the *slowest-rank* time (what actually
        gates the partition, and what PoLiMER's instrumented
        measurement reports to SeeSAw) includes the burst, while a
        node's *median-of-ranks* time — the robust statistic GEOPM's
        balancer uses — filters it out. This is precisely why SeeSAw
        with w=1 can over-react to anomalies (§VII-C1) while the
        time-aware scheme is blind to them.
        """
        phase = self._phase_rng.lognormal(
            0.0, self.config.phase_sigma[self.mode], size=self.n_nodes
        )
        clean = self.job_factor * self.run_factor * self.node_factors * phase
        spiked = clean
        if (
            self.config.spike_prob > 0
            and self._phase_rng.uniform() < self.config.spike_prob
        ):
            # One interference burst hits one node of the partition —
            # rare at the *partition* level so it reads as an anomaly,
            # not a bias (a per-node-independent draw would fire nearly
            # every phase at 512 nodes).
            victim = int(self._phase_rng.integers(0, self.n_nodes))
            spiked = clean.copy()
            spiked[victim] *= self.config.spike_scale
        return spiked, clean

    def sensor_noise(self, size=None) -> np.ndarray | float:
        """Additive watts to corrupt a power reading with."""
        return self._sensor_rng.normal(
            0.0, self.config.sensor_sigma_watts, size=size
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<NoiseModel n={self.n_nodes} mode={self.mode.value} "
            f"job_factor={self.job_factor:.4f}>"
        )
