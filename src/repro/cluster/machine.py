"""Machine description: nodes + interconnect + RAPL characteristics.

:func:`theta` builds the evaluation platform of the paper — the Cray
XC40 *Theta* at Argonne: 4392 single-socket KNL 7230 nodes, per-node
RAPL power domains (98–215 W), 10 ms cap actuation, Aries dragonfly
interconnect. All experiment harnesses take a :class:`MachineSpec` so
alternative machines can be explored (the ablation benches use this).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.interconnect import Interconnect, InterconnectSpec
from repro.cluster.node import THETA_NODE, NodeSpec
from repro.scenario.registry import register_machine
from repro.util.units import MS

__all__ = ["MachineSpec", "theta", "xeon_cluster"]


@dataclass(frozen=True)
class MachineSpec:
    """A named machine with its hardware envelope."""

    name: str
    node: NodeSpec
    interconnect_spec: InterconnectSpec
    total_nodes: int
    #: RAPL cap actuation latency (10 ms on Theta — paper §VII-E)
    rapl_actuation_s: float = 10 * MS
    #: default power-sampling period for traces (200 ms in Fig. 1)
    sensor_period_s: float = 0.2

    def __post_init__(self) -> None:
        if self.total_nodes <= 0:
            raise ValueError("machine needs nodes")
        if self.rapl_actuation_s < 0 or self.sensor_period_s <= 0:
            raise ValueError("invalid latencies")

    def interconnect(self) -> Interconnect:
        """Fresh interconnect model instance for this machine."""
        return Interconnect(self.interconnect_spec)

    def validate_job(self, n_nodes: int) -> None:
        """Check a job fits on the machine."""
        if n_nodes <= 0:
            raise ValueError("job needs at least one node")
        if n_nodes > self.total_nodes:
            raise ValueError(
                f"job wants {n_nodes} nodes; {self.name} has {self.total_nodes}"
            )


@register_machine("theta")
def theta() -> MachineSpec:
    """The Theta supercomputer as described in paper §VI-A."""
    return MachineSpec(
        name="theta",
        node=THETA_NODE,
        interconnect_spec=InterconnectSpec(),
        total_nodes=4392,
    )


@register_machine("xeon-cluster")
def xeon_cluster() -> MachineSpec:
    """A generic dual-purpose Xeon cluster (generalization target).

    Nothing in the controllers or the workload layer is KNL-specific —
    they consume a :class:`NodeSpec` envelope and per-phase curves that
    reference the node's floor and clock ratios. This machine has a
    very different envelope (higher clocks, lower TDP, faster fabric,
    lower idle) and is used by the generalization benchmarks to check
    the paper's qualitative results are not artifacts of Theta's
    numbers.
    """
    return MachineSpec(
        name="xeon-cluster",
        node=NodeSpec(
            f_base=2.4,
            f_turbo=3.2,
            f_min=1.0,
            tdp_watts=165.0,
            rapl_min_watts=70.0,
            p_floor_watts=45.0,
            p_wait_watts=78.0,
            cores=48,
        ),
        interconnect_spec=InterconnectSpec(
            latency_s=0.9e-6,
            bandwidth_Bps=25e9,
            per_rank_software_s=30e-9,
            congestion_per_doubling=0.05,
        ),
        total_nodes=1024,
        rapl_actuation_s=0.002,  # modern RAPL reacts faster
        sensor_period_s=0.1,
    )
