"""Cluster substrate: node hardware model, machine specs, interconnect, noise."""

from repro.cluster.interconnect import Interconnect, InterconnectSpec
from repro.cluster.machine import MachineSpec, theta, xeon_cluster
from repro.cluster.node import THETA_NODE, NodeSpec
from repro.cluster.noise import NoiseConfig, NoiseModel

__all__ = [
    "Interconnect",
    "InterconnectSpec",
    "MachineSpec",
    "NodeSpec",
    "NoiseConfig",
    "NoiseModel",
    "THETA_NODE",
    "theta",
    "xeon_cluster",
]
