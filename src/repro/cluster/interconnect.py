"""Interconnect model (Cray Aries dragonfly, as on Theta).

Provides two things:

* a :class:`~repro.mpi.costs.CommCostModel` implementation used by the
  simulated MPI runtime, with parameters in the ballpark of Aries
  (sub-2 µs latency, ~10 GB/s per-node injection bandwidth, optimized
  collectives — §VII-E notes Theta's interconnect is optimized for
  collective MPI routines);
* helpers for the in-situ workflow's bulk simulation→analysis exchange,
  whose time scales with per-node data volume and picks up a mild
  contention factor with node count.

The paper's scale observations only require that the communication
*fraction* of a fixed-problem step grows with node count; a
latency/bandwidth model with log-radix collectives delivers that.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["Interconnect", "InterconnectSpec"]


@dataclass(frozen=True)
class InterconnectSpec:
    """Wire-level parameters of the network."""

    latency_s: float = 1.2e-6
    bandwidth_Bps: float = 10e9
    #: software/progress cost charged per participating rank in a
    #: collective (captures the growing cost of larger communicators)
    per_rank_software_s: float = 40e-9
    #: multiplicative congestion growth per doubling of node count for
    #: bulk pairwise exchanges
    congestion_per_doubling: float = 0.06

    def validate(self) -> None:
        if self.latency_s < 0 or self.bandwidth_Bps <= 0:
            raise ValueError("invalid latency/bandwidth")
        if self.per_rank_software_s < 0 or self.congestion_per_doubling < 0:
            raise ValueError("invalid software/congestion terms")


class Interconnect:
    """Communication timing for point-to-point, collectives and bulk
    partition exchanges. Implements the ``CommCostModel`` protocol."""

    def __init__(self, spec: InterconnectSpec | None = None) -> None:
        self.spec = spec if spec is not None else InterconnectSpec()
        self.spec.validate()

    # -- CommCostModel protocol -----------------------------------------
    def p2p_time(self, nbytes: int) -> float:
        s = self.spec
        return s.latency_s + nbytes / s.bandwidth_Bps

    def collective_time(self, op: str, nranks: int, nbytes: int) -> float:
        if nranks <= 1:
            return 0.0
        s = self.spec
        rounds = math.ceil(math.log2(nranks))
        payload = 0 if op == "barrier" else nbytes
        return rounds * self.p2p_time(payload) + nranks * s.per_rank_software_s

    # -- bulk exchange ---------------------------------------------------
    def congestion_factor(self, n_nodes: int) -> float:
        """Contention multiplier for simultaneous pairwise traffic."""
        if n_nodes <= 1:
            return 1.0
        return 1.0 + self.spec.congestion_per_doubling * math.log2(n_nodes)

    def exchange_time(self, nbytes_per_node: int, n_nodes: int) -> float:
        """Bulk pairwise exchange: every sim node ships its particle data
        to its paired analysis node concurrently (Splitanalysis step 2).
        """
        if nbytes_per_node < 0:
            raise ValueError("negative payload")
        base = self.p2p_time(nbytes_per_node)
        return base * self.congestion_factor(n_nodes)
