"""SeeSAw reproduction: in-situ analytics under power constraints.

A full Python reproduction of *SeeSAw: Optimizing Performance of
In-Situ Analytics Applications under Power Constraints* (Marincic,
Vishwanath, Hoffmann — IPDPS 2020): the SeeSAw controller and its
comparators (:mod:`repro.core`), the machine substrate (power model,
RAPL, interconnect, noise — :mod:`repro.power`, :mod:`repro.cluster`),
simulated MPI on a discrete-event engine (:mod:`repro.mpi`,
:mod:`repro.des`), a real miniature MD engine and the paper's five
analyses (:mod:`repro.md`, :mod:`repro.analysis`), the
Verlet-Splitanalysis coupler and PoLiMER instrumentation layer
(:mod:`repro.insitu`, :mod:`repro.polimer`), calibrated scaled
workloads (:mod:`repro.workloads`), cluster-level scheduling
(:mod:`repro.sched`) and one experiment harness per paper table/figure
(:mod:`repro.experiments`).

Start with::

    from repro.cluster.node import THETA_NODE
    from repro.core import SeeSAwController
    from repro.workloads import JobConfig, run_job

See README.md for the tour and EXPERIMENTS.md for paper-vs-measured.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
