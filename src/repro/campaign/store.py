"""Content-addressed on-disk result cache.

Entries are pickled :class:`~repro.workloads.JobResult` objects stored
at ``<root>/<key[:2]>/<key>.pkl``. Writes are atomic (temp file +
``os.replace``) so concurrent campaigns sharing a cache directory can
never observe a torn entry; unreadable entries are treated as misses
and removed.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path

__all__ = ["CellStore", "default_cache_dir"]


def default_cache_dir() -> Path:
    """Default cache location: ``$SEESAW_CACHE_DIR`` if set, else the
    XDG cache home."""
    env = os.environ.get("SEESAW_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "seesaw-repro" / "cells"


class CellStore:
    """Pickle-backed content-addressed store keyed by cell hash."""

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str):
        """Cached result for ``key``, or ``None`` on miss/corruption."""
        path = self.path(key)
        try:
            with path.open("rb") as fh:
                return pickle.load(fh)
        except FileNotFoundError:
            return None
        except Exception:
            # corrupt or truncated entry: drop it and treat as a miss
            path.unlink(missing_ok=True)
            return None

    def put(self, key: str, value) -> None:
        path = self.path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            with tmp.open("wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.pkl"))

    def __contains__(self, key: str) -> bool:
        return self.path(key).exists()

    def clear(self) -> int:
        """Remove every entry; returns the number removed."""
        removed = 0
        for entry in self.root.glob("*/*.pkl"):
            entry.unlink(missing_ok=True)
            removed += 1
        return removed
