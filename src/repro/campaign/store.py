"""Content-addressed on-disk result cache, safe to share across
concurrent campaigns.

Entries are pickled :class:`~repro.workloads.JobResult` objects stored
at ``<root>/<key[:2]>/<key>.pkl``. Writes are atomic (temp file +
``os.replace``) so concurrent campaigns sharing a cache directory can
never observe a torn entry; unreadable entries are treated as misses
and removed.

Single-flight
-------------
Two CLI invocations sharing a store must never compute the same cell
twice, and never corrupt each other's entries. The store provides
**advisory per-key leases** built on ``fcntl.flock`` over sidecar
``locks/<key>.lock`` files:

* :meth:`CellStore.try_lease` — non-blockingly claim the right to
  compute a key. Exactly one process wins; the others treat the key as
  *in flight elsewhere*.
* :meth:`CellStore.wait_for` — block until the current holder releases
  (commit or crash — the OS drops a dead holder's lock), then re-read
  the entry. Returns ``None`` if the holder died without committing,
  in which case the caller should claim the lease itself.

Locks are advisory and crash-safe: a SIGKILLed holder's lease
evaporates with its file descriptor, so a shared store can never
deadlock on a dead campaign. On platforms without ``fcntl`` the lease
degrades to always-acquired (single-flight off, correctness unchanged
— the content-addressed entries themselves stay atomic).
"""

from __future__ import annotations

import os
import pickle
import time
from pathlib import Path

try:  # POSIX advisory locking; degrade gracefully elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None  # type: ignore[assignment]

__all__ = ["CellLease", "CellStore", "default_cache_dir"]


def default_cache_dir() -> Path:
    """Default cache location: ``$SEESAW_CACHE_DIR`` if set, else the
    XDG cache home."""
    env = os.environ.get("SEESAW_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "seesaw-repro" / "cells"


class CellLease:
    """An exclusive advisory lease on one cell key (see module doc)."""

    def __init__(self, key: str, fh) -> None:
        self.key = key
        self._fh = fh

    @property
    def held(self) -> bool:
        return self._fh is not None

    def release(self) -> None:
        fh, self._fh = self._fh, None
        if fh is None:
            return
        try:
            if fcntl is not None:
                fcntl.flock(fh.fileno(), fcntl.LOCK_UN)
        finally:
            fh.close()

    def __enter__(self) -> "CellLease":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class CellStore:
    """Pickle-backed content-addressed store keyed by cell hash."""

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: single-flight accounting (reset per process, read by tests
        #: and the engine's journal summary)
        self.lease_acquired = 0
        self.lease_lost = 0
        self.lease_waits = 0

    def path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def _lock_path(self, key: str) -> Path:
        return self.root / "locks" / f"{key}.lock"

    def get(self, key: str):
        """Cached result for ``key``, or ``None`` on miss/corruption."""
        path = self.path(key)
        try:
            with path.open("rb") as fh:
                return pickle.load(fh)
        except FileNotFoundError:
            return None
        except Exception:
            # corrupt or truncated entry: drop it and treat as a miss
            path.unlink(missing_ok=True)
            return None

    def put(self, key: str, value) -> None:
        path = self.path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            with tmp.open("wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)

    # ------------------------------------------------------ single-flight
    def try_lease(self, key: str) -> CellLease | None:
        """Claim the right to compute ``key``; ``None`` if another
        process already holds it. Always succeeds without ``fcntl``."""
        lock_path = self._lock_path(key)
        try:
            lock_path.parent.mkdir(parents=True, exist_ok=True)
            fh = lock_path.open("a")
        except OSError:
            return CellLease(key, None)  # degraded: no locking possible
        if fcntl is None:  # pragma: no cover - non-POSIX platform
            fh.close()
            return CellLease(key, None)
        try:
            fcntl.flock(fh.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            fh.close()
            self.lease_lost += 1
            return None
        self.lease_acquired += 1
        return CellLease(key, fh)

    def wait_for(self, key: str, timeout_s: float | None = None):
        """Block until the in-flight computation of ``key`` finishes
        (or its holder dies), then return the entry — ``None`` when the
        holder exited without committing or ``timeout_s`` elapsed."""
        lock_path = self._lock_path(key)
        self.lease_waits += 1
        deadline = (
            time.monotonic() + timeout_s if timeout_s is not None else None
        )
        if fcntl is None or not lock_path.exists():
            return self.get(key)
        try:
            fh = lock_path.open("a")
        except OSError:
            return self.get(key)
        try:
            while True:
                try:
                    fcntl.flock(fh.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
                except OSError:
                    if deadline is not None and time.monotonic() > deadline:
                        return self.get(key)
                    time.sleep(0.02)
                    continue
                fcntl.flock(fh.fileno(), fcntl.LOCK_UN)
                return self.get(key)
        finally:
            fh.close()

    # ------------------------------------------------------------ misc
    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.pkl"))

    def __contains__(self, key: str) -> bool:
        return self.path(key).exists()

    def clear(self) -> int:
        """Remove every entry; returns the number removed."""
        removed = 0
        for entry in self.root.glob("*/*.pkl"):
            entry.unlink(missing_ok=True)
            removed += 1
        for lock in self.root.glob("locks/*.lock"):
            lock.unlink(missing_ok=True)
        return removed
