"""The campaign engine: cached, parallel, fault-tolerant cell fan-out.

Execution strategy for a batch of cells:

1. every cell is looked up in the content-addressed store (when one is
   attached) and deduplicated against identical cells in the batch;
2. remaining cells fan out across a ``ProcessPoolExecutor`` when the
   engine was built with ``jobs > 1``; each pool wait is bounded by the
   per-cell timeout, and a raised/hung/lost worker triggers bounded
   retry, with the final attempt always executed in-process so a
   poisoned pool cannot fail a deterministic cell;
3. if the pool cannot be created at all (restricted environments,
   missing semaphores) the whole batch gracefully degrades to the
   in-process serial path — identical results, just slower;
4. every outcome is journaled and stored.

Cells are deterministic (seed-addressed RNG streams), so parallel and
serial execution are bit-identical — asserted by the regression tests.

The experiment runner submits through the *ambient engine*
(:func:`get_engine`); :func:`use_engine` swaps it for a scope, which is
how the CLI's ``--jobs/--cache/--journal`` flags reach every harness
without per-harness plumbing.
"""

from __future__ import annotations

import contextlib
import os
import sys
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from typing import Callable, Sequence

from repro.campaign.cells import CellSpec, cell_label, run_cell
from repro.campaign.hashing import cell_key
from repro.campaign.journal import RunJournal
from repro.campaign.store import CellStore
from repro.faults.injector import get_faults
from repro.telemetry import get_tracer

__all__ = ["CampaignEngine", "CellFailure", "get_engine", "use_engine"]


class CellFailure(RuntimeError):
    """A cell exhausted every attempt (pool and in-process)."""


def _pool_call(run_fn: Callable, spec: CellSpec):
    """Pool-side wrapper: tag the result with the worker's pid."""
    return os.getpid(), run_fn(spec)


class CampaignEngine:
    """Executes batches of cells; see the module docstring.

    Parameters
    ----------
    jobs:
        worker processes; ``1`` (default) runs in-process serially.
    store:
        optional :class:`CellStore` for content-addressed caching.
    journal:
        optional :class:`RunJournal`; one with ``path=None`` (counters
        only) is created when omitted.
    timeout_s:
        per-cell bound on waiting for a pool worker (``None`` = wait
        forever). In-process execution is not interruptible and is
        therefore not bounded.
    retries:
        extra attempts after a failed/timed-out first attempt. The
        last attempt always runs in-process.
    run_fn:
        the cell executor (default :func:`run_cell`); injectable for
        fault-injection tests. Must be picklable for pool use.
    progress:
        emit a live one-line progress update to stderr.
    """

    def __init__(
        self,
        jobs: int = 1,
        store: CellStore | None = None,
        journal: RunJournal | None = None,
        timeout_s: float | None = None,
        retries: int = 1,
        run_fn: Callable[[CellSpec], object] = run_cell,
        progress: bool = False,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.jobs = jobs
        self.store = store
        self.journal = journal if journal is not None else RunJournal()
        self.timeout_s = timeout_s
        self.retries = retries
        self.run_fn = run_fn
        self.progress = progress
        self._done = 0
        self._total = 0

    # ------------------------------------------------------- telemetry
    def _trace_cell(self, spec: CellSpec, status: str, wall_s: float) -> None:
        """One closed per-cell span + cache-outcome counter.

        Campaign telemetry lives on the wall clock in trace process 0:
        the cells *inside* bind the tracer to their own virtual clocks
        (one pid per simulation run), so explicit wall timestamps keep
        the campaign lane monotone regardless.
        """
        tracer = get_tracer()
        if not tracer.enabled:
            return
        now = tracer.wall_now()
        tracer.complete(
            "campaign.cell",
            wall_s,
            cat="campaign",
            tid=0,
            ts=now - wall_s,
            pid=0,
            label=cell_label(spec),
            status=status,
        )
        kind = {"hit": "hits", "dup": "dups"}.get(status, "runs")
        tracer.counter(f"campaign.cache_{kind}", cat="campaign").inc()

    # ------------------------------------------------------------- api
    def run_cells(self, specs: Sequence[CellSpec]) -> list:
        """Execute ``specs``; returns results in submission order."""
        specs = list(specs)
        faults = get_faults()
        if faults.enabled and faults.active:
            # Fault-injected runs bypass the engine entirely: pool
            # workers don't inherit the ambient injector (results would
            # silently diverge from serial), and faulted results must
            # never land in the content-addressed store (the cell key
            # doesn't encode the fault plan, so a later clean run would
            # read back a poisoned entry).
            self._total += len(specs)
            results = []
            for spec in specs:
                t0 = time.perf_counter()
                result = self.run_fn(spec)
                self.journal.cell(
                    cell_key(spec),
                    cell_label(spec),
                    "faulted",
                    time.perf_counter() - t0,
                    backend="serial",
                )
                self._trace_cell(spec, "faulted", time.perf_counter() - t0)
                self._tick()
                results.append(result)
            self._finish_progress()
            return results
        keys = [cell_key(s) for s in specs]
        results: list = [None] * len(specs)
        self._total += len(specs)

        todo: list[int] = []  # first occurrence of each uncached key
        dups: dict[int, int] = {}  # duplicate index -> first index
        first: dict[str, int] = {}
        for i, (key, spec) in enumerate(zip(keys, specs)):
            if key in first:
                dups[i] = first[key]
                continue
            t0 = time.perf_counter()
            cached = self.store.get(key) if self.store is not None else None
            if cached is not None:
                results[i] = cached
                wall_s = time.perf_counter() - t0
                self.journal.cell(key, cell_label(spec), "hit", wall_s)
                self._trace_cell(spec, "hit", wall_s)
                self._tick()
                continue
            first[key] = i
            todo.append(i)

        if todo:
            if self.jobs > 1 and len(todo) > 1:
                self._run_pool(specs, keys, todo, results)
            else:
                for i in todo:
                    results[i] = self._run_serial(specs[i], keys[i])

        for i, j in dups.items():
            results[i] = results[j]
            self.journal.cell(keys[i], cell_label(specs[i]), "dup", 0.0)
            self._trace_cell(specs[i], "dup", 0.0)
            self._tick()
        self._finish_progress()
        return results

    # ------------------------------------------------------- internals
    def _complete(self, spec, key, result, wall_s, status, backend, worker):
        if self.store is not None:
            self.store.put(key, result)
        self.journal.cell(
            key,
            cell_label(spec),
            status,
            wall_s,
            backend=backend,
            worker=worker,
        )
        self._trace_cell(spec, status, wall_s)
        self._tick()

    def _run_pool(self, specs, keys, todo, results) -> None:
        try:
            pool = ProcessPoolExecutor(
                max_workers=min(self.jobs, len(todo))
            )
        except Exception as exc:  # restricted env: no fork/semaphores
            self.journal.event("pool-unavailable", error=repr(exc))
            for i in todo:
                results[i] = self._run_serial(specs[i], keys[i])
            return

        futures = {i: pool.submit(_pool_call, self.run_fn, specs[i]) for i in todo}
        broken = False
        try:
            for i in todo:
                spec, key = specs[i], keys[i]
                if broken:
                    results[i] = self._run_serial(spec, key, attempt=2)
                    continue
                t0 = time.perf_counter()
                try:
                    worker, result = futures[i].result(timeout=self.timeout_s)
                except FutureTimeout:
                    futures[i].cancel()
                    self.journal.cell(
                        key,
                        cell_label(spec),
                        "timeout",
                        time.perf_counter() - t0,
                        backend="pool",
                    )
                    results[i] = self._run_serial(spec, key, attempt=2)
                except BrokenExecutor as exc:
                    broken = True
                    self.journal.event("pool-broken", error=repr(exc))
                    results[i] = self._run_serial(spec, key, attempt=2)
                except Exception as exc:
                    self.journal.cell(
                        key,
                        cell_label(spec),
                        "error",
                        time.perf_counter() - t0,
                        backend="pool",
                        error=repr(exc),
                    )
                    results[i] = self._run_serial(spec, key, attempt=2)
                else:
                    self._complete(
                        spec,
                        key,
                        result,
                        time.perf_counter() - t0,
                        "done",
                        "pool",
                        worker,
                    )
                    results[i] = result
        finally:
            # wait=False: a hung worker must not stall completed cells
            with contextlib.suppress(TypeError):
                pool.shutdown(wait=False, cancel_futures=True)

    def _run_serial(self, spec: CellSpec, key: str, attempt: int = 1):
        """In-process execution with bounded retry.

        ``attempt`` numbers continue across backends: a cell that
        failed once in the pool arrives here with ``attempt=2``.
        """
        last_exc: Exception | None = None
        label = cell_label(spec)
        for n in range(attempt, self.retries + 2):
            t0 = time.perf_counter()
            try:
                result = self.run_fn(spec)
            except Exception as exc:
                last_exc = exc
                self.journal.cell(
                    key,
                    label,
                    "error",
                    time.perf_counter() - t0,
                    attempt=n,
                    error=repr(exc),
                )
                continue
            self._complete(
                spec,
                key,
                result,
                time.perf_counter() - t0,
                "done" if n == 1 else "retried",
                "serial",
                os.getpid(),
            )
            return result
        self.journal.cell(key, label, "failed", 0.0, attempt=self.retries + 1)
        raise CellFailure(
            f"cell {label} failed after {self.retries + 1} attempt(s)"
        ) from last_exc

    # ------------------------------------------------------- progress
    def _tick(self) -> None:
        self._done += 1
        if not self.progress:
            return
        c = self.journal.counts
        sys.stderr.write(
            f"\r[campaign] {self._done}/{self._total} cells"
            f" · {c['hits']} cached · {c['misses']} run"
            f" · {c['errors'] + c['timeouts']} faults"
        )
        sys.stderr.flush()

    def _finish_progress(self) -> None:
        if self.progress and self._done:
            sys.stderr.write("\n")
            sys.stderr.flush()


# ---------------------------------------------------------------------
# ambient engine: what the experiment runner submits through
_default_engine: CampaignEngine | None = None
_current_engine: CampaignEngine | None = None


def get_engine() -> CampaignEngine:
    """The engine in effect: the :func:`use_engine` scope's engine, or
    a process-wide default (serial, uncached, counters-only journal)."""
    global _default_engine
    if _current_engine is not None:
        return _current_engine
    if _default_engine is None:
        _default_engine = CampaignEngine()
    return _default_engine


@contextlib.contextmanager
def use_engine(engine: CampaignEngine):
    """Route all runner submissions through ``engine`` for the scope."""
    global _current_engine
    previous = _current_engine
    _current_engine = engine
    try:
        yield engine
    finally:
        _current_engine = previous
