"""The campaign engine: cached, parallel, fault-tolerant cell fan-out.

Execution strategy for a batch of cells:

1. every cell is looked up in the content-addressed store (when one is
   attached) and deduplicated against identical cells in the batch;
2. uncached cells are *leased* through the store's single-flight locks:
   cells another concurrent campaign is already computing are observed
   (never recomputed), the rest are owned by this engine;
3. owned cells fan out through a cost-model-informed work-stealing
   scheduler over a **warm, persistent worker pool** when the engine
   was built with ``jobs > 1`` (see :mod:`repro.campaign.scheduler`):
   longest cells first, adaptive chunking, bounded in-flight work, and
   idle workers stealing from loaded ones. A raised/hung/lost worker
   triggers bounded retry, with the final attempt always executed
   in-process so a poisoned pool cannot fail a deterministic cell;
4. if the pool cannot be created at all (restricted environments,
   missing semaphores) the whole batch gracefully degrades to the
   in-process serial path — identical results, just slower;
5. every outcome is journaled and stored; with a file-backed journal
   the engine also writes ``scheduled`` ledger rows, making a killed
   campaign resumable (:mod:`repro.campaign.resume`).

Cells are deterministic (seed-addressed RNG streams), so parallel and
serial execution are bit-identical — asserted by the regression tests.

The experiment runner submits through the *ambient engine*
(:func:`get_engine`); :func:`use_engine` swaps it for a scope, which is
how the CLI's ``--jobs/--cache/--journal`` flags reach every harness
without per-harness plumbing.
"""

from __future__ import annotations

import contextlib
import os
import sys
import time
from typing import Callable, Sequence

from repro.campaign.cells import CellSpec, cell_label, run_cell
from repro.campaign.hashing import cell_key
from repro.campaign.journal import RunJournal
from repro.campaign.scheduler import (
    CostModel,
    SchedulerUnavailable,
    WorkerPool,
    WorkStealingScheduler,
)
from repro.campaign.store import CellLease, CellStore
from repro.faults.injector import get_faults
from repro.obs.merge import TelemetryMux
from repro.telemetry import get_tracer

__all__ = ["CampaignEngine", "CellFailure", "get_engine", "use_engine"]


class CellFailure(RuntimeError):
    """A cell exhausted every attempt (pool and in-process)."""


class CampaignEngine:
    """Executes batches of cells; see the module docstring.

    Parameters
    ----------
    jobs:
        worker processes; ``1`` (default) runs in-process serially.
    store:
        optional :class:`CellStore` for content-addressed caching.
    journal:
        optional :class:`RunJournal`; one with ``path=None`` (counters
        only) is created when omitted.
    timeout_s:
        per-cell bound on worker progress: a worker that produces no
        result for this long is killed and its cells retried
        (``None`` = wait forever). In-process execution is not
        interruptible and is therefore not bounded.
    retries:
        extra attempts after a failed/timed-out first attempt. The
        last attempt always runs in-process.
    run_fn:
        the cell executor (default :func:`run_cell`); injectable for
        fault-injection tests. Must be picklable for pool use.
    progress:
        emit a live one-line progress update (with ETA once the cost
        model calibrates) to stderr.
    longest_first / steal / static_chunks:
        scheduling policy knobs (see
        :class:`~repro.campaign.scheduler.WorkStealingScheduler`).
        The defaults are the production policy; the FIFO/static
        combination exists as the benchmark baseline.
    """

    def __init__(
        self,
        jobs: int = 1,
        store: CellStore | None = None,
        journal: RunJournal | None = None,
        timeout_s: float | None = None,
        retries: int = 1,
        run_fn: Callable[[CellSpec], object] = run_cell,
        progress: bool = False,
        longest_first: bool = True,
        steal: bool = True,
        static_chunks: bool = False,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.jobs = jobs
        self.store = store
        self.journal = journal if journal is not None else RunJournal()
        self.timeout_s = timeout_s
        self.retries = retries
        self.run_fn = run_fn
        self.progress = progress
        self.longest_first = longest_first
        self.steal = steal
        self.static_chunks = static_chunks
        self.cost_model = CostModel()
        #: merges telemetry batches shipped back by pool workers into
        #: the ambient tracer sink and the journal (repro.obs)
        self.obs = TelemetryMux(journal=self.journal)
        #: min wall seconds between journaled scheduler-stats rows
        self.sched_row_interval_s = 0.5
        self._last_sched_row = 0.0
        self._batch_t0: float | None = None
        self._pool: WorkerPool | None = None
        self._scheduler: WorkStealingScheduler | None = None
        self._pool_broken = False
        self._leases: dict[str, CellLease] = {}
        self._done = 0
        self._total = 0

    # ----------------------------------------------------------- pool
    def _ensure_scheduler(self) -> WorkStealingScheduler:
        """The warm pool + scheduler (created once, reused per batch)."""
        if self._scheduler is None:
            self._pool = WorkerPool(self.jobs, self.run_fn)
            self._scheduler = WorkStealingScheduler(
                self._pool,
                cost_model=self.cost_model,
                longest_first=self.longest_first,
                steal=self.steal,
                static_chunks=self.static_chunks,
            )
        return self._scheduler

    @property
    def scheduler_stats(self):
        """Stats of the most recent scheduled batch (None before any)."""
        return self._scheduler.stats if self._scheduler is not None else None

    def close(self) -> None:
        """Shut down the warm worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
        self._pool = None
        self._scheduler = None

    def __enter__(self) -> "CampaignEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------- telemetry
    def _trace_cell(
        self, spec: CellSpec, status: str, wall_s: float, tid: int = 0
    ) -> None:
        """One closed per-cell span + cache-outcome counter.

        Campaign telemetry lives on the wall clock in trace process 0:
        the cells *inside* bind the tracer to their own virtual clocks
        (one pid per simulation run), so explicit wall timestamps keep
        the campaign lane monotone regardless. Pool-executed cells land
        on ``tid = wid + 1`` — one campaign-lane row per worker, with
        each worker's cells laid end to end; cache hits and serial
        cells stay on ``tid 0``.
        """
        tracer = get_tracer()
        if not tracer.enabled:
            return
        now = tracer.wall_now()
        tracer.complete(
            "campaign.cell",
            wall_s,
            cat="campaign",
            tid=tid,
            ts=now - wall_s,
            pid=0,
            label=cell_label(spec),
            status=status,
        )
        kind = {"hit": "hits", "dup": "dups"}.get(status, "runs")
        tracer.counter(f"campaign.cache_{kind}", cat="campaign").inc()

    def _journal_sched_stats(self, final: bool = False) -> None:
        """Mirror live scheduler stats into the journal (throttled).

        One ``sched`` row at most every ``sched_row_interval_s`` wall
        seconds (plus an unconditional end-of-batch row) gives
        ``campaign watch`` worker utilization, queue depth, steals and
        ETA without a side channel — the journal stays the single
        stream every observer tails.
        """
        if self.journal.path is None or self._scheduler is None:
            return
        now = time.perf_counter()
        if not final and now - self._last_sched_row < self.sched_row_interval_s:
            return
        self._last_sched_row = now
        scheduler = self._scheduler
        stats = scheduler.stats
        wall_s = (
            stats.wall_s
            if stats.wall_s > 0
            else now - (self._batch_t0 or now)
        )
        self.journal.event(
            "sched",
            final=final,
            n_workers=stats.n_workers,
            dispatches=stats.dispatches,
            steals=stats.steals,
            stolen_cells=stats.stolen_cells,
            queue_depth=scheduler._queue_depth(),
            eta_s=scheduler.eta_s(),
            wall_s=round(wall_s, 6),
            ship_dropped=self.obs.dropped,
            ship_records=self.obs.absorbed,
            workers=[
                {
                    "wid": w.wid,
                    "pid": w.pid,
                    "cells": w.cells,
                    "busy_s": round(w.busy_s, 6),
                    "stolen_cells": w.stolen_cells,
                    "respawns": w.respawns,
                    "utilization": round(w.utilization(wall_s), 4),
                }
                for w in (
                    stats.workers
                    or [wk.stats for wk in scheduler.pool.workers]
                )
            ],
        )

    # ------------------------------------------------------------- api
    def run_cells(self, specs: Sequence[CellSpec]) -> list:
        """Execute ``specs``; returns results in submission order."""
        specs = list(specs)
        faults = get_faults()
        if faults.enabled and faults.active:
            # Fault-injected runs bypass the engine entirely: pool
            # workers don't inherit the ambient injector (results would
            # silently diverge from serial), and faulted results must
            # never land in the content-addressed store (the cell key
            # doesn't encode the fault plan, so a later clean run would
            # read back a poisoned entry).
            self._total += len(specs)
            results = []
            for spec in specs:
                t0 = time.perf_counter()
                result = self.run_fn(spec)
                self.journal.cell(
                    cell_key(spec),
                    cell_label(spec),
                    "faulted",
                    time.perf_counter() - t0,
                    backend="serial",
                )
                self._trace_cell(spec, "faulted", time.perf_counter() - t0)
                self._tick()
                results.append(result)
            self._finish_progress()
            return results
        keys = [cell_key(s) for s in specs]
        results: list = [None] * len(specs)
        self._total += len(specs)

        todo: list[int] = []  # first occurrence of each uncached key
        dups: dict[int, int] = {}  # duplicate index -> first index
        first: dict[str, int] = {}
        for i, (key, spec) in enumerate(zip(keys, specs)):
            if key in first:
                dups[i] = first[key]
                continue
            t0 = time.perf_counter()
            cached = self.store.get(key) if self.store is not None else None
            if cached is not None:
                results[i] = cached
                wall_s = time.perf_counter() - t0
                self.journal.cell(key, cell_label(spec), "hit", wall_s)
                self._trace_cell(spec, "hit", wall_s)
                self._tick()
                continue
            first[key] = i
            todo.append(i)

        # single-flight: lease what we will compute; cells leased by a
        # concurrent campaign sharing the store are observed instead
        waiting: list[int] = []
        if self.store is not None and todo:
            owned: list[int] = []
            for i in todo:
                lease = self.store.try_lease(keys[i])
                if lease is None:
                    waiting.append(i)
                else:
                    self._leases[keys[i]] = lease
                    owned.append(i)
            todo = owned

        self.journal.scheduled([keys[i] for i in todo])
        try:
            if todo:
                if self.jobs > 1 and len(todo) > 1:
                    self._run_pool(specs, keys, todo, results)
                else:
                    for i in todo:
                        results[i] = self._run_serial(specs[i], keys[i])
            for i in waiting:
                results[i] = self._await_inflight(specs[i], keys[i])
        finally:
            self._release_leases()

        for i, j in dups.items():
            results[i] = results[j]
            self.journal.cell(keys[i], cell_label(specs[i]), "dup", 0.0)
            self._trace_cell(specs[i], "dup", 0.0)
            self._tick()
        self._finish_progress()
        return results

    # ------------------------------------------------------- internals
    def _release_lease(self, key: str) -> None:
        lease = self._leases.pop(key, None)
        if lease is not None:
            lease.release()

    def _release_leases(self) -> None:
        for key in list(self._leases):
            self._release_lease(key)

    def _await_inflight(self, spec: CellSpec, key: str):
        """Resolve a cell another campaign is computing right now."""
        t0 = time.perf_counter()
        result = self.store.wait_for(key)
        wall_s = time.perf_counter() - t0
        if result is not None:
            self.journal.cell(
                key, cell_label(spec), "hit", wall_s, via="single-flight"
            )
            self._trace_cell(spec, "hit", wall_s)
            self._tick()
            return result
        # the other campaign died before committing: claim and compute
        lease = self.store.try_lease(key)
        if lease is not None:
            self._leases[key] = lease
        return self._run_serial(spec, key)

    def _complete(
        self, spec, key, result, wall_s, status, backend, worker, tid=0
    ):
        if self.store is not None:
            self.store.put(key, result)
        self._release_lease(key)
        self.journal.cell(
            key,
            cell_label(spec),
            status,
            wall_s,
            backend=backend,
            worker=worker,
        )
        self._trace_cell(spec, status, wall_s, tid=tid)
        self._tick()

    def _run_pool(self, specs, keys, todo, results) -> None:
        """Scheduled fan-out over the warm pool; see the module doc."""
        if self._pool_broken:
            for i in todo:
                results[i] = self._run_serial(specs[i], keys[i])
            return
        scheduler = self._ensure_scheduler()
        retry: list[int] = []  # indices to re-run in-process
        self._batch_t0 = time.perf_counter()
        try:
            outcomes = scheduler.run(
                [specs[i] for i in todo], timeout_s=self.timeout_s
            )
            for outcome in outcomes:
                i = todo[outcome.task_id]
                spec, key = specs[i], keys[i]
                if outcome.telemetry is not None:
                    # merge the worker's shipped records before the
                    # cell's own campaign-lane span, so the journal
                    # reads in causal order
                    self.obs.absorb(
                        outcome.telemetry,
                        cell_label=cell_label(spec),
                        cell_key=key,
                    )
                if outcome.status == "ok":
                    self._complete(
                        spec,
                        key,
                        outcome.result,
                        outcome.wall_s,
                        "done",
                        "pool",
                        outcome.worker,
                        tid=outcome.wid + 1 if outcome.wid >= 0 else 0,
                    )
                    results[i] = outcome.result
                    self._journal_sched_stats()
                    continue
                status = {"error": "error", "timeout": "timeout"}.get(
                    outcome.status, "error"
                )
                extra = {"error": outcome.error} if outcome.error else {}
                if outcome.status == "lost":
                    self.journal.event(
                        "worker-lost", worker=outcome.worker, key=key
                    )
                self.journal.cell(
                    key,
                    cell_label(spec),
                    status,
                    outcome.wall_s,
                    backend="pool",
                    worker=outcome.worker,
                    **extra,
                )
                self._journal_sched_stats()
                retry.append(i)
            self._journal_sched_stats(final=True)
        except SchedulerUnavailable as exc:
            # restricted env: no fork/pipes/semaphores — never try again
            self._pool_broken = True
            self.journal.event("pool-unavailable", error=repr(exc))
            self.close()
            for i in todo:
                if results[i] is None:
                    results[i] = self._run_serial(specs[i], keys[i])
            return
        for i in retry:
            results[i] = self._run_serial(specs[i], keys[i], attempt=2)

    def _run_serial(self, spec: CellSpec, key: str, attempt: int = 1):
        """In-process execution with bounded retry.

        ``attempt`` numbers continue across backends: a cell that
        failed once in the pool arrives here with ``attempt=2``.
        """
        last_exc: Exception | None = None
        label = cell_label(spec)
        for n in range(attempt, self.retries + 2):
            t0 = time.perf_counter()
            try:
                result = self.run_fn(spec)
            except Exception as exc:
                last_exc = exc
                self.journal.cell(
                    key,
                    label,
                    "error",
                    time.perf_counter() - t0,
                    attempt=n,
                    error=repr(exc),
                )
                continue
            self._complete(
                spec,
                key,
                result,
                time.perf_counter() - t0,
                "done" if n == 1 else "retried",
                "serial",
                os.getpid(),
            )
            return result
        self._release_lease(key)
        self.journal.cell(key, label, "failed", 0.0, attempt=self.retries + 1)
        raise CellFailure(
            f"cell {label} failed after {self.retries + 1} attempt(s)"
        ) from last_exc

    # ------------------------------------------------------- progress
    def _tick(self) -> None:
        self._done += 1
        if not self.progress:
            return
        c = self.journal.counts
        eta = ""
        if self._scheduler is not None:
            eta_s = self._scheduler.eta_s()
            if eta_s:
                eta = f" · eta {eta_s:.0f}s"
        sys.stderr.write(
            f"\r[campaign] {self._done}/{self._total} cells"
            f" · {c['hits']} cached · {c['misses']} run"
            f" · {c['errors'] + c['timeouts']} faults{eta}"
        )
        sys.stderr.flush()

    def _finish_progress(self) -> None:
        if self.progress and self._done:
            sys.stderr.write("\n")
            sys.stderr.flush()


# ---------------------------------------------------------------------
# ambient engine: what the experiment runner submits through
_default_engine: CampaignEngine | None = None
_current_engine: CampaignEngine | None = None


def get_engine() -> CampaignEngine:
    """The engine in effect: the :func:`use_engine` scope's engine, or
    a process-wide default (serial, uncached, counters-only journal)."""
    global _default_engine
    if _current_engine is not None:
        return _current_engine
    if _default_engine is None:
        _default_engine = CampaignEngine()
    return _default_engine


@contextlib.contextmanager
def use_engine(engine: CampaignEngine):
    """Route all runner submissions through ``engine`` for the scope."""
    global _current_engine
    previous = _current_engine
    _current_engine = engine
    try:
        yield engine
    finally:
        _current_engine = previous
