"""Campaign layer: parallel experiment orchestration with caching.

Every data point in the paper is assembled from *cells* — single
``(JobConfig, approach, controller kwargs, run index)`` managed runs.
The experiment harnesses used to execute cells one at a time in a
serial loop; this package turns them into a campaign engine:

* :mod:`repro.campaign.cells` — the cell specification and the pure
  function that executes one cell (deterministic: a cell's result
  depends only on its spec, never on the process running it);
* :mod:`repro.campaign.hashing` — stable content hashing of cell
  specs plus a code-version salt, so cached results are invalidated
  the moment any source file changes;
* :mod:`repro.campaign.store` — the content-addressed on-disk result
  cache (atomic writes, corruption-tolerant reads);
* :mod:`repro.campaign.journal` — structured JSONL run journal (one
  line per cell: key, status, wall time, cache hit/miss, worker);
* :mod:`repro.campaign.executor` — the engine: fans cells out across
  a ``ProcessPoolExecutor`` with per-cell timeout and bounded retry,
  falls back to in-process serial execution when the pool is
  unavailable, and exposes the ambient-engine hooks
  (:func:`get_engine` / :func:`use_engine`) the experiment runner
  submits through.

Because cells are deterministic, a campaign executed with any number
of workers is bit-identical to the serial loop it replaced.
"""

from repro.campaign.cells import CellSpec, cell_label, run_cell
from repro.campaign.executor import (
    CampaignEngine,
    CellFailure,
    get_engine,
    use_engine,
)
from repro.campaign.hashing import cell_key, code_salt, stable_hash
from repro.campaign.journal import RunJournal
from repro.campaign.store import CellStore, default_cache_dir

__all__ = [
    "CampaignEngine",
    "CellFailure",
    "CellSpec",
    "CellStore",
    "RunJournal",
    "cell_key",
    "cell_label",
    "code_salt",
    "default_cache_dir",
    "get_engine",
    "run_cell",
    "stable_hash",
    "use_engine",
]
