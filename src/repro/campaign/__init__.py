"""Campaign layer: elastic, resumable experiment orchestration.

Every data point in the paper is assembled from *cells* — single
``(JobConfig, approach, controller kwargs, run index)`` managed runs.
The experiment harnesses used to execute cells one at a time in a
serial loop; this package turns them into a campaign engine:

* :mod:`repro.campaign.cells` — the cell specification, the pure
  function that executes one cell (deterministic: a cell's result
  depends only on its spec, never on the process running it), and the
  a-priori cost estimate the scheduler ranks cells by;
* :mod:`repro.campaign.hashing` — stable content hashing of cell
  specs plus a code-version salt, so cached results are invalidated
  the moment any source file changes;
* :mod:`repro.campaign.store` — the content-addressed on-disk result
  cache (atomic writes, corruption-tolerant reads) with advisory
  per-key leases so concurrent campaigns sharing a store single-flight
  every cell;
* :mod:`repro.campaign.journal` — structured JSONL run journal (one
  line per cell: key, status, wall time, cache hit/miss, worker) that
  doubles as a replayable campaign ledger, with flock-serialized
  appends for concurrent writers;
* :mod:`repro.campaign.scheduler` — cost-model-informed work-stealing
  scheduler over a warm, persistent worker pool: longest cells first,
  adaptive chunking, bounded in-flight work, idle workers stealing
  from loaded ones, per-worker utilization/steal/ETA telemetry;
* :mod:`repro.campaign.resume` — campaign checkpoint/resume: parse a
  journal back into a ledger so ``campaign resume`` skips every
  completed cell and re-enqueues in-flight ones;
* :mod:`repro.campaign.executor` — the engine tying it together, with
  per-cell timeout, bounded retry, in-process serial fallback, and the
  ambient-engine hooks (:func:`get_engine` / :func:`use_engine`) the
  experiment runner submits through.

Because cells are deterministic, a campaign executed with any number
of workers — or killed and resumed any number of times — is
bit-identical to the serial loop it replaced.
"""

from repro.campaign.cells import CellSpec, cell_label, cell_units, run_cell
from repro.campaign.executor import (
    CampaignEngine,
    CellFailure,
    get_engine,
    use_engine,
)
from repro.campaign.hashing import cell_key, code_salt, stable_hash
from repro.campaign.journal import RunJournal
from repro.campaign.resume import (
    CampaignLedger,
    campaign_id,
    campaign_meta,
    load_ledger,
)
from repro.campaign.scheduler import (
    CostModel,
    SchedulerStats,
    SchedulerUnavailable,
    WorkerPool,
    WorkStealingScheduler,
)
from repro.campaign.store import CellLease, CellStore, default_cache_dir

__all__ = [
    "CampaignEngine",
    "CampaignLedger",
    "CellFailure",
    "CellLease",
    "CellSpec",
    "CellStore",
    "CostModel",
    "RunJournal",
    "SchedulerStats",
    "SchedulerUnavailable",
    "WorkStealingScheduler",
    "WorkerPool",
    "campaign_id",
    "campaign_meta",
    "cell_key",
    "cell_label",
    "cell_units",
    "code_salt",
    "default_cache_dir",
    "get_engine",
    "load_ledger",
    "run_cell",
    "stable_hash",
    "use_engine",
]
