"""Stable content hashing for cell specs.

Cache keys must be identical across processes and interpreter runs
(Python's own ``hash`` is salted per process) and must change whenever
either the cell spec *or the code that executes it* changes. The first
property comes from :func:`canonical` — a deterministic, sorted,
JSON-serializable normal form for the config types used by cells — and
the second from :func:`code_salt`, a digest over every source file of
the :mod:`repro` package.
"""

from __future__ import annotations

import enum
import hashlib
import json
import os
from dataclasses import fields, is_dataclass
from pathlib import Path

import numpy as np

__all__ = ["canonical", "cell_key", "code_salt", "stable_hash"]

#: environment override for the code-version salt (useful to pin a
#: cache across known-benign edits, e.g. in CI with docs-only changes)
CODE_SALT_ENV = "SEESAW_CODE_SALT"


def canonical(obj):
    """Normalize ``obj`` into a deterministic JSON-serializable form.

    Supported: dataclasses, enums, dicts (any canonicalizable keys,
    sorted), sequences, sets (sorted), paths, numpy scalars and the
    JSON primitives. Anything else raises ``TypeError`` — silently
    falling back to ``repr`` would risk unstable keys.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr round-trips exactly; avoids json float formatting drift
        return ["f", repr(obj)]
    if isinstance(obj, enum.Enum):
        return ["enum", type(obj).__name__, canonical(obj.value)]
    if is_dataclass(obj) and not isinstance(obj, type):
        return [
            "dc",
            type(obj).__name__,
            [[f.name, canonical(getattr(obj, f.name))] for f in fields(obj)],
        ]
    if isinstance(obj, dict):
        items = [[canonical(k), canonical(v)] for k, v in obj.items()]
        items.sort(key=lambda kv: json.dumps(kv[0], sort_keys=True))
        return ["dict", items]
    if isinstance(obj, (set, frozenset)):
        members = [canonical(v) for v in obj]
        members.sort(key=lambda m: json.dumps(m, sort_keys=True))
        return ["set", members]
    if isinstance(obj, (list, tuple)):
        return [canonical(v) for v in obj]
    if isinstance(obj, Path):
        return ["path", str(obj)]
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return canonical(float(obj))
    raise TypeError(
        f"cannot canonicalize {type(obj).__name__!r} for cache hashing"
    )


def stable_hash(obj) -> str:
    """Hex SHA-256 of the canonical form of ``obj``."""
    payload = json.dumps(canonical(obj), separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


_code_salt_cache: str | None = None


def code_salt() -> str:
    """Digest of every ``repro`` source file (cached per process).

    Any edit anywhere in the package changes the salt and therefore
    every cache key — correctness over cleverness: an unrelated edit
    costs one cold campaign, a stale result is silent data corruption.
    """
    global _code_salt_cache
    override = os.environ.get(CODE_SALT_ENV)
    if override:
        return override
    if _code_salt_cache is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
        _code_salt_cache = digest.hexdigest()
    return _code_salt_cache


def cell_key(spec) -> str:
    """Content-address of a cell: spec hash salted by the code version."""
    return stable_hash([canonical(spec), code_salt()])
