"""Cell specification: the unit of work a campaign schedules.

A cell is one managed run — the paper's atomic measurement: one
``JobConfig`` executed under one approach with one run index. The
harnesses' medians, pairings and sweeps are all compositions of cells,
which makes the cell the natural unit for parallel fan-out and
content-addressed caching.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.workloads import JobConfig, JobResult

__all__ = ["CellSpec", "cell_label", "cell_units", "run_cell"]


@dataclass(frozen=True)
class CellSpec:
    """One managed run: approach × job config × run index.

    ``controller_kwargs`` are forwarded to
    :func:`repro.experiments.runner.build_controller` (e.g. ``window``,
    ``sim_share``); they are part of the cell's identity and therefore
    of its cache key.
    """

    approach: str
    cfg: JobConfig
    run_index: int = 0
    controller_kwargs: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.run_index < 0:
            raise ValueError("run_index must be >= 0")


def cell_label(spec: CellSpec) -> str:
    """Compact human-readable label for journals and progress lines."""
    cfg = spec.cfg
    return (
        f"{spec.approach}/{'+'.join(cfg.analyses)}"
        f"/d{cfg.dim}/n{cfg.n_nodes}/s{cfg.seed}/r{spec.run_index}"
    )


def cell_units(spec: CellSpec) -> float:
    """A-priori relative cost of a cell, in abstract units.

    Only the *ranking* matters (longest-first placement); the
    scheduler's cost model calibrates units to wall seconds from
    observed cells. Cost scales with the simulated work: Verlet steps
    dominate, with node count and analysis fan-out as secondary
    factors.
    """
    cfg = spec.cfg
    return (
        float(cfg.n_verlet_steps)
        * (1.0 + 0.25 * len(cfg.analyses))
        * (1.0 + cfg.n_nodes / 256.0)
    )


def run_cell(spec: CellSpec) -> JobResult:
    """Execute one cell. Pure: the result depends only on ``spec``.

    Runs in pool workers and in-process alike; determinism comes from
    the job's name-addressed RNG streams, which derive entirely from
    ``cfg.seed`` and ``run_index``.
    """
    # imported lazily: repro.experiments.runner submits through this
    # package, so a module-level import would be circular
    from repro.experiments.runner import build_controller
    from repro.workloads import run_job

    controller = build_controller(
        spec.approach, spec.cfg, **spec.controller_kwargs
    )
    return run_job(spec.cfg, controller, run_index=spec.run_index)
