"""Campaign checkpoint/resume: replay the run journal as a ledger.

A file-backed :class:`~repro.campaign.journal.RunJournal` is more than
a log — together with the content-addressed
:class:`~repro.campaign.store.CellStore` it is a **checkpoint** of the
campaign:

* the ``campaign`` header records the campaign id and the exact CLI
  inputs (experiments, overrides, jobs, cache directory) needed to
  re-enter the campaign;
* ``scheduled`` rows record every cell fingerprint the engine
  enqueued for execution;
* completed ``cell`` rows (``done``/``retried``/``hit``/``dup``)
  record which fingerprints finished — and their results live in the
  store under those same fingerprints.

``campaign resume <journal>`` therefore needs no new state: it reloads
this ledger, re-runs the recorded experiments through an engine wired
to the same store, and every finished cell is served from the store
(zero recomputation) while in-flight and never-started cells execute
normally. Because cells are deterministic and content-addressed, the
resumed campaign's merged results are **bit-identical** to an
uninterrupted run — pinned by the resume regression tests.

This module is pure bookkeeping (parse + verify); the CLI owns the
actual re-execution so the experiment registry stays in one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.campaign.hashing import stable_hash
from repro.campaign.journal import COMPLETED_STATUSES, read_records

__all__ = [
    "CampaignLedger",
    "campaign_id",
    "campaign_meta",
    "load_ledger",
]


def campaign_meta(
    experiments: list[str],
    overrides: dict,
    jobs: int,
    cache: str | None,
    output: str | None = None,
    no_shared_replica: bool = False,
    faulted: bool = False,
) -> dict:
    """The JSON-able header payload ``campaign resume`` replays from."""
    return {
        "experiments": list(experiments),
        "overrides": dict(overrides),
        "jobs": jobs,
        "cache": cache,
        "output": output,
        "no_shared_replica": bool(no_shared_replica),
        "faulted": bool(faulted),
    }


def campaign_id(meta: dict) -> str:
    """Stable fingerprint of a campaign's inputs (not of its timing)."""
    return stable_hash(meta)[:16]


@dataclass
class CampaignLedger:
    """Everything a journal says about a campaign's progress."""

    path: Path
    #: the latest ``campaign`` header record (None in legacy journals)
    campaign: dict | None = None
    #: number of ``resume`` records (how many legs ran before this one)
    resumes: int = 0
    #: fingerprints the engine enqueued for execution
    scheduled: set = field(default_factory=set)
    #: fingerprints whose results are available (done/retried/hit/dup)
    completed: set = field(default_factory=set)
    #: fingerprints that exhausted every attempt
    failed: set = field(default_factory=set)
    #: number of summary records (>= 1 means the campaign finished)
    summaries: int = 0

    @property
    def in_flight(self) -> set:
        """Scheduled but never completed: killed mid-execution."""
        return self.scheduled - self.completed - self.failed

    @property
    def finished(self) -> bool:
        return self.summaries > 0 and not self.in_flight

    def describe(self) -> str:
        """Human-readable status block for ``campaign status``."""
        lines = []
        if self.campaign is None:
            lines.append("no campaign header (not a resumable journal)")
        else:
            lines.append(f"campaign      {self.campaign.get('id', '?')}")
            meta = self.campaign
            lines.append(
                f"experiments   {', '.join(meta.get('experiments', []))}"
            )
            lines.append(f"jobs          {meta.get('jobs')}")
            lines.append(f"cache         {meta.get('cache') or '(disabled)'}")
            if meta.get("faulted"):
                lines.append("faulted       yes (not resumable)")
        lines.append(f"legs          {1 + self.resumes}")
        lines.append(f"completed     {len(self.completed)} cells")
        lines.append(f"in flight     {len(self.in_flight)} cells")
        if self.failed:
            lines.append(f"failed        {len(self.failed)} cells")
        lines.append(
            "state         "
            + ("finished" if self.finished else "interrupted (resumable)")
        )
        return "\n".join(lines)


def load_ledger(path: Path | str) -> CampaignLedger:
    """Parse a journal into a :class:`CampaignLedger`.

    Tolerant by construction: the journal is read under its shared
    advisory lock via :func:`repro.campaign.journal.read_records`, so
    a writer mid-append can never hand us half a record; a torn tail
    (crashed writer, lockless filesystem) and unknown events are
    skipped — the ledger only ever *under*-counts completions, which
    makes resume conservative, never wrong.
    """
    path = Path(path)
    ledger = CampaignLedger(path=path)
    for record in read_records(path):
        event = record.get("event")
        if event == "campaign":
            ledger.campaign = record
        elif event == "resume":
            ledger.resumes += 1
        elif event == "scheduled":
            ledger.scheduled.update(record.get("keys", ()))
        elif event == "summary":
            ledger.summaries += 1
        elif event == "cell":
            key = record.get("key")
            status = record.get("status")
            if not key:
                continue
            if status in COMPLETED_STATUSES:
                ledger.completed.add(key)
                ledger.failed.discard(key)
            elif status == "failed":
                ledger.failed.add(key)
    return ledger
