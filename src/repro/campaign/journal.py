"""Structured JSONL run journal — a replayable campaign ledger.

One line per cell event (``{"event": "cell", ...}``) with the cache
key, status, wall time, attempt number, backend and worker id, plus
engine-level events (pool fallback, batch boundaries), telemetry
records (via :class:`repro.telemetry.JournalSink`) and a final
summary. The journal doubles as the campaign's counters — hits,
misses, errors, timeouts, retries — which the CLI and the tests read
back without parsing the file.

Ledger records (see :mod:`repro.campaign.resume`) make a journal
replayable: a ``campaign`` header pins the campaign id and the exact
CLI inputs (experiments, overrides, cache directory), ``scheduled``
rows record every cell fingerprint the engine enqueued, and the
per-cell rows record which fingerprints completed. ``campaign resume``
reconstructs the set of finished/in-flight cells from those rows
alone.

Crash tolerance: every record is flushed and fsynced (falling back to
a plain flush where fsync is unsupported), and opening an existing
journal for append first repairs a truncated final line — a crashed
writer's partial record is dropped so the resumed journal stays
line-parseable end to end.

Concurrent writers: every append (and the open-time tail repair) runs
under an exclusive ``flock`` on the journal file itself, so two
campaigns sharing one journal can interleave *records* but never
*bytes* — each line lands whole. Without ``fcntl`` (non-POSIX) the
lock degrades to best-effort unlocked appends.
"""

from __future__ import annotations

import contextlib
import json
import os
import time
from pathlib import Path
from typing import TextIO

try:  # POSIX advisory locking; degrade gracefully elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None  # type: ignore[assignment]

__all__ = ["RunJournal", "read_records", "tail_records"]


@contextlib.contextmanager
def _flocked(fh, shared: bool = False):
    """Advisory lock on ``fh`` for the scope (best-effort).

    Exclusive by default (writers); ``shared=True`` takes the read
    lock, so readers serialize against appends and the open-time tail
    repair but not against each other.
    """
    locked = False
    if fcntl is not None:
        try:
            fcntl.flock(
                fh.fileno(), fcntl.LOCK_SH if shared else fcntl.LOCK_EX
            )
            locked = True
        except (OSError, ValueError):
            pass  # unlockable file object: fall through unlocked
    try:
        yield
    finally:
        if locked:
            with contextlib.suppress(OSError, ValueError):
                fcntl.flock(fh.fileno(), fcntl.LOCK_UN)


def _repair_truncated_tail(path: Path) -> None:
    """Drop a partial (newline-less) final line left by a crash.

    Runs under the same advisory lock as appends, so a live writer's
    in-progress record can never be mistaken for a crashed tail.
    """
    try:
        size = path.stat().st_size
    except OSError:
        return
    if size == 0:
        return
    with path.open("rb+") as fh, _flocked(fh):
        size = os.fstat(fh.fileno()).st_size  # re-read under the lock
        if size == 0:
            return
        # scan backwards in chunks for the last newline
        chunk = 4096
        pos = size
        last_nl = -1
        while pos > 0 and last_nl < 0:
            step = min(chunk, pos)
            pos -= step
            fh.seek(pos)
            data = fh.read(step)
            idx = data.rfind(b"\n")
            if idx >= 0:
                last_nl = pos + idx
        if last_nl == size - 1:
            return  # final line is complete
        fh.truncate(last_nl + 1 if last_nl >= 0 else 0)

# ---------------------------------------------------------------------
# read side: tolerant, locked, torn-tail-aware record access
#
# ``campaign status``/``watch``/``report`` read journals that another
# process may be appending to right now. These helpers take the same
# advisory lock as the writers (shared mode) and treat a newline-less
# final line as not-yet-written rather than as an error — the read-only
# twin of the open-time tail repair above.


def _parse_lines(data: bytes) -> list[dict]:
    """JSON records from complete lines; unparseable lines skipped."""
    records: list[dict] = []
    for line in data.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except (json.JSONDecodeError, UnicodeDecodeError):
            continue
        if isinstance(record, dict):
            records.append(record)
    return records


def read_records(path: Path | str) -> list[dict]:
    """Every complete record in the journal at ``path``.

    Safe against a concurrent writer: the read happens under the
    journal's shared advisory lock and stops at the last newline, so a
    torn tail (a writer mid-append on a lockless filesystem, or a
    crashed writer's partial record) is silently excluded instead of
    failing the read. A missing file reads as an empty journal.
    """
    records, _ = tail_records(path, 0)
    return records


def tail_records(path: Path | str, offset: int) -> tuple[list[dict], int]:
    """Complete records appended at/after byte ``offset``; new offset.

    The incremental read behind ``campaign watch``: each call returns
    the records whose final newline has landed since the last call and
    the offset to resume from. A partial final line stays unread until
    its newline arrives — the returned offset never points inside a
    record.
    """
    path = Path(path)
    try:
        with path.open("rb") as fh, _flocked(fh, shared=True):
            fh.seek(offset)
            data = fh.read()
    except OSError:
        return [], offset
    end = data.rfind(b"\n")
    if end < 0:
        return [], offset
    return _parse_lines(data[: end + 1]), offset + end + 1


#: cell statuses that count as an executed (non-cached) cell
_EXECUTED = frozenset({"done", "retried"})

#: cell statuses that mean the cell's result is available (computed,
#: cached, deduplicated, or observed from a concurrent campaign)
COMPLETED_STATUSES = frozenset({"done", "retried", "hit", "dup"})


class RunJournal:
    """Counter-accumulating JSONL writer (file optional).

    With ``path=None`` the journal only keeps counters — the engine
    always journals, writing to disk only when asked to.
    """

    def __init__(self, path: Path | str | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self._fh: TextIO | None = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            if self.path.exists():
                _repair_truncated_tail(self.path)
            self._fh = self.path.open("a")
        self.counts = {
            "cells": 0,
            "hits": 0,
            "misses": 0,
            "dups": 0,
            "shared": 0,
            "errors": 0,
            "timeouts": 0,
            "retries": 0,
            "failed": 0,
        }

    # ------------------------------------------------------------------
    def _write(self, record: dict) -> None:
        if self._fh is not None:
            line = json.dumps(record, sort_keys=True) + "\n"
            with _flocked(self._fh):
                self._fh.write(line)
                self._fh.flush()
                try:
                    os.fsync(self._fh.fileno())
                except (OSError, ValueError):
                    pass  # fsync-or-flush: some filesystems refuse fsync

    def event(self, kind: str, **fields) -> None:
        """Engine-level event (pool fallback, batch start, ...)."""
        self._write({"event": kind, "ts": time.time(), **fields})

    def telemetry(self, record: dict) -> None:
        """One tracer record (see :class:`repro.telemetry.JournalSink`)."""
        self._write({"event": "telemetry", **record})

    # ------------------------------------------------------ ledger rows
    def campaign(self, campaign_id: str, **meta) -> None:
        """The campaign header: id + everything resume needs to rerun."""
        self._write(
            {"event": "campaign", "ts": time.time(), "id": campaign_id, **meta}
        )

    def scheduled(self, keys: list[str]) -> None:
        """Fingerprints of cells the engine is about to execute.

        A key that appears here without a later completed ``cell`` row
        was in flight when the campaign died — resume re-enqueues it.
        """
        if keys:
            self._write(
                {"event": "scheduled", "ts": time.time(), "keys": list(keys)}
            )

    def resume(self, campaign_id: str, **meta) -> None:
        """Mark a resumed leg of the campaign."""
        self._write(
            {"event": "resume", "ts": time.time(), "id": campaign_id, **meta}
        )

    def cell(
        self,
        key: str,
        label: str,
        status: str,
        wall_s: float,
        attempt: int = 1,
        backend: str = "serial",
        worker: int | None = None,
        **extra,
    ) -> None:
        """One cell outcome.

        ``status``: ``hit`` (cache), ``dup`` (deduplicated within the
        batch), ``done`` (executed first try), ``retried`` (executed
        after failures), ``error``/``timeout`` (one failed attempt),
        ``failed`` (all attempts exhausted). A ``hit`` with
        ``via="single-flight"`` was computed by a concurrent campaign
        sharing the store and observed rather than recomputed.
        """
        if status == "hit":
            self.counts["cells"] += 1
            self.counts["hits"] += 1
            if extra.get("via") == "single-flight":
                self.counts["shared"] += 1
        elif status == "dup":
            self.counts["cells"] += 1
            self.counts["dups"] += 1
        elif status in _EXECUTED:
            self.counts["cells"] += 1
            self.counts["misses"] += 1
            if status == "retried":
                self.counts["retries"] += 1
        elif status == "error":
            self.counts["errors"] += 1
        elif status == "timeout":
            self.counts["timeouts"] += 1
        elif status == "failed":
            self.counts["failed"] += 1
        self._write(
            {
                "event": "cell",
                "ts": time.time(),
                "key": key,
                "label": label,
                "status": status,
                "wall_s": round(wall_s, 6),
                "attempt": attempt,
                "backend": backend,
                "worker": worker,
                **extra,
            }
        )

    def summary(self, **extra) -> dict:
        """Write and return the summary record (counters + extras)."""
        record = {"event": "summary", "ts": time.time(), **self.counts, **extra}
        self._write(record)
        return record

    # ------------------------------------------------------------------
    @property
    def all_hits(self) -> bool:
        """True when every scheduled cell was served from the cache."""
        return self.counts["cells"] > 0 and self.counts["hits"] == self.counts["cells"]

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
