"""Structured JSONL run journal.

One line per cell event (``{"event": "cell", ...}``) with the cache
key, status, wall time, attempt number, backend and worker id, plus
engine-level events (pool fallback, batch boundaries) and a final
summary. The journal doubles as the campaign's counters — hits,
misses, errors, timeouts, retries — which the CLI and the tests read
back without parsing the file.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

__all__ = ["RunJournal"]

#: cell statuses that count as an executed (non-cached) cell
_EXECUTED = frozenset({"done", "retried"})


class RunJournal:
    """Counter-accumulating JSONL writer (file optional).

    With ``path=None`` the journal only keeps counters — the engine
    always journals, writing to disk only when asked to.
    """

    def __init__(self, path: Path | str | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self._fh = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("a")
        self.counts = {
            "cells": 0,
            "hits": 0,
            "misses": 0,
            "dups": 0,
            "errors": 0,
            "timeouts": 0,
            "retries": 0,
            "failed": 0,
        }

    # ------------------------------------------------------------------
    def _write(self, record: dict) -> None:
        if self._fh is not None:
            self._fh.write(json.dumps(record, sort_keys=True) + "\n")
            self._fh.flush()

    def event(self, kind: str, **fields) -> None:
        """Engine-level event (pool fallback, batch start, ...)."""
        self._write({"event": kind, "ts": time.time(), **fields})

    def cell(
        self,
        key: str,
        label: str,
        status: str,
        wall_s: float,
        attempt: int = 1,
        backend: str = "serial",
        worker: int | None = None,
        **extra,
    ) -> None:
        """One cell outcome.

        ``status``: ``hit`` (cache), ``dup`` (deduplicated within the
        batch), ``done`` (executed first try), ``retried`` (executed
        after failures), ``error``/``timeout`` (one failed attempt),
        ``failed`` (all attempts exhausted).
        """
        if status == "hit":
            self.counts["cells"] += 1
            self.counts["hits"] += 1
        elif status == "dup":
            self.counts["cells"] += 1
            self.counts["dups"] += 1
        elif status in _EXECUTED:
            self.counts["cells"] += 1
            self.counts["misses"] += 1
            if status == "retried":
                self.counts["retries"] += 1
        elif status == "error":
            self.counts["errors"] += 1
        elif status == "timeout":
            self.counts["timeouts"] += 1
        elif status == "failed":
            self.counts["failed"] += 1
        self._write(
            {
                "event": "cell",
                "ts": time.time(),
                "key": key,
                "label": label,
                "status": status,
                "wall_s": round(wall_s, 6),
                "attempt": attempt,
                "backend": backend,
                "worker": worker,
                **extra,
            }
        )

    def summary(self, **extra) -> dict:
        """Write and return the summary record (counters + extras)."""
        record = {"event": "summary", "ts": time.time(), **self.counts, **extra}
        self._write(record)
        return record

    # ------------------------------------------------------------------
    @property
    def all_hits(self) -> bool:
        """True when every scheduled cell was served from the cache."""
        return self.counts["cells"] > 0 and self.counts["hits"] == self.counts["cells"]

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
