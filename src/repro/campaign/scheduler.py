"""Cost-model-informed work-stealing scheduler over a warm worker pool.

The first campaign engine fanned cells out with a one-shot
``ProcessPoolExecutor.map``: FIFO order, a fresh pool per batch, no
visibility into worker skew. Real sweeps are skewed — a 1024-node
Table 1 cell costs orders of magnitude more than an 8-node smoke cell —
so FIFO routinely parks the longest cell on the last idle worker and
stretches the campaign's tail (the slack COUNTDOWN-style schedulers
exploit). This module replaces it with:

* a :class:`CostModel` that ranks cells by an a-priori cost estimate
  (Verlet steps x nodes x analyses) and calibrates a units->seconds
  scale from observed wall times (EWMA), giving longest-first order
  and a live ETA;
* a :class:`WorkerPool` of **persistent** worker processes — spawned
  once per engine, kept warm across batches, each wired to the parent
  by a private pair of pipes so one crashing worker can never corrupt
  a sibling's result stream;
* a :class:`WorkStealingScheduler` that assigns cells to per-worker
  queues longest-first (LPT), dispatches **adaptive chunks** (large
  while queues are deep to amortize IPC, shrinking to single cells near
  the tail), keeps at most one chunk in flight per worker
  (backpressure: memory stays bounded no matter how large the sweep),
  and lets an idle worker **steal** from the most loaded sibling's
  cheap end;
* per-worker utilization, steal counts, queue depth and ETA, exposed
  as :class:`SchedulerStats` and mirrored into the ambient
  :mod:`repro.metrics` registry.

The scheduler only *orders and places* work — cells stay deterministic,
so any schedule yields bit-identical results (pinned by the tests).
"""

from __future__ import annotations

import atexit
import itertools
import os
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection
from typing import Any, Callable, Iterator, Sequence

from repro.campaign.cells import CellSpec, cell_units
from repro.metrics import get_metrics

__all__ = [
    "CostModel",
    "SchedulerStats",
    "SchedulerUnavailable",
    "Task",
    "TaskOutcome",
    "WorkerPool",
    "WorkStealingScheduler",
    "WorkerStats",
]


class SchedulerUnavailable(RuntimeError):
    """The worker pool cannot run here (no fork/pipes/semaphores)."""


# ---------------------------------------------------------------------------
# cost model


class CostModel:
    """A-priori cell cost in abstract units, calibrated to seconds.

    ``estimate`` must be cheap and deterministic — it only has to *rank*
    cells well enough for longest-first placement. ``observe`` feeds
    measured wall times back in; after the first observation
    ``predict_s`` turns remaining units into an ETA.
    """

    def __init__(self, alpha: float = 0.3) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        #: EWMA of seconds per unit (None until first observation)
        self.scale: float | None = None
        self.observations = 0

    def estimate(self, spec: CellSpec) -> float:
        """Relative cost of ``spec`` in abstract units (> 0)."""
        return cell_units(spec)

    def observe(self, units: float, wall_s: float) -> None:
        """Calibrate with one measured ``(units, wall_s)`` sample."""
        if units <= 0.0 or wall_s < 0.0:
            return
        sample = wall_s / units
        if self.scale is None:
            self.scale = sample
        else:
            self.scale += self.alpha * (sample - self.scale)
        self.observations += 1

    def predict_s(self, units: float) -> float | None:
        """Wall-second prediction for ``units``, or None uncalibrated."""
        if self.scale is None:
            return None
        return units * self.scale


# ---------------------------------------------------------------------------
# tasks and outcomes


@dataclass(frozen=True)
class Task:
    """One schedulable cell: an opaque id, its spec, its cost units."""

    task_id: int
    spec: CellSpec
    cost: float


@dataclass(frozen=True)
class TaskOutcome:
    """What happened to one dispatched task.

    ``status``: ``ok`` (result present), ``error`` (the cell raised in
    the worker), ``timeout`` (no progress within ``timeout_s``; the
    worker was killed), ``lost`` (the worker died mid-cell).

    ``wid`` is the worker *slot* (stable across respawns; ``-1`` when
    no worker ran the cell); ``worker`` is the executing pid where
    known. ``telemetry`` is the shipped tracer-record batch the worker
    piggybacked on this result frame (None when shipping is off or the
    cell emitted nothing) — see :mod:`repro.obs.ship`.
    """

    task_id: int
    status: str
    worker: int
    wall_s: float = 0.0
    result: object = None
    error: str = ""
    wid: int = -1
    telemetry: dict | None = None


@dataclass
class WorkerStats:
    """Per-worker accounting over one scheduler run."""

    wid: int
    pid: int | None = None
    cells: int = 0
    busy_s: float = 0.0
    stolen_cells: int = 0
    respawns: int = 0

    def utilization(self, wall_s: float) -> float:
        return self.busy_s / wall_s if wall_s > 0 else 0.0


@dataclass
class SchedulerStats:
    """One run's scheduling telemetry (also mirrored into metrics)."""

    n_workers: int = 0
    dispatches: int = 0
    steals: int = 0
    stolen_cells: int = 0
    max_queue_depth: int = 0
    wall_s: float = 0.0
    workers: list[WorkerStats] = field(default_factory=list)

    def utilization(self) -> float:
        """Mean fraction of the run each worker spent executing cells."""
        if not self.workers or self.wall_s <= 0:
            return 0.0
        busy = sum(w.busy_s for w in self.workers)
        return busy / (self.wall_s * len(self.workers))


# ---------------------------------------------------------------------------
# worker process


def _worker_main(
    wid: int,
    run_fn: Callable,
    conn_in,
    conn_out,
    parent_pid: int,
    ship: bool = False,
) -> None:
    """Worker loop: receive ``(chunk_id, [(task_id, spec), ...])``,
    execute each cell, stream one message back per cell.

    With ``ship`` on, each cell runs under a tracer bound to a bounded
    :class:`~repro.obs.ship.ShippingSink`; the drained batch rides the
    cell's own result frame (no extra pipe traffic), and the parent's
    :class:`~repro.obs.merge.TelemetryMux` re-stamps it into the
    campaign-wide stream.

    The loop polls rather than blocking in ``recv`` so it can notice a
    dead parent. Pipe EOF alone is not a reliable death signal under
    fork: sibling workers (and the worker itself) inherit duplicate
    parent-side pipe fds, so the write end may outlive the parent.
    Worse, a worker forked while the parent held cell leases inherits
    those ``flock`` fds — if it lingers after a SIGKILLed parent, the
    leases stay locked and a resumed campaign wedges in ``wait_for``.
    Exiting on re-parenting closes every inherited fd and releases the
    locks (pinned by ``test_sigkill_of_parent_reaps_pool_workers``).

    ``parent_pid`` comes from the parent's ``os.getpid()`` at spawn time:
    capturing ``os.getppid()`` here instead would race with parent death —
    a worker whose parent is killed before this line runs would record the
    reaper's pid and never notice the orphaning.
    """
    tracer = None
    sink = None
    if ship:
        from repro.obs.ship import ShippingSink
        from repro.telemetry import Tracer, use_tracer

        sink = ShippingSink(wid=wid)
        tracer = Tracer(sink)
    while True:
        try:
            if not conn_in.poll(0.5):
                if os.getppid() != parent_pid:
                    return  # orphaned: parent died without shutdown
                continue
            msg = conn_in.recv()
        except (EOFError, OSError):
            return
        if msg is None:
            return
        _chunk_id, items = msg
        for task_id, spec in items:
            t0 = time.perf_counter()
            try:
                if tracer is not None:
                    with use_tracer(tracer):
                        result = run_fn(spec)
                else:
                    result = run_fn(spec)
            except BaseException as exc:  # noqa: BLE001 - forwarded to parent
                batch = sink.drain() if sink is not None else None
                payload = (
                    "error",
                    wid,
                    task_id,
                    repr(exc),
                    time.perf_counter() - t0,
                    batch,
                )
            else:
                batch = sink.drain() if sink is not None else None
                payload = (
                    "ok",
                    wid,
                    task_id,
                    result,
                    time.perf_counter() - t0,
                    batch,
                )
            try:
                conn_out.send(payload)
            except (BrokenPipeError, OSError):
                return


class _Worker:
    """Parent-side handle: process + private pipes + dispatch state."""

    __slots__ = (
        "wid",
        "proc",
        "conn_send",
        "conn_recv",
        "outstanding",
        "last_activity",
        "stats",
    )

    def __init__(self, wid: int) -> None:
        self.wid = wid
        # process/pipe handles live only while the slot is running; the
        # concrete types come from the multiprocessing context at spawn
        self.proc: Any = None
        self.conn_send: Any = None
        self.conn_recv: Any = None
        #: task_id -> Task currently dispatched to this worker
        self.outstanding: dict[int, Task] = {}
        self.last_activity = 0.0
        self.stats = WorkerStats(wid=wid)

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.is_alive()

    def close(self) -> None:
        for conn in (self.conn_send, self.conn_recv):
            if conn is not None:
                try:
                    conn.close()
                except OSError:
                    pass
        self.conn_send = self.conn_recv = None


class WorkerPool:
    """A warm, persistent pool of cell-executing worker processes.

    Unlike ``ProcessPoolExecutor`` the pool survives across batches
    (campaigns are many small batches — one per data point — and
    process spawn cost would otherwise dominate short cells), and each
    worker has private result pipes, so a killed or crashed worker is
    contained: its sibling streams keep working and the slot is
    respawned in place.
    """

    def __init__(
        self,
        n_workers: int,
        run_fn: Callable,
        ship: bool | None = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = n_workers
        self.run_fn = run_fn
        if ship is None:
            # resolved in the parent at pool construction so one
            # campaign's workers are uniformly on or off regardless of
            # later environment edits
            from repro.obs.ship import shipping_enabled

            ship = shipping_enabled()
        self.ship = ship
        self._workers: list[_Worker] = []
        self._mp: Any = None  # multiprocessing context, set on first start
        self._started = False
        self._closed = False
        self._chunk_ids = itertools.count()
        atexit.register(self.shutdown)

    # ------------------------------------------------------------ state
    @property
    def workers(self) -> list[_Worker]:
        return self._workers

    def ensure_started(self) -> None:
        """Spawn the workers (idempotent). Raises
        :class:`SchedulerUnavailable` in restricted environments."""
        if self._closed:
            raise SchedulerUnavailable("pool already shut down")
        if self._started:
            return
        try:
            import multiprocessing as mp

            self._mp = mp.get_context()
            self._workers = [_Worker(wid) for wid in range(self.n_workers)]
            for worker in self._workers:
                self._spawn(worker)
        except SchedulerUnavailable:
            raise
        except Exception as exc:  # no fork/pipes/semaphores here
            self.shutdown()
            raise SchedulerUnavailable(repr(exc)) from exc
        self._started = True

    def _spawn(self, worker: _Worker) -> None:
        """(Re)start one worker slot with fresh private pipes."""
        worker.close()
        # Pipe(duplex=False) returns (recv_end, send_end)
        inbox_recv, inbox_send = self._mp.Pipe(duplex=False)
        outbox_recv, outbox_send = self._mp.Pipe(duplex=False)
        proc = self._mp.Process(
            target=_worker_main,
            args=(
                worker.wid,
                self.run_fn,
                inbox_recv,
                outbox_send,
                os.getpid(),
                self.ship,
            ),
            daemon=True,
            name=f"campaign-worker-{worker.wid}",
        )
        proc.start()
        # close the child's ends in the parent so a dead worker reads
        # as EOF on its outbox instead of hanging connection.wait
        inbox_recv.close()
        outbox_send.close()
        worker.conn_send = inbox_send
        worker.conn_recv = outbox_recv
        worker.proc = proc
        worker.outstanding = {}
        worker.last_activity = time.perf_counter()
        worker.stats.pid = proc.pid

    def respawn(self, worker: _Worker) -> None:
        """Kill (if needed) and restart one slot; outstanding tasks are
        the caller's to re-handle."""
        if worker.proc is not None and worker.proc.is_alive():
            worker.proc.kill()
            worker.proc.join(timeout=5.0)
        self._spawn(worker)
        worker.stats.respawns += 1

    def dispatch(self, worker: _Worker, tasks: Sequence[Task]) -> None:
        chunk_id = next(self._chunk_ids)
        worker.conn_send.send(
            (chunk_id, [(t.task_id, t.spec) for t in tasks])
        )
        now = time.perf_counter()
        worker.last_activity = now
        for t in tasks:
            worker.outstanding[t.task_id] = t

    def shutdown(self) -> None:
        """Stop every worker; safe to call repeatedly."""
        self._closed = True
        workers, self._workers = self._workers, []
        for worker in workers:
            try:
                if worker.conn_send is not None and worker.alive:
                    worker.conn_send.send(None)
            except (BrokenPipeError, OSError):
                pass
        for worker in workers:
            if worker.proc is not None:
                worker.proc.join(timeout=1.0)
                if worker.proc.is_alive():
                    worker.proc.kill()
                    worker.proc.join(timeout=1.0)
            worker.close()
        self._started = False


# ---------------------------------------------------------------------------
# the scheduler


class WorkStealingScheduler:
    """Longest-first placement + adaptive chunking + work stealing.

    ``longest_first=False, steal=False, static_chunks=True`` degrades
    to the classic one-shot FIFO/static split — kept as the measured
    baseline for the scale-out benchmark, not for production use.
    """

    #: never dispatch more than this many cells in one chunk
    MAX_CHUNK = 8
    #: poll interval while waiting for worker messages
    POLL_S = 0.05

    def __init__(
        self,
        pool: WorkerPool,
        cost_model: CostModel | None = None,
        longest_first: bool = True,
        steal: bool = True,
        static_chunks: bool = False,
        max_respawns: int | None = None,
    ) -> None:
        self.pool = pool
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.longest_first = longest_first
        self.steal = steal
        self.static_chunks = static_chunks
        self.max_respawns = (
            max_respawns if max_respawns is not None else 2 * pool.n_workers
        )
        self.stats = SchedulerStats()
        self._queues: list[deque[Task]] = []

    # ------------------------------------------------------------ public
    def run(
        self,
        specs: Sequence[CellSpec],
        timeout_s: float | None = None,
    ) -> Iterator[TaskOutcome]:
        """Schedule ``specs``; yield one :class:`TaskOutcome` per spec
        as cells complete (completion order, not submission order).

        Raises :class:`SchedulerUnavailable` before yielding anything
        when no pool can be started — callers fall back to serial.
        """
        self.pool.ensure_started()
        tasks = [
            Task(i, spec, self.cost_model.estimate(spec))
            for i, spec in enumerate(specs)
        ]
        yield from self._run(tasks, timeout_s)

    def eta_s(self) -> float | None:
        """Predicted wall seconds to drain the remaining queue."""
        remaining = sum(t.cost for q in self._queues for t in q)
        for worker in self.pool.workers:
            remaining += sum(t.cost for t in worker.outstanding.values())
        if remaining <= 0.0:
            return 0.0
        per_worker = remaining / max(1, self.pool.n_workers)
        return self.cost_model.predict_s(per_worker)

    # ---------------------------------------------------------- internals
    def _assign(self, tasks: Sequence[Task]) -> None:
        """Fill the per-worker queues.

        Longest-first: sort descending by cost, place each task on the
        currently lightest queue (LPT). FIFO baseline: contiguous
        blocks in submission order (what a one-shot ``map`` does).
        """
        n = self.pool.n_workers
        self._queues = [deque() for _ in range(n)]
        if self.longest_first:
            loads = [0.0] * n
            for task in sorted(tasks, key=lambda t: -t.cost):
                slot = loads.index(min(loads))
                self._queues[slot].append(task)
                loads[slot] += task.cost
        else:
            block = max(1, -(-len(tasks) // n))
            for slot in range(n):
                for task in tasks[slot * block : (slot + 1) * block]:
                    self._queues[slot].append(task)

    def _chunk_size(self, queue_len: int) -> int:
        """Guided sizing: big chunks while the queue is deep (amortize
        IPC), single cells near the tail (keep stealing effective)."""
        if self.static_chunks:
            return max(1, queue_len)
        return max(1, min(self.MAX_CHUNK, queue_len // 4))

    def _take_chunk(self, slot: int) -> list[Task]:
        """Next chunk for worker ``slot``: own queue first, else steal
        from the most loaded sibling's cheap end."""
        own = self._queues[slot]
        if not own and self.steal:
            victim_slot, victim = max(
                enumerate(self._queues),
                key=lambda sq: sum(t.cost for t in sq[1]),
            )
            if victim and victim_slot != slot:
                n_steal = max(1, len(victim) // 2)
                n_steal = min(n_steal, self.MAX_CHUNK)
                stolen = [victim.pop() for _ in range(n_steal)]
                self.stats.steals += 1
                self.stats.stolen_cells += len(stolen)
                if slot < len(self.pool.workers):
                    self.pool.workers[slot].stats.stolen_cells += len(stolen)
                get_metrics().counter("campaign.sched.steals").inc()
                get_metrics().counter("campaign.sched.stolen_cells").inc(
                    len(stolen)
                )
                return stolen
        chunk: list[Task] = []
        for _ in range(self._chunk_size(len(own))):
            if not own:
                break
            chunk.append(own.popleft())
        return chunk

    def _queue_depth(self) -> int:
        return sum(len(q) for q in self._queues)

    def _run(
        self, tasks: Sequence[Task], timeout_s: float | None
    ) -> Iterator[TaskOutcome]:
        metrics = get_metrics()
        pool = self.pool
        workers = pool.workers
        self.stats = SchedulerStats(n_workers=pool.n_workers)
        for worker in workers:
            worker.stats = WorkerStats(
                wid=worker.wid,
                pid=worker.proc.pid if worker.proc is not None else None,
            )
        self._assign(tasks)
        self.stats.max_queue_depth = self._queue_depth()
        respawns_left = self.max_respawns
        pending = len(tasks)
        t_start = time.perf_counter()

        def dispatch_idle() -> None:
            for worker in workers:
                if worker.outstanding or not worker.alive:
                    continue
                chunk = self._take_chunk(worker.wid)
                if not chunk:
                    continue
                pool.dispatch(worker, chunk)
                self.stats.dispatches += 1
                metrics.counter("campaign.sched.dispatches").inc()
                metrics.histogram("campaign.sched.chunk_cells").observe(
                    len(chunk)
                )
                metrics.gauge("campaign.sched.queue_depth").set(
                    self._queue_depth()
                )

        def fail_outstanding(worker: _Worker, status: str) -> list[TaskOutcome]:
            outcomes = [
                TaskOutcome(
                    task_id=t.task_id,
                    status=status,
                    worker=worker.wid,
                    error=f"worker {worker.wid} {status}",
                )
                for t in worker.outstanding.values()
            ]
            worker.outstanding = {}
            return outcomes

        try:
            while pending > 0:
                dispatch_idle()
                conns = {
                    worker.conn_recv: worker
                    for worker in workers
                    if worker.conn_recv is not None and worker.outstanding
                }
                if not conns:
                    if self._queue_depth() == 0:
                        # nothing in flight, nothing to dispatch: every
                        # remaining task was on a worker we gave up on
                        break
                    if not any(w.alive for w in workers):
                        # respawn budget exhausted with work remaining:
                        # surrender the queue to the serial fallback
                        for queue in self._queues:
                            while queue:
                                task = queue.popleft()
                                pending -= 1
                                yield TaskOutcome(
                                    task_id=task.task_id,
                                    status="lost",
                                    worker=-1,
                                    error="no live workers",
                                )
                        break
                    continue
                ready = connection.wait(list(conns), timeout=self.POLL_S)
                now = time.perf_counter()
                for conn in ready:
                    worker = conns[conn]
                    try:
                        msg = conn.recv()
                        kind, wid, task_id, payload, wall_s = msg[:5]
                        telemetry = msg[5] if len(msg) > 5 else None
                    except Exception:
                        continue  # death handled by liveness sweep below
                    task = worker.outstanding.pop(task_id, None)
                    if task is None:
                        continue  # stale message from a pre-respawn chunk
                    worker.last_activity = now
                    worker.stats.cells += 1
                    worker.stats.busy_s += wall_s
                    pending -= 1
                    if kind == "ok":
                        self.cost_model.observe(task.cost, wall_s)
                        yield TaskOutcome(
                            task_id=task_id,
                            status="ok",
                            worker=worker.stats.pid or wid,
                            wall_s=wall_s,
                            result=payload,
                            wid=worker.wid,
                            telemetry=telemetry,
                        )
                    else:
                        yield TaskOutcome(
                            task_id=task_id,
                            status="error",
                            worker=worker.stats.pid or wid,
                            wall_s=wall_s,
                            error=payload,
                            wid=worker.wid,
                            telemetry=telemetry,
                        )
                # liveness + timeout sweep
                for worker in workers:
                    if not worker.outstanding:
                        continue
                    hung = (
                        timeout_s is not None
                        and now - worker.last_activity > timeout_s
                    )
                    if not worker.alive or hung:
                        status = "lost" if not worker.alive else "timeout"
                        outcomes = fail_outstanding(worker, status)
                        pending -= len(outcomes)
                        if respawns_left > 0:
                            respawns_left -= 1
                            pool.respawn(worker)
                        elif worker.alive:
                            # over budget: kill the hung worker so no
                            # further chunks land on it
                            worker.proc.kill()
                            worker.proc.join(timeout=5.0)
                            worker.close()
                        yield from outcomes
                eta = self.eta_s()
                if eta is not None:
                    metrics.gauge("campaign.sched.eta_s").set(eta)
        finally:
            self.stats.wall_s = time.perf_counter() - t_start
            self.stats.workers = [w.stats for w in workers]
            if self.stats.wall_s > 0:
                for w in workers:
                    metrics.gauge(
                        f"campaign.sched.worker{w.wid}.utilization"
                    ).set(w.stats.utilization(self.stats.wall_s))
            metrics.gauge("campaign.sched.queue_depth").set(0)
