"""Periodic simulation box and minimum-image geometry.

LAMMPS-style orthogonal periodic box. All geometry helpers are
vectorized over ``(n, 3)`` coordinate arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Box"]


@dataclass(frozen=True)
class Box:
    """Cubic/orthorhombic periodic box with edge lengths ``lengths``."""

    lengths: np.ndarray  # shape (3,)

    def __post_init__(self) -> None:
        lengths = np.asarray(self.lengths, dtype=float)
        if lengths.shape != (3,):
            raise ValueError("box lengths must be a 3-vector")
        if np.any(lengths <= 0):
            raise ValueError("box lengths must be positive")
        object.__setattr__(self, "lengths", lengths)

    @classmethod
    def cubic(cls, edge: float) -> "Box":
        return cls(np.full(3, float(edge)))

    @property
    def volume(self) -> float:
        return float(np.prod(self.lengths))

    # ------------------------------------------------------------------
    def wrap(self, coords: np.ndarray) -> np.ndarray:
        """Map coordinates into [0, L) per dimension.

        ``np.mod`` of a tiny negative value rounds to exactly ``L``;
        fold that back to 0 so the result is strictly inside the box
        and wrapping is idempotent.
        """
        out = np.mod(coords, self.lengths)
        return np.where(out >= self.lengths, out - self.lengths, out)

    def minimum_image(self, dr: np.ndarray) -> np.ndarray:
        """Apply the minimum-image convention to displacement vectors."""
        return dr - self.lengths * np.round(dr / self.lengths)

    def distance(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Minimum-image distances between row-aligned coordinate sets."""
        dr = self.minimum_image(np.atleast_2d(a) - np.atleast_2d(b))
        return np.linalg.norm(dr, axis=-1)

    def replicate_factor(self, factor: int) -> "Box":
        """Box of a system replicated ``factor`` times per dimension."""
        if factor < 1:
            raise ValueError("replication factor must be >= 1")
        return Box(self.lengths * factor)
