"""Velocity-Verlet timestepping (the paper's §V driver).

Implements the standard velocity-Verlet split used by LAMMPS::

    v(t+dt/2) = v(t) + (dt/2) F(t)/m        # initial integration
    x(t+dt)   = x(t) + dt v(t+dt/2)
    ... neighbor rebuild if needed ...
    F(t+dt)   = force(x(t+dt))              # force computation
    v(t+dt)   = v(t+dt/2) + (dt/2) F(t+dt)/m  # final integration

with an optional Berendsen velocity-rescaling thermostat. Step
structure mirrors §V's flow: initial integration (1), data-structure
rebuild / neighbor update (3, 5), force + final integration (6). Steps
2, 4, 7 and 8 (exchange with the analysis partition, verification,
analysis invocation, thermo output) belong to the in-situ coupler in
:mod:`repro.insitu`.

:class:`StepReport` exposes per-step operation counts (pair count,
rebuild flag) — the calibration bridge between the *real* engine and
the DES workload profiles reads these.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.md.forces import ForceField, ForceResult
from repro.md.neighbor import NeighborList, build_neighbor_list
from repro.md.system import ParticleSystem

__all__ = ["StepReport", "VelocityVerlet"]


@dataclass(frozen=True)
class StepReport:
    """What happened during one Verlet step."""

    step: int
    potential_energy: float
    kinetic_energy: float
    temperature: float
    pair_count: int
    rebuilt_neighbors: bool

    @property
    def total_energy(self) -> float:
        return self.potential_energy + self.kinetic_energy


class VelocityVerlet:
    """Integrator owning the neighbor list and the force field."""

    def __init__(
        self,
        system: ParticleSystem,
        force_field: ForceField | None = None,
        dt: float = 0.002,
        skin: float = 0.3,
        thermostat_t: float | None = None,
        thermostat_tau: float = 0.5,
    ) -> None:
        if dt <= 0:
            raise ValueError("dt must be positive")
        self.system = system
        self.ff = force_field if force_field is not None else ForceField()
        self.dt = dt
        self.skin = skin
        self.thermostat_t = thermostat_t
        self.thermostat_tau = thermostat_tau
        self.step_count = 0
        self.rebuild_count = 0
        self._nlist = build_neighbor_list(
            system.positions, system.box, self.ff.cutoff, skin
        )
        self._forces: ForceResult = self.ff.compute(system, self._nlist)

    # ------------------------------------------------------------------
    @property
    def neighbor_list(self) -> NeighborList:
        return self._nlist

    @property
    def forces(self) -> ForceResult:
        return self._forces

    def _maybe_rebuild(self) -> bool:
        sys_ = self.system
        if self._nlist.needs_rebuild(sys_.positions, sys_.box):
            self._nlist = build_neighbor_list(
                sys_.positions, sys_.box, self.ff.cutoff, self.skin
            )
            self.rebuild_count += 1
            return True
        return False

    def _apply_thermostat(self) -> None:
        if self.thermostat_t is None:
            return
        current = self.system.temperature()
        if current <= 0:
            return
        lam = np.sqrt(
            1.0
            + (self.dt / self.thermostat_tau)
            * (self.thermostat_t / current - 1.0)
        )
        self.system.velocities *= lam

    def step(self) -> StepReport:
        """Advance one Verlet step and report what happened."""
        sys_ = self.system
        inv_m = 1.0 / sys_.masses[:, None]

        # (1) initial integration: half-kick + drift
        sys_.velocities += 0.5 * self.dt * self._forces.forces * inv_m
        new_pos = sys_.positions + self.dt * sys_.velocities
        # track periodic crossings for unwrapped trajectories
        crossings = np.floor(new_pos / sys_.box.lengths).astype(np.int64)
        sys_.images += crossings
        sys_.positions = sys_.box.wrap(new_pos)

        # (3, 5) rebuild data structures / neighbor lists when needed
        rebuilt = self._maybe_rebuild()

        # (6) force computation + final integration
        self._forces = self.ff.compute(sys_, self._nlist)
        sys_.velocities += 0.5 * self.dt * self._forces.forces * inv_m
        self._apply_thermostat()

        self.step_count += 1
        return StepReport(
            step=self.step_count,
            potential_energy=self._forces.potential_energy,
            kinetic_energy=sys_.kinetic_energy(),
            temperature=sys_.temperature(),
            pair_count=self._forces.pair_count,
            rebuilt_neighbors=rebuilt,
        )

    def run(self, n_steps: int) -> list[StepReport]:
        """Run ``n_steps`` and return the per-step reports."""
        return [self.step() for _ in range(n_steps)]
