"""Neighbor finding with a Verlet skin.

LAMMPS builds neighbor lists from a link-cell decomposition and
rebuilds them only when atoms have moved more than half the skin
distance — the paper's step 5 ("both partitions update neighbor
lists") is this operation. We reproduce the same *structure*
(half-neighbor pairs within ``cutoff + skin``, half-skin rebuild
criterion) and use :class:`scipy.spatial.cKDTree` with a periodic
``boxsize`` for the pair search itself — profiling showed a pure-Python
cell loop dominating step time (guide rule: measure, then pick the
better algorithm; the tree is the vectorized/compiled path available
offline).

A direct O(n²) minimum-image search remains as the fallback for boxes
too small for the periodic KD-tree (it requires the search radius to be
under half the box edge) and as the reference implementation the
property tests compare against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.spatial import cKDTree

from repro.md.box import Box

__all__ = ["NeighborList", "build_neighbor_list"]


def _pairs_bruteforce(
    positions: np.ndarray, box: Box, cutoff: float
) -> np.ndarray:
    """Reference O(n²) minimum-image pair search."""
    n = len(positions)
    ii, jj = np.triu_indices(n, k=1)
    d = box.distance(positions[ii], positions[jj])
    keep = d <= cutoff
    return np.stack([ii[keep], jj[keep]], axis=1)


def _pairs_within(
    positions: np.ndarray, box: Box, cutoff: float
) -> np.ndarray:
    """All unique (i < j) pairs within ``cutoff`` (periodic)."""
    n = len(positions)
    if n < 2:
        return np.zeros((0, 2), dtype=np.int64)
    if cutoff >= 0.5 * float(box.lengths.min()):
        # Periodic KD-tree needs r < L/2; tiny test boxes fall back.
        return _pairs_bruteforce(positions, box, cutoff)
    wrapped = box.wrap(positions)
    # boxsize demands coordinates strictly inside [0, L)
    wrapped = np.minimum(wrapped, np.nextafter(box.lengths, 0.0))
    tree = cKDTree(wrapped, boxsize=box.lengths)
    pairs = tree.query_pairs(cutoff, output_type="ndarray")
    if pairs.size == 0:
        return np.zeros((0, 2), dtype=np.int64)
    lo = np.minimum(pairs[:, 0], pairs[:, 1])
    hi = np.maximum(pairs[:, 0], pairs[:, 1])
    return np.stack([lo, hi], axis=1).astype(np.int64)


@dataclass
class NeighborList:
    """Half-neighbor pairs and the rebuild bookkeeping."""

    pairs: np.ndarray  # (m, 2) with i < j
    cutoff: float
    skin: float
    build_positions: np.ndarray  # positions at build time
    #: scratch buffers for the per-step rebuild criterion — the check
    #: runs every Verlet step, so the displacement temporaries are
    #: reused across calls instead of reallocated (3 (n, 3) arrays per
    #: step otherwise)
    _disp: np.ndarray | None = field(
        default=None, repr=False, compare=False
    )
    _quot: np.ndarray | None = field(
        default=None, repr=False, compare=False
    )
    _disp_sq: np.ndarray | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def n_pairs(self) -> int:
        return len(self.pairs)

    def needs_rebuild(self, positions: np.ndarray, box: Box) -> bool:
        """True when any atom moved more than half the skin."""
        n = len(positions)
        if n == 0:
            return False
        if self._disp is None or len(self._disp) != n:
            self._disp = np.empty((n, 3))
            self._quot = np.empty((n, 3))
            self._disp_sq = np.empty(n)
        d, q = self._disp, self._quot
        np.subtract(positions, self.build_positions, out=d)
        # in-place minimum image: d -= L * round(d / L)
        np.divide(d, box.lengths, out=q)
        np.round(q, out=q)
        q *= box.lengths
        d -= q
        np.einsum("ij,ij->i", d, d, out=self._disp_sq)
        # max |dr| > skin/2  <=>  max dr^2 > (skin/2)^2 (sqrt-free)
        return float(self._disp_sq.max()) > (0.5 * self.skin) ** 2


def build_neighbor_list(
    positions: np.ndarray, box: Box, cutoff: float, skin: float = 0.3
) -> NeighborList:
    """Build a fresh neighbor list within ``cutoff + skin``."""
    if cutoff <= 0 or skin < 0:
        raise ValueError("cutoff must be positive, skin non-negative")
    pairs = _pairs_within(positions, box, cutoff + skin)
    return NeighborList(
        pairs=pairs,
        cutoff=cutoff,
        skin=skin,
        build_positions=positions.copy(),
    )
