"""Thermodynamic output (the paper's step 8).

The paper requests "output of thermodynamic data at end of each time
step, which is also communication- and I/O-intensive" (§V). This
module computes the quantities (temperature, energies, pressure-like
virial estimate) and renders the LAMMPS-style thermo table; in the
in-situ coupler this output is what makes step 8 a collective+I/O
phase.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.md.system import ParticleSystem
from repro.md.verlet import StepReport

__all__ = ["ThermoRecord", "ThermoLog", "compute_thermo"]


@dataclass(frozen=True)
class ThermoRecord:
    step: int
    temperature: float
    kinetic_energy: float
    potential_energy: float
    total_energy: float
    density: float

    def as_row(self) -> str:
        return (
            f"{self.step:8d} {self.temperature:12.5f} "
            f"{self.kinetic_energy:14.4f} {self.potential_energy:14.4f} "
            f"{self.total_energy:14.4f} {self.density:10.5f}"
        )


HEADER = (
    f"{'Step':>8} {'Temp':>12} {'KinEng':>14} {'PotEng':>14} "
    f"{'TotEng':>14} {'Density':>10}"
)


def compute_thermo(system: ParticleSystem, report: StepReport) -> ThermoRecord:
    """Thermo quantities for one step from the system + step report."""
    return ThermoRecord(
        step=report.step,
        temperature=report.temperature,
        kinetic_energy=report.kinetic_energy,
        potential_energy=report.potential_energy,
        total_energy=report.total_energy,
        density=system.n_atoms / system.box.volume,
    )


class ThermoLog:
    """Accumulates thermo records; renders a LAMMPS-like table."""

    def __init__(self) -> None:
        self.records: list[ThermoRecord] = []

    def append(self, record: ThermoRecord) -> None:
        self.records.append(record)

    def render(self) -> str:
        lines = [HEADER]
        lines.extend(r.as_row() for r in self.records)
        return "\n".join(lines)

    def energy_drift(self) -> float:
        """Relative total-energy drift over the log (integrator QA)."""
        if len(self.records) < 2:
            return 0.0
        e = np.array([r.total_energy for r in self.records])
        ref = abs(e[0]) if e[0] != 0 else 1.0
        return float(abs(e[-1] - e[0]) / ref)
