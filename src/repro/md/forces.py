"""Force field: Lennard-Jones + screened Coulomb + harmonic bonds.

A deliberately compact but real force field:

* **Pair forces** act on the neighbor-list pairs: truncated-and-shifted
  Lennard-Jones with per-type-pair (epsilon, sigma) from
  Lorentz–Berthelot mixing, plus a Yukawa-screened Coulomb term
  ``q_i q_j exp(-kappa r) / r`` (short-ranged, so no Ewald machinery is
  needed — the paper's controllers never depend on electrostatics
  accuracy, only on the force loop being a genuine compute-bound
  kernel).
* **Bond forces**: harmonic O–H bonds inside water molecules.

Everything is vectorized over the pair list; the returned
:class:`ForceResult` carries the potential energy and the pair count,
which the workload calibration uses as the operation-count anchor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.md.neighbor import NeighborList
from repro.md.system import CHARGES, ParticleSystem
from repro.util.scatter import scatter_add_pairs

__all__ = ["ForceField", "ForceResult"]


def _lorentz_berthelot(eps: np.ndarray, sig: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    eps_pair = np.sqrt(eps[:, None] * eps[None, :])
    sig_pair = 0.5 * (sig[:, None] + sig[None, :])
    return eps_pair, sig_pair


@dataclass
class ForceResult:
    forces: np.ndarray  # (n, 3)
    potential_energy: float
    pair_count: int
    bond_count: int


class ForceField:
    """Parameters and evaluation of the water/ion force field."""

    def __init__(
        self,
        cutoff: float = 2.5,
        kappa: float = 2.0,
        coulomb_strength: float = 0.5,
        bond_k: float = 400.0,
        bond_r0: float = 0.32,
    ) -> None:
        if cutoff <= 0:
            raise ValueError("cutoff must be positive")
        self.cutoff = cutoff
        self.kappa = kappa
        self.coulomb_strength = coulomb_strength
        self.bond_k = bond_k
        self.bond_r0 = bond_r0
        # per-species LJ parameters: O, H, CAT, AN
        eps = np.array([1.0, 0.2, 0.8, 0.8])
        sig = np.array([1.0, 0.5, 0.9, 1.1])
        self.eps_pair, self.sig_pair = _lorentz_berthelot(eps, sig)

    # ------------------------------------------------------------------
    def _pair_forces(
        self, system: ParticleSystem, nlist: NeighborList
    ) -> tuple[np.ndarray, float, int]:
        pos = system.positions
        box = system.box
        pairs = nlist.pairs
        if len(pairs) == 0:
            return np.zeros_like(pos), 0.0, 0
        i, j = pairs[:, 0], pairs[:, 1]
        dr = box.minimum_image(pos[i] - pos[j])
        r2 = (dr**2).sum(axis=1)
        within = r2 <= self.cutoff**2
        # exclude bonded pairs (intramolecular O-H handled by bonds)
        same_mol = system.molecule_ids[i] == system.molecule_ids[j]
        keep = within & ~same_mol
        i, j, dr, r2 = i[keep], j[keep], dr[keep], r2[keep]
        if len(i) == 0:
            return np.zeros_like(pos), 0.0, 0
        r = np.sqrt(r2)

        ti, tj = system.types[i], system.types[j]
        eps = self.eps_pair[ti, tj]
        sig = self.sig_pair[ti, tj]
        sr6 = (sig**2 / r2) ** 3
        sr12 = sr6**2
        # truncated & shifted LJ energy
        sr6_c = (sig / self.cutoff) ** 6
        e_lj = 4.0 * eps * (sr12 - sr6) - 4.0 * eps * (sr6_c**2 - sr6_c)
        # dU/dr * (1/r) factor for LJ
        f_lj_over_r = 24.0 * eps * (2.0 * sr12 - sr6) / r2

        qq = (
            self.coulomb_strength
            * CHARGES[ti]
            * CHARGES[tj]
        )
        screen = np.exp(-self.kappa * r)
        e_coul = qq * screen / r
        f_coul_over_r = qq * screen * (1.0 + self.kappa * r) / (r2 * r)

        f_over_r = f_lj_over_r + f_coul_over_r
        fvec = f_over_r[:, None] * dr
        forces = scatter_add_pairs(len(pos), i, j, fvec)
        return forces, float(np.sum(e_lj + e_coul)), len(i)

    def _bond_forces(
        self, system: ParticleSystem
    ) -> tuple[np.ndarray, float, int]:
        bonds = system.bonds
        if len(bonds) == 0:
            return np.zeros_like(system.positions), 0.0, 0
        i, j = bonds[:, 0], bonds[:, 1]
        dr = system.box.minimum_image(
            system.positions[i] - system.positions[j]
        )
        r = np.linalg.norm(dr, axis=1)
        stretch = r - self.bond_r0
        energy = 0.5 * self.bond_k * stretch**2
        # F_i = -k (r - r0) * dr/r
        f = (-self.bond_k * stretch / np.maximum(r, 1e-12))[:, None] * dr
        forces = scatter_add_pairs(system.n_atoms, i, j, f)
        return forces, float(energy.sum()), len(bonds)

    # ------------------------------------------------------------------
    def compute(
        self, system: ParticleSystem, nlist: NeighborList
    ) -> ForceResult:
        """Total forces and potential energy (paper's step 6 kernel)."""
        f_pair, e_pair, n_pairs = self._pair_forces(system, nlist)
        f_bond, e_bond, n_bonds = self._bond_forces(system)
        return ForceResult(
            forces=f_pair + f_bond,
            potential_energy=e_pair + e_bond,
            pair_count=n_pairs,
            bond_count=n_bonds,
        )
