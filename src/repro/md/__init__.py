"""Miniature molecular-dynamics engine (the LAMMPS stand-in).

A real velocity-Verlet MD code — periodic box, cell-list neighbor
finding, LJ + screened-Coulomb + bonded forces, thermo output, spatial
domain decomposition — sized so the paper's 1568-atom base cell
(replicated ``dim**3`` times) runs on a laptop. The in-situ coupler
(:mod:`repro.insitu`) drives it through the Verlet-Splitanalysis
workflow; the workload calibration (:mod:`repro.workloads`) reads its
operation counts.
"""

from repro.md.box import Box
from repro.md.dump import read_lammps_dump, write_lammps_dump, write_xyz
from repro.md.domain import DomainDecomposition, Snapshot, grid_for_ranks
from repro.md.forces import ForceField, ForceResult
from repro.md.neighbor import NeighborList, build_neighbor_list
from repro.md.system import (
    ATOMS_PER_CELL,
    ParticleSystem,
    Species,
    water_ion_box,
)
from repro.md.thermo import ThermoLog, ThermoRecord, compute_thermo
from repro.md.verlet import StepReport, VelocityVerlet

__all__ = [
    "ATOMS_PER_CELL",
    "Box",
    "DomainDecomposition",
    "ForceField",
    "ForceResult",
    "NeighborList",
    "ParticleSystem",
    "Snapshot",
    "Species",
    "StepReport",
    "ThermoLog",
    "ThermoRecord",
    "VelocityVerlet",
    "build_neighbor_list",
    "read_lammps_dump",
    "write_lammps_dump",
    "write_xyz",
    "compute_thermo",
    "grid_for_ranks",
    "water_ion_box",
]
