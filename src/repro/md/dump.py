"""Trajectory output: XYZ and LAMMPS-dump writers.

The paper's step 8 ("optional output of state") and the thermodynamic
output make the simulation's I/O phase; this module provides the
actual writers so the examples can persist trajectories, and so the
in-situ coupler's output phase corresponds to real bytes.

Two formats:

* **XYZ** — the minimal interchange format (element + coordinates);
* **LAMMPS dump** (``atom`` style) — id/type/xs/ys/zs with box bounds,
  readable by OVITO/VMD and by :func:`read_lammps_dump` below.
"""

from __future__ import annotations

from pathlib import Path
from typing import TextIO

import numpy as np

from repro.md.system import ParticleSystem, Species

__all__ = [
    "read_lammps_dump",
    "write_lammps_dump",
    "write_xyz",
]


def _as_handle(target) -> tuple[TextIO, bool]:
    if isinstance(target, (str, Path)):
        return open(target, "a"), True
    return target, False


def write_xyz(
    target,
    system: ParticleSystem,
    step: int = 0,
    comment: str | None = None,
) -> None:
    """Append one XYZ frame to ``target`` (path or text handle)."""
    handle, owned = _as_handle(target)
    try:
        names = Species.NAMES
        handle.write(f"{system.n_atoms}\n")
        handle.write(comment if comment is not None else f"step {step}")
        handle.write("\n")
        for t, (x, y, z) in zip(system.types, system.positions):
            handle.write(f"{names[int(t)]} {x:.6f} {y:.6f} {z:.6f}\n")
    finally:
        if owned:
            handle.close()


def write_lammps_dump(
    target,
    system: ParticleSystem,
    step: int = 0,
) -> None:
    """Append one LAMMPS ``dump atom``-style frame (scaled coords)."""
    handle, owned = _as_handle(target)
    try:
        scaled = system.positions / system.box.lengths
        handle.write("ITEM: TIMESTEP\n")
        handle.write(f"{step}\n")
        handle.write("ITEM: NUMBER OF ATOMS\n")
        handle.write(f"{system.n_atoms}\n")
        handle.write("ITEM: BOX BOUNDS pp pp pp\n")
        for length in system.box.lengths:
            handle.write(f"0.0 {length:.6f}\n")
        handle.write("ITEM: ATOMS id type xs ys zs\n")
        for i, (t, (x, y, z)) in enumerate(zip(system.types, scaled)):
            handle.write(f"{i + 1} {int(t) + 1} {x:.6f} {y:.6f} {z:.6f}\n")
    finally:
        if owned:
            handle.close()


def read_lammps_dump(target) -> list[dict]:
    """Parse frames written by :func:`write_lammps_dump`.

    Returns a list of dicts with ``step``, ``box_lengths`` (3-vector),
    ``types`` (0-based, (n,)) and ``positions`` (unscaled, (n, 3)).
    """
    if isinstance(target, (str, Path)):
        text = Path(target).read_text()
    else:
        text = target.read()
    lines = text.splitlines()
    frames: list[dict] = []
    i = 0
    while i < len(lines):
        if not lines[i].startswith("ITEM: TIMESTEP"):
            raise ValueError(f"malformed dump at line {i + 1}")
        step = int(lines[i + 1])
        if not lines[i + 2].startswith("ITEM: NUMBER OF ATOMS"):
            raise ValueError("missing atom-count header")
        n = int(lines[i + 3])
        if not lines[i + 4].startswith("ITEM: BOX BOUNDS"):
            raise ValueError("missing box header")
        box = np.array(
            [float(lines[i + 5 + d].split()[1]) for d in range(3)]
        )
        if not lines[i + 8].startswith("ITEM: ATOMS"):
            raise ValueError("missing atoms header")
        body = lines[i + 9 : i + 9 + n]
        if len(body) != n:
            raise ValueError("truncated frame")
        rows = np.array([[float(v) for v in ln.split()] for ln in body])
        order = np.argsort(rows[:, 0])
        rows = rows[order]
        frames.append(
            {
                "step": step,
                "box_lengths": box,
                "types": rows[:, 1].astype(int) - 1,
                "positions": rows[:, 2:5] * box,
            }
        )
        i += 9 + n
    return frames
