"""Spatial domain decomposition for distributed simulation ranks.

LAMMPS divides the box into sub-volumes assigned to individual MPI
ranks (§V). For the in-situ coupler we decompose along a regular grid
of slabs/bricks, provide atom→rank assignment, and snapshot extraction
per rank (what a sim rank ships to its paired analysis rank in
Splitanalysis step 2: "particle coordinates and velocities").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.md.system import ParticleSystem

__all__ = ["DomainDecomposition", "Snapshot", "grid_for_ranks"]


def grid_for_ranks(n_ranks: int) -> tuple[int, int, int]:
    """Near-cubic process grid with ``prod(grid) == n_ranks``.

    Chooses the factorization minimizing surface area, like LAMMPS'
    default processor grid.
    """
    if n_ranks <= 0:
        raise ValueError("need at least one rank")
    best = (n_ranks, 1, 1)
    best_surface = float("inf")
    for nx in range(1, n_ranks + 1):
        if n_ranks % nx:
            continue
        rem = n_ranks // nx
        for ny in range(1, rem + 1):
            if rem % ny:
                continue
            nz = rem // ny
            surface = nx * ny + ny * nz + nx * nz
            if surface < best_surface:
                best_surface = surface
                best = (nx, ny, nz)
    return best


@dataclass(frozen=True)
class Snapshot:
    """Per-rank particle data shipped to the analysis partition."""

    step: int
    positions: np.ndarray  # unwrapped coordinates (n_local, 3)
    velocities: np.ndarray
    types: np.ndarray
    molecule_ids: np.ndarray
    atom_ids: np.ndarray  # global indices, for verification (step 4)

    @property
    def n_atoms(self) -> int:
        return len(self.positions)

    def nbytes(self) -> int:
        """Wire size of the snapshot (coordinates + velocities dominate:
        6 doubles/atom, as in the paper's exchange)."""
        return int(
            self.positions.nbytes
            + self.velocities.nbytes
            + self.types.nbytes
            + self.molecule_ids.nbytes
            + self.atom_ids.nbytes
        )


class DomainDecomposition:
    """Assigns atoms of a system to a regular grid of ranks."""

    def __init__(self, system: ParticleSystem, n_ranks: int) -> None:
        self.system = system
        self.n_ranks = n_ranks
        self.grid = grid_for_ranks(n_ranks)

    def rank_of_atoms(self) -> np.ndarray:
        """Owning rank per atom from its (wrapped) position."""
        g = np.array(self.grid)
        cell = self.system.box.lengths / g
        coords = np.floor(self.system.positions / cell).astype(int)
        coords = np.minimum(coords, g - 1)  # atoms exactly at the edge
        return (coords[:, 0] * g[1] + coords[:, 1]) * g[2] + coords[:, 2]

    def atoms_of_rank(self, rank: int) -> np.ndarray:
        if not 0 <= rank < self.n_ranks:
            raise ValueError(f"rank {rank} out of range")
        return np.where(self.rank_of_atoms() == rank)[0]

    def snapshot(self, rank: int, step: int) -> Snapshot:
        """Extract the rank's particles for the in-situ exchange."""
        idx = self.atoms_of_rank(rank)
        sys_ = self.system
        return Snapshot(
            step=step,
            positions=sys_.unwrapped_positions()[idx].copy(),
            velocities=sys_.velocities[idx].copy(),
            types=sys_.types[idx].copy(),
            molecule_ids=sys_.molecule_ids[idx].copy(),
            atom_ids=idx.copy(),
        )

    def snapshot_all(self, step: int) -> list[Snapshot]:
        """Every rank's :meth:`snapshot` in one pass over the system.

        Computes the atom→rank map and the unwrapped coordinates once
        instead of once per rank; each returned snapshot is bit-identical
        to the corresponding ``snapshot(rank, step)``. This is the
        shared-replica fast path's extraction kernel.
        """
        sys_ = self.system
        ranks = self.rank_of_atoms()
        unwrapped = sys_.unwrapped_positions()
        out = []
        for rank in range(self.n_ranks):
            idx = np.where(ranks == rank)[0]
            out.append(
                Snapshot(
                    step=step,
                    positions=unwrapped[idx],
                    velocities=sys_.velocities[idx],
                    types=sys_.types[idx],
                    molecule_ids=sys_.molecule_ids[idx],
                    atom_ids=idx,
                )
            )
        return out

    def counts(self) -> np.ndarray:
        """Atoms per rank (load-balance diagnostics; step 4's particle
        count verification uses these numbers)."""
        return np.bincount(self.rank_of_atoms(), minlength=self.n_ranks)
