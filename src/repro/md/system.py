"""Particle system and the paper's water/ion benchmark builder.

The paper's LAMMPS benchmark "simulat[es] a box of water molecules
solvating two types of ions" with a base cell of **1568 atoms**
replicated ``dim**3`` times (§VI-C, §VII). We reproduce that shape:

* 512 water molecules → 1536 atoms (O with charge −0.8, two H with
  +0.4 — SPC-like magnitudes, flexible bonds);
* 16 hydronium-like cations and 16 anions → 32 atoms;
* total 1536 + 32 = 1568 atoms per cell.

Interactions are Lennard-Jones per type pair plus a short-range
screened (Yukawa) Coulomb term and harmonic intramolecular O–H bonds —
not a production water model, but a *real* molecular-dynamics system
that exercises every code path the Splitanalysis workflow needs
(neighbor rebuilds, force loops, per-molecule analyses).

Reduced (LJ-style) units are used throughout: σ_OO = 1, ε_OO = 1,
m_O = 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.md.box import Box
from repro.util.rng import RngStream

__all__ = [
    "ATOMS_PER_CELL",
    "ParticleSystem",
    "Species",
    "water_ion_box",
]

#: The paper's base-cell size: total atoms = 1568 * dim**3.
ATOMS_PER_CELL = 1568


class Species:
    """Integer type codes used in the type arrays."""

    O = 0  #: water oxygen
    H = 1  #: water hydrogen
    CAT = 2  #: hydronium-like cation
    AN = 3  #: anion

    NAMES = {O: "O", H: "H", CAT: "CAT", AN: "AN"}
    COUNT = 4


#: per-species mass (reduced units; H light, ions heavy)
MASSES = np.array([1.0, 0.13, 1.2, 2.2])
#: per-species charge (reduced)
CHARGES = np.array([-0.8, 0.4, 1.0, -1.0])


@dataclass
class ParticleSystem:
    """State of an MD system.

    ``positions`` are wrapped into the box; ``images`` counts boundary
    crossings so analyses can reconstruct unwrapped trajectories (as
    LAMMPS image flags do — MSD needs this).
    """

    box: Box
    positions: np.ndarray  # (n, 3) wrapped
    velocities: np.ndarray  # (n, 3)
    types: np.ndarray  # (n,) int
    molecule_ids: np.ndarray  # (n,) int; -1 for monoatomic species
    bonds: np.ndarray  # (nb, 2) int atom index pairs
    images: np.ndarray = field(default=None)  # (n, 3) int

    def __post_init__(self) -> None:
        n = len(self.positions)
        if self.positions.shape != (n, 3) or self.velocities.shape != (n, 3):
            raise ValueError("positions/velocities must be (n, 3)")
        if len(self.types) != n or len(self.molecule_ids) != n:
            raise ValueError("per-atom arrays must align")
        if self.bonds.size and self.bonds.max() >= n:
            raise ValueError("bond index out of range")
        if self.images is None:
            self.images = np.zeros((n, 3), dtype=np.int64)

    # ------------------------------------------------------------------
    @property
    def n_atoms(self) -> int:
        return len(self.positions)

    @property
    def masses(self) -> np.ndarray:
        return MASSES[self.types]

    @property
    def charges(self) -> np.ndarray:
        return CHARGES[self.types]

    def unwrapped_positions(self) -> np.ndarray:
        """Positions unfolded across periodic images (for MSD/VACF)."""
        return self.positions + self.images * self.box.lengths

    def kinetic_energy(self) -> float:
        return float(
            0.5 * np.sum(self.masses[:, None] * self.velocities**2)
        )

    def temperature(self) -> float:
        """Instantaneous temperature in reduced units (k_B = 1).

        Three degrees of freedom are removed for the zeroed total
        momentum, except for a lone atom (tests use single particles).
        """
        dof = 3 * self.n_atoms - 3 if self.n_atoms > 1 else 3
        return 2.0 * self.kinetic_energy() / dof

    def copy(self) -> "ParticleSystem":
        return ParticleSystem(
            box=self.box,
            positions=self.positions.copy(),
            velocities=self.velocities.copy(),
            types=self.types.copy(),
            molecule_ids=self.molecule_ids.copy(),
            bonds=self.bonds.copy(),
            images=self.images.copy(),
        )


def _base_cell(rng: RngStream) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, float]:
    """Build one 1568-atom cell on a perturbed lattice.

    Returns (positions, types, molecule_ids, bonds, edge_length).
    Water molecules are placed on an 8x8x8 lattice of 512 sites; the
    32 ions are scattered into interstitial positions.
    """
    n_water = 512
    sites_per_edge = 8  # 8^3 = 512 water sites
    spacing = 1.65  # reduced units; near-liquid density for sigma=1
    edge = sites_per_edge * spacing

    grid = np.arange(sites_per_edge) * spacing + spacing / 2
    xx, yy, zz = np.meshgrid(grid, grid, grid, indexing="ij")
    o_sites = np.stack([xx.ravel(), yy.ravel(), zz.ravel()], axis=1)
    o_sites = o_sites + rng.normal(0.0, 0.03, size=o_sites.shape)

    bond_len = 0.32
    positions = []
    types = []
    mol_ids = []
    bonds = []
    for mol, o_pos in enumerate(o_sites):
        base = len(positions)
        positions.append(o_pos)
        types.append(Species.O)
        mol_ids.append(mol)
        # Two hydrogens at random orientations around the oxygen.
        for _ in range(2):
            direction = rng.normal(size=3)
            direction /= np.linalg.norm(direction)
            positions.append(o_pos + bond_len * direction)
            types.append(Species.H)
            mol_ids.append(mol)
            bonds.append((base, len(positions) - 1))

    # 16 cations + 16 anions on interstitial lattice sites (offset by
    # half a spacing from the water lattice so nothing overlaps).
    n_each = 16
    interstitial = np.stack(
        [g.ravel() for g in np.meshgrid(grid, grid, grid, indexing="ij")],
        axis=1,
    ) + spacing / 2
    site_idx = rng.choice(len(interstitial), size=2 * n_each, replace=False)
    ion_sites = interstitial[site_idx]
    for k, species in enumerate(
        [Species.CAT] * n_each + [Species.AN] * n_each
    ):
        positions.append(ion_sites[k] + rng.normal(0.0, 0.02, size=3))
        types.append(species)
        mol_ids.append(n_water + len(mol_ids))  # unique mol per ion

    positions = np.asarray(positions, dtype=float)
    types = np.asarray(types, dtype=np.int64)
    mol_ids = np.asarray(mol_ids, dtype=np.int64)
    bonds = np.asarray(bonds, dtype=np.int64)
    assert len(positions) == ATOMS_PER_CELL
    return positions, types, mol_ids, bonds, edge


def water_ion_box(
    dim: int = 1,
    seed: int = 2020,
    temperature: float = 1.0,
) -> ParticleSystem:
    """The paper's benchmark system: ``1568 * dim**3`` atoms.

    ``dim`` is the replication factor of the base cell along each axis
    (the paper's problem-size parameter). Velocities are drawn from a
    Maxwell–Boltzmann distribution at the given reduced temperature and
    the total momentum is zeroed.
    """
    if dim < 1:
        raise ValueError("dim must be >= 1")
    rng = RngStream(seed, name="water_ion_box")
    cell_pos, cell_types, cell_mols, cell_bonds, edge = _base_cell(
        rng.child("cell")
    )

    n_cell = len(cell_pos)
    mols_per_cell = int(cell_mols.max()) + 1
    reps = [
        (i, j, k) for i in range(dim) for j in range(dim) for k in range(dim)
    ]
    positions = np.concatenate(
        [cell_pos + np.array(r, dtype=float) * edge for r in reps]
    )
    types = np.tile(cell_types, len(reps))
    mol_ids = np.concatenate(
        [cell_mols + idx * mols_per_cell for idx in range(len(reps))]
    )
    bonds = (
        np.concatenate(
            [cell_bonds + idx * n_cell for idx in range(len(reps))]
        )
        if cell_bonds.size
        else np.zeros((0, 2), dtype=np.int64)
    )

    box = Box.cubic(edge * dim)
    vel_rng = rng.child("velocities")
    masses = MASSES[types]
    velocities = vel_rng.normal(
        0.0, 1.0, size=(len(positions), 3)
    ) * np.sqrt(temperature / masses)[:, None]
    velocities -= np.average(velocities, axis=0, weights=masses)

    return ParticleSystem(
        box=box,
        positions=box.wrap(positions),
        velocities=velocities,
        types=types,
        molecule_ids=mol_ids,
        bonds=bonds,
    )
