"""Determinism contracts: seed-replayable faults, zero-impact when off.

Acceptance (ISSUE): the same chaos seed yields a byte-identical
fault-event log and a bit-identical DES trajectory; with faults
disabled the trajectory is bit-identical to a run with no injector
installed at all.
"""

import numpy as np

from repro.cluster.node import THETA_NODE
from repro.core import SeeSAwController
from repro.faults import FaultInjector, FaultPlan, use_faults
from repro.insitu import InsituConfig, run_insitu

RANKS = 2
CFG = InsituConfig(n_sim_ranks=RANKS, n_ana_ranks=RANKS, n_verlet_steps=4)


def controller():
    return SeeSAwController(2 * RANKS * 110.0, RANKS, RANKS, THETA_NODE)


def faulted_run(seed: int):
    plan = FaultPlan.sample(seed, CFG.world_size, horizon_s=3.0)
    injector = FaultInjector(plan)
    with use_faults(injector):
        result = run_insitu(CFG, controller())
    return result, injector


def trajectory(result):
    return (
        result.virtual_time_s,
        result.events_executed,
        [
            (step, alloc.sim_caps_w.tolist(), alloc.ana_caps_w.tolist())
            for step, alloc in result.allocation_log
        ],
    )


def test_same_seed_identical_log_and_trajectory():
    res_a, inj_a = faulted_run(7)
    res_b, inj_b = faulted_run(7)
    assert inj_a.plan.to_jsonl() == inj_b.plan.to_jsonl()
    assert inj_a.event_log == inj_b.event_log  # byte-identical markers
    assert res_a.fault_events == res_b.fault_events
    assert trajectory(res_a) == trajectory(res_b)  # bit-identical


def test_different_seed_different_trajectory():
    res_a, _ = faulted_run(7)
    res_b, _ = faulted_run(8)
    assert trajectory(res_a) != trajectory(res_b)


def test_faults_change_the_trajectory_at_all():
    # sanity: the sampled plan actually perturbs the run
    clean = run_insitu(CFG, controller())
    faulted, _ = faulted_run(7)
    assert trajectory(clean) != trajectory(faulted)


def test_empty_plan_bit_identical_to_no_injector():
    baseline = run_insitu(CFG, controller())
    with use_faults(FaultInjector(FaultPlan())):
        nulled = run_insitu(CFG, controller())
    assert nulled.virtual_time_s == baseline.virtual_time_s
    assert nulled.events_executed == baseline.events_executed
    assert trajectory(nulled) == trajectory(baseline)
    assert nulled.fault_events == []
    base_thermo = [r.total_energy for r in baseline.thermo.records]
    null_thermo = [r.total_energy for r in nulled.thermo.records]
    assert np.array_equal(base_thermo, null_thermo)


def test_faulted_runs_are_self_consistent_across_installs():
    # two installs of *distinct* injector objects built from the same
    # plan object replay identically (the injector is stateless modulo
    # its log/cursor)
    plan = FaultPlan.sample(3, CFG.world_size, horizon_s=3.0)
    results = []
    for _ in range(2):
        with use_faults(FaultInjector(plan)):
            results.append(run_insitu(CFG, controller()))
    assert trajectory(results[0]) == trajectory(results[1])
