"""Tests for fault plans: DSL/JSON parsing, sampling, serialization."""

import json

import pytest

from repro.faults import FaultEvent, FaultKind, FaultPlan, SAMPLED_KINDS


# ---------------------------------------------------------------- events
def test_event_window_half_open():
    ev = FaultEvent(FaultKind.SLOWDOWN, t_start=1.0, duration=2.0)
    assert not ev.active(0.999)
    assert ev.active(1.0)
    assert ev.active(2.999)
    assert not ev.active(3.0)  # t_end is exclusive


def test_event_rank_targeting():
    all_ranks = FaultEvent(FaultKind.MPI_DELAY, 0.0, 1.0, rank=None)
    one_rank = FaultEvent(FaultKind.SLOWDOWN, 0.0, 1.0, rank=3)
    assert all_ranks.hits(0) and all_ranks.hits(7) and all_ranks.hits(None)
    assert one_rank.hits(3)
    assert not one_rank.hits(2)
    # a caller with no rank identity matches all-rank faults only
    assert not one_rank.hits(None)


def test_event_validation():
    with pytest.raises(ValueError):
        FaultEvent(FaultKind.CRASH, t_start=-0.1, duration=1.0)
    with pytest.raises(ValueError):
        FaultEvent(FaultKind.CRASH, t_start=0.0, duration=0.0)
    with pytest.raises(ValueError):
        FaultEvent(FaultKind.SLOWDOWN, 0.0, 1.0, magnitude=0.0)
    with pytest.raises(ValueError):
        FaultEvent(FaultKind.MPI_DELAY, 0.0, 1.0, magnitude=-0.001)


# ------------------------------------------------------------------ DSL
def test_dsl_parses_full_clause():
    plan = FaultPlan.from_spec("slowdown@1.0+2.5x1.8:rank3;cap_drop@0.5+4.0")
    assert len(plan) == 2
    # events come back time-ordered regardless of clause order
    first, second = plan.events
    assert first.kind is FaultKind.CAP_DROP
    assert first.t_start == 0.5 and first.duration == 4.0
    assert second.kind is FaultKind.SLOWDOWN
    assert second.magnitude == pytest.approx(1.8)
    assert second.rank == 3


def test_dsl_all_rank_spellings():
    for spelling in ("all", "*"):
        plan = FaultPlan.from_spec(f"mpi_delay@0.0+1.0x0.002:{spelling}")
        assert plan.events[0].rank is None


def test_dsl_bare_rank_number():
    plan = FaultPlan.from_spec("meas_drop@0.1+0.5:2")
    assert plan.events[0].rank == 2


def test_dsl_malformed_clause_names_the_clause():
    with pytest.raises(ValueError, match="bogus"):
        FaultPlan.from_spec("bogus@1.0+2.0")
    with pytest.raises(ValueError, match="slowdown@nope"):
        FaultPlan.from_spec("slowdown@nope")


# ----------------------------------------------------------------- JSON
def test_json_dict_round_trip():
    plan = FaultPlan.from_spec("crash@0.3+0.2:rank1;cap_skew@0.1+1.0x-4.0")
    spec = {"events": [e.to_json() for e in plan.events], "seed": 9}
    again = FaultPlan.from_spec(spec)
    assert again.events == plan.events
    assert again.seed == 9


def test_json_and_jsonl_files(tmp_path):
    plan = FaultPlan.sample(3, n_ranks=4, horizon_s=5.0)
    jsonl = plan.write_jsonl(tmp_path / "plan.jsonl")
    assert FaultPlan.from_spec(str(jsonl)).events == plan.events

    as_json = tmp_path / "plan.json"
    as_json.write_text(
        json.dumps({"events": [e.to_json() for e in plan.events]})
    )
    assert FaultPlan.from_spec(str(as_json)).events == plan.events


# ------------------------------------------------------------- sampling
def test_sample_same_seed_byte_identical():
    a = FaultPlan.sample(11, n_ranks=8, horizon_s=10.0)
    b = FaultPlan.sample(11, n_ranks=8, horizon_s=10.0)
    assert a.to_jsonl() == b.to_jsonl()
    assert a.fingerprint() == b.fingerprint()


def test_sample_different_seed_differs():
    a = FaultPlan.sample(11, n_ranks=8, horizon_s=10.0)
    b = FaultPlan.sample(12, n_ranks=8, horizon_s=10.0)
    assert a.to_jsonl() != b.to_jsonl()


def test_sample_kind_streams_independent():
    # each kind draws from its own child stream: restricting the kind
    # set must not shift another kind's draws
    full = FaultPlan.sample(5, n_ranks=4, horizon_s=8.0)
    only = FaultPlan.sample(
        5, n_ranks=4, horizon_s=8.0, kinds=(FaultKind.SLOWDOWN,)
    )
    assert only.events == full.by_kind(FaultKind.SLOWDOWN)


def test_sample_respects_kind_subset_and_bounds():
    plan = FaultPlan.sample(
        2,
        n_ranks=4,
        horizon_s=10.0,
        kinds=("crash", "meas_garble"),
        events_per_kind=3,
    )
    assert plan.kinds == ("crash", "meas_garble")
    assert len(plan) == 6
    for ev in plan.events:
        assert 0.0 <= ev.t_start < 10.0
        assert ev.duration > 0.0


def test_sample_covers_full_taxonomy_by_default():
    plan = FaultPlan.sample(0, n_ranks=2)
    assert set(plan.kinds) == {k.value for k in SAMPLED_KINDS}


def test_sample_validation():
    with pytest.raises(ValueError):
        FaultPlan.sample(0, n_ranks=0)
    with pytest.raises(ValueError):
        FaultPlan.sample(0, n_ranks=2, horizon_s=0.0)
    with pytest.raises(ValueError):
        FaultPlan.sample(0, n_ranks=2, events_per_kind=0)
