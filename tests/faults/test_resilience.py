"""Every controller survives every fault kind on the real coupled job.

The matrix below is the in-tree half of the CI chaos gate: each
controller runs the miniature in-situ job under a single-kind fault
window and must (a) complete without an exception, (b) never install an
allocation above the budget, and (c) for measurement faults, surface
its holds in the audit journal so ``audit replay`` shows them.
"""

import numpy as np
import pytest

from repro.cluster.node import THETA_NODE
from repro.core import (
    ExploringSeeSAwController,
    HierarchicalSeeSAwController,
    PowerAwareController,
    SeeSAwController,
    StaticController,
    TimeAwareController,
)
from repro.faults import FaultInjector, FaultKind, FaultPlan, use_faults
from repro.insitu import InsituConfig, run_insitu
from repro.metrics.audit import AuditJournal, replay, use_audit

RANKS = 2
CAP_W = 110.0
BUDGET_W = 2 * RANKS * CAP_W

CONTROLLERS = {
    "static": StaticController,
    "seesaw": SeeSAwController,
    "power-aware": PowerAwareController,
    "time-aware": TimeAwareController,
    "seesaw-hierarchical": HierarchicalSeeSAwController,
    "seesaw-exploring": ExploringSeeSAwController,
}

#: one deliberately nasty window per kind, sized for the ~2.7 s job
FAULT_SPECS = {
    FaultKind.SLOWDOWN: "slowdown@0.3+1.5x2.0:rank1",
    FaultKind.CRASH: "crash@0.4+0.3:rank0",
    FaultKind.CAP_DROP: "cap_drop@0.2+2.0",
    FaultKind.CAP_LAG: "cap_lag@0.2+2.0x0.05",
    FaultKind.CAP_SKEW: "cap_skew@0.2+2.0x-8.0",
    FaultKind.MEAS_DROP: "meas_drop@0.2+2.0:rank0",
    FaultKind.MEAS_STALE: "meas_stale@0.2+2.0:rank1",
    FaultKind.MEAS_GARBLE: "meas_garble@0.2+2.0x2.5:rank2",
    FaultKind.MPI_DELAY: "mpi_delay@0.2+2.0x0.002",
}


def make_controller(name: str):
    return CONTROLLERS[name](BUDGET_W, RANKS, RANKS, THETA_NODE)


def run_faulted(name: str, spec: str, steps: int = 4):
    cfg = InsituConfig(
        n_sim_ranks=RANKS, n_ana_ranks=RANKS, n_verlet_steps=steps
    )
    with use_faults(FaultInjector(FaultPlan.from_spec(spec))):
        return run_insitu(cfg, make_controller(name))


@pytest.mark.parametrize("kind", FAULT_SPECS, ids=lambda k: k.value)
@pytest.mark.parametrize("name", CONTROLLERS)
def test_controller_completes_within_budget(name, kind):
    result = run_faulted(name, FAULT_SPECS[kind])
    assert result.virtual_time_s > 0.0
    assert result.verification_failures == 0
    # the fault actually fired (every spec window overlaps the run)
    assert any(r["kind"] == kind.value for r in result.fault_events)
    # no installed allocation ever exceeds the budget
    for _, alloc in result.allocation_log:
        assert alloc.total_w <= BUDGET_W + 1e-6
        assert np.all(alloc.sim_caps_w > 0)
        assert np.all(alloc.ana_caps_w > 0)


def test_meas_drop_holds_visible_in_audit_replay(tmp_path):
    journal = AuditJournal(tmp_path / "audit.jsonl")
    with use_audit(journal):
        run_faulted("time-aware", "meas_drop@0.2+5.0:rank1")
    journal.close()
    result = replay(journal.records)
    assert result.clean
    assert result.n_faults >= 1
    assert result.n_holds >= 1
    rendered = result.render()
    assert "fault window(s) injected" in rendered
    assert "hold(s)" in rendered


def test_hold_reasons_recorded():
    from repro.metrics.audit import AuditJournal

    journal = AuditJournal(None)
    with use_audit(journal):
        run_faulted("time-aware", "meas_drop@0.2+5.0:rank0")
    holds = [r for r in journal.records if r.kind == "hold"]
    assert holds
    assert holds[0].inputs["reason"] == "partial_nodes"
    assert holds[0].inputs["sim_missing"] >= 1


def test_seesaw_aggregates_over_surviving_ranks():
    # partition-total strategies tolerate a partial partition: with one
    # sim rank's report dropped, SeeSAw still decides (no holds needed)
    result = run_faulted("seesaw", "meas_drop@0.2+5.0:rank1")
    assert len(result.allocation_log) > 0
    degraded = [o for o in result.observation_log if o.sim_missing > 0]
    assert degraded  # the drop was visible to the controller


def test_whole_partition_dropped_holds_every_controller():
    # both sim ranks silenced: even the aggregating controllers hold
    spec = "meas_drop@0.2+5.0:rank0;meas_drop@0.2+5.0:rank1"
    for name in ("seesaw", "static"):
        result = run_faulted(name, spec)
        assert result.virtual_time_s > 0.0
        for obs in result.observation_log:
            if obs.sim.n_nodes == 0:
                assert obs.degraded
