"""Tests for the injector: window queries and exact-time marker firing."""

import pytest

from repro.des.engine import Engine
from repro.faults import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    NULL_FAULTS,
    get_faults,
    use_faults,
)


def plan_of(spec: str) -> FaultPlan:
    return FaultPlan.from_spec(spec)


# ---------------------------------------------------------------- queries
def test_slowdown_factor_is_product_of_active_windows():
    inj = FaultInjector(
        plan_of("slowdown@1.0+2.0x2.0:rank0;slowdown@1.5+2.0x1.5:rank0")
    )
    assert inj.slowdown_factor(0.5, 0) == 1.0
    assert inj.slowdown_factor(1.2, 0) == pytest.approx(2.0)
    assert inj.slowdown_factor(2.0, 0) == pytest.approx(3.0)
    assert inj.slowdown_factor(2.0, 1) == 1.0  # other rank untouched


def test_outage_extra_is_remaining_window():
    inj = FaultInjector(plan_of("crash@1.0+0.5:rank2"))
    assert inj.outage_extra(0.9, 2) == 0.0
    assert inj.outage_extra(1.1, 2) == pytest.approx(0.4)
    assert inj.outage_extra(1.5, 2) == 0.0
    assert inj.outage_extra(1.1, 0) == 0.0


def test_actuation_combines_drop_lag_skew():
    inj = FaultInjector(
        plan_of("cap_drop@1.0+1.0;cap_lag@1.0+1.0x0.05;cap_skew@1.0+1.0x-6.0")
    )
    assert inj.actuation(0.5) is None
    fault = inj.actuation(1.5)
    assert fault.dropped
    assert fault.extra_delay_s == pytest.approx(0.05)
    assert fault.offset_w == pytest.approx(-6.0)


def test_measurement_priority_drop_over_stale_over_garble():
    inj = FaultInjector(
        plan_of(
            "meas_garble@1.0+3.0x0.5:rank0;"
            "meas_stale@1.0+2.0:rank0;"
            "meas_drop@1.0+1.0:rank0"
        )
    )
    assert inj.measurement(1.5, 0)[0] == "meas_drop"
    assert inj.measurement(2.5, 0)[0] == "meas_stale"
    kind, magnitude = inj.measurement(3.5, 0)
    assert kind == "meas_garble" and magnitude == pytest.approx(0.5)
    assert inj.measurement(4.5, 0) is None
    assert inj.measurement(1.5, 1) is None


def test_comm_delay_sums_active_windows():
    inj = FaultInjector(
        plan_of("mpi_delay@0.0+2.0x0.002;mpi_delay@1.0+2.0x0.003")
    )
    assert inj.comm_delay(0.5) == pytest.approx(0.002)
    assert inj.comm_delay(1.5) == pytest.approx(0.005)
    assert inj.comm_delay(3.5) == 0.0


def test_active_kinds_reports_open_windows():
    inj = FaultInjector(plan_of("crash@1.0+1.0:rank0;mpi_delay@0.5+1.0x0.001"))
    assert inj.active_kinds(1.2) == ("crash", "mpi_delay")
    assert inj.active_kinds(5.0) == ()


# ------------------------------------------------------- engine markers
def test_markers_fire_on_clock_advance_in_order():
    inj = FaultInjector(plan_of("slowdown@1.0+1.0x2.0:rank0"))
    with use_faults(inj):
        eng = Engine()
        for t in (0.5, 1.2, 2.5):
            eng.schedule(t, lambda: None)
        eng.run()
    assert [(r["t"], r["phase"]) for r in inj.event_log] == [
        (1.0, "start"),
        (2.0, "end"),
    ]
    assert inj.event_log[0]["kind"] == "slowdown"
    assert inj.event_log[0]["rank"] == 0


def test_marker_past_last_event_never_fires():
    # nothing in the simulation could observe a window opening after
    # the final event, so its markers must not fire (and must not move
    # the virtual end time)
    inj = FaultInjector(plan_of("crash@5.0+1.0:rank0"))
    with use_faults(inj):
        eng = Engine()
        eng.schedule(1.0, lambda: None)
        eng.run()
    assert eng.now == 1.0
    assert inj.event_log == []


def test_bind_engine_resets_cursor_between_runs():
    inj = FaultInjector(plan_of("slowdown@0.5+0.2x2.0:rank0"))
    with use_faults(inj):
        for _ in range(2):
            eng = Engine()
            eng.schedule(1.0, lambda: None)
            eng.run()
    phases = [r["phase"] for r in inj.event_log]
    assert phases == ["start", "end", "start", "end"]


def test_log_since_scopes_rows_per_run():
    inj = FaultInjector(plan_of("slowdown@0.5+0.2x2.0:rank0"))
    with use_faults(inj):
        eng = Engine()
        eng.schedule(1.0, lambda: None)
        mark = inj.log_mark()
        eng.run()
    rows = inj.log_since(mark)
    assert len(rows) == 2
    rows[0]["t"] = -1.0  # copies: mutating a row leaves the log intact
    assert inj.event_log[0]["t"] == 0.5


# ------------------------------------------------------------- ambient
def test_ambient_default_is_inert_null():
    assert get_faults() is NULL_FAULTS
    assert not NULL_FAULTS.enabled
    assert not NULL_FAULTS.active
    NULL_FAULTS.on_advance(1.0)  # no-op, no state
    assert NULL_FAULTS.event_log == []


def test_use_faults_scopes_and_restores():
    inj = FaultInjector(FaultPlan())
    with use_faults(inj):
        assert get_faults() is inj
        assert inj.enabled and not inj.active  # empty plan: inert
    assert get_faults() is NULL_FAULTS
