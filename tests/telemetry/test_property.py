"""Property tests: span trees are always well-formed, and the null
sink never perturbs results."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.runner import build_controller
from repro.telemetry import (
    MemorySink,
    NullSink,
    Tracer,
    summarize,
    to_chrome_events,
    use_tracer,
    validate_spans,
)
from repro.workloads import JobConfig, run_job

# ---------------------------------------------------------------------------
# random span programs


@st.composite
def span_trees(draw, depth=0):
    """A random tree of (name, children, n_instants, n_completes)."""
    name = draw(st.sampled_from(["a", "b", "c", "d"]))
    n_instants = draw(st.integers(0, 2))
    n_completes = draw(st.integers(0, 2))
    children = []
    if depth < 3:
        children = draw(
            st.lists(span_trees(depth=depth + 1), min_size=0, max_size=3)
        )
    return (name, children, n_instants, n_completes)


@st.composite
def programs(draw):
    """Per-lane forests plus a lane id for each."""
    n_lanes = draw(st.integers(1, 3))
    return {
        tid: draw(st.lists(span_trees(), min_size=0, max_size=3))
        for tid in range(n_lanes)
    }


def _play(tracer, tree, tid):
    name, children, n_instants, n_completes = tree
    with tracer.span(name, cat="prop", tid=tid):
        for _ in range(n_instants):
            tracer.instant("tick", cat="prop", tid=tid)
        for child in children:
            _play(tracer, child, tid)
        for _ in range(n_completes):
            # duration 0 can never poke out of the parent interval
            tracer.complete("leaf", 0.0, cat="prop", tid=tid)


@given(programs())
@settings(max_examples=60, deadline=None)
def test_span_programs_always_validate(prog):
    sink = MemorySink()
    clock = iter(range(1_000_000))
    tracer = Tracer(sink, clock=lambda: float(next(clock)))
    for tid, forest in prog.items():
        for tree in forest:
            _play(tracer, tree, tid)
    assert validate_spans(sink.records) == []
    # every record survives Chrome conversion with the required keys
    for ev in to_chrome_events(sink.records):
        assert {"name", "cat", "ph", "ts", "pid", "tid"} <= set(ev)
    # and the summary never chokes on a valid stream
    summarize(sink.records)


@given(programs())
@settings(max_examples=30, deadline=None)
def test_unclosed_spans_are_always_flagged(prog):
    sink = MemorySink()
    clock = iter(range(1_000_000))
    tracer = Tracer(sink, clock=lambda: float(next(clock)))
    for tid, forest in prog.items():
        for tree in forest:
            _play(tracer, tree, tid)
    tracer.begin("dangling", cat="prop", tid=0)
    assert validate_spans(sink.records)


@given(
    st.integers(0, 2**32 - 1),
    st.sampled_from(["static", "seesaw", "power-aware", "time-aware"]),
)
@settings(max_examples=8, deadline=None)
def test_null_sink_leaves_job_results_bit_identical(seed, approach):
    """Tracing through a NullSink must not change a single bit."""
    cfg = JobConfig(dim=2, n_nodes=4, n_verlet_steps=6, seed=seed)
    base = run_job(cfg, build_controller(approach, cfg))
    with use_tracer(Tracer(NullSink())):
        traced = run_job(cfg, build_controller(approach, cfg))
    assert traced.total_time_s == base.total_time_s
    assert len(traced.records) == len(base.records)
    for r0, r1 in zip(base.records, traced.records):
        assert r0 == r1


@given(
    st.integers(0, 2**32 - 1),
    st.sampled_from(["static", "seesaw", "power-aware", "time-aware"]),
)
@settings(max_examples=8, deadline=None)
def test_metrics_and_audit_leave_job_results_bit_identical(seed, approach):
    """The metrics layer's contract: a run with a live registry and
    audit journal installed matches a bare run bit for bit."""
    from repro.metrics import AuditJournal, MetricRegistry, use_audit, use_metrics

    cfg = JobConfig(dim=2, n_nodes=4, n_verlet_steps=6, seed=seed)
    base = run_job(cfg, build_controller(approach, cfg))
    with use_metrics(MetricRegistry()), use_audit(AuditJournal()) as journal:
        metered = run_job(cfg, build_controller(approach, cfg))
    assert metered.total_time_s == base.total_time_s
    assert len(metered.records) == len(base.records)
    for r0, r1 in zip(base.records, metered.records):
        assert r0 == r1
    assert journal.records  # and the journal actually captured the run


def test_memory_sink_also_preserves_numerics():
    """Even a *recording* tracer leaves the proxy's numerics alone."""
    cfg = JobConfig(dim=2, n_nodes=4, n_verlet_steps=6, seed=11)
    base = run_job(cfg, build_controller("seesaw", cfg))
    sink = MemorySink()
    with use_tracer(Tracer(sink)):
        traced = run_job(cfg, build_controller("seesaw", cfg))
    assert traced.total_time_s == base.total_time_s
    slack0 = np.array([r.slack_norm for r in base.records])
    slack1 = np.array([r.slack_norm for r in traced.records])
    np.testing.assert_array_equal(slack0, slack1)
