"""Unit tests for the tracer core, sinks, and Chrome export."""

import json

import pytest

from repro.telemetry import (
    NULL_TRACER,
    ChromeTraceSink,
    JournalSink,
    JsonlSink,
    MemorySink,
    Tracer,
    get_tracer,
    summarize,
    to_chrome_events,
    use_tracer,
    validate_spans,
)
from repro.campaign import RunJournal


def test_default_tracer_is_null_and_disabled():
    assert get_tracer() is NULL_TRACER
    assert not NULL_TRACER.enabled


def test_use_tracer_installs_and_restores():
    t = Tracer(MemorySink())
    with use_tracer(t):
        assert get_tracer() is t
        assert get_tracer().enabled
    assert get_tracer() is NULL_TRACER


def test_null_tracer_is_inert():
    t = NULL_TRACER
    with t.span("a"):
        t.instant("x")
    h = t.begin("b")
    h.end()
    t.counter("c").inc()
    t.gauge("g").set(3.0)
    t.complete("d", 1.0)
    assert t.counter("c").value == 0.0


def test_span_nesting_and_balance():
    sink = MemorySink()
    t = Tracer(sink)
    with t.span("outer", cat="test", tid=1):
        with t.span("inner", cat="test", tid=1):
            pass
    assert validate_spans(sink.records) == []
    phs = [r["ph"] for r in sink.records]
    names = [r["name"] for r in sink.records]
    assert phs == ["B", "B", "E", "E"]
    assert names == ["outer", "inner", "inner", "outer"]


def test_span_end_is_idempotent():
    sink = MemorySink()
    t = Tracer(sink)
    h = t.begin("a")
    h.end()
    h.end()
    t.end(h)
    assert [r["ph"] for r in sink.records] == ["B", "E"]


def test_counters_accumulate_and_gauges_overwrite():
    sink = MemorySink()
    t = Tracer(sink)
    c = t.counter("hits", cat="m")
    c.inc()
    c.inc(2.0)
    assert c.value == 3.0
    assert t.counter("hits") is c  # cached by name
    g = t.gauge("level")
    g.set(7.0)
    g.set(2.0)
    assert g.value == 2.0
    samples = [r for r in sink.records if r["ph"] == "C"]
    assert [s["args"]["value"] for s in samples] == [1.0, 3.0, 7.0, 2.0]


def test_bind_clock_switches_timestamps_and_pid():
    sink = MemorySink()
    t = Tracer(sink)
    assert t.pid == 0
    pid = t.bind_clock(lambda: 42.0, label="run-a")
    assert pid == 1 and t.pid == 1
    t.instant("x")
    rec = sink.records[-1]
    assert rec["ts"] == 42.0 and rec["pid"] == 1
    # a second binding starts a new trace process
    assert t.bind_clock(lambda: 0.0) == 2


def test_explicit_ts_override():
    sink = MemorySink()
    t = Tracer(sink)
    t.instant("x", ts=1.25)
    t.complete("y", 0.5, ts=2.0)
    assert sink.records[0]["ts"] == 1.25
    assert sink.records[1]["ts"] == 2.0
    assert sink.records[1]["dur"] == 0.5


def test_jsonl_sink_round_trips(tmp_path):
    path = tmp_path / "t.jsonl"
    sink = JsonlSink(path)
    t = Tracer(sink)
    t.instant("x", cat="c", tid=3, foo=1)
    t.close()
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert lines[0]["name"] == "x"
    assert lines[0]["args"] == {"foo": 1}


def test_journal_sink_interleaves_with_journal(tmp_path):
    path = tmp_path / "j.jsonl"
    with RunJournal(path) as journal:
        t = Tracer(JournalSink(journal))
        journal.event("batch-start")
        t.instant("decision", cat="core")
        journal.cell("k", "label", "done", 0.1)
    kinds = [
        json.loads(line)["event"] for line in path.read_text().splitlines()
    ]
    assert kinds == ["batch-start", "telemetry", "cell"]


def test_chrome_export_shape(tmp_path):
    sink = ChromeTraceSink()
    t = Tracer(sink)
    t.name_thread(1, "rank 0")
    with t.span("outer", cat="insitu", tid=1):
        t.instant("ping", cat="core", tid=1)
        t.complete("phase.force", 0.25, cat="power", tid=1, energy_j=30.0)
    t.counter("caps", cat="power").inc()
    out = sink.write(tmp_path / "trace.json")
    doc = json.loads(out.read_text())
    evs = doc["traceEvents"]
    assert isinstance(evs, list) and evs
    by_ph = {e["ph"] for e in evs}
    assert {"M", "B", "E", "i", "X", "C"} <= by_ph
    x = next(e for e in evs if e["ph"] == "X")
    assert x["dur"] == pytest.approx(0.25e6)  # microseconds
    assert x["args"]["energy_j"] == 30.0
    inst = next(e for e in evs if e["ph"] == "i")
    assert inst["s"] == "t"
    for e in evs:
        assert {"name", "cat", "ph", "ts", "pid", "tid"} <= set(e)


def test_to_chrome_events_defaults_category():
    evs = to_chrome_events(
        [{"ph": "i", "name": "x", "cat": "", "ts": 0.0, "pid": 0, "tid": 0}]
    )
    assert evs[0]["cat"] == "default"


def test_validate_spans_flags_unbalanced_and_misnested():
    # never-ended span
    assert validate_spans(
        [{"ph": "B", "name": "a", "ts": 0.0, "pid": 0, "tid": 0}]
    )
    # end with no begin
    assert validate_spans(
        [{"ph": "E", "name": "a", "ts": 0.0, "pid": 0, "tid": 0}]
    )
    # wrong closing order
    assert validate_spans(
        [
            {"ph": "B", "name": "a", "ts": 0.0, "pid": 0, "tid": 0},
            {"ph": "B", "name": "b", "ts": 1.0, "pid": 0, "tid": 0},
            {"ph": "E", "name": "a", "ts": 2.0, "pid": 0, "tid": 0},
            {"ph": "E", "name": "b", "ts": 3.0, "pid": 0, "tid": 0},
        ]
    )
    # X child poking out of its parent
    assert validate_spans(
        [
            {"ph": "B", "name": "a", "ts": 0.0, "pid": 0, "tid": 0},
            {"ph": "X", "name": "x", "ts": 0.5, "dur": 9.0, "pid": 0, "tid": 0},
            {"ph": "E", "name": "a", "ts": 1.0, "pid": 0, "tid": 0},
        ]
    )
    # separate lanes do not interfere
    assert (
        validate_spans(
            [
                {"ph": "B", "name": "a", "ts": 0.0, "pid": 0, "tid": 1},
                {"ph": "B", "name": "a", "ts": 0.0, "pid": 0, "tid": 2},
                {"ph": "E", "name": "a", "ts": 1.0, "pid": 0, "tid": 1},
                {"ph": "E", "name": "a", "ts": 1.0, "pid": 0, "tid": 2},
            ]
        )
        == []
    )


def test_summarize_span_durations_and_phase_power():
    sink = MemorySink()
    t = Tracer(sink, clock=iter(range(100)).__next__)
    with t.span("work", cat="insitu", tid=1):
        t.complete("phase.force", 2.0, cat="power", tid=1, energy_j=220.0)
    summ = summarize(sink.records)
    # fake clock ticks once per emit: B at 0, X at 1, E at 2
    assert summ.spans[("insitu", "work")].count == 1
    assert summ.spans[("insitu", "work")].total_s == 2.0
    force = summ.phases["force"]
    assert force.total_s == 2.0
    assert force.mean_power_w == pytest.approx(110.0)
    text = summ.render()
    assert "force" in text and "110" in text
