"""Sink hardening: JsonlSink flush bounds, MemorySink thread safety."""

import json
import threading

import pytest

from repro.telemetry.sinks import JsonlSink, MemorySink


def _rec(i):
    return {"ph": "i", "name": f"e{i}", "ts": float(i)}


# ------------------------------------------------------------- JsonlSink
def test_jsonl_flushes_every_n_records(tmp_path):
    """Crash-tail bound: without close(), at most flush_every - 1
    records can be lost to libc buffering."""
    path = tmp_path / "t.jsonl"
    sink = JsonlSink(path, flush_every=8)
    for i in range(20):
        sink.emit(_rec(i))
    # 16 flushed (two full batches); the 4 pending may sit in the buffer
    on_disk = [json.loads(line) for line in path.read_text().splitlines()]
    assert len(on_disk) >= 16
    assert on_disk[:16] == [
        json.loads(json.dumps(_rec(i), sort_keys=True)) for i in range(16)
    ]
    sink.close()
    assert len(path.read_text().splitlines()) == 20


def test_jsonl_close_flushes_partial_batch(tmp_path):
    path = tmp_path / "t.jsonl"
    sink = JsonlSink(path, flush_every=64)
    for i in range(3):
        sink.emit(_rec(i))
    sink.close()
    assert len(path.read_text().splitlines()) == 3
    sink.close()  # idempotent
    sink.emit(_rec(99))  # post-close emit is dropped, not an error
    assert len(path.read_text().splitlines()) == 3


def test_jsonl_flush_every_validated(tmp_path):
    with pytest.raises(ValueError):
        JsonlSink(tmp_path / "t.jsonl", flush_every=0)


def test_jsonl_flush_every_one_is_unbuffered(tmp_path):
    path = tmp_path / "t.jsonl"
    sink = JsonlSink(path, flush_every=1)
    sink.emit(_rec(0))
    assert len(path.read_text().splitlines()) == 1
    sink.close()


# ------------------------------------------------------------ MemorySink
def test_memory_sink_concurrent_emit_loses_nothing():
    """Regression (ISSUE satellite): the campaign parent merges shipped
    batches while in-process instrumentation emits concurrently; no
    record may be lost or the list corrupted."""
    sink = MemorySink()
    n_threads, per_thread = 8, 500

    def pump(tid):
        for i in range(per_thread):
            sink.emit({"t": tid, "i": i})

    threads = [
        threading.Thread(target=pump, args=(t,)) for t in range(n_threads)
    ]
    for th in threads:
        th.start()
    for th in threads:
        th.join()
    assert len(sink.records) == n_threads * per_thread
    # every thread's stream arrived complete and in its own order
    for t in range(n_threads):
        mine = [r["i"] for r in sink.records if r["t"] == t]
        assert mine == list(range(per_thread))


def test_memory_sink_clear_races_emit_safely():
    sink = MemorySink()
    stop = threading.Event()

    def pump():
        i = 0
        while not stop.is_set():
            sink.emit({"i": i})
            i += 1

    th = threading.Thread(target=pump)
    th.start()
    for _ in range(200):
        sink.clear()
    stop.set()
    th.join()
    sink.clear()
    assert sink.records == []
