"""Telemetry threaded through the real stack: DES, controllers, RAPL,
the in-situ coupler, and the campaign engine."""

import json

import numpy as np
import pytest

from repro.campaign import CampaignEngine, CellSpec
from repro.cluster.node import THETA_NODE
from repro.core import SeeSAwController
from repro.des.engine import Engine
from repro.insitu import InsituConfig, run_insitu
from repro.telemetry import (
    ChromeTraceSink,
    MemorySink,
    Tracer,
    use_tracer,
    validate_spans,
    summarize,
)
from repro.workloads import JobConfig


def small_insitu_cfg(**kw):
    defaults = dict(
        n_sim_ranks=2, n_ana_ranks=2, dim=1, n_verlet_steps=4, seed=7
    )
    defaults.update(kw)
    return InsituConfig(**defaults)


def seesaw_for(cfg):
    return SeeSAwController(
        cfg.world_size * cfg.power_cap_w,
        cfg.n_sim_ranks,
        cfg.n_ana_ranks,
        THETA_NODE,
    )


@pytest.fixture(scope="module")
def traced_run():
    cfg = small_insitu_cfg()
    sink = ChromeTraceSink()
    with use_tracer(Tracer(sink)):
        result = run_insitu(cfg, seesaw_for(cfg))
    return cfg, result, sink


def test_traced_run_covers_all_layers(traced_run):
    _, _, sink = traced_run
    cats = {r.get("cat") for r in sink.records}
    assert {"des", "core", "power", "insitu"} <= cats


def test_traced_run_spans_are_well_formed(traced_run):
    _, _, sink = traced_run
    assert validate_spans(sink.records) == []


def test_engine_binds_sim_clock(traced_run):
    _, result, sink = traced_run
    # every timestamp lives on the virtual clock: bounded by the
    # run's virtual makespan, far below any wall-clock epoch
    ts = [r["ts"] for r in sink.records if r["ph"] != "M"]
    assert max(ts) <= result.virtual_time_s + 1e-9
    assert min(ts) >= 0.0


def test_sync_wait_spans_once_per_rank_per_sync(traced_run):
    cfg, _, sink = traced_run
    waits = [
        r
        for r in sink.records
        if r["ph"] == "B" and r["name"] == "insitu.sync_wait"
    ]
    assert len(waits) == cfg.n_syncs * cfg.world_size
    # one lane per rank, none on the engine lane
    assert {r["tid"] for r in waits} == set(range(1, cfg.world_size + 1))


def test_controller_decisions_and_cap_actuations_present(traced_run):
    cfg, result, sink = traced_run
    decisions = [
        r for r in sink.records if r["name"] == "core.seesaw.decision"
    ]
    assert len(decisions) == len(result.allocation_log)
    for d in decisions:
        args = d["args"]
        assert args["after_sim_w"] + args["after_ana_w"] == pytest.approx(
            cfg.world_size * cfg.power_cap_w, rel=1e-6
        )
    applies = [r for r in sink.records if r["name"] == "power.rapl.apply"]
    assert applies, "cap actuations must be traced"


def test_chrome_trace_loads_and_nests(tmp_path, traced_run):
    _, _, sink = traced_run
    path = sink.write(tmp_path / "trace.json")
    doc = json.loads(path.read_text())
    evs = doc["traceEvents"]
    assert isinstance(evs, list)
    # nested spans: an insitu.sync B strictly contains an
    # insitu.sync_wait B/E pair on the same lane
    sync_b = next(
        e for e in evs if e["ph"] == "B" and e["name"] == "insitu.sync"
    )
    lane = (sync_b["pid"], sync_b["tid"])
    wait_b = next(
        e
        for e in evs
        if e["ph"] == "B"
        and e["name"] == "insitu.sync_wait"
        and (e["pid"], e["tid"]) == lane
    )
    sync_e = next(
        e
        for e in evs
        if e["ph"] == "E"
        and e["name"] == "insitu.sync"
        and (e["pid"], e["tid"]) == lane
    )
    assert sync_b["ts"] <= wait_b["ts"] <= sync_e["ts"]


def test_summary_reports_phase_power(traced_run):
    _, _, sink = traced_run
    summ = summarize(sink.records)
    assert summ.phases, "phase table must not be empty"
    for stat in summ.phases.values():
        assert stat.total_s > 0
        # phases draw between the RAPL floor and well under 2x TDP
        assert 50.0 < stat.mean_power_w < 2 * THETA_NODE.tdp_watts
    assert summ.counters["insitu.sync_waits"] > 0


def test_untraced_engine_emits_nothing():
    sink = MemorySink()
    tracer = Tracer(sink)
    eng = Engine()  # constructed outside any use_tracer scope
    with use_tracer(tracer):
        eng.schedule(1.0, lambda: None)
        eng.run()
    assert sink.records == []


def test_campaign_cells_traced():
    sink = MemorySink()
    cfg = JobConfig(dim=2, n_nodes=4, n_verlet_steps=4, seed=3)
    cells = [
        CellSpec("static", cfg, 0),
        CellSpec("static", cfg, 0),  # duplicate -> dedup
    ]
    with use_tracer(Tracer(sink)):
        engine = CampaignEngine()
        engine.run_cells(cells)
    cell_spans = [r for r in sink.records if r["name"] == "campaign.cell"]
    assert len(cell_spans) == 2
    statuses = sorted(r["args"]["status"] for r in cell_spans)
    assert statuses == ["done", "dup"]
    counters = {
        r["name"]: r["args"]["value"]
        for r in sink.records
        if r["ph"] == "C"
    }
    assert counters["campaign.cache_runs"] == 1.0
    assert counters["campaign.cache_dups"] == 1.0


def test_trace_does_not_perturb_results():
    """A traced run and an untraced run are numerically identical."""
    cfg = small_insitu_cfg()
    base = run_insitu(cfg, seesaw_for(cfg))
    with use_tracer(Tracer(MemorySink())):
        traced = run_insitu(cfg, seesaw_for(cfg))
    assert traced.virtual_time_s == base.virtual_time_s
    assert traced.verification_failures == base.verification_failures
    for (s0, a0), (s1, a1) in zip(
        base.allocation_log, traced.allocation_log
    ):
        assert s0 == s1
        np.testing.assert_array_equal(a0.sim_caps_w, a1.sim_caps_w)
        np.testing.assert_array_equal(a0.ana_caps_w, a1.ana_caps_w)
