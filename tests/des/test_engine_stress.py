"""Stress and ordering guarantees of the DES engine under heavy load."""


from repro.des import Delay, Engine, Process, SimEvent
from repro.util.rng import RngStream


def test_large_heap_orders_random_times():
    eng = Engine()
    rng = RngStream(3)
    times = rng.uniform(0.0, 100.0, size=5000)
    fired = []
    for t in times:
        eng.schedule(float(t), lambda t=t: fired.append(t))
    eng.run()
    assert fired == sorted(fired)
    assert len(fired) == 5000


def test_mass_cancellation_is_clean():
    eng = Engine()
    fired = []
    handles = [
        eng.schedule(float(i), lambda i=i: fired.append(i))
        for i in range(2000)
    ]
    for h in handles[::2]:
        eng.cancel(h)
    eng.run()
    assert fired == list(range(1, 2000, 2))


def test_many_processes_rendezvous():
    """1000 processes with staggered delays all wake on one event and
    the event's value reaches every one of them."""
    eng = Engine()
    gate = SimEvent(eng, name="gate")
    results = []

    def body(i):
        yield Delay(i * 0.001)
        value = yield gate
        results.append((i, value))

    for i in range(1000):
        Process(eng, body(i))
    eng.schedule(10.0, lambda: gate.succeed("go"))
    eng.run()
    assert len(results) == 1000
    assert all(v == "go" for _, v in results)


def test_cascading_process_chains():
    """A chain of processes each waiting on the previous one's result
    accumulates correctly (deep dependency chains must not recurse)."""
    eng = Engine()

    def first():
        yield Delay(1.0)
        return 1

    prev = Process(eng, first())

    def link(p):
        def body():
            value = yield p
            yield Delay(0.001)
            return value + 1

        return body

    for _ in range(500):
        prev = Process(eng, link(prev)())
    eng.run()
    assert prev.result == 501


def test_event_counter_matches_work():
    eng = Engine()

    def body():
        for _ in range(100):
            yield Delay(0.01)

    procs = [Process(eng, body()) for _ in range(10)]
    eng.run()
    # 10 starts + 10*100 delays
    assert eng.events_executed == 10 + 1000
    assert all(not p.alive for p in procs)
