"""Unit tests for the discrete-event engine."""

import pytest

from repro.des import Engine, SimulationError


def test_time_starts_at_zero():
    eng = Engine()
    assert eng.now == 0.0


def test_events_fire_in_time_order():
    eng = Engine()
    fired = []
    eng.schedule(2.0, lambda: fired.append(("b", eng.now)))
    eng.schedule(1.0, lambda: fired.append(("a", eng.now)))
    eng.schedule(3.0, lambda: fired.append(("c", eng.now)))
    eng.run()
    assert fired == [("a", 1.0), ("b", 2.0), ("c", 3.0)]


def test_simultaneous_events_fire_in_schedule_order():
    eng = Engine()
    fired = []
    for label in "abcde":
        eng.schedule(1.0, lambda l=label: fired.append(l))
    eng.run()
    assert fired == list("abcde")


def test_negative_delay_rejected():
    eng = Engine()
    with pytest.raises(ValueError):
        eng.schedule(-0.1, lambda: None)


def test_schedule_at_absolute_time():
    eng = Engine()
    seen = []
    eng.schedule_at(5.0, lambda: seen.append(eng.now))
    eng.run()
    assert seen == [5.0]


def test_schedule_at_in_past_rejected():
    eng = Engine()
    eng.schedule(1.0, lambda: None)
    eng.run()
    assert eng.now == 1.0
    with pytest.raises(ValueError):
        eng.schedule_at(0.5, lambda: None)


def test_cancelled_event_does_not_fire():
    eng = Engine()
    fired = []
    handle = eng.schedule(1.0, lambda: fired.append("x"))
    eng.cancel(handle)
    eng.run()
    assert fired == []
    assert eng.now == 0.0  # cancelled events do not advance time


def test_cancel_is_idempotent():
    eng = Engine()
    handle = eng.schedule(1.0, lambda: None)
    eng.cancel(handle)
    eng.cancel(handle)
    eng.run()


def test_callbacks_can_schedule_more_events():
    eng = Engine()
    trace = []

    def first():
        trace.append(("first", eng.now))
        eng.schedule(0.5, lambda: trace.append(("second", eng.now)))

    eng.schedule(1.0, first)
    eng.run()
    assert trace == [("first", 1.0), ("second", 1.5)]


def test_run_until_advances_clock_even_without_events():
    eng = Engine()
    eng.run_until(10.0)
    assert eng.now == 10.0


def test_run_until_executes_only_events_before_deadline():
    eng = Engine()
    fired = []
    eng.schedule(1.0, lambda: fired.append(1.0))
    eng.schedule(5.0, lambda: fired.append(5.0))
    eng.run_until(2.0)
    assert fired == [1.0]
    assert eng.now == 2.0
    eng.run()
    assert fired == [1.0, 5.0]


def test_run_until_backwards_rejected():
    eng = Engine()
    eng.run_until(3.0)
    with pytest.raises(ValueError):
        eng.run_until(1.0)


def test_peek_skips_cancelled():
    eng = Engine()
    h = eng.schedule(1.0, lambda: None)
    eng.schedule(2.0, lambda: None)
    eng.cancel(h)
    assert eng.peek() == 2.0


def test_peek_empty_returns_none():
    eng = Engine()
    assert eng.peek() is None


def test_pending_counts_live_events():
    eng = Engine()
    h1 = eng.schedule(1.0, lambda: None)
    eng.schedule(2.0, lambda: None)
    assert eng.pending == 2
    eng.cancel(h1)
    assert eng.pending == 1


def test_pending_counter_matches_heap_scan():
    """The O(1) live counter must track the O(n) reference scan through
    every transition: schedule, schedule_at, cancel, double-cancel, and
    event dispatch (including popping over cancelled entries)."""
    eng = Engine()
    assert eng.pending == eng._pending_scan() == 0

    handles = [eng.schedule(float(i + 1), lambda: None) for i in range(6)]
    handles.append(eng.schedule_at(10.0, lambda: None))
    assert eng.pending == eng._pending_scan() == 7

    eng.cancel(handles[1])
    eng.cancel(handles[4])
    assert eng.pending == eng._pending_scan() == 5

    eng.cancel(handles[1])  # double-cancel must not decrement twice
    assert eng.pending == eng._pending_scan() == 5

    while eng.step():
        assert eng.pending == eng._pending_scan()
    assert eng.pending == eng._pending_scan() == 0
    assert eng.events_executed == 5


def test_pending_counter_with_reschedules_during_run():
    """Cancel-and-reschedule from inside callbacks (the power-cap
    re-actuation pattern) keeps the counter consistent."""
    eng = Engine()
    scans = []

    def reschedule():
        h = eng.schedule(1.0, lambda: None)
        eng.cancel(h)
        eng.schedule(0.5, lambda: scans.append(eng.pending == eng._pending_scan()))

    eng.schedule(1.0, reschedule)
    eng.run()
    assert scans == [True]
    assert eng.pending == eng._pending_scan() == 0


def test_cancel_after_fire_does_not_corrupt_counter():
    eng = Engine()
    h = eng.schedule(1.0, lambda: None)
    eng.schedule(2.0, lambda: None)
    eng.step()  # fires h
    eng.cancel(h)  # late cancel of an already-fired handle
    assert eng.pending == eng._pending_scan() == 1


def test_events_executed_counter():
    eng = Engine()
    for _ in range(7):
        eng.schedule(1.0, lambda: None)
    eng.run()
    assert eng.events_executed == 7


def test_max_events_limits_run():
    eng = Engine()
    fired = []
    for i in range(10):
        eng.schedule(float(i + 1), lambda i=i: fired.append(i))
    eng.run(max_events=3)
    assert fired == [0, 1, 2]


def test_engine_not_reentrant():
    eng = Engine()
    errors = []

    def nested():
        try:
            eng.run()
        except SimulationError as e:
            errors.append(e)

    eng.schedule(1.0, nested)
    eng.run()
    assert len(errors) == 1


def test_step_returns_false_when_empty():
    eng = Engine()
    assert eng.step() is False


# ---------------------------------------------------------------------------
# non-finite scheduling


@pytest.mark.parametrize("delay", [float("nan"), float("inf"), float("-inf")])
def test_non_finite_delay_rejected(delay):
    eng = Engine()
    with pytest.raises(ValueError):
        eng.schedule(delay, lambda: None)
    assert eng.pending == 0  # nothing leaked into the heap


@pytest.mark.parametrize("time", [float("nan"), float("inf"), float("-inf")])
def test_non_finite_schedule_at_rejected(time):
    eng = Engine()
    with pytest.raises(ValueError):
        eng.schedule_at(time, lambda: None)
    assert eng.pending == 0


# ---------------------------------------------------------------------------
# cancellation compaction


def test_compaction_triggers_past_threshold():
    eng = Engine()
    eng.COMPACT_MIN_DEAD = 4  # instance override shrinks the floor
    handles = [eng.schedule(float(i + 1), lambda: None) for i in range(8)]
    for h in handles[:4]:
        eng.cancel(h)
    # dead=4 >= floor but 4*2 == len(heap): majority rule not met yet
    assert eng.compactions == 0
    eng.cancel(handles[4])
    # dead=5, 10 > 8: compacted — dead entries dropped, counter reset
    assert eng.compactions == 1
    assert eng._dead == 0
    assert len(eng._heap) == 3
    assert eng.pending == eng._pending_scan() == 3


def test_compaction_below_floor_stays_lazy():
    eng = Engine()
    handles = [eng.schedule(float(i + 1), lambda: None) for i in range(10)]
    for h in handles:
        eng.cancel(h)
    # 10 dead is under COMPACT_MIN_DEAD=64: pure lazy deletion
    assert eng.compactions == 0
    assert eng.pending == 0
    eng.run()
    assert eng.events_executed == 0


def test_compaction_preserves_firing_order():
    eng = Engine()
    eng.COMPACT_MIN_DEAD = 2
    fired = []
    keep = []
    for i in range(20):
        h = eng.schedule(float(i + 1), lambda i=i: fired.append(i))
        if i % 3 == 0:
            keep.append(i)
        else:
            eng.cancel(h)
    assert eng.compactions >= 1
    assert eng.pending == eng._pending_scan() == len(keep)
    eng.run()
    assert fired == keep


def test_compaction_during_run_keeps_loop_alive():
    """Cancelling from inside a callback may compact the heap while the
    dispatch loop holds an alias to it; the survivors must still fire."""
    eng = Engine()
    eng.COMPACT_MIN_DEAD = 2
    fired = []
    victims = [eng.schedule(5.0 + i, lambda: fired.append("victim")) for i in range(8)]
    eng.schedule(2.0, lambda: fired.append("survivor"))

    def purge():
        for h in victims:
            eng.cancel(h)

    eng.schedule(1.0, purge)
    eng.run()
    assert eng.compactions >= 1
    assert fired == ["survivor"]
    assert eng.pending == eng._pending_scan() == 0


# ---------------------------------------------------------------------------
# dispatch-loop variants


def _churn_workload(eng, trace):
    """Schedule/cancel/reschedule pattern exercising dead-entry skips."""

    def tick(i):
        trace.append((i, eng.now))
        if i < 30:
            h = eng.schedule(0.5, lambda: trace.append(("dead", eng.now)))
            eng.cancel(h)
            eng.schedule(0.25, lambda: tick(i + 1))

    eng.schedule(0.0, lambda: tick(0))


def test_run_and_step_produce_identical_trajectories():
    ran, stepped = [], []
    eng1 = Engine()
    _churn_workload(eng1, ran)
    eng1.run()
    eng2 = Engine()
    _churn_workload(eng2, stepped)
    while eng2.step():
        pass
    assert ran == stepped
    assert eng1.now == eng2.now
    assert eng1.events_executed == eng2.events_executed


def test_sampler_variant_matches_bare_trajectory():
    bare, sampled = [], []
    eng1 = Engine()
    _churn_workload(eng1, bare)
    eng1.run()

    eng2 = Engine()
    advances = []
    eng2.attach_sampler(advances.append)
    _churn_workload(eng2, sampled)
    eng2.run()
    assert sampled == bare
    # the sampler saw every clock advance, in order
    assert advances == [t for _, t in sampled]


def test_tracer_variant_matches_bare_trajectory():
    from repro.telemetry import MemorySink, Tracer, use_tracer

    bare, traced = [], []
    eng1 = Engine()
    _churn_workload(eng1, bare)
    eng1.run()

    sink = MemorySink()
    with use_tracer(Tracer(sink)):
        eng2 = Engine()
        _churn_workload(eng2, traced)
        eng2.run()
    assert traced == bare
    dispatches = [r for r in sink.records if r.get("name") == "des.dispatch"]
    assert len(dispatches) == eng2.events_executed


def test_attach_sampler_during_run_rejected():
    eng = Engine()
    errors = []

    def attach():
        try:
            eng.attach_sampler(lambda t: None)
        except SimulationError as e:
            errors.append(e)

    eng.schedule(1.0, attach)
    eng.run()
    assert len(errors) == 1
