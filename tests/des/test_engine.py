"""Unit tests for the discrete-event engine."""

import pytest

from repro.des import Engine, SimulationError


def test_time_starts_at_zero():
    eng = Engine()
    assert eng.now == 0.0


def test_events_fire_in_time_order():
    eng = Engine()
    fired = []
    eng.schedule(2.0, lambda: fired.append(("b", eng.now)))
    eng.schedule(1.0, lambda: fired.append(("a", eng.now)))
    eng.schedule(3.0, lambda: fired.append(("c", eng.now)))
    eng.run()
    assert fired == [("a", 1.0), ("b", 2.0), ("c", 3.0)]


def test_simultaneous_events_fire_in_schedule_order():
    eng = Engine()
    fired = []
    for label in "abcde":
        eng.schedule(1.0, lambda l=label: fired.append(l))
    eng.run()
    assert fired == list("abcde")


def test_negative_delay_rejected():
    eng = Engine()
    with pytest.raises(ValueError):
        eng.schedule(-0.1, lambda: None)


def test_schedule_at_absolute_time():
    eng = Engine()
    seen = []
    eng.schedule_at(5.0, lambda: seen.append(eng.now))
    eng.run()
    assert seen == [5.0]


def test_schedule_at_in_past_rejected():
    eng = Engine()
    eng.schedule(1.0, lambda: None)
    eng.run()
    assert eng.now == 1.0
    with pytest.raises(ValueError):
        eng.schedule_at(0.5, lambda: None)


def test_cancelled_event_does_not_fire():
    eng = Engine()
    fired = []
    handle = eng.schedule(1.0, lambda: fired.append("x"))
    handle.cancel()
    eng.run()
    assert fired == []
    assert eng.now == 0.0  # cancelled events do not advance time


def test_cancel_is_idempotent():
    eng = Engine()
    handle = eng.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    eng.run()


def test_callbacks_can_schedule_more_events():
    eng = Engine()
    trace = []

    def first():
        trace.append(("first", eng.now))
        eng.schedule(0.5, lambda: trace.append(("second", eng.now)))

    eng.schedule(1.0, first)
    eng.run()
    assert trace == [("first", 1.0), ("second", 1.5)]


def test_run_until_advances_clock_even_without_events():
    eng = Engine()
    eng.run_until(10.0)
    assert eng.now == 10.0


def test_run_until_executes_only_events_before_deadline():
    eng = Engine()
    fired = []
    eng.schedule(1.0, lambda: fired.append(1.0))
    eng.schedule(5.0, lambda: fired.append(5.0))
    eng.run_until(2.0)
    assert fired == [1.0]
    assert eng.now == 2.0
    eng.run()
    assert fired == [1.0, 5.0]


def test_run_until_backwards_rejected():
    eng = Engine()
    eng.run_until(3.0)
    with pytest.raises(ValueError):
        eng.run_until(1.0)


def test_peek_skips_cancelled():
    eng = Engine()
    h = eng.schedule(1.0, lambda: None)
    eng.schedule(2.0, lambda: None)
    h.cancel()
    assert eng.peek() == 2.0


def test_peek_empty_returns_none():
    eng = Engine()
    assert eng.peek() is None


def test_pending_counts_live_events():
    eng = Engine()
    h1 = eng.schedule(1.0, lambda: None)
    eng.schedule(2.0, lambda: None)
    assert eng.pending == 2
    h1.cancel()
    assert eng.pending == 1


def test_pending_counter_matches_heap_scan():
    """The O(1) live counter must track the O(n) reference scan through
    every transition: schedule, schedule_at, cancel, double-cancel, and
    event dispatch (including popping over cancelled entries)."""
    eng = Engine()
    assert eng.pending == eng._pending_scan() == 0

    handles = [eng.schedule(float(i + 1), lambda: None) for i in range(6)]
    handles.append(eng.schedule_at(10.0, lambda: None))
    assert eng.pending == eng._pending_scan() == 7

    handles[1].cancel()
    handles[4].cancel()
    assert eng.pending == eng._pending_scan() == 5

    handles[1].cancel()  # double-cancel must not decrement twice
    assert eng.pending == eng._pending_scan() == 5

    while eng.step():
        assert eng.pending == eng._pending_scan()
    assert eng.pending == eng._pending_scan() == 0
    assert eng.events_executed == 5


def test_pending_counter_with_reschedules_during_run():
    """Cancel-and-reschedule from inside callbacks (the power-cap
    re-actuation pattern) keeps the counter consistent."""
    eng = Engine()
    scans = []

    def reschedule():
        h = eng.schedule(1.0, lambda: None)
        h.cancel()
        eng.schedule(0.5, lambda: scans.append(eng.pending == eng._pending_scan()))

    eng.schedule(1.0, reschedule)
    eng.run()
    assert scans == [True]
    assert eng.pending == eng._pending_scan() == 0


def test_cancel_after_fire_does_not_corrupt_counter():
    eng = Engine()
    h = eng.schedule(1.0, lambda: None)
    eng.schedule(2.0, lambda: None)
    eng.step()  # fires h
    h.cancel()  # late cancel of an already-fired handle
    assert eng.pending == eng._pending_scan() == 1


def test_events_executed_counter():
    eng = Engine()
    for _ in range(7):
        eng.schedule(1.0, lambda: None)
    eng.run()
    assert eng.events_executed == 7


def test_max_events_limits_run():
    eng = Engine()
    fired = []
    for i in range(10):
        eng.schedule(float(i + 1), lambda i=i: fired.append(i))
    eng.run(max_events=3)
    assert fired == [0, 1, 2]


def test_engine_not_reentrant():
    eng = Engine()
    errors = []

    def nested():
        try:
            eng.run()
        except SimulationError as e:
            errors.append(e)

    eng.schedule(1.0, nested)
    eng.run()
    assert len(errors) == 1


def test_step_returns_false_when_empty():
    eng = Engine()
    assert eng.step() is False
