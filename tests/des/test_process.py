"""Unit tests for generator-based processes and events."""

import pytest

from repro.des import Delay, Engine, Process, SimEvent, SimulationError


def test_delay_advances_virtual_time():
    eng = Engine()
    times = []

    def body():
        times.append(eng.now)
        yield Delay(1.5)
        times.append(eng.now)
        yield Delay(0.5)
        times.append(eng.now)

    Process(eng, body(), name="p")
    eng.run()
    assert times == [0.0, 1.5, 2.0]


def test_zero_delay_allowed():
    eng = Engine()
    done = []

    def body():
        yield Delay(0.0)
        done.append(eng.now)

    Process(eng, body())
    eng.run()
    assert done == [0.0]


def test_negative_delay_rejected():
    with pytest.raises(ValueError):
        Delay(-1.0)


def test_process_result_available_after_completion():
    eng = Engine()

    def body():
        yield Delay(1.0)
        return 42

    p = Process(eng, body())
    eng.run()
    assert not p.alive
    assert p.result == 42


def test_result_before_completion_raises():
    eng = Engine()

    def body():
        yield Delay(1.0)

    p = Process(eng, body())
    with pytest.raises(SimulationError):
        _ = p.result


def test_wait_on_event_receives_value():
    eng = Engine()
    ev = SimEvent(eng, name="signal")
    got = []

    def waiter():
        value = yield ev
        got.append((eng.now, value))

    Process(eng, waiter())
    eng.schedule(3.0, lambda: ev.succeed("payload"))
    eng.run()
    assert got == [(3.0, "payload")]


def test_wait_on_already_triggered_event():
    eng = Engine()
    ev = SimEvent(eng)
    ev.succeed(7)

    def waiter():
        value = yield ev
        return value

    p = Process(eng, waiter())
    eng.run()
    assert p.result == 7


def test_event_wakes_all_waiters():
    eng = Engine()
    ev = SimEvent(eng)
    woken = []

    def waiter(i):
        value = yield ev
        woken.append((i, value))

    for i in range(3):
        Process(eng, waiter(i))
    eng.schedule(1.0, lambda: ev.succeed("go"))
    eng.run()
    assert sorted(woken) == [(0, "go"), (1, "go"), (2, "go")]


def test_event_cannot_succeed_twice():
    eng = Engine()
    ev = SimEvent(eng)
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()


def test_event_value_before_trigger_raises():
    eng = Engine()
    ev = SimEvent(eng)
    with pytest.raises(SimulationError):
        _ = ev.value


def test_process_waits_on_another_process():
    eng = Engine()

    def child():
        yield Delay(2.0)
        return "child-result"

    def parent(child_proc):
        result = yield child_proc
        return (eng.now, result)

    c = Process(eng, child())
    p = Process(eng, parent(c))
    eng.run()
    assert p.result == (2.0, "child-result")


def test_waiting_on_finished_process_resumes_immediately():
    eng = Engine()

    def child():
        yield Delay(1.0)
        return "done"

    c = Process(eng, child())
    eng.run()

    def parent():
        result = yield c
        return result

    p = Process(eng, parent())
    eng.run()
    assert p.result == "done"


def test_yielding_garbage_raises():
    eng = Engine()

    def body():
        yield object()

    Process(eng, body())
    with pytest.raises(SimulationError):
        eng.run()


def test_processes_start_at_same_time_regardless_of_order():
    eng = Engine()
    starts = []

    def body(i):
        starts.append((i, eng.now))
        yield Delay(0.1)

    eng.run_until(5.0)
    Process(eng, body(0))
    Process(eng, body(1))
    eng.run()
    assert starts == [(0, 5.0), (1, 5.0)]


def test_done_event_fires_on_completion():
    eng = Engine()

    def body():
        yield Delay(1.0)
        return "x"

    p = Process(eng, body())
    seen = []

    def watcher():
        v = yield p.done_event
        seen.append(v)

    Process(eng, watcher())
    eng.run()
    assert seen == ["x"]
