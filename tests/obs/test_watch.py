"""Campaign watch: journal folding, rendering, TTY/non-TTY modes."""

import io
import json

from repro.obs.watch import WatchModel, WatchState, fold, render_state, watch_journal


def _journal_rows():
    return [
        {"event": "campaign", "id": "cafe0123", "experiments": ["fig8"],
         "jobs": 2},
        {"event": "scheduled", "keys": ["k1", "k2", "k3", "k4"]},
        {"event": "cell", "status": "hit", "key": "k1"},
        {"event": "cell", "status": "done", "key": "k2"},
        {"event": "cell", "status": "error", "key": "k3"},
        {"event": "cell", "status": "retried", "key": "k3"},
        {"event": "sched", "final": False, "n_workers": 2, "dispatches": 3,
         "steals": 1, "stolen_cells": 2, "queue_depth": 1, "eta_s": 4.5,
         "ship_records": 120, "ship_dropped": 0,
         "workers": [
             {"wid": 0, "pid": 11, "cells": 2, "busy_s": 1.0,
              "stolen_cells": 0, "respawns": 0, "utilization": 0.8},
             {"wid": 1, "pid": 12, "cells": 1, "busy_s": 0.4,
              "stolen_cells": 2, "respawns": 1, "utilization": 0.3},
         ]},
        {"event": "telemetry", "ph": "X", "name": "phase.md", "ts": 0.0,
         "dur": 2.0, "pid": 1000, "tid": 1, "args": {"energy_j": 100.0},
         "worker": 0, "label": "seesaw/vacf/d16/n8/s1/r0"},
        {"event": "telemetry", "ph": "X", "name": "phase.md", "ts": 2.0,
         "dur": 2.0, "pid": 1000, "tid": 1, "args": {"energy_j": 150.0},
         "worker": 0, "label": "seesaw/vacf/d16/n8/s1/r0"},
        {"event": "telemetry", "ph": "i", "name": "core.seesaw.decision",
         "ts": 2.0, "pid": 1000, "tid": 0, "worker": 0},
        {"event": "telemetry", "ph": "i", "name": "power.rapl.apply",
         "ts": 2.1, "pid": 1000, "tid": 0, "worker": 0},
        {"event": "summary", "cells": 4, "hits": 1},
    ]


def _fold_all():
    state = WatchState()
    for row in _journal_rows():
        fold(state, row)
    return state


def test_fold_accumulates_campaign_state():
    state = _fold_all()
    assert state.campaign["id"] == "cafe0123"
    assert state.scheduled == 4
    assert state.counts["cells"] == 3  # hit + done + retried
    assert state.counts["errors"] == 1 and state.counts["retries"] == 1
    assert state.finished
    assert state.decisions == 1 and state.actuations == 1
    # power series: approach from the mux-stamped cell label
    assert list(state.power) == ["seesaw"]
    assert state.power["seesaw"][0] == 50.0  # 100 J / 2 s
    assert state.energy_j["seesaw"] == 250.0


def test_render_is_deterministic_and_complete():
    state = _fold_all()
    frame = render_state(state)
    assert frame == render_state(state)  # no wall-clock dependence
    assert "cafe0123" in frame and "fig8" in frame
    assert "3/4" in frame and "FINISHED" in frame
    assert "queue 1" in frame and "steals 1 (2 cells)" in frame
    assert "eta 4s" in frame
    assert "120 records merged" in frame
    assert "seesaw" in frame and "250.0 J" in frame
    assert "1 decisions" in frame and "1 cap actuations" in frame
    # one row per worker with utilization
    assert "  80%" in frame and "  30%" in frame


def test_model_tails_incrementally(tmp_path):
    path = tmp_path / "run.jsonl"
    rows = _journal_rows()
    with path.open("w") as fh:
        for row in rows[:4]:
            fh.write(json.dumps(row) + "\n")
    model = WatchModel(path)
    assert model.refresh() == 4
    assert model.state.counts["cells"] == 2
    with path.open("a") as fh:
        for row in rows[4:]:
            fh.write(json.dumps(row) + "\n")
        fh.write('{"event": "cell", "status":')  # torn tail mid-write
    assert model.refresh() == len(rows) - 4
    assert model.state.finished
    assert model.refresh() == 0  # torn tail stays unread


def test_watch_journal_non_tty_snapshots(tmp_path):
    path = tmp_path / "run.jsonl"
    path.write_text(
        "".join(json.dumps(r) + "\n" for r in _journal_rows())
    )
    out = io.StringIO()
    assert watch_journal(path, stream=out, tty=False) == 0
    text = out.getvalue()
    assert text.startswith("--- watch frame 0 ---\n")
    assert "FINISHED" in text
    assert "\x1b[" not in text  # plain text, no ANSI control codes
    # deterministic: a second watch over the same journal is identical
    out2 = io.StringIO()
    watch_journal(path, stream=out2, tty=False)
    assert out2.getvalue() == text


def test_watch_journal_tty_redraws_in_place(tmp_path):
    path = tmp_path / "run.jsonl"
    path.write_text(
        "".join(json.dumps(r) + "\n" for r in _journal_rows())
    )
    out = io.StringIO()
    assert watch_journal(path, stream=out, tty=True) == 0
    assert out.getvalue().startswith("\x1b[2J\x1b[H")


def test_watch_journal_once_on_missing_journal(tmp_path):
    out = io.StringIO()
    assert watch_journal(tmp_path / "nope.jsonl", once=True, stream=out, tty=False) == 0
    assert "watch frame 0" in out.getvalue()


def test_watch_journal_iterations_bound(tmp_path):
    path = tmp_path / "run.jsonl"
    path.write_text(json.dumps({"event": "campaign", "id": "x"}) + "\n")
    out = io.StringIO()
    assert (
        watch_journal(path, interval=0.01, iterations=3, stream=out, tty=False)
        == 0
    )
    assert out.getvalue().count("--- watch frame") == 3
